//! SSH public keys and fingerprints.
//!
//! Key material is modeled as opaque named blobs with SHA-256 fingerprints
//! — the cryptographic handshake itself is orthogonal to the MFA logic
//! being reproduced (sshd either verified a key or it did not; the PAM
//! stack only ever learns the outcome through the auth log).

use hpcmfa_crypto::base64;
use hpcmfa_crypto::sha256::sha256;

/// A public key as it appears in `authorized_keys`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PublicKey {
    /// Key type label, e.g. `ssh-ed25519`.
    pub algo: String,
    /// Key blob (opaque).
    pub blob: Vec<u8>,
}

impl PublicKey {
    /// OpenSSH-style fingerprint: `SHA256:` + unpadded base64 of the digest.
    pub fn fingerprint(&self) -> String {
        let mut data = self.algo.as_bytes().to_vec();
        data.extend_from_slice(&self.blob);
        format!("SHA256:{}", base64::encode_url(&sha256(&data)))
    }
}

/// A user-held keypair. The private half is a capability: possessing the
/// `KeyPair` lets a client pass the daemon's authorized-key check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPair {
    public: PublicKey,
}

impl KeyPair {
    /// Deterministically derive a keypair from a seed label (tests and the
    /// population generator use `user@host` labels).
    pub fn generate(seed_label: &str) -> Self {
        let blob = sha256(format!("key-material:{seed_label}").as_bytes()).to_vec();
        KeyPair {
            public: PublicKey {
                algo: "ssh-ed25519".to_string(),
                blob,
            },
        }
    }

    /// The shareable public half.
    pub fn public(&self) -> &PublicKey {
        &self.public
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let a = KeyPair::generate("alice@laptop");
        let b = KeyPair::generate("bob@laptop");
        assert_eq!(a.public().fingerprint(), a.public().fingerprint());
        assert_ne!(a.public().fingerprint(), b.public().fingerprint());
        assert!(a.public().fingerprint().starts_with("SHA256:"));
    }

    #[test]
    fn same_seed_same_key() {
        assert_eq!(KeyPair::generate("x"), KeyPair::generate("x"));
    }
}
