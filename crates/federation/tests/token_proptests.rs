//! Property tests for the resumption-token codec: seal/validate round
//! trips over arbitrary principals, keys, addresses, and clocks, and the
//! rejection properties RFC 9000 §8.1.4 demands — truncation, bit flips,
//! wrong keys, wrong addresses, and out-of-window steps are all refused,
//! never panicking and never yielding plausible-but-wrong claims.

use hpcmfa_federation::{ResumeAuthority, TokenClaims, TokenError, TOKEN_PREFIX};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

fn arb_user() -> BoxedStrategy<String> {
    "[a-z][a-z0-9_.-]{0,14}".boxed()
}

fn arb_realm() -> BoxedStrategy<String> {
    "[a-z]{2,8}".boxed()
}

fn arb_key() -> BoxedStrategy<Vec<u8>> {
    prop::collection::vec(any::<u8>(), 8..40).boxed()
}

fn arb_ip() -> BoxedStrategy<Ipv4Addr> {
    any::<[u8; 4]>().prop_map(Ipv4Addr::from).boxed()
}

/// An authority plus a token it issued and the issue time.
fn issue(
    key: &[u8],
    realm: &str,
    lifetime: u64,
    user: &str,
    client: Ipv4Addr,
    now: u64,
    rng_seed: u64,
) -> (ResumeAuthority, String) {
    let auth = ResumeAuthority::new(key, realm, realm, lifetime, 30);
    let mut rng = StdRng::seed_from_u64(rng_seed);
    let token = auth.issue(&mut rng, user, client, now);
    (auth, token)
}

proptest! {
    /// Issue → validate round-trips every claim, from anywhere inside
    /// the bound /16 and anywhere inside the validity window.
    #[test]
    fn round_trip(
        key in arb_key(),
        realm in arb_realm(),
        user in arb_user(),
        ip in arb_ip(),
        host in any::<[u8; 2]>(),
        t0 in 1_000_000u64..2_000_000_000,
        lifetime in 1u64..64,
        skew_steps in 0u64..64,
        seed in any::<u64>(),
    ) {
        let (auth, token) = issue(&key, &realm, lifetime, &user, ip, t0, seed);
        prop_assert!(ResumeAuthority::is_token(&token));
        // Same /16, any host part; any time up to `lifetime` steps later.
        let sibling = Ipv4Addr::new(ip.octets()[0], ip.octets()[1], host[0], host[1]);
        let later = t0 + skew_steps.min(lifetime) * 30;
        let claims = auth.validate(&token, &user, sibling, later);
        prop_assert!(claims.is_ok(), "round trip failed: {claims:?}");
        let claims = claims.unwrap();
        prop_assert_eq!(&claims.user, &user);
        prop_assert_eq!(&claims.realm, &realm);
        prop_assert_eq!(&claims.issuer, &realm);
        prop_assert_eq!(claims.client_net, TokenClaims::net_of(ip));
        prop_assert_eq!(claims.issued_step, t0 / 30);
    }

    /// Realistically sized principals (HPC usernames, short site names)
    /// always fit RFC 2865's 128-octet `User-Password` ceiling — the
    /// constraint that forced the unpadded-base64url wire form.
    #[test]
    fn realistic_tokens_fit_radius_password(
        key in arb_key(),
        realm in "[a-z]{2,6}",
        user in "[a-z][a-z0-9]{0,11}",
        ip in arb_ip(),
        t0 in 1_000_000u64..2_000_000_000,
        seed in any::<u64>(),
    ) {
        let (_, token) = issue(&key, &realm, 20, &user, ip, t0, seed);
        prop_assert!(
            token.len() <= 128,
            "token of {} chars overflows the RADIUS password field",
            token.len()
        );
    }

    /// Any strict prefix of a token is refused (tokens are ASCII, so
    /// every byte cut is a char cut).
    #[test]
    fn any_truncation_is_rejected(
        key in arb_key(),
        user in arb_user(),
        ip in arb_ip(),
        t0 in 1_000_000u64..2_000_000_000,
        cut_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let (auth, token) = issue(&key, "tacc", 20, &user, ip, t0, seed);
        let cut = (cut_seed as usize) % token.len();
        prop_assert!(auth.open(&token[..cut]).is_err());
    }

    /// Replacing any single character with any other character is
    /// refused: in the prefix it malforms, in the body the MAC catches
    /// it, in the MAC the comparison fails.
    #[test]
    fn any_single_char_change_is_rejected(
        key in arb_key(),
        user in arb_user(),
        ip in arb_ip(),
        t0 in 1_000_000u64..2_000_000_000,
        pos_seed in any::<u64>(),
        replacement in "[A-Za-z0-9_-]",
        seed in any::<u64>(),
    ) {
        let (auth, token) = issue(&key, "tacc", 20, &user, ip, t0, seed);
        let pos = (pos_seed as usize) % token.len();
        let replacement = replacement.chars().next().unwrap();
        prop_assume!(token.as_bytes()[pos] != replacement as u8);
        let mut chars: Vec<char> = token.chars().collect();
        chars[pos] = replacement;
        let tampered: String = chars.into_iter().collect();
        prop_assert!(auth.open(&tampered).is_err());
    }

    /// A token minted under one key never verifies under another.
    #[test]
    fn wrong_key_is_rejected(
        key in arb_key(),
        other_key in arb_key(),
        user in arb_user(),
        ip in arb_ip(),
        t0 in 1_000_000u64..2_000_000_000,
        seed in any::<u64>(),
    ) {
        prop_assume!(key != other_key);
        let (_, token) = issue(&key, "tacc", 20, &user, ip, t0, seed);
        let other = ResumeAuthority::new(&other_key, "tacc", "tacc", 20, 30);
        prop_assert_eq!(other.open(&token).unwrap_err(), TokenError::BadMac);
    }

    /// Presentation from outside the bound /16 is refused as
    /// WrongAddress — checked before the step window, so a thief's
    /// presentation is attributed to theft, not expiry.
    #[test]
    fn wrong_address_is_rejected(
        key in arb_key(),
        user in arb_user(),
        ip in arb_ip(),
        thief_ip in arb_ip(),
        t0 in 1_000_000u64..2_000_000_000,
        seed in any::<u64>(),
    ) {
        prop_assume!(TokenClaims::net_of(ip) != TokenClaims::net_of(thief_ip));
        let (auth, token) = issue(&key, "tacc", 20, &user, ip, t0, seed);
        prop_assert_eq!(
            auth.validate(&token, &user, thief_ip, t0).unwrap_err(),
            TokenError::WrongAddress
        );
    }

    /// Outside the step window — too old, or from the issuer's future —
    /// the token is expired regardless of everything else verifying.
    #[test]
    fn out_of_window_step_is_rejected(
        key in arb_key(),
        user in arb_user(),
        ip in arb_ip(),
        t0 in 1_000_000u64..2_000_000_000,
        lifetime in 1u64..64,
        beyond in 1u64..1_000,
        seed in any::<u64>(),
    ) {
        let (auth, token) = issue(&key, "tacc", lifetime, &user, ip, t0, seed);
        let expired_now = (t0 / 30 + lifetime + beyond) * 30;
        prop_assert_eq!(
            auth.validate(&token, &user, ip, expired_now).unwrap_err(),
            TokenError::Expired
        );
        // A clock before the issue step is equally out of window.
        if t0 / 30 > 0 {
            let future_token_now = (t0 / 30 - 1) * 30;
            prop_assert_eq!(
                auth.validate(&token, &user, ip, future_token_now).unwrap_err(),
                TokenError::Expired
            );
        }
    }

    /// The user binding holds for any other principal.
    #[test]
    fn wrong_user_is_rejected(
        key in arb_key(),
        user in arb_user(),
        other in arb_user(),
        ip in arb_ip(),
        t0 in 1_000_000u64..2_000_000_000,
        seed in any::<u64>(),
    ) {
        prop_assume!(user != other);
        let (auth, token) = issue(&key, "tacc", 20, &user, ip, t0, seed);
        prop_assert_eq!(
            auth.validate(&token, &other, ip, t0).unwrap_err(),
            TokenError::WrongUser
        );
    }

    /// Garbage never panics the parser, and only the exact prefix is
    /// even considered.
    #[test]
    fn arbitrary_strings_never_panic(s in ".{0,200}") {
        let auth = ResumeAuthority::new(b"k", "tacc", "tacc", 20, 30);
        let _ = auth.open(&s);
        let _ = auth.open(&format!("{TOKEN_PREFIX}{s}"));
    }
}
