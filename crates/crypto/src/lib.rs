//! Minimal cryptographic substrate for the Securing HPC MFA infrastructure.
//!
//! The paper's components lean on a handful of well-known primitives:
//!
//! * **MD5** — RADIUS request/response authenticators and `User-Password`
//!   hiding (RFC 2865 §3, §5.2) and HTTP Digest access authentication
//!   (RFC 7616 with the legacy MD5 algorithm), which the user portal uses to
//!   authenticate to the LinOTP-style admin API.
//! * **SHA-1 / SHA-256 / SHA-512** — the HMAC hash underlying HOTP/TOTP
//!   (RFC 4226 / RFC 6238). Production deployments overwhelmingly use
//!   HMAC-SHA-1 tokens; the RFC also defines SHA-256/512 variants which we
//!   support for completeness.
//! * **HMAC** (RFC 2104) — keyed-hash MAC over any of the digests above.
//! * **base32** (RFC 4648) — the standard encoding for OTP secret keys in
//!   `otpauth://` URIs consumed by soft-token apps such as the in-house
//!   Google-Authenticator derivative the paper describes.
//! * **base64** — signed-URL tokens for the out-of-band unpairing email flow.
//! * **Constant-time comparison** — token-code and digest comparisons.
//!
//! None of the approved offline dependencies provide these primitives, so they
//! are implemented here from their public specifications, each validated
//! against the official RFC/NIST test vectors in the module tests.
//!
//! This crate is deliberately dependency-free.

pub mod base32;
pub mod base64;
pub mod ct;
pub mod digestauth;
pub mod hex;
pub mod hmac;
pub mod md5;
pub mod sha1;
pub mod sha256;
pub mod sha512;

/// A block-based cryptographic hash function.
///
/// This is the small abstraction [`hmac`] and [`digestauth`] are generic
/// over. Implementations in this crate: [`md5::Md5`], [`sha1::Sha1`],
/// [`sha256::Sha256`], [`sha512::Sha512`].
pub trait Digest: Default + Clone {
    /// Digest output size in bytes.
    const OUTPUT_LEN: usize;
    /// Internal block size in bytes (used for HMAC key normalization).
    const BLOCK_LEN: usize;

    /// Absorb `data` into the hash state.
    fn update(&mut self, data: &[u8]);

    /// Consume the hasher and produce the digest bytes.
    fn finalize_vec(self) -> Vec<u8>;

    /// Consume the hasher, writing the digest into `out` (which must be at
    /// least [`Digest::OUTPUT_LEN`] bytes; only that prefix is written).
    /// The default routes through [`Digest::finalize_vec`]; the concrete
    /// digests override it to finish into fixed arrays with no heap
    /// allocation — the HMAC hot path ([`hmac::HmacKey::mac_into`]) leans
    /// on that.
    fn finalize_into(self, out: &mut [u8]) {
        out[..Self::OUTPUT_LEN].copy_from_slice(&self.finalize_vec());
    }

    /// One-shot convenience: digest of `data`.
    fn digest(data: &[u8]) -> Vec<u8> {
        let mut h = Self::default();
        h.update(data);
        h.finalize_vec()
    }
}

/// Identifies the hash algorithm behind an HMAC-based OTP, as carried in
/// `otpauth://` URIs and token-store records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashAlg {
    /// HMAC-SHA-1 — the RFC 4226 default and what essentially all deployed
    /// TOTP tokens (including the paper's soft and hard tokens) use.
    #[default]
    Sha1,
    /// HMAC-SHA-256 (RFC 6238 variant).
    Sha256,
    /// HMAC-SHA-512 (RFC 6238 variant).
    Sha512,
}

impl HashAlg {
    /// Canonical algorithm label used in otpauth URIs.
    pub fn name(self) -> &'static str {
        match self {
            HashAlg::Sha1 => "SHA1",
            HashAlg::Sha256 => "SHA256",
            HashAlg::Sha512 => "SHA512",
        }
    }

    /// Parse an algorithm label (case-insensitive).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "SHA1" => Some(HashAlg::Sha1),
            "SHA256" => Some(HashAlg::Sha256),
            "SHA512" => Some(HashAlg::Sha512),
            _ => None,
        }
    }

    /// Compute `HMAC(key, msg)` with this algorithm.
    pub fn hmac(self, key: &[u8], msg: &[u8]) -> Vec<u8> {
        match self {
            HashAlg::Sha1 => hmac::hmac::<sha1::Sha1>(key, msg),
            HashAlg::Sha256 => hmac::hmac::<sha256::Sha256>(key, msg),
            HashAlg::Sha512 => hmac::hmac::<sha512::Sha512>(key, msg),
        }
    }

    /// Precompute the HMAC midstates for `key` under this algorithm (see
    /// [`hmac::HmacKey`]). Callers that MAC many messages against one
    /// secret — a TOTP drift-window scan, a resync search — build this
    /// once and pay two block compressions per message afterwards.
    pub fn prepare_key(self, key: &[u8]) -> PreparedHmac {
        match self {
            HashAlg::Sha1 => PreparedHmac::Sha1(hmac::HmacKey::new(key)),
            HashAlg::Sha256 => PreparedHmac::Sha256(hmac::HmacKey::new(key)),
            HashAlg::Sha512 => PreparedHmac::Sha512(hmac::HmacKey::new(key)),
        }
    }
}

/// A precomputed [`hmac::HmacKey`] for a dynamically chosen [`HashAlg`] —
/// the store records the algorithm as data, so the hot path dispatches on
/// this enum rather than a generic parameter.
#[derive(Clone)]
pub enum PreparedHmac {
    /// HMAC-SHA-1 midstates.
    Sha1(hmac::HmacKey<sha1::Sha1>),
    /// HMAC-SHA-256 midstates.
    Sha256(hmac::HmacKey<sha256::Sha256>),
    /// HMAC-SHA-512 midstates.
    Sha512(hmac::HmacKey<sha512::Sha512>),
}

impl PreparedHmac {
    /// The MAC length this key produces.
    pub fn output_len(&self) -> usize {
        match self {
            PreparedHmac::Sha1(_) => sha1::Sha1::OUTPUT_LEN,
            PreparedHmac::Sha256(_) => sha256::Sha256::OUTPUT_LEN,
            PreparedHmac::Sha512(_) => sha512::Sha512::OUTPUT_LEN,
        }
    }

    /// One-shot MAC of `msg`.
    pub fn mac(&self, msg: &[u8]) -> Vec<u8> {
        match self {
            PreparedHmac::Sha1(k) => k.mac(msg),
            PreparedHmac::Sha256(k) => k.mac(msg),
            PreparedHmac::Sha512(k) => k.mac(msg),
        }
    }

    /// One-shot MAC of `msg` into `out` (size with
    /// [`hmac::MAX_OUTPUT_LEN`]); returns the MAC length. Allocation-free.
    pub fn mac_into(&self, msg: &[u8], out: &mut [u8]) -> usize {
        match self {
            PreparedHmac::Sha1(k) => k.mac_into(msg, out),
            PreparedHmac::Sha256(k) => k.mac_into(msg, out),
            PreparedHmac::Sha512(k) => k.mac_into(msg, out),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_alg_names_round_trip() {
        for alg in [HashAlg::Sha1, HashAlg::Sha256, HashAlg::Sha512] {
            assert_eq!(HashAlg::parse(alg.name()), Some(alg));
        }
        assert_eq!(HashAlg::parse("sha1"), Some(HashAlg::Sha1));
        assert_eq!(HashAlg::parse("md5"), None);
    }

    #[test]
    fn hash_alg_hmac_dispatch_lengths() {
        assert_eq!(HashAlg::Sha1.hmac(b"k", b"m").len(), 20);
        assert_eq!(HashAlg::Sha256.hmac(b"k", b"m").len(), 32);
        assert_eq!(HashAlg::Sha512.hmac(b"k", b"m").len(), 64);
    }

    #[test]
    fn default_alg_is_sha1() {
        assert_eq!(HashAlg::default(), HashAlg::Sha1);
    }
}
