//! Property-based tests for the crypto substrate.

use hpcmfa_crypto::{base32, base64, ct, hex, hmac, md5, sha1, sha256, sha512, Digest};
use proptest::prelude::*;

proptest! {
    #[test]
    fn base32_round_trips(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let enc = base32::encode(&data);
        prop_assert_eq!(base32::decode(&enc).unwrap(), data.clone());
        let padded = base32::encode_padded(&data);
        prop_assert_eq!(base32::decode(&padded).unwrap(), data);
        if !padded.is_empty() {
            prop_assert_eq!(padded.len() % 8, 0);
        }
    }

    #[test]
    fn base64_round_trips(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(base64::decode(&base64::encode(&data)).unwrap(), data.clone());
        prop_assert_eq!(base64::decode_url(&base64::encode_url(&data)).unwrap(), data);
    }

    #[test]
    fn hex_round_trips(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assert_eq!(hex::from_hex(&hex::to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn ct_eq_agrees_with_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                            b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ct::ct_eq(&a, &b), a == b);
    }

    #[test]
    fn digests_are_deterministic_and_split_invariant(
        data in proptest::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = split.min(data.len());
        macro_rules! check {
            ($t:ty) => {{
                let mut h = <$t>::default();
                h.update(&data[..split]);
                h.update(&data[split..]);
                prop_assert_eq!(h.finalize_vec(), <$t>::digest(&data));
            }};
        }
        check!(md5::Md5);
        check!(sha1::Sha1);
        check!(sha256::Sha256);
        check!(sha512::Sha512);
    }

    #[test]
    fn hmac_key_sensitivity(
        key in proptest::collection::vec(any::<u8>(), 1..80),
        msg in proptest::collection::vec(any::<u8>(), 0..128),
        flip in 0usize..80,
    ) {
        let mac1 = hmac::hmac::<sha1::Sha1>(&key, &msg);
        let mut key2 = key.clone();
        let i = flip % key2.len();
        key2[i] ^= 0x01;
        let mac2 = hmac::hmac::<sha1::Sha1>(&key2, &msg);
        prop_assert_ne!(mac1, mac2);
    }

    #[test]
    fn base32_decode_never_panics(s in "\\PC{0,64}") {
        let _ = base32::decode(&s);
    }

    #[test]
    fn base64_decode_never_panics(s in "\\PC{0,64}") {
        let _ = base64::decode(&s);
        let _ = base64::decode_url(&s);
    }
}
