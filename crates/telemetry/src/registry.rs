//! The metrics registry: named, labelled series of counters, gauges and
//! histograms, with Prometheus text exposition and frozen snapshots.
//!
//! Series are keyed by `(name, sorted labels)`; instruments are handed out
//! as `Arc`s so hot paths can cache them and record without touching the
//! registry lock again. Rendering iterates `BTreeMap`s, so output is
//! deterministic for a given set of recorded series — chaos scenarios
//! compare rendered reports byte-for-byte.
//!
//! Naming follows the Prometheus convention
//! `hpcmfa_<component>_<what>_<unit>` (`_total` for counters, `_us` for
//! microsecond histograms); see DESIGN.md §9.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use crate::events::{SecurityEvent, SecurityEventKind, SecurityEvents};
use crate::histogram::{bucket_upper_bound, Histogram, HistogramSnapshot, NUM_BUCKETS};
use crate::trace::{SpanId, TraceId, Tracer};

/// A monotonically increasing counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// New counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one.
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value.
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// New gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A series key: family name plus sorted `(label, value)` pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        SeriesKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `name` or `name{k="v",…}` — the exposition-format series id, also
    /// used as the snapshot map key.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let mut out = String::new();
        out.push_str(&self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        out.push('}');
        out
    }

    /// Same, with one extra label appended (for histogram `le`).
    fn render_with(&self, suffix: &str, extra_key: &str, extra_val: &str) -> String {
        let mut out = String::new();
        out.push_str(&self.name);
        out.push_str(suffix);
        out.push('{');
        for (k, v) in &self.labels {
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push_str("\",");
        }
        out.push_str(extra_key);
        out.push_str("=\"");
        out.push_str(extra_val);
        out.push('"');
        out.push('}');
        out
    }
}

/// Escape a label value per the exposition format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

type SeriesMap<T> = RwLock<BTreeMap<SeriesKey, Arc<T>>>;

/// The process-wide (or per-`Center`) metrics registry. Thread-safe;
/// shared behind an `Arc` by every component on the auth path. Also owns
/// the request [`Tracer`], so wiring one registry wires tracing too.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: SeriesMap<Counter>,
    gauges: SeriesMap<Gauge>,
    histograms: SeriesMap<Histogram>,
    tracer: Tracer,
    events: SecurityEvents,
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("counters", &read(&self.counters).len())
            .field("gauges", &read(&self.gauges).len())
            .field("histograms", &read(&self.histograms).len())
            .field("spans", &self.tracer.len())
            .finish()
    }
}

fn read<T>(m: &SeriesMap<T>) -> std::sync::RwLockReadGuard<'_, BTreeMap<SeriesKey, Arc<T>>> {
    m.read().unwrap_or_else(|e| e.into_inner())
}

fn get_or_insert<T: Default>(m: &SeriesMap<T>, name: &str, labels: &[(&str, &str)]) -> Arc<T> {
    let key = SeriesKey::new(name, labels);
    if let Some(v) = read(m).get(&key) {
        return Arc::clone(v);
    }
    let mut w = m.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(w.entry(key).or_default())
}

impl MetricsRegistry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// New registry with explicit span/event ring caps (tests and
    /// memory-constrained deployments).
    pub fn with_ring_caps(tracer_cap: usize, events_cap: usize) -> Self {
        MetricsRegistry {
            tracer: Tracer::with_cap(tracer_cap),
            events: SecurityEvents::with_cap(events_cap),
            ..Self::default()
        }
    }

    /// The counter series `name{labels}`, created at zero on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        get_or_insert(&self.counters, name, labels)
    }

    /// The gauge series `name{labels}`, created at zero on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, labels)
    }

    /// The histogram series `name{labels}`, created empty on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, labels)
    }

    /// The shared request tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The shared security-event ring.
    pub fn security_events(&self) -> &SecurityEvents {
        &self.events
    }

    /// Emit one security event: append it to the ring and bump
    /// `hpcmfa_security_events_total{kind=…}`. `at` is the emitter's
    /// virtual-clock timestamp; `trace` is the triggering request.
    /// Emitters with a span in scope use
    /// [`MetricsRegistry::emit_event_spanned`] instead.
    pub fn emit_event(
        &self,
        kind: SecurityEventKind,
        trace: Option<TraceId>,
        at: u64,
        detail: impl Into<String>,
    ) {
        self.emit_event_spanned(kind, trace, None, at, detail);
    }

    /// [`MetricsRegistry::emit_event`] with the emitting span stamped,
    /// so an alert → event → span → parent-chain walk needs no grep.
    pub fn emit_event_spanned(
        &self,
        kind: SecurityEventKind,
        trace: Option<TraceId>,
        span: Option<SpanId>,
        at: u64,
        detail: impl Into<String>,
    ) {
        self.events.push(SecurityEvent {
            kind,
            trace,
            span,
            at,
            detail: detail.into(),
        });
        self.counter("hpcmfa_security_events_total", &[("kind", kind.label())])
            .inc();
    }

    /// Render every series in the Prometheus text exposition format:
    /// `# TYPE` headers, one `name{labels} value` line per counter/gauge
    /// series, and cumulative `_bucket{le=…}` / `_sum` / `_count` lines
    /// per histogram series (empty buckets are elided; `le="+Inf"` always
    /// closes the series). Output order is deterministic.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_family = String::new();
        for (key, c) in read(&self.counters).iter() {
            type_header(&mut out, &mut last_family, &key.name, "counter");
            out.push_str(&format!("{} {}\n", key.render(), c.get()));
        }
        // Ring-eviction counters live on the rings themselves, not in the
        // series map; expose them so overflow is never silent.
        for (name, v) in self.ring_drop_counters() {
            type_header(&mut out, &mut last_family, name, "counter");
            out.push_str(&format!("{name} {v}\n"));
        }
        last_family.clear();
        for (key, g) in read(&self.gauges).iter() {
            type_header(&mut out, &mut last_family, &key.name, "gauge");
            out.push_str(&format!("{} {}\n", key.render(), g.get()));
        }
        last_family.clear();
        for (key, h) in read(&self.histograms).iter() {
            type_header(&mut out, &mut last_family, &key.name, "histogram");
            let snap = h.snapshot();
            // OpenMetrics exemplar suffix for a bucket line:
            // `… # {trace_id="<hex>"} <value>` — the worst traced
            // observation that landed in that bucket, so a quantile
            // breach points at a concrete trace.
            let exemplar_suffix = |bucket: usize| -> String {
                snap.exemplars()
                    .iter()
                    .find(|e| e.bucket == bucket)
                    .map(|e| format!(" # {{trace_id=\"{}\"}} {}", e.trace, e.value))
                    .unwrap_or_default()
            };
            let mut cum = 0u64;
            for (i, &n) in snap.bucket_counts().iter().enumerate() {
                cum += n;
                if n > 0 && i + 1 < NUM_BUCKETS {
                    out.push_str(&format!(
                        "{} {}{}\n",
                        key.render_with("_bucket", "le", &bucket_upper_bound(i).to_string()),
                        cum,
                        exemplar_suffix(i)
                    ));
                }
            }
            out.push_str(&format!(
                "{} {}{}\n",
                key.render_with("_bucket", "le", "+Inf"),
                snap.count(),
                exemplar_suffix(NUM_BUCKETS - 1)
            ));
            out.push_str(&format!(
                "{}_sum{} {}\n",
                key.name,
                label_block(key),
                snap.sum()
            ));
            out.push_str(&format!(
                "{}_count{} {}\n",
                key.name,
                label_block(key),
                snap.count()
            ));
        }
        out
    }

    /// The eviction counters of the span and event rings, as
    /// `(family, value)` pairs.
    fn ring_drop_counters(&self) -> [(&'static str, u64); 2] {
        [
            (
                "hpcmfa_security_events_dropped_total",
                self.events.dropped(),
            ),
            ("hpcmfa_tracer_dropped_total", self.tracer.dropped()),
        ]
    }

    /// Freeze every series into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: BTreeMap<String, u64> = read(&self.counters)
            .iter()
            .map(|(k, c)| (k.render(), c.get()))
            .collect();
        for (name, v) in self.ring_drop_counters() {
            counters.insert(name.to_string(), v);
        }
        MetricsSnapshot {
            counters,
            gauges: read(&self.gauges)
                .iter()
                .map(|(k, g)| (k.render(), g.get()))
                .collect(),
            histograms: read(&self.histograms)
                .iter()
                .map(|(k, h)| (k.render(), h.snapshot()))
                .collect(),
        }
    }
}

/// Emit a `# TYPE` line the first time `name` appears in this section.
fn type_header(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if last != name {
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        *last = name.to_string();
    }
}

/// The `{k="v",…}` block of a key (empty string when unlabelled).
fn label_block(key: &SeriesKey) -> String {
    let rendered = key.render();
    rendered[key.name.len()..].to_string()
}

/// A frozen, passive view of a registry: plain maps from rendered series
/// ids (`name` or `name{k="v",…}`) to values. This is what reports
/// (chaos, rollout) embed and what tests assert against.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The exact counter series (`name` or `name{k="v"}`), 0 if absent.
    pub fn counter(&self, series: &str) -> u64 {
        self.counters.get(series).copied().unwrap_or(0)
    }

    /// Sum of every counter series in family `name` (any label set).
    pub fn counter_family(&self, name: &str) -> u64 {
        let prefix = format!("{name}{{");
        self.counters
            .iter()
            .filter(|(k, _)| *k == name || k.starts_with(&prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// The exact gauge series, 0 if absent.
    pub fn gauge(&self, series: &str) -> i64 {
        self.gauges.get(series).copied().unwrap_or(0)
    }

    /// The exact histogram series, if recorded.
    pub fn histogram(&self, series: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(series)
    }

    /// Every series in histogram family `name` merged into one shard.
    pub fn histogram_family(&self, name: &str) -> HistogramSnapshot {
        let prefix = format!("{name}{{");
        let mut merged = HistogramSnapshot::empty();
        for (k, h) in &self.histograms {
            if k == name || k.starts_with(&prefix) {
                merged.merge(h);
            }
        }
        merged
    }

    /// All counter series, sorted by series id.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All gauge series, sorted by series id.
    pub fn gauges(&self) -> &BTreeMap<String, i64> {
        &self.gauges
    }

    /// All histogram series, sorted by series id.
    pub fn histograms(&self) -> &BTreeMap<String, HistogramSnapshot> {
        &self.histograms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_shared_and_label_order_is_canonical() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hpcmfa_test_total", &[("b", "2"), ("a", "1")]);
        let b = reg.counter("hpcmfa_test_total", &[("a", "1"), ("b", "2")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3, "same series regardless of label order");
        let snap = reg.snapshot();
        assert_eq!(snap.counter("hpcmfa_test_total{a=\"1\",b=\"2\"}"), 3);
        assert_eq!(snap.counter_family("hpcmfa_test_total"), 3);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("hpcmfa_up", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(reg.snapshot().gauge("hpcmfa_up"), 3);
    }

    #[test]
    fn prometheus_rendering_is_valid_and_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("hpcmfa_logins_total", &[("outcome", "granted")])
            .add(3);
        reg.counter("hpcmfa_logins_total", &[("outcome", "denied")])
            .inc();
        reg.gauge("hpcmfa_servers_up", &[]).set(2);
        let h = reg.histogram("hpcmfa_rtt_us", &[]);
        h.record(10);
        h.record(10);
        h.record(3000);
        let text = reg.render_prometheus();
        assert_eq!(text, reg.render_prometheus(), "deterministic");
        assert!(text.contains("# TYPE hpcmfa_logins_total counter\n"));
        assert!(text.contains("hpcmfa_logins_total{outcome=\"denied\"} 1\n"));
        assert!(text.contains("hpcmfa_logins_total{outcome=\"granted\"} 3\n"));
        assert!(text.contains("# TYPE hpcmfa_servers_up gauge\n"));
        assert!(text.contains("hpcmfa_servers_up 2\n"));
        assert!(text.contains("# TYPE hpcmfa_rtt_us histogram\n"));
        assert!(text.contains("hpcmfa_rtt_us_bucket{le=\"11\"} 2\n"));
        assert!(text.contains("hpcmfa_rtt_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("hpcmfa_rtt_us_sum 3020\n"));
        assert!(text.contains("hpcmfa_rtt_us_count 3\n"));
        // One TYPE line per family, even with several series.
        assert_eq!(text.matches("# TYPE hpcmfa_logins_total").count(), 1);
        // Every non-comment line is `series value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in {line:?}");
            assert!(!parts.next().unwrap().is_empty());
        }
    }

    #[test]
    fn histogram_bucket_lines_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("hpcmfa_d_us", &[]);
        for v in [1u64, 1, 2, 500] {
            h.record(v);
        }
        let text = reg.render_prometheus();
        assert!(text.contains("hpcmfa_d_us_bucket{le=\"2\"} 2\n"));
        assert!(text.contains("hpcmfa_d_us_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("hpcmfa_d_us_bucket{le=\"+Inf\"} 4\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("hpcmfa_odd_total", &[("msg", "a\"b\\c\nd")])
            .inc();
        let text = reg.render_prometheus();
        assert!(text.contains("msg=\"a\\\"b\\\\c\\nd\""), "{text}");
    }

    #[test]
    fn snapshot_families_merge_histograms() {
        let reg = MetricsRegistry::new();
        reg.histogram("hpcmfa_x_us", &[("server", "a")]).record(10);
        reg.histogram("hpcmfa_x_us", &[("server", "b")]).record(30);
        let snap = reg.snapshot();
        let merged = snap.histogram_family("hpcmfa_x_us");
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.sum(), 40);
        assert!(snap.histogram("hpcmfa_x_us{server=\"a\"}").is_some());
        assert!(snap.histogram("hpcmfa_x_us{server=\"missing\"}").is_none());
    }

    #[test]
    fn emit_event_feeds_ring_and_counter() {
        let reg = MetricsRegistry::new();
        let t = crate::TraceId::from_u64(7);
        reg.emit_event(SecurityEventKind::ReplayAttempt, Some(t), 100, "user=alice");
        reg.emit_event(SecurityEventKind::ReplayAttempt, Some(t), 130, "user=alice");
        reg.emit_event(SecurityEventKind::BreakerFlap, None, 140, "server=radius0");
        assert_eq!(reg.security_events().len(), 3);
        assert_eq!(
            reg.security_events()
                .of_kind(SecurityEventKind::ReplayAttempt)
                .len(),
            2
        );
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("hpcmfa_security_events_total{kind=\"replay_attempt\"}"),
            2
        );
        assert_eq!(snap.counter_family("hpcmfa_security_events_total"), 3);
    }

    #[test]
    fn traced_observations_render_openmetrics_exemplars() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("hpcmfa_radius_request_duration_us", &[("server", "r0")]);
        h.record(10); // untraced: that bucket gets no exemplar
        h.record_traced(2_049, TraceId::from_u64(0xbeef));
        h.record_traced(2_050, TraceId::from_u64(0xfeed)); // same bucket, worse
        let text = reg.render_prometheus();
        assert!(
            text.contains("# {trace_id=\"000000000000feed\"} 2050\n"),
            "{text}"
        );
        assert!(!text.contains("beef"), "replaced exemplar is gone");
        // The exemplar rides the bucket line, after the cumulative count.
        let line = text
            .lines()
            .find(|l| l.contains("trace_id"))
            .expect("exemplar line");
        assert!(line.starts_with("hpcmfa_radius_request_duration_us_bucket{server=\"r0\",le=\""));
        assert!(
            line.contains("} 3 # {"),
            "cumulative count precedes exemplar"
        );
        // Untraced-only histograms render without exemplar suffixes.
        let plain = MetricsRegistry::new();
        plain.histogram("hpcmfa_plain_us", &[]).record(5);
        assert!(!plain.render_prometheus().contains("trace_id"));
    }

    #[test]
    fn ring_drop_counters_are_exposed() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.snapshot().counter("hpcmfa_tracer_dropped_total"), 0);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE hpcmfa_tracer_dropped_total counter\n"));
        assert!(text.contains("hpcmfa_tracer_dropped_total 0\n"));
        assert!(text.contains("hpcmfa_security_events_dropped_total 0\n"));
        // Overflow is visible, not silent.
        let tight = MetricsRegistry::with_ring_caps(2, 1);
        for i in 0..5 {
            tight
                .tracer()
                .span(crate::TraceId::from_u64(i), "pam", "x", "");
            tight.emit_event(SecurityEventKind::SmsAbuse, None, i, "");
        }
        let snap = tight.snapshot();
        assert_eq!(snap.counter("hpcmfa_tracer_dropped_total"), 3);
        assert_eq!(snap.counter("hpcmfa_security_events_dropped_total"), 4);
        assert!(tight
            .render_prometheus()
            .contains("hpcmfa_tracer_dropped_total 3\n"));
    }

    #[test]
    fn registry_debug_is_compact() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[]).inc();
        reg.tracer()
            .span(crate::TraceId::from_u64(1), "pam", "x", "");
        let dbg = format!("{reg:?}");
        assert!(dbg.contains("MetricsRegistry"));
        assert!(dbg.contains("counters: 1"));
        assert!(dbg.contains("spans: 1"));
    }
}
