//! The deterministic alerting rule engine.
//!
//! An [`AlertEngine`] holds a set of declarative [`Rule`]s and is ticked
//! by the simulation driver — once per login in the chaos harness, once
//! per day in the rollout sim — with the virtual-clock time and a fresh
//! [`MetricsSnapshot`]. Each tick the engine appends the snapshot to a
//! bounded sample history, evaluates every rule's [`Condition`] over the
//! windowed deltas, and advances a per-rule state machine:
//!
//! ```text
//! inactive ──cond──▶ pending ──held for `for_secs`──▶ firing
//!     ▲                 │cond clears                     │cond clears
//!     │                 ▼                                ▼
//!     └──cooldown─── resolved ◀──────────────────────────┘
//!                        │cond returns (flap suppression)
//!                        └──────────▶ firing
//! ```
//!
//! Determinism contract: conditions may consult only series that move on
//! a virtual clock (the RADIUS outcome counters, the vclock request-
//! duration histogram, the security-event counters) — never wall-clock
//! histograms — and the engine itself keeps no wall time. Same seed,
//! same ticks → byte-identical [`AlertTransition`] timelines, which the
//! chaos tests compare across replayed runs.
//!
//! Every transition into `pending` / `firing` / `resolved` bumps
//! `hpcmfa_alerts_total{rule,state}` in the shared registry.

use crate::histogram::HistogramSnapshot;
use crate::registry::{MetricsRegistry, MetricsSnapshot};
use crate::slo::{burn_rate, series_value, SliSpec};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

/// When a rule's condition holds.
#[derive(Clone, Debug, PartialEq)]
pub enum Condition {
    /// The current value of `series` (exact id or family sum) is at
    /// least `min`.
    Threshold {
        /// Counter series id or family name.
        series: String,
        /// Inclusive minimum.
        min: u64,
    },
    /// `series` increased by at least `min_increase` over the trailing
    /// `window_secs`.
    RateOverWindow {
        /// Counter series id or family name.
        series: String,
        /// Trailing window, virtual seconds.
        window_secs: u64,
        /// Inclusive minimum increase over the window.
        min_increase: u64,
    },
    /// Multi-window SLO burn rate: the error budget of `sli` is burning
    /// faster than `factor`× the sustainable pace over *both* the short
    /// and the long trailing window.
    BurnRate {
        /// The SLI's good/total counter series.
        sli: SliSpec,
        /// Availability objective in `(0, 1)`, e.g. `0.95`.
        objective: f64,
        /// Short (responsive) window, virtual seconds.
        short_secs: u64,
        /// Long (blip-suppressing) window, virtual seconds.
        long_secs: u64,
        /// Burn-rate multiple both windows must exceed.
        factor: f64,
    },
    /// Quantile `q` of the observations `family` gained over the
    /// trailing `window_secs` is at least `min_value`.
    LatencyQuantile {
        /// Histogram family name (all label sets merged).
        family: String,
        /// Quantile in `[0, 1]`.
        q: f64,
        /// Trailing window, virtual seconds.
        window_secs: u64,
        /// Inclusive minimum for the windowed quantile.
        min_value: u64,
    },
}

impl Condition {
    /// Counter keys this condition samples.
    fn counter_keys(&self) -> Vec<String> {
        match self {
            Condition::Threshold { series, .. } | Condition::RateOverWindow { series, .. } => {
                vec![series.clone()]
            }
            Condition::BurnRate { sli, .. } => sli.good.iter().chain(&sli.total).cloned().collect(),
            Condition::LatencyQuantile { .. } => Vec::new(),
        }
    }

    /// Histogram families this condition samples.
    fn histogram_families(&self) -> Vec<String> {
        match self {
            Condition::LatencyQuantile { family, .. } => vec![family.clone()],
            _ => Vec::new(),
        }
    }

    /// The longest trailing window this condition looks back over.
    fn max_window(&self) -> u64 {
        match self {
            Condition::Threshold { .. } => 0,
            Condition::RateOverWindow { window_secs, .. } => *window_secs,
            Condition::BurnRate {
                short_secs,
                long_secs,
                ..
            } => (*short_secs).max(*long_secs),
            Condition::LatencyQuantile { window_secs, .. } => *window_secs,
        }
    }
}

/// One declarative alerting rule.
#[derive(Clone, Debug, PartialEq)]
pub struct Rule {
    /// Stable name (the `rule` label of `hpcmfa_alerts_total`).
    pub name: String,
    /// When the rule is in breach.
    pub condition: Condition,
    /// How long the condition must hold before pending becomes firing.
    pub for_secs: u64,
    /// How long a resolved alert lingers (flap suppression) before
    /// returning to inactive.
    pub cooldown_secs: u64,
}

/// Lifecycle state of one rule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlertState {
    /// Condition clear.
    Inactive,
    /// Condition in breach, `for_secs` not yet served.
    Pending,
    /// Alerting.
    Firing,
    /// Recently cleared; re-fires without a pending delay during the
    /// cooldown.
    Resolved,
}

impl AlertState {
    /// snake_case label (the `state` label of `hpcmfa_alerts_total`).
    pub fn label(self) -> &'static str {
        match self {
            AlertState::Inactive => "inactive",
            AlertState::Pending => "pending",
            AlertState::Firing => "firing",
            AlertState::Resolved => "resolved",
        }
    }
}

impl fmt::Display for AlertState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One state-machine transition, in virtual time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlertTransition {
    /// Tick time of the transition.
    pub at: u64,
    /// Rule name.
    pub rule: String,
    /// State left.
    pub from: AlertState,
    /// State entered.
    pub to: AlertState,
}

impl fmt::Display for AlertTransition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}->{}", self.at, self.rule, self.from, self.to)
    }
}

/// A rule's current status, for `/system/alerts`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlertStatus {
    /// Rule name.
    pub rule: String,
    /// Current state.
    pub state: AlertState,
    /// When the current state was entered.
    pub since: u64,
}

/// One sampled view of the referenced series.
struct Sample {
    at: u64,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

struct RuleRuntime {
    state: AlertState,
    since: u64,
}

struct EngineInner {
    samples: VecDeque<Sample>,
    runtimes: Vec<RuleRuntime>,
    timeline: Vec<AlertTransition>,
}

/// The rule engine. Interior-mutable so it can sit behind one `Arc`
/// shared by the driver (which ticks it) and the admin API (which reads
/// it).
pub struct AlertEngine {
    registry: Arc<MetricsRegistry>,
    rules: Vec<Rule>,
    counter_keys: Vec<String>,
    histogram_families: Vec<String>,
    max_window: u64,
    inner: Mutex<EngineInner>,
}

impl AlertEngine {
    /// Build an engine over `rules`, recording `hpcmfa_alerts_total`
    /// into `registry`.
    pub fn new(registry: Arc<MetricsRegistry>, rules: Vec<Rule>) -> Self {
        let counter_keys: Vec<String> = rules
            .iter()
            .flat_map(|r| r.condition.counter_keys())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let histogram_families: Vec<String> = rules
            .iter()
            .flat_map(|r| r.condition.histogram_families())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let max_window = rules
            .iter()
            .map(|r| r.condition.max_window())
            .max()
            .unwrap_or(0);
        let runtimes = rules
            .iter()
            .map(|_| RuleRuntime {
                state: AlertState::Inactive,
                since: 0,
            })
            .collect();
        AlertEngine {
            registry,
            rules,
            counter_keys,
            histogram_families,
            max_window,
            inner: Mutex::new(EngineInner {
                samples: VecDeque::new(),
                runtimes,
                timeline: Vec::new(),
            }),
        }
    }

    /// The configured rules.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EngineInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Advance the engine to virtual time `now` with a fresh snapshot.
    /// Ticks must be fed in non-decreasing time order.
    pub fn tick(&self, now: u64, snap: &MetricsSnapshot) {
        let mut inner = self.lock();
        let sample = Sample {
            at: now,
            counters: self
                .counter_keys
                .iter()
                .map(|k| (k.clone(), series_value(snap, k)))
                .collect(),
            histograms: self
                .histogram_families
                .iter()
                .map(|f| (f.clone(), snap.histogram_family(f)))
                .collect(),
        };
        inner.samples.push_back(sample);
        // Prune: a sample is dead once the next one is already at or past
        // every window's horizon.
        while inner.samples.len() >= 2 && inner.samples[1].at.saturating_add(self.max_window) <= now
        {
            inner.samples.pop_front();
        }

        for (i, rule) in self.rules.iter().enumerate() {
            let cond = eval_condition(&rule.condition, now, &inner.samples);
            let mut transitions: Vec<(AlertState, AlertState)> = Vec::new();
            {
                let rt = &mut inner.runtimes[i];
                match rt.state {
                    AlertState::Inactive if cond => {
                        transitions.push((AlertState::Inactive, AlertState::Pending));
                        rt.state = AlertState::Pending;
                        rt.since = now;
                        if now - rt.since >= rule.for_secs {
                            transitions.push((AlertState::Pending, AlertState::Firing));
                            rt.state = AlertState::Firing;
                            rt.since = now;
                        }
                    }
                    AlertState::Pending if !cond => {
                        transitions.push((AlertState::Pending, AlertState::Inactive));
                        rt.state = AlertState::Inactive;
                        rt.since = now;
                    }
                    AlertState::Pending if now - rt.since >= rule.for_secs => {
                        transitions.push((AlertState::Pending, AlertState::Firing));
                        rt.state = AlertState::Firing;
                        rt.since = now;
                    }
                    AlertState::Firing if !cond => {
                        transitions.push((AlertState::Firing, AlertState::Resolved));
                        rt.state = AlertState::Resolved;
                        rt.since = now;
                    }
                    AlertState::Resolved if cond => {
                        transitions.push((AlertState::Resolved, AlertState::Firing));
                        rt.state = AlertState::Firing;
                        rt.since = now;
                    }
                    AlertState::Resolved if now - rt.since >= rule.cooldown_secs => {
                        transitions.push((AlertState::Resolved, AlertState::Inactive));
                        rt.state = AlertState::Inactive;
                        rt.since = now;
                    }
                    _ => {}
                }
            }
            for (from, to) in transitions {
                if to != AlertState::Inactive {
                    self.registry
                        .counter(
                            "hpcmfa_alerts_total",
                            &[("rule", &rule.name), ("state", to.label())],
                        )
                        .inc();
                }
                inner.timeline.push(AlertTransition {
                    at: now,
                    rule: rule.name.clone(),
                    from,
                    to,
                });
            }
        }
    }

    /// Rules currently pending or firing.
    pub fn active(&self) -> Vec<AlertStatus> {
        self.statuses(|s| matches!(s, AlertState::Pending | AlertState::Firing))
    }

    /// Rules in their resolved cooldown.
    pub fn recent_resolved(&self) -> Vec<AlertStatus> {
        self.statuses(|s| s == AlertState::Resolved)
    }

    fn statuses(&self, keep: impl Fn(AlertState) -> bool) -> Vec<AlertStatus> {
        let inner = self.lock();
        self.rules
            .iter()
            .zip(&inner.runtimes)
            .filter(|(_, rt)| keep(rt.state))
            .map(|(r, rt)| AlertStatus {
                rule: r.name.clone(),
                state: rt.state,
                since: rt.since,
            })
            .collect()
    }

    /// Every transition so far, in tick order.
    pub fn timeline(&self) -> Vec<AlertTransition> {
        self.lock().timeline.clone()
    }

    /// The timeline rendered one line per transition (what chaos reports
    /// embed and replay tests byte-compare).
    pub fn timeline_lines(&self) -> Vec<String> {
        self.lock().timeline.iter().map(|t| t.to_string()).collect()
    }
}

/// Latest sample at or before `now - window`, else the oldest retained.
fn baseline(samples: &VecDeque<Sample>, now: u64, window: u64) -> &Sample {
    samples
        .iter()
        .rev()
        .find(|s| s.at.saturating_add(window) <= now)
        .unwrap_or_else(|| samples.front().expect("tick pushes before eval"))
}

fn counter_at(sample: &Sample, key: &str) -> u64 {
    sample.counters.get(key).copied().unwrap_or(0)
}

fn delta(samples: &VecDeque<Sample>, now: u64, window: u64, key: &str) -> u64 {
    let cur = counter_at(samples.back().expect("nonempty"), key);
    let base = counter_at(baseline(samples, now, window), key);
    cur.saturating_sub(base)
}

fn eval_condition(cond: &Condition, now: u64, samples: &VecDeque<Sample>) -> bool {
    match cond {
        Condition::Threshold { series, min } => {
            counter_at(samples.back().expect("nonempty"), series) >= *min
        }
        Condition::RateOverWindow {
            series,
            window_secs,
            min_increase,
        } => delta(samples, now, *window_secs, series) >= *min_increase,
        Condition::BurnRate {
            sli,
            objective,
            short_secs,
            long_secs,
            factor,
        } => {
            let burn_over = |window: u64| {
                let good: u64 = sli
                    .good
                    .iter()
                    .map(|k| delta(samples, now, window, k))
                    .sum();
                let total: u64 = sli
                    .total
                    .iter()
                    .map(|k| delta(samples, now, window, k))
                    .sum();
                burn_rate(good, total, *objective)
            };
            burn_over(*short_secs) > *factor && burn_over(*long_secs) > *factor
        }
        Condition::LatencyQuantile {
            family,
            q,
            window_secs,
            min_value,
        } => {
            let cur = samples
                .back()
                .expect("nonempty")
                .histograms
                .get(family)
                .cloned()
                .unwrap_or_else(HistogramSnapshot::empty);
            let base = baseline(samples, now, *window_secs)
                .histograms
                .get(family)
                .cloned()
                .unwrap_or_else(HistogramSnapshot::empty);
            cur.delta_since(&base).quantile(*q) >= *min_value
        }
    }
}

/// The default security rule set wired into every `Center`: the auth
/// SLO burn rate, direct error/latency symptoms, and one rule per
/// security-event kind. Windows are virtual seconds on the simulation
/// clock (chaos logins advance it by 30 s per dial).
pub fn default_security_rules() -> Vec<Rule> {
    let event_rate = |name: &str, kind: &str, window_secs: u64, min: u64, cooldown: u64| Rule {
        name: name.to_string(),
        condition: Condition::RateOverWindow {
            series: format!("hpcmfa_security_events_total{{kind=\"{kind}\"}}"),
            window_secs,
            min_increase: min,
        },
        for_secs: 0,
        cooldown_secs: cooldown,
    };
    vec![
        Rule {
            name: "auth_slo_burn".to_string(),
            condition: Condition::BurnRate {
                sli: SliSpec::auth_success(),
                objective: 0.95,
                short_secs: 120,
                long_secs: 360,
                factor: 4.0,
            },
            for_secs: 60,
            cooldown_secs: 300,
        },
        Rule {
            name: "radius_error_rate".to_string(),
            condition: Condition::RateOverWindow {
                series: "hpcmfa_radius_outcomes_total{outcome=\"error\"}".to_string(),
                window_secs: 180,
                min_increase: 3,
            },
            for_secs: 0,
            cooldown_secs: 300,
        },
        Rule {
            name: "auth_latency_p99".to_string(),
            condition: Condition::LatencyQuantile {
                family: "hpcmfa_radius_request_duration_us".to_string(),
                q: 0.99,
                window_secs: 300,
                min_value: 100_000,
            },
            for_secs: 0,
            cooldown_secs: 300,
        },
        event_rate("breaker_flap", "breaker_flap", 300, 2, 300),
        event_rate("lockout_storm", "lockout_storm", 600, 3, 600),
        event_rate("auth_failure_burst", "auth_failure_burst", 600, 1, 600),
        event_rate("replay_attempts", "replay_attempt", 600, 1, 600),
        event_rate("sms_abuse", "sms_abuse", 600, 3, 600),
        event_rate("wal_fsync_degraded", "wal_fsync_degraded", 300, 1, 300),
        event_rate("risk_deny_surge", "risk_deny", 600, 3, 600),
        event_rate("risk_step_up_surge", "risk_step_up", 600, 10, 600),
        // Any OTP failover is page-worthy: redundancy is gone until the
        // deposed node rejoins as the new standby.
        event_rate("otp_failover", "failover", 600, 1, 600),
        // One replayed resumption token is a stolen credential in flight
        // (RFC 9000 §8.1.4): page on the first sighting.
        event_rate("resume_replay", "resume_replay", 600, 1, 600),
        // A federated realm dropping off the map strands every roaming
        // user from that site.
        event_rate("realm_unreachable", "realm_unreachable", 600, 1, 600),
        // Shedding is watched on its own counter family (summed over
        // every `reason` label) so the rule sees the aggregate pressure.
        Rule {
            name: "overload_shedding".to_string(),
            condition: Condition::RateOverWindow {
                series: "hpcmfa_shed_total".to_string(),
                window_secs: 300,
                min_increase: 10,
            },
            for_secs: 0,
            cooldown_secs: 300,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with(rules: Vec<Rule>) -> (Arc<MetricsRegistry>, AlertEngine) {
        let reg = Arc::new(MetricsRegistry::new());
        let engine = AlertEngine::new(Arc::clone(&reg), rules);
        (reg, engine)
    }

    fn rate_rule(window: u64, min: u64, for_secs: u64, cooldown: u64) -> Rule {
        Rule {
            name: "errors".to_string(),
            condition: Condition::RateOverWindow {
                series: "hpcmfa_e_total".to_string(),
                window_secs: window,
                min_increase: min,
            },
            for_secs,
            cooldown_secs: cooldown,
        }
    }

    #[test]
    fn rate_rule_fires_and_resolves_on_window_clear() {
        let (reg, engine) = engine_with(vec![rate_rule(100, 3, 0, 50)]);
        let c = reg.counter("hpcmfa_e_total", &[]);
        engine.tick(0, &reg.snapshot());
        assert!(engine.active().is_empty());
        // Burst: 4 errors between t=0 and t=30.
        c.add(4);
        engine.tick(30, &reg.snapshot());
        let active = engine.active();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].state, AlertState::Firing);
        // No further errors: window slides past the burst at t=130.
        engine.tick(90, &reg.snapshot());
        assert_eq!(engine.active().len(), 1, "burst still inside window");
        engine.tick(140, &reg.snapshot());
        assert!(engine.active().is_empty());
        assert_eq!(engine.recent_resolved().len(), 1);
        // Cooldown expires 50s later.
        engine.tick(200, &reg.snapshot());
        assert!(engine.recent_resolved().is_empty());
        let lines = engine.timeline_lines();
        assert_eq!(
            lines,
            vec![
                "30 errors inactive->pending",
                "30 errors pending->firing",
                "140 errors firing->resolved",
                "200 errors resolved->inactive",
            ]
        );
        // Transition counters landed in the registry.
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("hpcmfa_alerts_total{rule=\"errors\",state=\"firing\"}"),
            1
        );
        assert_eq!(
            snap.counter("hpcmfa_alerts_total{rule=\"errors\",state=\"resolved\"}"),
            1
        );
    }

    #[test]
    fn for_secs_holds_in_pending_and_clears_without_firing() {
        let (reg, engine) = engine_with(vec![rate_rule(1_000, 1, 60, 50)]);
        let c = reg.counter("hpcmfa_e_total", &[]);
        engine.tick(0, &reg.snapshot());
        c.inc();
        engine.tick(30, &reg.snapshot());
        assert_eq!(engine.active()[0].state, AlertState::Pending);
        engine.tick(60, &reg.snapshot());
        assert_eq!(
            engine.active()[0].state,
            AlertState::Pending,
            "30s < for 60s"
        );
        engine.tick(100, &reg.snapshot());
        assert_eq!(engine.active()[0].state, AlertState::Firing);
    }

    #[test]
    fn pending_that_clears_never_fires() {
        let (reg, engine) = engine_with(vec![rate_rule(50, 1, 60, 50)]);
        let c = reg.counter("hpcmfa_e_total", &[]);
        engine.tick(0, &reg.snapshot());
        c.inc();
        engine.tick(10, &reg.snapshot());
        assert_eq!(engine.active()[0].state, AlertState::Pending);
        // The single error leaves the 50s window before for_secs elapses.
        engine.tick(65, &reg.snapshot());
        assert!(engine.active().is_empty());
        assert!(engine.recent_resolved().is_empty());
        assert!(!engine.timeline_lines().iter().any(|l| l.contains("firing")));
    }

    #[test]
    fn resolved_refires_without_pending_delay() {
        let (reg, engine) = engine_with(vec![rate_rule(100, 1, 60, 500)]);
        let c = reg.counter("hpcmfa_e_total", &[]);
        engine.tick(0, &reg.snapshot());
        c.inc();
        engine.tick(10, &reg.snapshot());
        engine.tick(80, &reg.snapshot()); // pending held 70s >= 60 -> firing
        assert_eq!(engine.active()[0].state, AlertState::Firing);
        engine.tick(140, &reg.snapshot()); // window clear -> resolved
        assert_eq!(engine.recent_resolved().len(), 1);
        c.inc(); // flap back during cooldown
        engine.tick(150, &reg.snapshot());
        assert_eq!(
            engine.active()[0].state,
            AlertState::Firing,
            "no pending hop"
        );
    }

    #[test]
    fn threshold_condition_is_sticky() {
        let (reg, engine) = engine_with(vec![Rule {
            name: "cap".to_string(),
            condition: Condition::Threshold {
                series: "hpcmfa_t_total".to_string(),
                min: 5,
            },
            for_secs: 0,
            cooldown_secs: 10,
        }]);
        let c = reg.counter("hpcmfa_t_total", &[]);
        c.add(4);
        engine.tick(0, &reg.snapshot());
        assert!(engine.active().is_empty());
        c.add(1);
        engine.tick(10, &reg.snapshot());
        assert_eq!(engine.active()[0].state, AlertState::Firing);
        engine.tick(1_000, &reg.snapshot());
        assert_eq!(
            engine.active()[0].state,
            AlertState::Firing,
            "counters never regress"
        );
    }

    #[test]
    fn burn_rate_needs_both_windows() {
        let (reg, engine) = engine_with(vec![Rule {
            name: "slo".to_string(),
            condition: Condition::BurnRate {
                sli: SliSpec {
                    good: vec!["hpcmfa_ok_total".to_string()],
                    total: vec!["hpcmfa_all_total".to_string()],
                },
                objective: 0.95,
                short_secs: 60,
                long_secs: 300,
                factor: 4.0,
            },
            for_secs: 0,
            cooldown_secs: 60,
        }]);
        let ok = reg.counter("hpcmfa_ok_total", &[]);
        let all = reg.counter("hpcmfa_all_total", &[]);
        // A long healthy stretch fills the long window with good events.
        for t in 0..10u64 {
            ok.add(10);
            all.add(10);
            engine.tick(t * 30, &reg.snapshot());
        }
        assert!(engine.active().is_empty());
        // Total outage: the short window degrades immediately, but the
        // long window still remembers the healthy majority.
        all.add(10);
        engine.tick(330, &reg.snapshot());
        assert!(
            engine.active().is_empty(),
            "long window must gate the alert"
        );
        // Sustained outage degrades the long window too.
        for t in 12..22u64 {
            all.add(10);
            engine.tick(t * 30, &reg.snapshot());
        }
        assert_eq!(engine.active().len(), 1);
        assert_eq!(engine.active()[0].state, AlertState::Firing);
    }

    #[test]
    fn latency_quantile_sees_only_the_window() {
        let (reg, engine) = engine_with(vec![Rule {
            name: "lat".to_string(),
            condition: Condition::LatencyQuantile {
                family: "hpcmfa_d_us".to_string(),
                q: 0.99,
                window_secs: 100,
                min_value: 50_000,
            },
            for_secs: 0,
            cooldown_secs: 10,
        }]);
        let h = reg.histogram("hpcmfa_d_us", &[]);
        for _ in 0..100 {
            h.record(2_000);
        }
        engine.tick(0, &reg.snapshot());
        assert!(engine.active().is_empty());
        // A spike dominates the fresh window even though the lifetime
        // p99 stays low.
        for _ in 0..5 {
            h.record(900_000);
        }
        engine.tick(30, &reg.snapshot());
        assert_eq!(engine.active()[0].state, AlertState::Firing);
        // Window slides past the spike.
        engine.tick(200, &reg.snapshot());
        assert!(engine.active().is_empty());
    }

    #[test]
    fn identical_tick_sequences_give_identical_timelines() {
        let run = || {
            let (reg, engine) = engine_with(default_security_rules());
            let err = reg.counter("hpcmfa_radius_outcomes_total", &[("outcome", "error")]);
            let ok = reg.counter("hpcmfa_radius_outcomes_total", &[("outcome", "accept")]);
            for t in 0..40u64 {
                if (10..20).contains(&t) {
                    err.add(3);
                } else {
                    ok.add(1);
                }
                engine.tick(t * 30, &reg.snapshot());
            }
            engine.timeline_lines()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
        assert!(a
            .iter()
            .any(|l| l.contains("radius_error_rate inactive->pending")));
    }

    #[test]
    fn sample_history_is_pruned() {
        let (reg, engine) = engine_with(vec![rate_rule(100, 1, 0, 10)]);
        for t in 0..1_000u64 {
            engine.tick(t * 30, &reg.snapshot());
        }
        assert!(
            engine.lock().samples.len() < 10,
            "history must stay bounded"
        );
    }
}
