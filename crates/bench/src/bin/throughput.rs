//! Multi-threaded validation throughput against one [`LinotpServer`],
//! reporting logins/sec at each requested thread count and writing
//! `BENCH_throughput.json`.
//!
//! # Determinism
//!
//! The headline numbers are **schedule-independent**: users are partitioned
//! by token-store shard (`shard_of_name(user) % threads`), so every thread
//! owns a fixed, disjoint set of shards and performs a fixed number of
//! validations regardless of OS scheduling — no two threads ever contend on
//! a shard lock, which is exactly the scaling property the sharded store
//! exists to provide. Elapsed time is then *accounted, not measured*, on the
//! same virtual-clock convention the latency bench and the chaos harness
//! use: each validation charges a modeled parallel compute cost to its
//! thread's clock and a modeled serialized cost (audit ring + global
//! counters) to a shared serial term, and
//!
//! ```text
//! elapsed = max(per-thread clock) + total_ops × serial_cost      (Amdahl)
//! ```
//!
//! The same seed therefore prints the same headline line on any machine —
//! including single-core CI runners, where a wall-clock "speedup" would be
//! noise. Real wall time and the real `hpcmfa_otp_validate_wall_us` p99
//! from the server's telemetry registry ride along as secondary fields so
//! genuine contention still has somewhere to show up.
//!
//! Every validation is asserted to succeed: the bench drives fresh codes on
//! a fresh time step per round, so a replay or lockout would mean the
//! concurrent path diverged from the serial semantics.

use hpcmfa_otp::totp::Totp;
use hpcmfa_otpserver::server::LinotpServer;
use hpcmfa_otpserver::sms::TwilioSim;
use hpcmfa_otpserver::store::shard_of_name;
use std::sync::atomic::{AtomicU64, Ordering};

/// Modeled one-core cost of one validation's parallelizable work (drift
/// window scan — 21 midstate HMACs — plus shard-lock bookkeeping), µs.
const VALIDATE_COST_US: u64 = 80;

/// Modeled cost of one validation's serialized work (audit ring append,
/// global gauge/counter updates), µs. The Amdahl floor.
const SERIAL_COST_US: u64 = 5;

/// TOTP step width used to mint a fresh code per round.
const STEP_SECS: u64 = 30;

struct RunResult {
    threads: usize,
    total_logins: u64,
    successes: u64,
    virtual_elapsed_us: u64,
    logins_per_sec: f64,
    wall_elapsed_us: u64,
    p99_validate_wall_us: u64,
}

/// Drive `logins` rounds over `users` enrolled users with `threads`
/// streams, all against one freshly seeded server.
fn run(threads: usize, users: usize, logins: u64, seed: u64) -> RunResult {
    let server = LinotpServer::new(TwilioSim::new(seed), seed);
    let t0 = 1_700_000_000u64;
    let enrolled: Vec<(String, Totp)> = (0..users)
        .map(|i| {
            let name = format!("user{i:04}");
            let secret = server.enroll_soft(&name, t0);
            (name, Totp::new(secret))
        })
        .collect();

    // Static partition: thread t owns every user whose shard maps to t.
    // Thread counts that divide SHARD_COUNT (1/2/4/8/16) give each thread
    // a disjoint set of whole shards.
    let mut assigned: Vec<Vec<&(String, Totp)>> = vec![Vec::new(); threads];
    for user in &enrolled {
        assigned[shard_of_name(&user.0) % threads].push(user);
    }

    let successes = AtomicU64::new(0);
    let max_thread_clock_us = AtomicU64::new(0);
    let wall_start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for own in &assigned {
            let server = &server;
            let successes = &successes;
            let max_thread_clock_us = &max_thread_clock_us;
            scope.spawn(move || {
                let mut ok = 0u64;
                let mut ops = 0u64;
                for round in 0..logins {
                    // A fresh time step per round: every code is new, so
                    // every validation must succeed (no replays).
                    let now = t0 + (round + 1) * STEP_SECS;
                    for (name, totp) in own {
                        let code = totp.code_at(now);
                        ops += 1;
                        if server.validate(name, &code, now).is_success() {
                            ok += 1;
                        }
                    }
                }
                successes.fetch_add(ok, Ordering::SeqCst);
                max_thread_clock_us.fetch_max(ops * VALIDATE_COST_US, Ordering::SeqCst);
            });
        }
    });
    let wall_elapsed_us = wall_start.elapsed().as_micros() as u64;

    let total_logins = users as u64 * logins;
    let virtual_elapsed_us =
        max_thread_clock_us.load(Ordering::SeqCst) + total_logins * SERIAL_COST_US;
    let hist = server
        .metrics()
        .snapshot()
        .histogram_family("hpcmfa_otp_validate_wall_us");
    RunResult {
        threads,
        total_logins,
        successes: successes.load(Ordering::SeqCst),
        virtual_elapsed_us,
        logins_per_sec: total_logins as f64 * 1e6 / virtual_elapsed_us as f64,
        wall_elapsed_us,
        p99_validate_wall_us: hist.quantile(0.99),
    }
}

fn main() {
    let mut threads: Vec<usize> = vec![1, 4, 8];
    let mut users = 512usize;
    let mut logins = 25u64;
    let mut seed = 42u64;
    let mut out = "BENCH_throughput.json".to_string();
    let mut check = false;

    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--threads" => {
                threads = argv
                    .get(i + 1)
                    .map(|s| {
                        s.split(',')
                            .map(|t| t.parse().expect("--threads takes a comma list"))
                            .collect()
                    })
                    .expect("--threads needs a comma list, e.g. 1,4,8");
                i += 2;
            }
            "--users" => {
                users = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--users needs an integer");
                i += 2;
            }
            "--logins" => {
                logins = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--logins needs an integer");
                i += 2;
            }
            "--seed" => {
                seed = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
                i += 2;
            }
            "--out" => {
                out = argv.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            other => panic!(
                "unknown argument {other:?} (expected --threads/--users/--logins/--seed/--out/--check)"
            ),
        }
    }

    eprintln!(
        "driving {} users x {logins} rounds at thread counts {threads:?} (seed {seed}) ...",
        users
    );
    let runs: Vec<RunResult> = threads
        .iter()
        .map(|&t| {
            let r = run(t, users, logins, seed);
            eprintln!(
                "  threads={:<2} logins/sec={:>10.0} (virtual)  wall={}us  p99={}us",
                r.threads, r.logins_per_sec, r.wall_elapsed_us, r.p99_validate_wall_us
            );
            r
        })
        .collect();

    let runs_json: Vec<String> = runs
        .iter()
        .map(|r| {
            format!(
                "{{\"threads\":{},\"total_logins\":{},\"successes\":{},\
\"virtual_elapsed_us\":{},\"logins_per_sec\":{:.1},\
\"wall_elapsed_us\":{},\"p99_validate_wall_us\":{}}}",
                r.threads,
                r.total_logins,
                r.successes,
                r.virtual_elapsed_us,
                r.logins_per_sec,
                r.wall_elapsed_us,
                r.p99_validate_wall_us
            )
        })
        .collect();
    let baseline = runs.iter().find(|r| r.threads == 1);
    let best = runs.iter().max_by_key(|r| r.threads);
    let speedup = match (baseline, best) {
        (Some(b), Some(m)) if m.threads > 1 => m.logins_per_sec / b.logins_per_sec,
        _ => 1.0,
    };
    let line = format!(
        "{{\"bench\":\"throughput\",\"seed\":{seed},\"users\":{users},\"logins_per_user\":{logins},\
\"model\":{{\"validate_cost_us\":{VALIDATE_COST_US},\"serial_cost_us\":{SERIAL_COST_US}}},\
\"runs\":[{}],\"max_speedup_vs_1\":{speedup:.2}}}",
        runs_json.join(",")
    );
    println!("{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("warning: could not write {out}: {e}");
    }

    if check {
        for r in &runs {
            assert_eq!(
                r.successes,
                r.total_logins,
                "threads={}: {} of {} validations failed — concurrent path diverged",
                r.threads,
                r.total_logins - r.successes,
                r.total_logins
            );
        }
        for pair in runs.windows(2) {
            assert!(
                pair[1].threads <= pair[0].threads
                    || pair[1].logins_per_sec > pair[0].logins_per_sec,
                "throughput did not increase from {} to {} threads",
                pair[0].threads,
                pair[1].threads
            );
        }
        if let (Some(b), Some(m)) = (baseline, best) {
            if m.threads >= 8 {
                assert!(
                    m.logins_per_sec >= 2.0 * b.logins_per_sec,
                    "expected >= 2x logins/sec at {} threads vs 1, got {:.2}x",
                    m.threads,
                    speedup
                );
            }
        }
        eprintln!("check passed: all validations succeeded, throughput scales");
    }
}
