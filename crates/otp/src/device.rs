//! Token devices a user may possess (§3.3).
//!
//! Three public device types plus a fourth internal one:
//!
//! * **Soft token** — the in-house smartphone app (Google Authenticator
//!   lineage). Needs no network; its only failure mode is clock drift,
//!   which the server tolerates up to ±300 s.
//! * **Hard token** — a Feitian OTP c200-style fob: pre-programmed secret,
//!   serial number on the back used for pairing, single button, LCD.
//! * **SMS token** — the *server* generates the code and texts it; the
//!   "device" is just a phone number. Modeled in `hpcmfa-otpserver::sms`
//!   since all logic is server-side.
//! * **Static training token** — a fixed six-digit code for workshop
//!   accounts, regenerated per session.

use crate::qr::{QrCode, ScanOutcome};
use crate::secret::Secret;
use crate::totp::{Totp, TotpParams};
use crate::uri::{OtpauthUri, UriError};

/// The four pairing types tracked by the identity-management back end and
/// reported in Table 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Smartphone application.
    Soft,
    /// SMS text-message delivery.
    Sms,
    /// Key fob with LCD screen.
    Hard,
    /// Static code for training accounts (not publicly offered).
    Training,
}

impl TokenKind {
    /// Human-readable label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            TokenKind::Soft => "Soft",
            TokenKind::Sms => "SMS",
            TokenKind::Hard => "Hard",
            TokenKind::Training => "Training",
        }
    }

    /// All kinds, in Table 1 order.
    pub const ALL: [TokenKind; 4] = [
        TokenKind::Soft,
        TokenKind::Sms,
        TokenKind::Hard,
        TokenKind::Training,
    ];
}

/// A smartphone soft token: secret imported by QR scan, codes generated
/// locally against the phone's (possibly drifting) clock.
#[derive(Debug, Clone)]
pub struct SoftToken {
    totp: Totp,
    /// Phone clock offset from true time, in seconds (positive = fast).
    pub clock_skew_secs: i64,
}

impl SoftToken {
    /// Import a scanned provisioning URI, as the app's QR reader does.
    pub fn from_uri(uri: &str) -> Result<Self, UriError> {
        let parsed = OtpauthUri::parse(uri)?;
        Ok(SoftToken {
            totp: Totp::with_params(parsed.secret, parsed.params),
            clock_skew_secs: 0,
        })
    }

    /// Import by scanning a QR code; `reliability`/`roll` as in
    /// [`QrCode::scan`]. `None` means the camera failed and the user must
    /// retry.
    pub fn scan_qr(qr: &QrCode, reliability: f64, roll: f64) -> Option<Result<Self, UriError>> {
        match qr.scan(reliability, roll) {
            ScanOutcome::Decoded(payload) => Some(Self::from_uri(&payload)),
            ScanOutcome::Unreadable => None,
        }
    }

    /// Direct construction (tests, hard-token emulation).
    pub fn new(secret: Secret, params: TotpParams) -> Self {
        SoftToken {
            totp: Totp::with_params(secret, params),
            clock_skew_secs: 0,
        }
    }

    /// Set the phone's clock skew.
    pub fn with_skew(mut self, skew_secs: i64) -> Self {
        self.clock_skew_secs = skew_secs;
        self
    }

    /// The code currently displayed, given the true time `unix_time`.
    pub fn displayed_code(&self, unix_time: u64) -> String {
        let local = unix_time.saturating_add_signed(self.clock_skew_secs);
        self.totp.code_at(local)
    }

    /// Access to the underlying generator (for pairing confirmation).
    pub fn totp(&self) -> &Totp {
        &self.totp
    }
}

/// A Feitian-style hard token fob.
///
/// Fobs arrive "pre-programmed with a secret key, all of which were provided
/// at the time of batch purchase" (§3.3); users pair by entering the serial
/// number printed on the back.
#[derive(Debug, Clone)]
pub struct HardToken {
    /// Printed serial number, e.g. `K1234567`.
    pub serial: String,
    totp: Totp,
    /// Fob oscillator drift in seconds (hard tokens drift slowly over
    /// years; the c200 spec is within a couple of minutes per year).
    pub clock_skew_secs: i64,
    /// Whether the battery is still good; a dead fob displays nothing.
    pub battery_ok: bool,
}

impl HardToken {
    /// Construct a fob as the factory does.
    pub fn new(serial: impl Into<String>, secret: Secret) -> Self {
        HardToken {
            serial: serial.into(),
            totp: Totp::new(secret),
            clock_skew_secs: 0,
            battery_ok: true,
        }
    }

    /// Set oscillator drift.
    pub fn with_skew(mut self, skew_secs: i64) -> Self {
        self.clock_skew_secs = skew_secs;
        self
    }

    /// Press the button: the displayed code at true time `unix_time`, or
    /// `None` if the battery is dead.
    pub fn press_button(&self, unix_time: u64) -> Option<String> {
        if !self.battery_ok {
            return None;
        }
        let local = unix_time.saturating_add_signed(self.clock_skew_secs);
        Some(self.totp.code_at(local))
    }

    /// Access to the underlying generator.
    pub fn totp(&self) -> &Totp {
        &self.totp
    }
}

/// A batch of hard tokens as shipped by the vendor: serials plus seeds.
///
/// "The single button TOTP hard tokens came pre-programmed with a secret
/// key, all of which were provided at the time of batch purchase" (§3.3).
#[derive(Debug, Default)]
pub struct HardTokenBatch {
    /// The physical fobs.
    pub fobs: Vec<HardToken>,
}

impl HardTokenBatch {
    /// Manufacture `n` fobs with serials `prefix-0001...` using `rng` for
    /// the seeds.
    pub fn manufacture<R: rand::RngCore + ?Sized>(prefix: &str, n: usize, rng: &mut R) -> Self {
        let fobs = (0..n)
            .map(|i| HardToken::new(format!("{prefix}-{:04}", i + 1), Secret::generate(rng)))
            .collect();
        HardTokenBatch { fobs }
    }

    /// The seed file handed to the center at purchase: serial → secret.
    pub fn seed_file(&self) -> Vec<(String, Secret)> {
        self.fobs
            .iter()
            .map(|f| (f.serial.clone(), f.totp().secret.clone()))
            .collect()
    }

    /// Look up a fob by serial.
    pub fn by_serial(&self, serial: &str) -> Option<&HardToken> {
        self.fobs.iter().find(|f| f.serial == serial)
    }
}

/// A static training token: a fixed six-digit code assigned per session.
///
/// "Before each training session, accounts are assigned a random six-digit
/// number such that the participants may step through the multi-factor
/// authentication process" (§3.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticToken {
    code: String,
}

impl StaticToken {
    /// Assign a random six-digit code.
    pub fn assign<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        StaticToken {
            code: crate::format_code(rng.random_range(0..1_000_000), 6),
        }
    }

    /// Wrap a specific code (must be six ASCII digits).
    pub fn from_code(code: &str) -> Option<Self> {
        if code.len() == 6 && code.bytes().all(|b| b.is_ascii_digit()) {
            Some(StaticToken {
                code: code.to_string(),
            })
        } else {
            None
        }
    }

    /// The fixed code handed to workshop participants.
    pub fn code(&self) -> &str {
        &self.code
    }

    /// Regenerate after the session ends ("easily regenerated once the
    /// training session is finished").
    pub fn regenerate<R: rand::Rng + ?Sized>(&mut self, rng: &mut R) {
        *self = Self::assign(rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn secret() -> Secret {
        Secret::from_bytes(*b"12345678901234567890")
    }

    #[test]
    fn soft_token_imports_uri_and_matches_server() {
        let uri = OtpauthUri::new("TACC", "alice", secret(), TotpParams::default());
        let app = SoftToken::from_uri(&uri.render()).unwrap();
        let server = Totp::new(secret());
        assert_eq!(
            app.displayed_code(1_475_000_000),
            server.code_at(1_475_000_000)
        );
    }

    #[test]
    fn soft_token_qr_scan_round_trip() {
        let uri = OtpauthUri::new("TACC", "alice", secret(), TotpParams::default()).render();
        let qr = QrCode::encode(&uri);
        let app = SoftToken::scan_qr(&qr, 1.0, 0.0).unwrap().unwrap();
        assert_eq!(app.displayed_code(59), Totp::new(secret()).code_at(59));
        // Failed scan surfaces as None, prompting a retry in the portal flow.
        assert!(SoftToken::scan_qr(&qr, 0.0, 0.5).is_none());
    }

    #[test]
    fn skewed_clock_shows_adjacent_step_code() {
        let app = SoftToken::new(secret(), TotpParams::default()).with_skew(-45);
        let server = Totp::new(secret());
        let now = 1_475_000_000;
        // Skew -45 s puts the phone one-or-two steps behind.
        assert_eq!(app.displayed_code(now), server.code_at(now - 45));
        // Still within the ±300 s acceptance window.
        assert!(server
            .verify(&app.displayed_code(now), now, server.window_for_drift(300))
            .is_some());
    }

    #[test]
    fn excessive_skew_rejected_by_server_window() {
        let app = SoftToken::new(secret(), TotpParams::default()).with_skew(-400);
        let server = Totp::new(secret());
        let now = 1_475_000_000;
        assert!(server
            .verify(&app.displayed_code(now), now, server.window_for_drift(300))
            .is_none());
    }

    #[test]
    fn hard_token_button_and_battery() {
        let mut fob = HardToken::new("TACC-0001", secret());
        assert_eq!(
            fob.press_button(59).unwrap(),
            Totp::new(secret()).code_at(59)
        );
        fob.battery_ok = false;
        assert_eq!(fob.press_button(59), None);
    }

    #[test]
    fn batch_manufacture_unique_serials_and_secrets() {
        let mut rng = StdRng::seed_from_u64(1);
        let batch = HardTokenBatch::manufacture("TACC", 50, &mut rng);
        assert_eq!(batch.fobs.len(), 50);
        let serials: std::collections::HashSet<_> =
            batch.fobs.iter().map(|f| f.serial.clone()).collect();
        assert_eq!(serials.len(), 50);
        let secrets: std::collections::HashSet<_> = batch
            .seed_file()
            .into_iter()
            .map(|(_, s)| s.to_hex())
            .collect();
        assert_eq!(secrets.len(), 50);
        assert!(batch.by_serial("TACC-0007").is_some());
        assert!(batch.by_serial("TACC-9999").is_none());
    }

    #[test]
    fn static_token_lifecycle() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = StaticToken::assign(&mut rng);
        assert_eq!(t.code().len(), 6);
        assert!(t.code().bytes().all(|b| b.is_ascii_digit()));
        let before = t.code().to_string();
        t.regenerate(&mut rng);
        // Overwhelmingly likely to change; the test seed makes it so.
        assert_ne!(t.code(), before);
    }

    #[test]
    fn static_token_from_code_validation() {
        assert!(StaticToken::from_code("123456").is_some());
        assert!(StaticToken::from_code("12345").is_none());
        assert!(StaticToken::from_code("12345a").is_none());
    }

    #[test]
    fn token_kind_labels() {
        assert_eq!(TokenKind::Soft.label(), "Soft");
        assert_eq!(TokenKind::ALL.len(), 4);
    }
}
