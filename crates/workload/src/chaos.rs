//! Chaos scenario harness: scripted fault injection against a live center.
//!
//! The paper's fleet walks RADIUS servers "in a round-robin fashion to
//! provide load balancing and resiliency if specific RADIUS servers are
//! unavailable" (§3.4). This module turns that claim into an experiment:
//! a [`FaultScript`] replays a deterministic sequence of infrastructure
//! faults (outages, rolling restarts, packet loss, flapping, garbled-reply
//! storms, latency spikes, and OTP-server crash/recover cycles) against a
//! [`Center`] while a steady stream of real logins runs through the full
//! sshd → PAM → RADIUS → OTP path. The run produces a [`ChaosReport`]
//! with availability figures, the per-server health the circuit breakers
//! accumulated, and — for durable runs — WAL replay statistics.
//!
//! Everything is virtual-time and seeded: the same script and seed yield
//! byte-identical reports.

use hpcmfa_core::center::{Center, CenterConfig};
use hpcmfa_otpserver::{MemoryBackend, StorageBackend};
use hpcmfa_pam::modules::token::EnforcementMode;
use hpcmfa_radius::breaker::BreakerConfig;
use hpcmfa_radius::client::{RetryPolicy, ServerHealthSnapshot};
use hpcmfa_ssh::client::{ClientProfile, TokenSource};
use hpcmfa_telemetry::MetricsSnapshot;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// One fault applied to a RADIUS server's fault plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Hard-down: every exchange fails immediately.
    ServerDown,
    /// Bring the server back up (clears a `ServerDown`).
    ServerUp,
    /// Drop one datagram in `one_in` (0 clears).
    PacketLoss {
        /// Loss cadence denominator.
        one_in: u64,
    },
    /// Corrupt one reply in `one_in` on the wire (0 clears).
    GarbleStorm {
        /// Garble cadence denominator.
        one_in: u64,
    },
    /// Alternate `period` exchanges up, `period` down (0 clears).
    Flap {
        /// Half-period in exchanges.
        period: u64,
    },
    /// Add one-way latency (0 clears the spike).
    LatencySpike {
        /// Extra one-way latency, microseconds.
        extra_us: u64,
    },
    /// Kill the center's OTP server and recover it from durable storage
    /// mid-stream. The `server` index is ignored — the whole RADIUS fleet
    /// shares one OTP back end. Requires a runner built with
    /// [`ChaosParams::durable_otp`]; firing it against an in-memory-only
    /// center is a script bug and panics.
    OtpCrashRestart,
}

impl FaultAction {
    /// Stable label naming the fault family this action belongs to —
    /// used for the report's per-kind breakdown and the
    /// `hpcmfa_chaos_faults_total{kind=…}` counter. Clearing actions
    /// (`ServerUp`, a zero cadence) share their family's label.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultAction::ServerDown | FaultAction::ServerUp => "outage",
            FaultAction::PacketLoss { .. } => "packet_loss",
            FaultAction::GarbleStorm { .. } => "garble",
            FaultAction::Flap { .. } => "flap",
            FaultAction::LatencySpike { .. } => "latency_spike",
            FaultAction::OtpCrashRestart => "otp_crash",
        }
    }
}

/// Apply `action` to server `server` just before login number `at_login`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// 0-based login index the event fires before.
    pub at_login: usize,
    /// Index into the RADIUS fleet.
    pub server: usize,
    /// What happens.
    pub action: FaultAction,
}

/// A deterministic fault schedule, indexed by login count rather than wall
/// time so runs are reproducible regardless of how fast logins execute.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultScript {
    /// Events in any order; the runner fires every event whose `at_login`
    /// has been reached.
    pub events: Vec<FaultEvent>,
}

impl FaultScript {
    /// An empty script (a control run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder: append an event.
    pub fn at(mut self, at_login: usize, server: usize, action: FaultAction) -> Self {
        self.events.push(FaultEvent {
            at_login,
            server,
            action,
        });
        self
    }

    /// The acceptance scenario: server `down_server` hard-down from the
    /// start, 1-in-`one_in` packet loss on every other server.
    pub fn outage_with_loss(down_server: usize, n_servers: usize, one_in: u64) -> Self {
        let mut script = FaultScript::new().at(0, down_server, FaultAction::ServerDown);
        for s in (0..n_servers).filter(|&s| s != down_server) {
            script = script.at(0, s, FaultAction::PacketLoss { one_in });
        }
        script
    }

    /// A rolling restart: each server in turn is down for `hold` logins,
    /// back-to-back, starting at login `start`.
    pub fn rolling_restart(n_servers: usize, start: usize, hold: usize) -> Self {
        let mut script = FaultScript::new();
        for s in 0..n_servers {
            let t = start + s * hold;
            script =
                script
                    .at(t, s, FaultAction::ServerDown)
                    .at(t + hold, s, FaultAction::ServerUp);
        }
        script
    }

    /// Crash-and-recover the OTP server every `every` logins over a
    /// `logins`-long stream, starting at login `every` (never at 0, so
    /// the first crash interrupts an in-flight stream rather than an
    /// empty store).
    pub fn periodic_otp_crashes(every: usize, logins: usize) -> Self {
        let mut script = FaultScript::new();
        let mut t = every.max(1);
        while t < logins {
            script = script.at(t, 0, FaultAction::OtpCrashRestart);
            t += every.max(1);
        }
        script
    }
}

/// Scenario parameters.
#[derive(Debug, Clone)]
pub struct ChaosParams {
    /// RADIUS fleet size.
    pub radius_servers: usize,
    /// Logins in the stream.
    pub logins: usize,
    /// Distinct paired users cycled round-robin through the stream.
    pub users: usize,
    /// Times a denied user re-dials before counting an eventual failure.
    pub max_redials: usize,
    /// Retry budget handed to every node's RADIUS client.
    pub retry: RetryPolicy,
    /// Breaker tuning handed to every node's RADIUS client.
    pub breaker: BreakerConfig,
    /// Master seed.
    pub seed: u64,
    /// Give the OTP server a durable (fault-injectable, in-memory)
    /// storage backend so [`FaultAction::OtpCrashRestart`] events can
    /// kill and recover it mid-stream.
    pub durable_otp: bool,
    /// Compaction cadence for the durable OTP server (appends per
    /// snapshot). Ignored unless `durable_otp` is set.
    pub otp_snapshot_every: u64,
}

impl Default for ChaosParams {
    fn default() -> Self {
        ChaosParams {
            radius_servers: 3,
            logins: 120,
            users: 4,
            max_redials: 3,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            seed: 0xc4a05,
            durable_otp: false,
            otp_snapshot_every: 256,
        }
    }
}

/// Outcome tallies for the logins attempted while one fault kind was
/// active, so a mixed script can be read apart: did the garble storm or
/// the latency spike cost the re-dials?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultKindStats {
    /// Logins attempted while this kind was active.
    pub logins: usize,
    /// Of those, granted on the first dial.
    pub first_try_successes: usize,
    /// Of those, granted within the re-dial budget.
    pub eventual_successes: usize,
    /// Re-dials spent on those logins.
    pub redials: usize,
}

/// What a scenario run produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Logins attempted.
    pub logins: usize,
    /// Logins granted on the first dial.
    pub first_try_successes: usize,
    /// Logins granted within `max_redials` re-dials (includes first-try).
    pub eventual_successes: usize,
    /// Logins still denied after all re-dials.
    pub eventual_failures: usize,
    /// Total re-dials across the stream.
    pub redials: usize,
    /// Per-server health from the login node's RADIUS client: attempts,
    /// failures, breaker-skipped sends, breaker state.
    pub health: Vec<ServerHealthSnapshot>,
    /// OTP-server crash/recover cycles the script fired.
    pub otp_crashes: usize,
    /// WAL records replayed across all OTP recoveries (0 without
    /// durable storage).
    pub otp_records_replayed: u64,
    /// Bytes dropped truncating torn WAL tails during OTP recoveries.
    pub otp_truncated_bytes: u64,
    /// Per-fault-kind outcome breakdown, in a fixed kind order; only
    /// kinds that were active for at least one login appear. A login
    /// under two concurrent kinds is counted under both.
    pub by_fault_kind: Vec<(&'static str, FaultKindStats)>,
    /// Point-in-time snapshot of the center-wide metrics registry taken
    /// at the end of the run — the full auth-path counters and latency
    /// histograms behind the availability headline. Not part of the
    /// [`Display`](std::fmt::Display) output: wall-clock histograms
    /// would break byte-identical reports.
    pub metrics: MetricsSnapshot,
    /// The alert engine's full transition timeline (`"{at} {rule}
    /// {from}->{to}"` lines, virtual seconds). Deterministic, so it IS
    /// part of the Display output and of byte-identical comparisons.
    pub alerts: Vec<String>,
    /// The security-event ring at the end of the run, rendered one event
    /// per line (virtual timestamps + trace ids — deterministic).
    pub security_events: Vec<String>,
}

impl ChaosReport {
    /// Fraction of logins that eventually succeeded.
    pub fn availability(&self) -> f64 {
        if self.logins == 0 {
            return 1.0;
        }
        self.eventual_successes as f64 / self.logins as f64
    }

    /// Fraction of logins that succeeded without a re-dial.
    pub fn first_try_availability(&self) -> f64 {
        if self.logins == 0 {
            return 1.0;
        }
        self.first_try_successes as f64 / self.logins as f64
    }

    /// Failovers observed by the client (attempts beyond the first within
    /// one request).
    pub fn failovers(&self) -> u64 {
        let total_attempts: u64 = self.health.iter().map(|h| h.attempts).sum();
        let successes: u64 = self.health.iter().map(|h| h.successes).sum();
        total_attempts.saturating_sub(successes)
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos: {}/{} logins eventually succeeded ({:.1}% availability, {:.1}% first-try), {} re-dials",
            self.eventual_successes,
            self.logins,
            100.0 * self.availability(),
            100.0 * self.first_try_availability(),
            self.redials,
        )?;
        for h in &self.health {
            writeln!(
                f,
                "  {}: {} attempts, {} ok, {} failed, {} skipped by breaker ({:?}, opened {}x)",
                h.name, h.attempts, h.successes, h.failures, h.skipped, h.breaker, h.breaker_opens,
            )?;
        }
        if self.otp_crashes > 0 {
            writeln!(
                f,
                "  otp: {} crash/recover cycles, {} WAL records replayed, {} torn-tail bytes dropped",
                self.otp_crashes, self.otp_records_replayed, self.otp_truncated_bytes,
            )?;
        }
        for (kind, s) in &self.by_fault_kind {
            writeln!(
                f,
                "  fault[{kind}]: {} logins, {} first-try, {} eventual, {} re-dials",
                s.logins, s.first_try_successes, s.eventual_successes, s.redials,
            )?;
        }
        for line in &self.alerts {
            writeln!(f, "  alert: {line}")?;
        }
        for line in &self.security_events {
            writeln!(f, "  event: {line}")?;
        }
        Ok(())
    }
}

/// A user's token-code generator, shared with the login profile.
type TokenFn = Arc<dyn Fn(u64) -> Option<String> + Send + Sync>;

/// Builds the center, enrolls the users, replays the script.
pub struct ChaosRunner {
    /// The center under test (single login node, so the health stats have
    /// one unambiguous owner).
    pub center: Arc<Center>,
    /// The OTP server's storage backend when built with
    /// [`ChaosParams::durable_otp`] (inspect WAL/snapshot state or dial
    /// in storage faults via its plan).
    pub otp_backend: Option<Arc<MemoryBackend>>,
    params: ChaosParams,
    devices: Vec<(String, TokenFn)>,
}

impl ChaosRunner {
    /// Stand up a full-enforcement center with `params.users` soft-token
    /// users, ready to take a login stream.
    pub fn new(params: ChaosParams) -> Self {
        let otp_backend = params.durable_otp.then(MemoryBackend::healthy);
        let center = Center::new(CenterConfig {
            radius_servers: params.radius_servers,
            login_nodes: vec!["login1".into()],
            enforcement: EnforcementMode::Full,
            seed: params.seed,
            retry: params.retry.clone(),
            breaker: params.breaker,
            otp_storage: otp_backend
                .as_ref()
                .map(|b| Arc::clone(b) as Arc<dyn StorageBackend>),
            otp_snapshot_every: params.otp_snapshot_every,
            ..CenterConfig::default()
        });
        let mut devices = Vec::new();
        for i in 0..params.users {
            let name = format!("chaos{i:02}");
            center.create_user(&name, &format!("{name}@utexas.edu"), &format!("{name}-pw"));
            let token = center.pair_soft(&name);
            devices.push((
                name,
                Arc::new(move |now| Some(token.displayed_code(now))) as TokenFn,
            ));
        }
        ChaosRunner {
            center,
            otp_backend,
            params,
            devices,
        }
    }

    fn apply(&self, event: &FaultEvent) {
        if event.action == FaultAction::OtpCrashRestart {
            self.center
                .crash_otp_server()
                .expect("OTP server recovers from durable state");
            return;
        }
        let faults = &self.center.radius_faults[event.server];
        match event.action {
            FaultAction::ServerDown => faults.set_down(true),
            FaultAction::ServerUp => faults.set_down(false),
            FaultAction::PacketLoss { one_in } => faults.set_drop_every(one_in),
            FaultAction::GarbleStorm { one_in } => faults.set_garble_every(one_in),
            FaultAction::Flap { period } => faults.set_flap_period(period),
            FaultAction::LatencySpike { extra_us } => faults.set_extra_latency_us(extra_us),
            FaultAction::OtpCrashRestart => unreachable!("handled above"),
        }
    }

    /// Replay `script` under a steady login stream and report.
    pub fn run(self, script: &FaultScript) -> ChaosReport {
        // The per-kind breakdown's fixed presentation order.
        const KIND_ORDER: [&str; 6] = [
            "outage",
            "packet_loss",
            "garble",
            "flap",
            "latency_spike",
            "otp_crash",
        ];
        let mut report = ChaosReport {
            logins: self.params.logins,
            first_try_successes: 0,
            eventual_successes: 0,
            eventual_failures: 0,
            redials: 0,
            health: Vec::new(),
            otp_crashes: 0,
            otp_records_replayed: 0,
            otp_truncated_bytes: 0,
            by_fault_kind: Vec::new(),
            metrics: MetricsSnapshot::default(),
            alerts: Vec::new(),
            security_events: Vec::new(),
        };
        // Mirror of each server's fault plane, so every login can be
        // attributed to the fault kinds active while it dialed.
        let n = self.params.radius_servers;
        let (mut down, mut loss) = (vec![false; n], vec![0u64; n]);
        let (mut garble, mut flap, mut latency) = (vec![0u64; n], vec![0u64; n], vec![0u64; n]);
        let mut kind_stats: std::collections::HashMap<&'static str, FaultKindStats> =
            std::collections::HashMap::new();
        let source_ip = Ipv4Addr::new(70, 112, 50, 3); // external: MFA enforced
        for login in 0..self.params.logins {
            let mut otp_crashed_now = false;
            for event in script.events.iter().filter(|e| e.at_login == login) {
                self.apply(event);
                self.center
                    .metrics()
                    .counter(
                        "hpcmfa_chaos_faults_total",
                        &[("kind", event.action.kind())],
                    )
                    .inc();
                match event.action {
                    FaultAction::ServerDown => down[event.server] = true,
                    FaultAction::ServerUp => down[event.server] = false,
                    FaultAction::PacketLoss { one_in } => loss[event.server] = one_in,
                    FaultAction::GarbleStorm { one_in } => garble[event.server] = one_in,
                    FaultAction::Flap { period } => flap[event.server] = period,
                    FaultAction::LatencySpike { extra_us } => latency[event.server] = extra_us,
                    FaultAction::OtpCrashRestart => {
                        report.otp_crashes += 1;
                        otp_crashed_now = true;
                    }
                }
            }
            let mut active: Vec<&'static str> = Vec::new();
            if down.iter().any(|&d| d) {
                active.push("outage");
            }
            if loss.iter().any(|&v| v > 0) {
                active.push("packet_loss");
            }
            if garble.iter().any(|&v| v > 0) {
                active.push("garble");
            }
            if flap.iter().any(|&v| v > 0) {
                active.push("flap");
            }
            if latency.iter().any(|&v| v > 0) {
                active.push("latency_spike");
            }
            if otp_crashed_now {
                active.push("otp_crash");
            }
            let (user, device) = &self.devices[login % self.devices.len()];
            let device = Arc::clone(device);
            let profile = ClientProfile::interactive_user(user, source_ip, &format!("{user}-pw"))
                .with_token(TokenSource::Device(device));
            let mut granted = false;
            let mut dials_spent = 0;
            for dial in 0..=self.params.max_redials {
                // Step past the TOTP window so a retry (or the next login
                // by this user) is a fresh code, not a replay.
                self.center.clock.advance(30);
                dials_spent = dial;
                if self.center.ssh(0, &profile).granted {
                    granted = true;
                    break;
                }
            }
            let first_try = granted && dials_spent == 0;
            if first_try {
                report.first_try_successes += 1;
            }
            report.redials += dials_spent;
            if granted {
                report.eventual_successes += 1;
            } else {
                report.eventual_failures += 1;
            }
            for kind in active {
                let s = kind_stats.entry(kind).or_default();
                s.logins += 1;
                if first_try {
                    s.first_try_successes += 1;
                }
                if granted {
                    s.eventual_successes += 1;
                }
                s.redials += dials_spent;
            }
        }
        report.by_fault_kind = KIND_ORDER
            .iter()
            .filter_map(|k| kind_stats.get(k).map(|s| (*k, *s)))
            .collect();
        report.health = self.center.radius_health(0);
        if let Some(counters) = self.center.linotp.durability_counters() {
            report.otp_records_replayed = counters.records_replayed;
            report.otp_truncated_bytes = counters.truncated_bytes;
        }
        report.metrics = self.center.metrics_snapshot();
        report.alerts = self.center.alerts.timeline_lines();
        report.security_events = self
            .center
            .metrics()
            .security_events()
            .all()
            .iter()
            .map(|e| e.to_string())
            .collect();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmfa_radius::breaker::BreakerState;

    fn small(logins: usize) -> ChaosParams {
        ChaosParams {
            logins,
            users: 3,
            seed: 11,
            ..ChaosParams::default()
        }
    }

    #[test]
    fn control_run_is_perfect() {
        let report = ChaosRunner::new(small(20)).run(&FaultScript::new());
        assert_eq!(report.eventual_successes, 20);
        assert_eq!(report.first_try_successes, 20);
        assert_eq!(report.redials, 0);
        assert!(report
            .health
            .iter()
            .all(|h| h.breaker == BreakerState::Closed && h.skipped == 0));
    }

    #[test]
    fn outage_with_loss_survives_with_full_availability() {
        let script = FaultScript::outage_with_loss(0, 3, 5);
        let report = ChaosRunner::new(small(60)).run(&script);
        assert_eq!(report.availability(), 1.0, "{report}");
        // The breaker quarantined the dead server after the threshold.
        assert!(report.health[0].skipped > 0, "{report}");
        assert!(report.health[0].breaker_opens >= 1, "{report}");
    }

    #[test]
    fn rolling_restart_never_loses_logins() {
        let script = FaultScript::rolling_restart(3, 5, 10);
        let report = ChaosRunner::new(small(50)).run(&script);
        assert_eq!(report.availability(), 1.0, "{report}");
        // Every server took some traffic: the restart rolled, it didn't
        // blackhole.
        assert!(report.health.iter().all(|h| h.successes > 0), "{report}");
    }

    #[test]
    fn garble_storm_and_flapping_fail_over() {
        let script = FaultScript::new()
            .at(0, 0, FaultAction::GarbleStorm { one_in: 1 })
            .at(0, 1, FaultAction::Flap { period: 4 })
            .at(20, 0, FaultAction::GarbleStorm { one_in: 0 });
        let report = ChaosRunner::new(small(40)).run(&script);
        assert_eq!(report.availability(), 1.0, "{report}");
        assert!(report.health[0].failures > 0, "garbles counted: {report}");
    }

    #[test]
    fn latency_spike_is_charged_not_fatal() {
        let script = FaultScript::new().at(0, 2, FaultAction::LatencySpike { extra_us: 40_000 });
        let runner = ChaosRunner::new(small(15));
        let center = Arc::clone(&runner.center);
        let report = runner.run(&script);
        assert_eq!(report.availability(), 1.0, "{report}");
        assert!(
            center.radius_faults[2]
                .total_latency_us
                .load(std::sync::atomic::Ordering::SeqCst)
                > 0
        );
    }

    #[test]
    fn total_outage_fails_closed_then_recovers() {
        let script = FaultScript::new()
            .at(5, 0, FaultAction::ServerDown)
            .at(5, 1, FaultAction::ServerDown)
            .at(5, 2, FaultAction::ServerDown)
            .at(10, 0, FaultAction::ServerUp)
            .at(10, 1, FaultAction::ServerUp)
            .at(10, 2, FaultAction::ServerUp);
        let mut params = small(20);
        params.max_redials = 0; // one dial per login: outage shows up crisply
        let report = ChaosRunner::new(params).run(&script);
        assert_eq!(report.eventual_failures, 5, "{report}");
        assert_eq!(report.eventual_successes, 15, "{report}");
    }

    #[test]
    fn per_fault_kind_breakdown_attributes_logins() {
        // Garble on for the first 20 logins, latency spike for the last 10;
        // the middle 10 run clean.
        let script = FaultScript::new()
            .at(0, 0, FaultAction::GarbleStorm { one_in: 1 })
            .at(20, 0, FaultAction::GarbleStorm { one_in: 0 })
            .at(30, 2, FaultAction::LatencySpike { extra_us: 40_000 });
        let report = ChaosRunner::new(small(40)).run(&script);
        let kinds: std::collections::HashMap<_, _> = report.by_fault_kind.iter().copied().collect();
        assert_eq!(kinds["garble"].logins, 20, "{report}");
        assert_eq!(kinds["latency_spike"].logins, 10, "{report}");
        assert!(!kinds.contains_key("outage"), "{report}");
        // The fault applications themselves were counted in the registry.
        assert_eq!(
            report
                .metrics
                .counter("hpcmfa_chaos_faults_total{kind=\"garble\"}"),
            2
        );
        assert_eq!(
            report
                .metrics
                .counter("hpcmfa_chaos_faults_total{kind=\"latency_spike\"}"),
            1
        );
        // The snapshot carries the full auth path, not just chaos counters.
        assert!(
            report
                .metrics
                .counter_family("hpcmfa_radius_requests_total")
                >= 40
        );
        assert!(
            report
                .metrics
                .histogram_family("hpcmfa_radius_request_duration_us")
                .count()
                >= 40
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let script = FaultScript::outage_with_loss(1, 3, 4);
        let a = ChaosRunner::new(small(30)).run(&script);
        let b = ChaosRunner::new(small(30)).run(&script);
        assert_eq!(format!("{a}"), format!("{b}"));
    }

    fn durable(logins: usize) -> ChaosParams {
        ChaosParams {
            durable_otp: true,
            otp_snapshot_every: 16,
            ..small(logins)
        }
    }

    #[test]
    fn otp_crash_restart_mid_stream_keeps_full_availability() {
        let script = FaultScript::periodic_otp_crashes(10, 40);
        let runner = ChaosRunner::new(durable(40));
        let report = runner.run(&script);
        assert_eq!(report.otp_crashes, 3, "{report}");
        assert_eq!(report.availability(), 1.0, "{report}");
        assert!(
            report.otp_records_replayed > 0,
            "state came back from the WAL: {report}"
        );
    }

    #[test]
    fn otp_crashes_stack_with_radius_faults() {
        let script = FaultScript::outage_with_loss(0, 3, 6)
            .at(8, 0, FaultAction::OtpCrashRestart)
            .at(16, 0, FaultAction::OtpCrashRestart);
        let report = ChaosRunner::new(durable(30)).run(&script);
        assert_eq!(report.otp_crashes, 2, "{report}");
        assert_eq!(report.availability(), 1.0, "{report}");
    }

    #[test]
    fn otp_crash_with_flaky_fsync_still_recovers() {
        let runner = ChaosRunner::new(durable(30));
        runner
            .otp_backend
            .as_ref()
            .expect("durable runner has a backend")
            .plan()
            .set_fsync_fail_every(7);
        let report = runner.run(&FaultScript::periodic_otp_crashes(10, 30));
        assert_eq!(report.otp_crashes, 2, "{report}");
        // A failed fsync denies that dial (fail-safe), but re-dials with a
        // fresh code make the stream converge.
        assert!(report.availability() >= 0.9, "{report}");
        assert_eq!(
            report.eventual_successes + report.eventual_failures,
            report.logins
        );
    }

    #[test]
    fn durable_chaos_deterministic_given_seed() {
        let script = FaultScript::periodic_otp_crashes(7, 30);
        let a = ChaosRunner::new(durable(30)).run(&script);
        let b = ChaosRunner::new(durable(30)).run(&script);
        assert_eq!(format!("{a}"), format!("{b}"));
    }
}
