//! RADIUS attribute TLVs (RFC 2865 §5).
//!
//! Two representations coexist:
//!
//! * [`Attribute`] — owned value bytes, used to *construct* packets
//!   (clients building requests, handlers building replies).
//! * [`AttrView`] — a borrowed `&[u8]` into the receive buffer, used to
//!   *decode* on the ingest hot loop without per-attribute heap
//!   allocations (see [`crate::packet::PacketView`]).

/// The attribute types this infrastructure uses.
///
/// Numeric values are the IANA assignments so the wire format
/// interoperates with real RADIUS tooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeType {
    /// 1 — the authenticating login name.
    UserName,
    /// 2 — hidden password / token code.
    UserPassword,
    /// 4 — NAS (login node) IPv4 address.
    NasIpAddress,
    /// 18 — text shown to the user (prompts, "SMS already sent", countdown
    /// notices).
    ReplyMessage,
    /// 24 — opaque server state for challenge–response round trips.
    State,
    /// 26 — vendor-specific payload; this deployment uses it to carry the
    /// request trace id across hops (see [`crate::tracewire`]).
    VendorSpecific,
    /// 31 — the remote client address, used for exemption decisions.
    CallingStationId,
    /// 32 — NAS identifier string.
    NasIdentifier,
    /// 33 — proxy bookkeeping, appended/removed by each proxy hop.
    ProxyState,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl AttributeType {
    /// IANA attribute number.
    pub fn code(self) -> u8 {
        match self {
            AttributeType::UserName => 1,
            AttributeType::UserPassword => 2,
            AttributeType::NasIpAddress => 4,
            AttributeType::ReplyMessage => 18,
            AttributeType::State => 24,
            AttributeType::VendorSpecific => 26,
            AttributeType::CallingStationId => 31,
            AttributeType::NasIdentifier => 32,
            AttributeType::ProxyState => 33,
            AttributeType::Other(c) => c,
        }
    }

    /// Map a wire code back to a type.
    pub fn from_code(code: u8) -> Self {
        match code {
            1 => AttributeType::UserName,
            2 => AttributeType::UserPassword,
            4 => AttributeType::NasIpAddress,
            18 => AttributeType::ReplyMessage,
            24 => AttributeType::State,
            26 => AttributeType::VendorSpecific,
            31 => AttributeType::CallingStationId,
            32 => AttributeType::NasIdentifier,
            33 => AttributeType::ProxyState,
            other => AttributeType::Other(other),
        }
    }
}

/// One attribute: type plus raw value bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute type.
    pub ty: AttributeType,
    /// Raw value (≤ 253 bytes on the wire).
    pub value: Vec<u8>,
}

impl Attribute {
    /// Construct from type and raw bytes.
    pub fn new(ty: AttributeType, value: impl Into<Vec<u8>>) -> Self {
        Attribute {
            ty,
            value: value.into(),
        }
    }

    /// Text-valued attribute helper.
    pub fn text(ty: AttributeType, s: &str) -> Self {
        Attribute::new(ty, s.as_bytes().to_vec())
    }

    /// Value as UTF-8 text, if valid.
    pub fn as_text(&self) -> Option<&str> {
        std::str::from_utf8(&self.value).ok()
    }

    /// Encoded length on the wire (2-byte header + value).
    pub fn wire_len(&self) -> usize {
        2 + self.value.len()
    }

    /// Append the TLV encoding to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        debug_assert!(self.value.len() <= 253, "attribute value too long");
        buf.push(self.ty.code());
        buf.push(self.wire_len() as u8);
        buf.extend_from_slice(&self.value);
    }

    /// The borrowed view of this attribute.
    pub fn as_view(&self) -> AttrView<'_> {
        AttrView {
            ty: self.ty,
            value: &self.value,
        }
    }
}

/// A borrowed attribute: type plus a slice into the datagram buffer.
///
/// Decoding a packet as [`PacketView`](crate::packet::PacketView) yields
/// these without copying the value bytes — the zero-copy half of the
/// ingest path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrView<'a> {
    /// Attribute type.
    pub ty: AttributeType,
    /// Raw value bytes, borrowed from the receive buffer.
    pub value: &'a [u8],
}

impl<'a> AttrView<'a> {
    /// Value as UTF-8 text, if valid.
    pub fn as_text(&self) -> Option<&'a str> {
        std::str::from_utf8(self.value).ok()
    }

    /// Encoded length on the wire (2-byte header + value).
    pub fn wire_len(&self) -> usize {
        2 + self.value.len()
    }

    /// Copy into an owned [`Attribute`].
    pub fn to_owned(&self) -> Attribute {
        Attribute::new(self.ty, self.value.to_vec())
    }

    /// Append the TLV encoding to `buf` (same layout as
    /// [`Attribute::encode`], no intermediate allocation).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        debug_assert!(self.value.len() <= 253, "attribute value too long");
        buf.push(self.ty.code());
        buf.push(self.wire_len() as u8);
        buf.extend_from_slice(self.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for code in 0u8..=255 {
            assert_eq!(AttributeType::from_code(code).code(), code);
        }
    }

    #[test]
    fn known_codes() {
        assert_eq!(AttributeType::UserName.code(), 1);
        assert_eq!(AttributeType::UserPassword.code(), 2);
        assert_eq!(AttributeType::ReplyMessage.code(), 18);
        assert_eq!(AttributeType::State.code(), 24);
        assert_eq!(AttributeType::VendorSpecific.code(), 26);
        assert_eq!(AttributeType::CallingStationId.code(), 31);
        assert_eq!(AttributeType::ProxyState.code(), 33);
    }

    #[test]
    fn encode_layout() {
        let a = Attribute::text(AttributeType::UserName, "alice");
        let mut buf = Vec::new();
        a.encode(&mut buf);
        assert_eq!(&buf[..], &[1, 7, b'a', b'l', b'i', b'c', b'e']);
        assert_eq!(a.wire_len(), 7);
    }

    #[test]
    fn view_encodes_identically_to_owned() {
        let a = Attribute::text(AttributeType::ReplyMessage, "Enter token:");
        let v = a.as_view();
        assert_eq!(v.as_text(), Some("Enter token:"));
        assert_eq!(v.wire_len(), a.wire_len());
        let (mut owned, mut borrowed) = (Vec::new(), Vec::new());
        a.encode(&mut owned);
        v.encode(&mut borrowed);
        assert_eq!(owned, borrowed);
        assert_eq!(v.to_owned(), a);
    }

    #[test]
    fn text_accessor() {
        let a = Attribute::text(AttributeType::ReplyMessage, "Enter token:");
        assert_eq!(a.as_text(), Some("Enter token:"));
        let b = Attribute::new(AttributeType::State, vec![0xff, 0xfe]);
        assert_eq!(b.as_text(), None);
    }
}
