//! SSH connection multiplexing (`ControlMaster`).
//!
//! "Perhaps most popular of all was the adoption of SSH multiplexing which
//! allowed for one connection to be established via MFA and subsequent
//! connections to the same host to utilize the already existing SSH
//! connection" (§5). One authenticated master carries many channels; no
//! further token prompts until the master closes.

use crate::client::ClientProfile;
use crate::daemon::{SessionReport, SshDaemon};

/// A client-side multiplexed connection to one daemon.
pub struct MultiplexedConnection<'a> {
    daemon: &'a SshDaemon,
    master: Option<SessionReport>,
    channels_opened: u32,
}

/// Errors from channel operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MuxError {
    /// The master authentication failed.
    MasterAuthFailed,
    /// No master is established.
    NoMaster,
}

impl std::fmt::Display for MuxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MuxError::MasterAuthFailed => write!(f, "master authentication failed"),
            MuxError::NoMaster => write!(f, "no master connection"),
        }
    }
}

impl std::error::Error for MuxError {}

impl<'a> MultiplexedConnection<'a> {
    /// Prepare a multiplexer against `daemon` (no connection yet).
    pub fn new(daemon: &'a SshDaemon) -> Self {
        MultiplexedConnection {
            daemon,
            master: None,
            channels_opened: 0,
        }
    }

    /// Establish the master connection — the one full MFA authentication.
    pub fn establish(&mut self, profile: &ClientProfile) -> Result<&SessionReport, MuxError> {
        let report = self.daemon.connect(profile);
        if !report.granted {
            return Err(MuxError::MasterAuthFailed);
        }
        self.master = Some(report);
        Ok(self.master.as_ref().unwrap())
    }

    /// Open a channel over the existing master: no authentication at all.
    pub fn open_channel(&mut self) -> Result<u32, MuxError> {
        if self.master.is_none() {
            return Err(MuxError::NoMaster);
        }
        self.channels_opened += 1;
        Ok(self.channels_opened)
    }

    /// Whether a master is up.
    pub fn is_established(&self) -> bool {
        self.master.is_some()
    }

    /// Channels opened so far.
    pub fn channels(&self) -> u32 {
        self.channels_opened
    }

    /// Close the master; further channels require re-authentication.
    pub fn close(&mut self) {
        self.master = None;
        self.channels_opened = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authlog::AuthLog;
    use crate::client::TokenSource;
    use hpcmfa_otp::clock::SimClock;
    use hpcmfa_pam::conv::Prompt;
    use hpcmfa_pam::stack::{ControlFlag, PamStack};
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    /// Stack demanding a fixed token.
    fn token_stack() -> Arc<PamStack> {
        struct TokenPrompt;
        impl hpcmfa_pam::stack::PamModule for TokenPrompt {
            fn name(&self) -> &'static str {
                "fake_token"
            }
            fn authenticate(
                &self,
                ctx: &mut hpcmfa_pam::context::PamContext<'_>,
            ) -> hpcmfa_pam::stack::PamResult {
                match ctx.conv.converse(&Prompt::EchoOff("TACC Token:".into())) {
                    Ok(code) if code == "111111" => hpcmfa_pam::stack::PamResult::Success,
                    Ok(_) => hpcmfa_pam::stack::PamResult::AuthErr,
                    Err(_) => hpcmfa_pam::stack::PamResult::Abort,
                }
            }
        }
        let mut s = PamStack::new();
        s.push(ControlFlag::Required, Arc::new(TokenPrompt));
        Arc::new(s)
    }

    fn daemon() -> SshDaemon {
        SshDaemon::new(
            "login1",
            token_stack(),
            AuthLog::new(),
            Arc::new(SimClock::at(0)),
        )
    }

    fn profile(code: &str) -> ClientProfile {
        ClientProfile::interactive_user("alice", Ipv4Addr::new(8, 8, 8, 8), "pw")
            .with_token(TokenSource::Fixed(code.into()))
    }

    #[test]
    fn one_auth_many_channels() {
        let d = daemon();
        let mut mux = MultiplexedConnection::new(&d);
        mux.establish(&profile("111111")).unwrap();
        for i in 1..=20 {
            assert_eq!(mux.open_channel().unwrap(), i);
        }
        // Exactly one MFA prompt total across 20 channels.
        assert_eq!(
            d.authlog()
                .count_where(|e| e.method == crate::authlog::AuthMethod::KeyboardInteractive),
            1
        );
    }

    #[test]
    fn channel_without_master_fails() {
        let d = daemon();
        let mut mux = MultiplexedConnection::new(&d);
        assert_eq!(mux.open_channel(), Err(MuxError::NoMaster));
    }

    #[test]
    fn failed_master_auth_reported() {
        let d = daemon();
        let mut mux = MultiplexedConnection::new(&d);
        assert_eq!(
            mux.establish(&profile("999999")).unwrap_err(),
            MuxError::MasterAuthFailed
        );
        assert!(!mux.is_established());
    }

    #[test]
    fn close_requires_reauthentication() {
        let d = daemon();
        let mut mux = MultiplexedConnection::new(&d);
        mux.establish(&profile("111111")).unwrap();
        mux.open_channel().unwrap();
        mux.close();
        assert_eq!(mux.open_channel(), Err(MuxError::NoMaster));
        mux.establish(&profile("111111")).unwrap();
        assert_eq!(mux.open_channel().unwrap(), 1);
    }
}
