//! Cross-crate integration: the full §3 architecture exercised through its
//! public surfaces — portal pairing, SSH entry, enforcement modes,
//! exemptions, lockout, and unpairing.

use rand::rngs::StdRng;
use rand::SeedableRng;
use securing_hpc::core::center::{Center, CenterConfig};
use securing_hpc::core::Clock as _;
use securing_hpc::directory::identity::PairingMethod;
use securing_hpc::otp::device::HardTokenBatch;
use securing_hpc::otpserver::sms::SmsProvider;
use securing_hpc::pam::modules::token::EnforcementMode;
use securing_hpc::ssh::client::{ClientProfile, TokenSource};
use std::net::Ipv4Addr;
use std::sync::Arc;

const OUTSIDE: Ipv4Addr = Ipv4Addr::new(70, 112, 9, 9);

fn full_center() -> Arc<Center> {
    let c = Center::new(CenterConfig::default());
    c.set_enforcement(EnforcementMode::Full);
    c
}

#[test]
fn every_token_type_can_log_in() {
    let c = full_center();
    let mut rng = StdRng::seed_from_u64(1);

    // Soft.
    c.create_user("soft_user", "s@x.edu", "soft-pw");
    let soft = c.pair_soft("soft_user");
    let p = ClientProfile::interactive_user("soft_user", OUTSIDE, "soft-pw").with_token(
        TokenSource::device(move |now| Some(soft.displayed_code(now))),
    );
    assert!(c.ssh(0, &p).granted);

    // Hard.
    c.create_user("hard_user", "h@x.edu", "hard-pw");
    let batch = HardTokenBatch::manufacture("FOB", 3, &mut rng);
    c.pair_hard("hard_user", &batch, "FOB-0002");
    let fob = batch.by_serial("FOB-0002").unwrap().clone();
    let p = ClientProfile::interactive_user("hard_user", OUTSIDE, "hard-pw")
        .with_token(TokenSource::device(move |now| fob.press_button(now)));
    assert!(c.ssh(0, &p).granted);

    // SMS.
    c.create_user("sms_user", "m@x.edu", "sms-pw");
    let phone = c.pair_sms("sms_user", "5125550001");
    let twilio = Arc::clone(&c.twilio);
    let clock = c.clock.clone();
    let p = ClientProfile::interactive_user("sms_user", OUTSIDE, "sms-pw").with_token(
        TokenSource::device(move |_| {
            clock.advance(10);
            twilio
                .inbox(&phone, clock.now())
                .last()
                .map(|m| m.body.rsplit(' ').next().unwrap().to_string())
        }),
    );
    let r = c.ssh(1, &p);
    assert!(r.granted, "{:?}", r.prompts);
    assert!(r.prompts.iter().any(|pr| pr.contains("SMS")));

    // Training (static).
    c.create_user("train_user", "t@x.edu", "train-pw");
    let code = c.enroll_training_account("train_user");
    let p = ClientProfile::interactive_user("train_user", OUTSIDE, "train-pw")
        .with_token(TokenSource::Fixed(code));
    assert!(c.ssh(0, &p).granted);

    // All four pairings visible in the identity breakdown.
    let b = c.identity.pairing_breakdown().unwrap();
    assert!(b.iter().all(|&f| f > 0.0), "all four types present: {b:?}");
}

#[test]
fn enforcement_mode_lifecycle_matches_rollout_phases() {
    let c = Center::new(CenterConfig::default());
    c.create_user("alice", "a@x.edu", "alice-pw");
    let unpaired = ClientProfile::interactive_user("alice", OUTSIDE, "alice-pw");

    // Phase 0/"off": single factor.
    c.set_enforcement(EnforcementMode::Off);
    let r = c.ssh(0, &unpaired);
    assert!(r.granted && !r.mfa_prompted);

    // Phase 1/"paired": unpaired users pass silently.
    c.set_enforcement(EnforcementMode::Paired);
    let r = c.ssh(0, &unpaired);
    assert!(r.granted && !r.mfa_prompted);

    // Phase 2/"countdown": unpaired users must acknowledge the notice.
    c.set_enforcement(EnforcementMode::Countdown {
        deadline: securing_hpc::otp::date::Date::new(2016, 10, 4),
        url: "https://portal/mfa".into(),
    });
    let r = c.ssh(0, &unpaired);
    assert!(r.granted);
    assert!(
        r.prompts.iter().any(|p| p.contains("mandatory")),
        "countdown notice shown: {:?}",
        r.prompts
    );

    // Phase 3/"full": unpaired users are locked out.
    c.set_enforcement(EnforcementMode::Full);
    let r = c.ssh(0, &unpaired);
    assert!(!r.granted);

    // Pairing restores access.
    let device = c.pair_soft("alice");
    let p = ClientProfile::interactive_user("alice", OUTSIDE, "alice-pw").with_token(
        TokenSource::device(move |now| Some(device.displayed_code(now))),
    );
    assert!(c.ssh(0, &p).granted);
}

#[test]
fn unpairing_through_portal_revokes_access() {
    let c = full_center();
    c.create_user("alice", "a@x.edu", "alice-pw");
    let device = c.pair_soft("alice");
    let dev2 = device.clone();
    let p = ClientProfile::interactive_user("alice", OUTSIDE, "alice-pw").with_token(
        TokenSource::device(move |now| Some(device.displayed_code(now))),
    );
    assert!(c.ssh(0, &p).granted);

    // Unpair with possession proof.
    c.clock.advance(30);
    let current = dev2.displayed_code(c.clock.now());
    c.portal.remove_pairing("alice", &current).unwrap();
    assert_eq!(c.identity.get("alice").unwrap().pairing, None);

    // The old device no longer logs in (no pairing, full mode).
    c.clock.advance(30);
    assert!(!c.ssh(0, &p).granted);
}

#[test]
fn email_unpair_after_lost_phone() {
    let c = full_center();
    c.create_user("bob", "bob@x.edu", "bob-pw");
    c.pair_soft("bob");
    // Phone is gone: out-of-band flow.
    let link = c.portal.request_email_unpair("bob").unwrap();
    assert!(link.url.contains("token="));
    let who = c.portal.complete_email_unpair(&link.url).unwrap();
    assert_eq!(who, "bob");
    assert_eq!(c.identity.get("bob").unwrap().pairing, None);
    // Re-pairing works afterwards (new secret).
    let device = c.pair_soft("bob");
    let p = ClientProfile::interactive_user("bob", OUTSIDE, "bob-pw").with_token(
        TokenSource::device(move |now| Some(device.displayed_code(now))),
    );
    assert!(c.ssh(0, &p).granted);
    assert_eq!(
        c.identity.get("bob").unwrap().pairing,
        Some(PairingMethod::Soft)
    );
}

#[test]
fn lockout_threshold_through_the_full_stack() {
    let c = full_center();
    c.create_user("victim", "v@x.edu", "victim-pw");
    let device = c.pair_soft("victim");

    // An attacker who knows the password hammers wrong codes.
    let attacker = ClientProfile::interactive_user("victim", OUTSIDE, "victim-pw")
        .with_token(TokenSource::Fixed("000000".into()));
    for _ in 0..20 {
        c.clock.advance(3);
        assert!(!c.ssh(0, &attacker).granted);
    }
    assert!(!c.linotp.status("victim", c.clock.now()).unwrap().active);

    // Even the legitimate device is refused while deactivated.
    c.clock.advance(30);
    let dev = device.clone();
    let legit = ClientProfile::interactive_user("victim", OUTSIDE, "victim-pw").with_token(
        TokenSource::device(move |now| Some(dev.displayed_code(now))),
    );
    assert!(!c.ssh(0, &legit).granted);

    // Staff reset restores service.
    c.linotp.reset_failcount("victim", c.clock.now());
    c.clock.advance(30);
    assert!(c.ssh(0, &legit).granted);
}

#[test]
fn wrong_password_never_reaches_second_factor() {
    let c = full_center();
    c.create_user("alice", "a@x.edu", "alice-pw");
    c.pair_soft("alice");
    let validations_before = c.linotp.audit().for_user("alice").len();
    let p = ClientProfile::interactive_user("alice", OUTSIDE, "totally-wrong")
        .with_token(TokenSource::Fixed("123456".into()));
    let r = c.ssh(0, &p);
    assert!(!r.granted);
    assert!(
        r.prompts.iter().all(|pr| !pr.contains("Token")),
        "no token prompt after bad password: {:?}",
        r.prompts
    );
    // No RADIUS/OTP traffic was generated (§3.1's brute-force filter).
    assert_eq!(c.linotp.audit().for_user("alice").len(), validations_before);
}

#[test]
fn storage_batch_transfers_from_compute_nodes() {
    // "Remote storage systems are configured to accept SSH traffic from
    // all HPC systems within the internal network" (§3.4): batch clients
    // with keys move data without any prompt even in full mode.
    let c = full_center();
    c.create_user("alice", "a@x.edu", "alice-pw");
    c.pair_soft("alice");
    let key = c.provision_key("alice");
    let compute_node_ip = c.internal_ip(99);
    let batch = ClientProfile::batch_client("alice", compute_node_ip, key);
    for _ in 0..5 {
        c.clock.advance(60);
        let r = c.ssh(1, &batch);
        assert!(r.granted && r.prompts.is_empty());
    }
}
