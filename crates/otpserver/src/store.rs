//! The token store — the MariaDB-backed LinOTP user repository (§3.1).
//!
//! One record per user: the pairing (which kind of token and its secret
//! material), replay-prevention state, the consecutive-failure counter, and
//! the active flag the lockout policy clears.
//!
//! # Sharding
//!
//! The store is partitioned into [`SHARD_COUNT`] shards, each its own
//! `RwLock<BTreeMap>`, keyed by an FNV-1a hash of the username
//! ([`shard_of_name`] — deterministic across processes and runs, unlike
//! `RandomState`). Validations for users in different shards proceed in
//! parallel; per-user operations still serialize under their shard's write
//! lock, which is all the replay/lockout invariants need.
//!
//! Two security-posture gauges — locked-out users and outstanding unexpired
//! SMS codes — are maintained *incrementally*: every mutation path diffs the
//! record's gauge contribution before and after the change and applies the
//! delta to global atomics. `/system/metrics` and `/system/alerts` read the
//! atomics instead of taking a whole-store write-lock census per scrape.
//! The only wrinkle is time: an SMS code stops counting when it *expires*,
//! not when it is mutated, so each shard keeps a conservative low watermark
//! of its earliest pending-code expiry (`sms_expiry_floor`). A gauge read at
//! `now` sweeps only shards whose floor has passed, purging expired codes
//! (and decrementing the gauge) exactly as the old census did — shards with
//! no expirable code are not even read-locked.
//!
//! Admin enumeration ([`TokenStore::export_all`], [`TokenStore::breakdown`])
//! merges shards into a `BTreeMap`, so output order is the same sorted key
//! order as the old single-map store and seeded runs stay byte-identical.

use crate::sms::PhoneNumber;
use hpcmfa_otp::totp::Totp;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// log2 of [`SHARD_COUNT`].
pub const SHARD_BITS: u32 = 4;

/// Number of hash partitions. 16 shards keeps per-shard contention
/// negligible for any realistic validator thread count while the merge cost
/// of admin enumeration stays trivial.
pub const SHARD_COUNT: usize = 1 << SHARD_BITS;

/// Sentinel for "no pending SMS code in this shard".
const NO_FLOOR: u64 = u64::MAX;

/// Deterministic shard index for `name`: FNV-1a over the bytes, folded and
/// masked to [`SHARD_COUNT`]. Public so schedulers (the throughput harness)
/// can partition users by shard and provably never contend on a shard lock.
pub fn shard_of_name(name: &str) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in name.as_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    // Fold the high bits in: FNV-1a's low bits alone mix short keys poorly.
    ((h ^ (h >> 32)) & (SHARD_COUNT as u64 - 1)) as usize
}

/// Which physical token a TOTP pairing corresponds to (identical math,
/// different provenance and reporting label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TotpProvenance {
    /// Secret minted by the portal and imported via QR (smartphone app).
    Soft,
    /// Factory-seeded fob identified by serial number.
    Hard,
}

/// An SMS code awaiting use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingSmsCode {
    /// The six-digit code that was texted.
    pub code: String,
    /// When it was generated.
    pub sent_at: u64,
    /// When it stops being accepted.
    pub expires_at: u64,
}

impl PendingSmsCode {
    /// Whether the code is still usable at `now`.
    pub fn active(&self, now: u64) -> bool {
        now < self.expires_at
    }
}

/// A user's pairing record.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenPairing {
    /// Soft or hard TOTP token.
    Totp {
        /// Generator bound to the shared secret.
        totp: Totp,
        /// Soft or hard.
        provenance: TotpProvenance,
        /// Hard-token serial, if any.
        serial: Option<String>,
        /// Highest accepted time step — used codes are nullified (§3.2) by
        /// refusing any step at or below this.
        last_step: Option<u64>,
        /// Resync adjustment in whole time steps (admin "re-synchronize
        /// tokens", §3.1).
        drift_steps: i64,
    },
    /// SMS token: the server texts a fresh code on demand.
    Sms {
        /// Destination number.
        phone: PhoneNumber,
        /// The outstanding code, if one is active.
        pending: Option<PendingSmsCode>,
    },
    /// Static training-account code (§3.3, fourth token type).
    Static {
        /// The fixed six-digit code.
        code: String,
    },
}

impl TokenPairing {
    /// The reporting label (Table 1 rows).
    pub fn kind_label(&self) -> &'static str {
        match self {
            TokenPairing::Totp {
                provenance: TotpProvenance::Soft,
                ..
            } => "soft",
            TokenPairing::Totp {
                provenance: TotpProvenance::Hard,
                ..
            } => "hard",
            TokenPairing::Sms { .. } => "sms",
            TokenPairing::Static { .. } => "training",
        }
    }
}

/// Per-user record in the store.
#[derive(Debug, Clone, PartialEq)]
pub struct UserTokenRecord {
    /// The pairing.
    pub pairing: TokenPairing,
    /// Consecutive validation failures since the last success/reset.
    pub fail_count: u32,
    /// Cleared by the lockout policy; admins re-activate.
    pub active: bool,
}

/// Status summary exposed to admins and the internal staff website (§3.1:
/// deactivation info "is available to staff via an internal website").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserTokenStatus {
    /// Pairing kind label.
    pub kind: String,
    /// Current consecutive failures.
    pub fail_count: u32,
    /// Whether validation is currently allowed.
    pub active: bool,
    /// Hard-token serial if applicable.
    pub serial: Option<String>,
    /// Whether an unexpired SMS code is outstanding (always `false` for
    /// non-SMS pairings).
    pub sms_pending: bool,
}

/// What a record contributes to the global gauges: whether it is locked
/// out, and the expiry of its pending SMS code if one is outstanding.
fn contribution(rec: &UserTokenRecord) -> (bool, Option<u64>) {
    let pending = match &rec.pairing {
        TokenPairing::Sms {
            pending: Some(p), ..
        } => Some(p.expires_at),
        _ => None,
    };
    (!rec.active, pending)
}

/// One hash partition.
#[derive(Default)]
struct Shard {
    users: RwLock<BTreeMap<String, UserTokenRecord>>,
    /// Conservative low watermark of the earliest `expires_at` among this
    /// shard's pending SMS codes; [`NO_FLOOR`] when none. May lag low after
    /// a code is consumed (raising it cheaply is impossible without a
    /// sweep) — a stale-low floor only costs one extra sweep, never
    /// correctness.
    sms_expiry_floor: AtomicU64,
}

impl Shard {
    fn new() -> Self {
        Shard {
            users: RwLock::new(BTreeMap::new()),
            sms_expiry_floor: AtomicU64::new(NO_FLOOR),
        }
    }
}

struct Inner {
    shards: Vec<Shard>,
    /// Users with `active == false`.
    locked_users: AtomicU64,
    /// Users with *some* pending SMS code. Equals the number of unexpired
    /// codes only after expired ones are purged — which every gauge read
    /// does (floor-gated) before loading this.
    sms_pending: AtomicU64,
}

/// Thread-safe sharded token store. Clone shares state.
#[derive(Clone)]
pub struct TokenStore {
    inner: Arc<Inner>,
}

impl Default for TokenStore {
    fn default() -> Self {
        TokenStore {
            inner: Arc::new(Inner {
                shards: (0..SHARD_COUNT).map(|_| Shard::new()).collect(),
                locked_users: AtomicU64::new(0),
                sms_pending: AtomicU64::new(0),
            }),
        }
    }
}

impl TokenStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self, username: &str) -> &Shard {
        &self.inner.shards[shard_of_name(username)]
    }

    /// Apply the gauge delta between a record's contribution `before` and
    /// `after` a mutation. Called with the owning shard's write lock held,
    /// so per-record transitions are never double-counted.
    fn apply_diff(&self, shard: &Shard, before: (bool, Option<u64>), after: (bool, Option<u64>)) {
        match (before.0, after.0) {
            (false, true) => {
                self.inner.locked_users.fetch_add(1, Ordering::SeqCst);
            }
            (true, false) => {
                self.inner.locked_users.fetch_sub(1, Ordering::SeqCst);
            }
            _ => {}
        }
        match (before.1.is_some(), after.1.is_some()) {
            (false, true) => {
                self.inner.sms_pending.fetch_add(1, Ordering::SeqCst);
            }
            (true, false) => {
                self.inner.sms_pending.fetch_sub(1, Ordering::SeqCst);
            }
            _ => {}
        }
        if let Some(expires_at) = after.1 {
            shard
                .sms_expiry_floor
                .fetch_min(expires_at, Ordering::SeqCst);
        }
    }

    /// Enroll (or replace) a pairing for `username`. Re-enrolling resets
    /// failure state, matching LinOTP's behaviour on token re-init.
    pub fn enroll(&self, username: &str, pairing: TokenPairing) {
        let record = UserTokenRecord {
            pairing,
            fail_count: 0,
            active: true,
        };
        let after = contribution(&record);
        let shard = self.shard(username);
        let mut users = shard.users.write();
        let before = users
            .insert(username.to_string(), record)
            .map(|old| contribution(&old))
            .unwrap_or((false, None));
        self.apply_diff(shard, before, after);
    }

    /// Remove a user's pairing. Returns whether one existed.
    pub fn remove(&self, username: &str) -> bool {
        let shard = self.shard(username);
        let mut users = shard.users.write();
        match users.remove(username) {
            Some(old) => {
                self.apply_diff(shard, contribution(&old), (false, None));
                true
            }
            None => false,
        }
    }

    /// Whether the user has any pairing.
    pub fn has_pairing(&self, username: &str) -> bool {
        self.shard(username).users.read().contains_key(username)
    }

    /// Snapshot a user's record.
    pub fn get(&self, username: &str) -> Option<UserTokenRecord> {
        self.shard(username).users.read().get(username).cloned()
    }

    /// Status summary for staff tooling. Takes the current time so an
    /// expired pending SMS code is purged on read rather than lingering in
    /// snapshots and status output.
    pub fn status(&self, username: &str, now: u64) -> Option<UserTokenStatus> {
        self.with_record(username, |r| {
            if let TokenPairing::Sms { pending, .. } = &mut r.pairing {
                if pending.as_ref().is_some_and(|p| !p.active(now)) {
                    *pending = None;
                }
            }
            UserTokenStatus {
                kind: r.pairing.kind_label().to_string(),
                fail_count: r.fail_count,
                active: r.active,
                serial: match &r.pairing {
                    TokenPairing::Totp { serial, .. } => serial.clone(),
                    _ => None,
                },
                sms_pending: matches!(
                    &r.pairing,
                    TokenPairing::Sms { pending: Some(p), .. } if p.active(now)
                ),
            }
        })
    }

    /// Purge expired pending SMS codes in one shard, adjusting the gauge
    /// and recomputing the floor exactly. Returns how many were purged.
    fn purge_shard(&self, shard: &Shard, now: u64) -> usize {
        let mut users = shard.users.write();
        let mut purged = 0;
        let mut floor = NO_FLOOR;
        for rec in users.values_mut() {
            if let TokenPairing::Sms { pending, .. } = &mut rec.pairing {
                match pending {
                    Some(p) if p.active(now) => floor = floor.min(p.expires_at),
                    Some(_) => {
                        *pending = None;
                        self.inner.sms_pending.fetch_sub(1, Ordering::SeqCst);
                        purged += 1;
                    }
                    None => {}
                }
            }
        }
        shard.sms_expiry_floor.store(floor, Ordering::SeqCst);
        purged
    }

    /// Drop every expired pending SMS code in the store. Returns how many
    /// were purged. Called before snapshotting so stale codes never land
    /// in durable state. Shards whose expiry floor is still in the future
    /// cannot hold an expired code and are skipped without locking.
    pub fn purge_expired_sms(&self, now: u64) -> usize {
        let mut purged = 0;
        for shard in &self.inner.shards {
            if now >= shard.sms_expiry_floor.load(Ordering::SeqCst) {
                purged += self.purge_shard(shard, now);
            }
        }
        purged
    }

    /// Security-posture gauges at `now`: (locked-out users, users with an
    /// unexpired SMS code outstanding). Both `/system/metrics` and
    /// `/system/alerts` refresh from this one read so the two surfaces can
    /// never disagree about the same instant.
    ///
    /// Expired codes are purged first (floor-gated, usually touching no
    /// shard at all); the counts themselves come from the incrementally
    /// maintained atomics — no whole-store census.
    pub fn gauge_counts(&self, now: u64) -> (u64, u64) {
        self.purge_expired_sms(now);
        (
            self.inner.locked_users.load(Ordering::SeqCst),
            self.inner.sms_pending.load(Ordering::SeqCst),
        )
    }

    /// Mutate a user's record under its shard's write lock. Returns `None`
    /// if the user has no pairing, else the closure's result. Gauge deltas
    /// caused by the closure are applied before the lock is released.
    pub fn with_record<T>(
        &self,
        username: &str,
        f: impl FnOnce(&mut UserTokenRecord) -> T,
    ) -> Option<T> {
        let shard = self.shard(username);
        let mut users = shard.users.write();
        let rec = users.get_mut(username)?;
        let before = contribution(rec);
        let out = f(rec);
        let after = contribution(rec);
        self.apply_diff(shard, before, after);
        Some(out)
    }

    /// Number of enrolled users.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.users.read().len()).sum()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.shards.iter().all(|s| s.users.read().is_empty())
    }

    /// Clone the full user map, merged across shards in sorted key order
    /// (snapshot encoding and tests) — byte-identical to the old
    /// single-map export.
    pub fn export_all(&self) -> BTreeMap<String, UserTokenRecord> {
        let mut out = BTreeMap::new();
        for shard in &self.inner.shards {
            for (name, rec) in shard.users.read().iter() {
                out.insert(name.clone(), rec.clone());
            }
        }
        out
    }

    /// Replace the full user map (crash recovery). Gauges and expiry
    /// floors are rebuilt from scratch.
    pub fn load_all(&self, users: BTreeMap<String, UserTokenRecord>) {
        self.clear();
        for (name, rec) in users {
            let shard = &self.inner.shards[shard_of_name(&name)];
            let after = contribution(&rec);
            let mut map = shard.users.write();
            map.insert(name, rec);
            self.apply_diff(shard, (false, None), after);
        }
    }

    /// Drop every record (simulated crash wipes the in-memory image).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.users.write().clear();
            shard.sms_expiry_floor.store(NO_FLOOR, Ordering::SeqCst);
        }
        self.inner.locked_users.store(0, Ordering::SeqCst);
        self.inner.sms_pending.store(0, Ordering::SeqCst);
    }

    /// Count pairings by kind label — the Table 1 numerator. Sorted-map
    /// output, same as the pre-shard store.
    pub fn breakdown(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for shard in &self.inner.shards {
            for rec in shard.users.read().values() {
                *out.entry(rec.pairing.kind_label()).or_insert(0) += 1;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmfa_otp::secret::Secret;

    fn totp_pairing(provenance: TotpProvenance) -> TokenPairing {
        TokenPairing::Totp {
            totp: Totp::new(Secret::from_bytes(*b"12345678901234567890")),
            provenance,
            serial: match provenance {
                TotpProvenance::Hard => Some("TACC-0001".into()),
                TotpProvenance::Soft => None,
            },
            last_step: None,
            drift_steps: 0,
        }
    }

    #[test]
    fn enroll_get_remove() {
        let store = TokenStore::new();
        assert!(!store.has_pairing("alice"));
        store.enroll("alice", totp_pairing(TotpProvenance::Soft));
        assert!(store.has_pairing("alice"));
        assert_eq!(store.len(), 1);
        assert!(store.remove("alice"));
        assert!(!store.remove("alice"));
        assert!(store.is_empty());
    }

    #[test]
    fn reenroll_resets_failures() {
        let store = TokenStore::new();
        store.enroll("alice", totp_pairing(TotpProvenance::Soft));
        store.with_record("alice", |r| {
            r.fail_count = 19;
            r.active = false;
        });
        store.enroll("alice", totp_pairing(TotpProvenance::Soft));
        let rec = store.get("alice").unwrap();
        assert_eq!(rec.fail_count, 0);
        assert!(rec.active);
    }

    #[test]
    fn status_reports_kind_and_serial() {
        let store = TokenStore::new();
        store.enroll("h", totp_pairing(TotpProvenance::Hard));
        store.enroll(
            "s",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551234").unwrap(),
                pending: None,
            },
        );
        store.enroll(
            "t",
            TokenPairing::Static {
                code: "123456".into(),
            },
        );
        assert_eq!(store.status("h", 0).unwrap().kind, "hard");
        assert_eq!(
            store.status("h", 0).unwrap().serial.as_deref(),
            Some("TACC-0001")
        );
        assert_eq!(store.status("s", 0).unwrap().kind, "sms");
        assert_eq!(store.status("t", 0).unwrap().kind, "training");
        assert_eq!(store.status("missing", 0), None);
    }

    #[test]
    fn status_purges_expired_sms_and_reports_pending() {
        let store = TokenStore::new();
        store.enroll(
            "s",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551234").unwrap(),
                pending: Some(PendingSmsCode {
                    code: "111111".into(),
                    sent_at: 100,
                    expires_at: 400,
                }),
            },
        );
        assert!(store.status("s", 200).unwrap().sms_pending);
        // After expiry the status read itself purges the stale code.
        assert!(!store.status("s", 400).unwrap().sms_pending);
        let rec = store.get("s").unwrap();
        assert!(matches!(
            rec.pairing,
            TokenPairing::Sms { pending: None, .. }
        ));
    }

    #[test]
    fn purge_expired_sms_sweeps_store() {
        let store = TokenStore::new();
        for (name, expires_at) in [("a", 400u64), ("b", 900)] {
            store.enroll(
                name,
                TokenPairing::Sms {
                    phone: PhoneNumber::parse("5125551234").unwrap(),
                    pending: Some(PendingSmsCode {
                        code: "222222".into(),
                        sent_at: 100,
                        expires_at,
                    }),
                },
            );
        }
        assert_eq!(store.purge_expired_sms(500), 1);
        assert!(matches!(
            store.get("a").unwrap().pairing,
            TokenPairing::Sms { pending: None, .. }
        ));
        assert!(matches!(
            store.get("b").unwrap().pairing,
            TokenPairing::Sms {
                pending: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn gauge_counts_purge_and_census_in_one_pass() {
        let store = TokenStore::new();
        store.enroll("locked", totp_pairing(TotpProvenance::Soft));
        store.with_record("locked", |r| r.active = false);
        store.enroll(
            "fresh",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551234").unwrap(),
                pending: Some(PendingSmsCode {
                    code: "111111".into(),
                    sent_at: 100,
                    expires_at: 900,
                }),
            },
        );
        store.enroll(
            "stale",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551235").unwrap(),
                pending: Some(PendingSmsCode {
                    code: "222222".into(),
                    sent_at: 100,
                    expires_at: 400,
                }),
            },
        );
        assert_eq!(store.gauge_counts(500), (1, 1));
        // The census purged the stale code durably in memory.
        assert!(matches!(
            store.get("stale").unwrap().pairing,
            TokenPairing::Sms { pending: None, .. }
        ));
    }

    #[test]
    fn export_load_round_trip() {
        let store = TokenStore::new();
        store.enroll("alice", totp_pairing(TotpProvenance::Soft));
        let image = store.export_all();
        store.clear();
        assert!(store.is_empty());
        store.load_all(image);
        assert!(store.has_pairing("alice"));
    }

    #[test]
    fn breakdown_counts() {
        let store = TokenStore::new();
        store.enroll("a", totp_pairing(TotpProvenance::Soft));
        store.enroll("b", totp_pairing(TotpProvenance::Soft));
        store.enroll("c", totp_pairing(TotpProvenance::Hard));
        let b = store.breakdown();
        assert_eq!(b.get("soft"), Some(&2));
        assert_eq!(b.get("hard"), Some(&1));
        assert_eq!(b.get("sms"), None);
    }

    #[test]
    fn pending_sms_activity_window() {
        let p = PendingSmsCode {
            code: "111111".into(),
            sent_at: 100,
            expires_at: 400,
        };
        assert!(p.active(100));
        assert!(p.active(399));
        assert!(!p.active(400));
    }

    #[test]
    fn shard_of_name_is_stable_and_in_range() {
        // Pinned values: any change to the hash would silently re-partition
        // durable stores and break the throughput harness's disjointness
        // argument.
        assert_eq!(shard_of_name("alice"), shard_of_name("alice"));
        for name in ["", "alice", "bob", "user0123", "üñí"] {
            assert!(shard_of_name(name) < SHARD_COUNT);
        }
        // Distribution sanity: 256 sequential usernames must not collapse
        // into a handful of shards.
        let mut hit = [false; SHARD_COUNT];
        for i in 0..256 {
            hit[shard_of_name(&format!("user{i:04}"))] = true;
        }
        assert!(hit.iter().filter(|h| **h).count() >= SHARD_COUNT / 2);
    }

    #[test]
    fn gauges_track_every_mutation_path() {
        let store = TokenStore::new();
        assert_eq!(store.gauge_counts(0), (0, 0));

        // Lock via with_record.
        store.enroll("a", totp_pairing(TotpProvenance::Soft));
        store.with_record("a", |r| r.active = false);
        assert_eq!(store.gauge_counts(0), (1, 0));
        // Unlock.
        store.with_record("a", |r| r.active = true);
        assert_eq!(store.gauge_counts(0), (0, 0));
        // Lock then remove: gauge must not leak.
        store.with_record("a", |r| r.active = false);
        store.remove("a");
        assert_eq!(store.gauge_counts(0), (0, 0));

        // Pending SMS issued via with_record, consumed via with_record.
        store.enroll(
            "s",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551234").unwrap(),
                pending: None,
            },
        );
        store.with_record("s", |r| {
            if let TokenPairing::Sms { pending, .. } = &mut r.pairing {
                *pending = Some(PendingSmsCode {
                    code: "111111".into(),
                    sent_at: 10,
                    expires_at: 300,
                });
            }
        });
        assert_eq!(store.gauge_counts(20), (0, 1));
        store.with_record("s", |r| {
            if let TokenPairing::Sms { pending, .. } = &mut r.pairing {
                *pending = None;
            }
        });
        assert_eq!(store.gauge_counts(20), (0, 0));

        // Re-enroll over a locked user resets the locked gauge.
        store.enroll("a", totp_pairing(TotpProvenance::Soft));
        store.with_record("a", |r| r.active = false);
        store.enroll("a", totp_pairing(TotpProvenance::Soft));
        assert_eq!(store.gauge_counts(20), (0, 0));
    }

    #[test]
    fn gauges_survive_clear_and_load_all() {
        let store = TokenStore::new();
        store.enroll("locked", totp_pairing(TotpProvenance::Soft));
        store.with_record("locked", |r| r.active = false);
        store.enroll(
            "s",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551234").unwrap(),
                pending: Some(PendingSmsCode {
                    code: "111111".into(),
                    sent_at: 10,
                    expires_at: 300,
                }),
            },
        );
        let image = store.export_all();
        assert_eq!(store.gauge_counts(20), (1, 1));
        store.clear();
        assert_eq!(store.gauge_counts(20), (0, 0));
        store.load_all(image);
        assert_eq!(store.gauge_counts(20), (1, 1));
        // The rebuilt floor still expires the reloaded code on time.
        assert_eq!(store.gauge_counts(300), (1, 0));
    }

    #[test]
    fn expiry_floor_skips_unexpirable_shards_but_never_misses() {
        let store = TokenStore::new();
        // Many codes with staggered expiries across shards.
        for i in 0..40u64 {
            store.enroll(
                &format!("user{i:03}"),
                TokenPairing::Sms {
                    phone: PhoneNumber::parse("5125551234").unwrap(),
                    pending: Some(PendingSmsCode {
                        code: "111111".into(),
                        sent_at: 0,
                        expires_at: 100 + i * 10,
                    }),
                },
            );
        }
        assert_eq!(store.gauge_counts(0), (0, 40));
        // Expire roughly half; the gauge must reflect exactly the survivors.
        let now = 100 + 19 * 10 + 1; // codes 0..=19 expired
        assert_eq!(store.gauge_counts(now), (0, 20));
        // And all of them eventually.
        assert_eq!(store.gauge_counts(100 + 39 * 10), (0, 0));
    }

    #[test]
    fn export_all_is_sorted_across_shards() {
        let store = TokenStore::new();
        let mut names: Vec<String> = (0..64).map(|i| format!("user{i:03}")).collect();
        // Insert in scrambled order.
        names.reverse();
        for n in &names {
            store.enroll(n, totp_pairing(TotpProvenance::Soft));
        }
        let exported: Vec<String> = store.export_all().keys().cloned().collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(exported, sorted);
    }
}
