//! Acceptance: the batched UDP front end (`radius::ingest`, DESIGN.md
//! §16) feeding the full OTP validation stack over real sockets — zero-
//! copy decode on the workers, the handler's guarded (§12 admission)
//! entry points into the sharded store, and the ingest telemetry
//! (`hpcmfa_radius_ingest_batch_size`,
//! `hpcmfa_radius_datagrams_total{outcome}`) surfaced on the same
//! `/system/metrics` scrape as the rest of the auth path.

use rand::rngs::StdRng;
use rand::SeedableRng;
use securing_hpc::crypto::digestauth::answer_challenge;
use securing_hpc::otp::clock::{Clock, SimClock};
use securing_hpc::otp::device::SoftToken;
use securing_hpc::otp::totp::TotpParams;
use securing_hpc::otpserver::admin::{AdminApi, HttpRequest};
use securing_hpc::otpserver::handler::TOKEN_PROMPT;
use securing_hpc::otpserver::json::Json;
use securing_hpc::otpserver::{LinotpServer, OtpRadiusHandler, TwilioSim};
use securing_hpc::radius::client::{ClientConfig, Outcome, RadiusClient};
use securing_hpc::radius::ingest::BatchedUdpServer;
use securing_hpc::radius::server::RadiusServer;
use securing_hpc::radius::transport::{Transport, UdpTransport};
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const NOW: u64 = 1_475_000_000;
const SECRET: &[u8] = b"ingest-pool-secret";

#[test]
fn batched_ingest_runs_the_otp_stack_and_exposes_metrics() {
    let linotp = LinotpServer::new(TwilioSim::new(1), 77);
    let clock = SimClock::at(NOW);
    let secret = linotp.enroll_soft("alice", NOW);
    let device = SoftToken::new(secret, TotpParams::default());
    let handler = OtpRadiusHandler::new(Arc::clone(&linotp), Arc::new(clock.clone()));
    let radius = Arc::new(RadiusServer::new(SECRET, handler));

    // The ingest pipeline records into the same registry the admin API
    // scrapes, so its series land on /system/metrics for free.
    let socket = UdpSocket::bind(("127.0.0.1", 0)).expect("bind");
    let addr = socket.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = BatchedUdpServer::new(radius, Arc::clone(linotp.metrics()))
        .serve(socket, Arc::clone(&shutdown));

    // Full challenge–response TOTP login through real datagrams.
    let transport: Arc<dyn Transport> = Arc::new(UdpTransport::new(addr, Duration::from_secs(2)));
    let client = RadiusClient::new(ClientConfig::new(SECRET, "login-ingest"), vec![transport]);
    let mut rng = StdRng::seed_from_u64(31);
    let out = client
        .authenticate(&mut rng, "alice", b"", "198.51.100.7")
        .expect("challenge");
    let Outcome::Challenge { state, message } = out else {
        panic!("expected challenge, got {out:?}");
    };
    assert_eq!(message.as_deref(), Some(TOKEN_PROMPT));
    let code = device.displayed_code(clock.now());
    let fin = client
        .respond_to_challenge(&mut rng, "alice", code.as_bytes(), "198.51.100.7", &state)
        .expect("accept");
    assert!(matches!(fin, Outcome::Accept { .. }));

    shutdown.store(true, Ordering::SeqCst);
    let stats = handle.stats();
    handle.join();
    assert_eq!(stats.replied, 2, "challenge + accept answered: {stats:?}");
    assert_eq!(stats.shed, 0);

    // The scrape the operators' Prometheus runs: digest-authenticated
    // GET /system/metrics must now carry the ingest families.
    let api = AdminApi::new(Arc::clone(&linotp), "LinOTP admin area", 7);
    api.add_admin("portal", "portal-pass");
    let chal = api.issue_challenge();
    let auth = answer_challenge(
        &chal,
        "portal",
        "portal-pass",
        "GET",
        "/system/metrics",
        "cn",
        1,
    );
    let resp = api.handle(
        &HttpRequest::new("GET", "/system/metrics", Json::Null).with_auth(auth),
        clock.now(),
    );
    assert!(resp.is_ok(), "scrape failed: {}", resp.status);
    let text = resp.value().unwrap().as_str().unwrap().to_string();
    assert!(
        text.contains("# TYPE hpcmfa_radius_ingest_batch_size histogram"),
        "batch-size histogram missing from /system/metrics"
    );
    assert!(text.contains("hpcmfa_radius_datagrams_total{outcome=\"ok\"} 2"));
    assert!(text.contains("hpcmfa_radius_ingest_batch_size_count 2"));
    // The validations themselves went through the guarded OTP path.
    assert!(text.contains("hpcmfa_otp_validations_total"));
}
