//! A small LDAP-like directory: DN-addressed entries, multi-valued
//! attributes, and an RFC 4515-flavoured filter language.
//!
//! Only the slice of LDAP semantics the MFA infrastructure exercises is
//! implemented: exact-match, presence, prefix/suffix substring filters, and
//! boolean composition. Attribute names compare case-insensitively, values
//! case-sensitively (like `caseExactMatch` syntaxes; token pairing labels
//! are lower case by convention).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A directory entry: a DN plus multi-valued attributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Distinguished name, e.g. `uid=alice,ou=people,dc=tacc`.
    pub dn: String,
    attrs: BTreeMap<String, Vec<String>>,
}

impl Entry {
    /// Create an entry with no attributes.
    pub fn new(dn: impl Into<String>) -> Self {
        Entry {
            dn: dn.into(),
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style attribute addition.
    pub fn with_attr(mut self, name: &str, value: &str) -> Self {
        self.add_attr(name, value);
        self
    }

    /// Add one value to an attribute.
    pub fn add_attr(&mut self, name: &str, value: &str) {
        self.attrs
            .entry(name.to_ascii_lowercase())
            .or_default()
            .push(value.to_string());
    }

    /// Replace all values of an attribute.
    pub fn set_attr(&mut self, name: &str, values: Vec<String>) {
        self.attrs.insert(name.to_ascii_lowercase(), values);
    }

    /// Remove an attribute entirely. Returns whether it existed.
    pub fn remove_attr(&mut self, name: &str) -> bool {
        self.attrs.remove(&name.to_ascii_lowercase()).is_some()
    }

    /// All values of `name`, empty if absent.
    pub fn get(&self, name: &str) -> &[String] {
        self.attrs
            .get(&name.to_ascii_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// First value of `name`, if any.
    pub fn get_one(&self, name: &str) -> Option<&str> {
        self.get(name).first().map(String::as_str)
    }

    /// Whether the attribute exists with at least one value.
    pub fn has_attr(&self, name: &str) -> bool {
        !self.get(name).is_empty()
    }
}

/// An LDAP search filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Filter {
    /// `(attr=value)`
    Eq(String, String),
    /// `(attr=*)`
    Present(String),
    /// `(attr=prefix*)`
    Prefix(String, String),
    /// `(attr=*suffix)`
    Suffix(String, String),
    /// `(&(f1)(f2)...)`
    And(Vec<Filter>),
    /// `(|(f1)(f2)...)`
    Or(Vec<Filter>),
    /// `(!(f))`
    Not(Box<Filter>),
}

/// Errors from [`Filter::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FilterParseError {
    /// Offset in the input where parsing failed.
    pub at: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl std::fmt::Display for FilterParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "filter parse error at {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for FilterParseError {}

impl Filter {
    /// Convenience equality filter.
    pub fn eq(attr: &str, value: &str) -> Self {
        Filter::Eq(attr.to_string(), value.to_string())
    }

    /// Parse an RFC 4515-style string like `(&(uid=alice)(mfaPairing=*))`.
    pub fn parse(s: &str) -> Result<Self, FilterParseError> {
        let bytes = s.as_bytes();
        let (f, consumed) = Self::parse_at(bytes, 0)?;
        if consumed != bytes.len() {
            return Err(FilterParseError {
                at: consumed,
                reason: "trailing input after filter",
            });
        }
        Ok(f)
    }

    fn parse_at(b: &[u8], pos: usize) -> Result<(Filter, usize), FilterParseError> {
        if b.get(pos) != Some(&b'(') {
            return Err(FilterParseError {
                at: pos,
                reason: "expected '('",
            });
        }
        let inner = pos + 1;
        match b.get(inner) {
            Some(&b'&') | Some(&b'|') => {
                let op = b[inner];
                let mut children = Vec::new();
                let mut p = inner + 1;
                while b.get(p) == Some(&b'(') {
                    let (child, np) = Self::parse_at(b, p)?;
                    children.push(child);
                    p = np;
                }
                if b.get(p) != Some(&b')') {
                    return Err(FilterParseError {
                        at: p,
                        reason: "expected ')' closing boolean filter",
                    });
                }
                if children.is_empty() {
                    return Err(FilterParseError {
                        at: inner + 1,
                        reason: "boolean filter needs at least one child",
                    });
                }
                let f = if op == b'&' {
                    Filter::And(children)
                } else {
                    Filter::Or(children)
                };
                Ok((f, p + 1))
            }
            Some(&b'!') => {
                let (child, p) = Self::parse_at(b, inner + 1)?;
                if b.get(p) != Some(&b')') {
                    return Err(FilterParseError {
                        at: p,
                        reason: "expected ')' closing negation",
                    });
                }
                Ok((Filter::Not(Box::new(child)), p + 1))
            }
            Some(_) => {
                // Simple item: attr=value up to the matching ')'.
                let close = b[inner..]
                    .iter()
                    .position(|&c| c == b')')
                    .map(|i| inner + i)
                    .ok_or(FilterParseError {
                        at: inner,
                        reason: "unterminated simple filter",
                    })?;
                let item = std::str::from_utf8(&b[inner..close]).map_err(|_| FilterParseError {
                    at: inner,
                    reason: "non-UTF-8 filter item",
                })?;
                let (attr, value) = item.split_once('=').ok_or(FilterParseError {
                    at: inner,
                    reason: "simple filter missing '='",
                })?;
                if attr.is_empty() {
                    return Err(FilterParseError {
                        at: inner,
                        reason: "empty attribute name",
                    });
                }
                let attr = attr.to_string();
                let f = if value == "*" {
                    Filter::Present(attr)
                } else if let Some(prefix) = value.strip_suffix('*') {
                    if prefix.contains('*') {
                        return Err(FilterParseError {
                            at: inner,
                            reason: "only single leading/trailing wildcard supported",
                        });
                    }
                    Filter::Prefix(attr, prefix.to_string())
                } else if let Some(suffix) = value.strip_prefix('*') {
                    if suffix.contains('*') {
                        return Err(FilterParseError {
                            at: inner,
                            reason: "only single leading/trailing wildcard supported",
                        });
                    }
                    Filter::Suffix(attr, suffix.to_string())
                } else if value.contains('*') {
                    return Err(FilterParseError {
                        at: inner,
                        reason: "interior wildcards unsupported",
                    });
                } else {
                    Filter::Eq(attr, value.to_string())
                };
                Ok((f, close + 1))
            }
            None => Err(FilterParseError {
                at: inner,
                reason: "unexpected end of input",
            }),
        }
    }

    /// Evaluate the filter against an entry.
    pub fn matches(&self, entry: &Entry) -> bool {
        match self {
            Filter::Eq(a, v) => entry.get(a).iter().any(|x| x == v),
            Filter::Present(a) => entry.has_attr(a),
            Filter::Prefix(a, p) => entry.get(a).iter().any(|x| x.starts_with(p)),
            Filter::Suffix(a, sfx) => entry.get(a).iter().any(|x| x.ends_with(sfx)),
            Filter::And(fs) => fs.iter().all(|f| f.matches(entry)),
            Filter::Or(fs) => fs.iter().any(|f| f.matches(entry)),
            Filter::Not(f) => !f.matches(entry),
        }
    }
}

/// Directory operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectoryError {
    /// Add of a DN that already exists.
    AlreadyExists(String),
    /// Operation on a DN that does not exist.
    NoSuchEntry(String),
}

impl std::fmt::Display for DirectoryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DirectoryError::AlreadyExists(dn) => write!(f, "entry already exists: {dn}"),
            DirectoryError::NoSuchEntry(dn) => write!(f, "no such entry: {dn}"),
        }
    }
}

impl std::error::Error for DirectoryError {}

/// A thread-safe directory instance, cheap to clone (shared state).
#[derive(Clone, Default)]
pub struct Directory {
    inner: Arc<RwLock<BTreeMap<String, Entry>>>,
}

impl Directory {
    /// Create an empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a new entry. Fails if the DN exists.
    pub fn add(&self, entry: Entry) -> Result<(), DirectoryError> {
        let mut map = self.inner.write();
        if map.contains_key(&entry.dn) {
            return Err(DirectoryError::AlreadyExists(entry.dn));
        }
        map.insert(entry.dn.clone(), entry);
        Ok(())
    }

    /// Fetch an entry by exact DN.
    pub fn get(&self, dn: &str) -> Option<Entry> {
        self.inner.read().get(dn).cloned()
    }

    /// Delete an entry by DN.
    pub fn delete(&self, dn: &str) -> Result<(), DirectoryError> {
        self.inner
            .write()
            .remove(dn)
            .map(|_| ())
            .ok_or_else(|| DirectoryError::NoSuchEntry(dn.to_string()))
    }

    /// Apply `f` to the entry at `dn` under the write lock.
    pub fn modify(&self, dn: &str, f: impl FnOnce(&mut Entry)) -> Result<(), DirectoryError> {
        let mut map = self.inner.write();
        let entry = map
            .get_mut(dn)
            .ok_or_else(|| DirectoryError::NoSuchEntry(dn.to_string()))?;
        f(entry);
        Ok(())
    }

    /// Search all entries under `base` (DN suffix match) with `filter`.
    pub fn search(&self, base: &str, filter: &Filter) -> Vec<Entry> {
        self.inner
            .read()
            .values()
            .filter(|e| e.dn.ends_with(base) && filter.matches(e))
            .cloned()
            .collect()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people_dir() -> Directory {
        let dir = Directory::new();
        for (uid, pairing) in [
            ("alice", Some("soft")),
            ("bob", Some("sms")),
            ("carol", None),
            ("gateway1", None),
        ] {
            let mut e = Entry::new(format!("uid={uid},ou=people,dc=tacc"))
                .with_attr("uid", uid)
                .with_attr("objectClass", "posixAccount");
            if let Some(p) = pairing {
                e.add_attr("mfaPairing", p);
            }
            dir.add(e).unwrap();
        }
        dir
    }

    #[test]
    fn add_get_delete() {
        let dir = Directory::new();
        let e = Entry::new("uid=x,dc=tacc").with_attr("uid", "x");
        dir.add(e.clone()).unwrap();
        assert_eq!(dir.get("uid=x,dc=tacc"), Some(e.clone()));
        assert_eq!(
            dir.add(e),
            Err(DirectoryError::AlreadyExists("uid=x,dc=tacc".into()))
        );
        dir.delete("uid=x,dc=tacc").unwrap();
        assert_eq!(dir.get("uid=x,dc=tacc"), None);
        assert_eq!(
            dir.delete("uid=x,dc=tacc"),
            Err(DirectoryError::NoSuchEntry("uid=x,dc=tacc".into()))
        );
    }

    #[test]
    fn attribute_names_case_insensitive() {
        let e = Entry::new("dn").with_attr("MfaPairing", "soft");
        assert_eq!(e.get_one("mfapairing"), Some("soft"));
        assert_eq!(e.get_one("MFAPAIRING"), Some("soft"));
    }

    #[test]
    fn values_case_sensitive() {
        let e = Entry::new("dn").with_attr("uid", "Alice");
        assert!(!Filter::eq("uid", "alice").matches(&e));
        assert!(Filter::eq("uid", "Alice").matches(&e));
    }

    #[test]
    fn search_with_eq_filter() {
        let dir = people_dir();
        let hits = dir.search("ou=people,dc=tacc", &Filter::eq("uid", "alice"));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get_one("mfaPairing"), Some("soft"));
    }

    #[test]
    fn search_with_presence_filter_finds_paired_users() {
        let dir = people_dir();
        let hits = dir.search("dc=tacc", &Filter::Present("mfaPairing".into()));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn parse_and_match_composite_filter() {
        let dir = people_dir();
        let f = Filter::parse("(&(objectClass=posixAccount)(!(mfaPairing=*)))").unwrap();
        let hits = dir.search("dc=tacc", &f);
        let uids: Vec<_> = hits.iter().filter_map(|e| e.get_one("uid")).collect();
        assert_eq!(uids.len(), 2);
        assert!(uids.contains(&"carol") && uids.contains(&"gateway1"));
    }

    #[test]
    fn parse_or_and_substring_filters() {
        let f = Filter::parse("(|(uid=gate*)(uid=*ice))").unwrap();
        assert_eq!(
            f,
            Filter::Or(vec![
                Filter::Prefix("uid".into(), "gate".into()),
                Filter::Suffix("uid".into(), "ice".into()),
            ])
        );
        let dir = people_dir();
        assert_eq!(dir.search("dc=tacc", &f).len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(Filter::parse("").is_err());
        assert!(Filter::parse("(uid=alice").is_err());
        assert!(Filter::parse("(uid=alice))").is_err());
        assert!(Filter::parse("(=x)").is_err());
        assert!(Filter::parse("(uidalice)").is_err());
        assert!(Filter::parse("(&)").is_err());
        assert!(Filter::parse("(uid=a*b*c)").is_err());
        assert!(Filter::parse("(uid=a*c)").is_err());
    }

    #[test]
    fn modify_updates_pairing() {
        let dir = people_dir();
        dir.modify("uid=carol,ou=people,dc=tacc", |e| {
            e.set_attr("mfaPairing", vec!["hard".into()]);
        })
        .unwrap();
        let e = dir.get("uid=carol,ou=people,dc=tacc").unwrap();
        assert_eq!(e.get_one("mfaPairing"), Some("hard"));
        assert!(dir.modify("uid=nobody,dc=tacc", |_| {}).is_err());
    }

    #[test]
    fn multi_valued_attributes() {
        let mut e = Entry::new("dn");
        e.add_attr("mail", "a@x.org");
        e.add_attr("mail", "b@x.org");
        assert_eq!(e.get("mail").len(), 2);
        assert_eq!(e.get_one("mail"), Some("a@x.org"));
        assert!(e.remove_attr("mail"));
        assert!(!e.remove_attr("mail"));
    }

    #[test]
    fn base_scoping() {
        let dir = people_dir();
        dir.add(Entry::new("uid=svc,ou=services,dc=tacc").with_attr("uid", "svc"))
            .unwrap();
        assert_eq!(
            dir.search("ou=people,dc=tacc", &Filter::Present("uid".into()))
                .len(),
            4
        );
        assert_eq!(
            dir.search("dc=tacc", &Filter::Present("uid".into())).len(),
            5
        );
    }

    #[test]
    fn concurrent_reads_and_writes() {
        let dir = people_dir();
        let mut handles = Vec::new();
        for t in 0..8 {
            let d = dir.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    let dn = format!("uid=u{t}-{i},ou=people,dc=tacc");
                    d.add(Entry::new(dn).with_attr("uid", &format!("u{t}-{i}")))
                        .unwrap();
                    let _ = d.search("dc=tacc", &Filter::Present("uid".into()));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(dir.len(), 4 + 8 * 50);
    }
}
