//! Telemetry acceptance: the `/system/metrics` scrape is valid Prometheus
//! text exposition, the histogram quantiles are honest against a known
//! distribution, and the backward-compatible `/system/durability` JSON is
//! fed by the same counters as the Prometheus families (one source of
//! truth, two serializations).

use securing_hpc::core::center::{Center, CenterConfig};
use securing_hpc::crypto::digestauth::answer_challenge;
use securing_hpc::otp::clock::Clock;
use securing_hpc::otpserver::admin::{AdminApi, HttpRequest};
use securing_hpc::otpserver::json::Json;
use securing_hpc::otpserver::{MemoryBackend, StorageBackend};
use securing_hpc::pam::modules::token::EnforcementMode;
use securing_hpc::ssh::client::{ClientProfile, TokenSource};
use securing_hpc::telemetry::MetricsRegistry;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

const EXTERNAL_IP: Ipv4Addr = Ipv4Addr::new(70, 112, 50, 3);

/// Scrape `/system/metrics` with the portal's digest credentials.
fn scrape(admin: &AdminApi, now: u64) -> String {
    let chal = admin.issue_challenge();
    let auth = answer_challenge(
        &chal,
        "portal-svc",
        "portal-svc-password",
        "GET",
        "/system/metrics",
        "cn",
        1,
    );
    let resp = admin.handle(
        &HttpRequest::new("GET", "/system/metrics", Json::Null).with_auth(auth),
        now,
    );
    assert!(resp.is_ok(), "scrape failed: {}", resp.status);
    resp.value().unwrap().as_str().unwrap().to_string()
}

/// A center that has served one successful MFA login.
fn center_after_one_login(config: CenterConfig) -> Arc<Center> {
    let c = Center::new(config);
    c.create_user("alice", "alice@utexas.edu", "alice-pw");
    c.set_enforcement(EnforcementMode::Full);
    let device = c.pair_soft("alice");
    let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw").with_token(
        TokenSource::device(move |now| Some(device.displayed_code(now))),
    );
    assert!(c.ssh(0, &profile).granted);
    c
}

/// Structural validation of the exposition text: every sample line parses,
/// `# TYPE` precedes and matches its family, histogram buckets are
/// cumulative with `+Inf` equal to `_count`.
#[test]
fn metrics_scrape_is_valid_prometheus_text() {
    let c = center_after_one_login(CenterConfig::default());
    let text = scrape(&c.admin, c.clock.now());

    let mut types: HashMap<String, String> = HashMap::new();
    let mut samples: Vec<(String, f64)> = Vec::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap(), it.next().unwrap());
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE {kind} in {line:?}"
            );
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate # TYPE for {name}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        // Bucket lines may carry an OpenMetrics exemplar suffix —
        // `… # {trace_id="…"} <value>` — which is not part of the
        // sample; strip it before parsing.
        let line = line.split(" # ").next().unwrap();
        // `name{labels} value` or `name value`; labels may contain spaces
        // inside quotes, so split at the last space.
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        assert!(
            value.parse::<f64>().is_ok(),
            "unparseable value in {line:?}"
        );
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty() && name.starts_with("hpcmfa_"),
            "series outside the hpcmfa_ namespace: {line:?}"
        );
        samples.push((series.to_string(), value.parse().unwrap()));
    }
    // Every sample belongs to a declared family (histogram samples hang
    // off `<family>_bucket`/`_sum`/`_count`).
    for (series, _) in &samples {
        let name = series.split('{').next().unwrap();
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| types.get(*f).map(String::as_str) == Some("histogram"))
            .unwrap_or(name);
        assert!(types.contains_key(family), "undeclared family for {series}");
    }
    // The families the acceptance criteria name are present.
    assert_eq!(
        types.get("hpcmfa_otp_validations_total").unwrap(),
        "counter"
    );
    assert_eq!(
        types.get("hpcmfa_otp_validate_wall_us").unwrap(),
        "histogram"
    );
    // Histogram buckets are cumulative and close at +Inf == _count.
    for (family, kind) in &types {
        if kind != "histogram" {
            continue;
        }
        let buckets: Vec<f64> = samples
            .iter()
            .filter(|(s, _)| s.starts_with(&format!("{family}_bucket")))
            .map(|&(_, v)| v)
            .collect();
        let count: f64 = samples
            .iter()
            .filter(|(s, _)| s.split('{').next().unwrap() == format!("{family}_count"))
            .map(|&(_, v)| v)
            .sum();
        if buckets.is_empty() {
            continue;
        }
        assert!(
            buckets.windows(2).all(|w| w[0] <= w[1]),
            "{family} buckets not cumulative: {buckets:?}"
        );
        assert_eq!(
            *buckets.last().unwrap(),
            count,
            "{family} +Inf bucket disagrees with _count"
        );
        assert!(
            samples
                .iter()
                .any(|(s, _)| s.starts_with(&format!("{family}_bucket")) && s.contains("+Inf")),
            "{family} lacks a +Inf bucket"
        );
    }
}

/// The histogram's quantiles are verified against a known distribution:
/// the uniform integers 1..=N, whose true q-quantile is q·N. The
/// log-linear buckets guarantee ≤ 1/16 (6.25%) relative overshoot.
#[test]
fn quantiles_match_a_known_distribution() {
    const N: u64 = 10_000;
    let registry = MetricsRegistry::new();
    let hist = registry.histogram("hpcmfa_test_known_us", &[]);
    for v in 1..=N {
        hist.record(v);
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count(), N);
    assert_eq!(snap.max(), N);
    for (q, truth) in [(0.50, 5_000.0), (0.90, 9_000.0), (0.99, 9_900.0)] {
        let got = snap.quantile(q) as f64;
        assert!(
            got >= truth && got <= truth * (1.0 + 1.0 / 16.0),
            "q{q}: got {got}, true {truth}"
        );
    }
    // And the registry's rendering carries the same count.
    let text = registry.render_prometheus();
    assert!(text.contains(&format!("hpcmfa_test_known_us_count {N}")));
}

/// `/system/durability` (the pre-telemetry JSON route) and the Prometheus
/// families report identical numbers: the JSON is now a view over the
/// same registry counters.
#[test]
fn durability_json_and_prometheus_report_the_same_counters() {
    let backend = MemoryBackend::healthy();
    let c = center_after_one_login(CenterConfig {
        otp_storage: Some(backend as Arc<dyn StorageBackend>),
        ..CenterConfig::default()
    });
    c.crash_otp_server().expect("recovers");

    let chal = c.admin.issue_challenge();
    let auth = answer_challenge(
        &chal,
        "portal-svc",
        "portal-svc-password",
        "GET",
        "/system/durability",
        "cn",
        1,
    );
    let resp = c.admin.handle(
        &HttpRequest::new("GET", "/system/durability", Json::Null).with_auth(auth),
        c.clock.now(),
    );
    assert!(resp.is_ok());
    let json = resp.value().unwrap().clone();
    let snap = c.metrics_snapshot();
    for (key, family) in [
        ("appends", "hpcmfa_otp_wal_appends_total"),
        ("fsyncs", "hpcmfa_otp_wal_fsyncs_total"),
        ("snapshots", "hpcmfa_otp_snapshot_writes_total"),
        ("recoveries", "hpcmfa_otp_recoveries_total"),
        ("records_replayed", "hpcmfa_otp_wal_records_replayed_total"),
        ("truncated_bytes", "hpcmfa_otp_wal_truncated_bytes_total"),
    ] {
        assert_eq!(
            json.get(key).unwrap().as_u64().unwrap(),
            snap.counter_family(family),
            "JSON {key} vs Prometheus {family}"
        );
    }
    assert!(json.get("appends").unwrap().as_u64().unwrap() > 0);
    // Startup recovery + the explicit crash/recover cycle.
    assert_eq!(json.get("recoveries").unwrap().as_u64().unwrap(), 2);
}
