//! Span-based request tracing.
//!
//! A [`TraceId`] is minted once per login attempt (by the SSH daemon as it
//! builds the PAM context) and carried across every hop of the auth path:
//! the PAM token module forwards it to the RADIUS client, the client
//! encodes it as a vendor-specific attribute on the wire, proxies copy it
//! upstream, and the OTP server stamps it into its audit rows. Each
//! component also drops a [`SpanRecord`] into the shared [`Tracer`], so
//! one login's hops can be reconstructed end to end — the reproduction's
//! stand-in for grepping LinOTP and FreeRADIUS logs by timestamp (§3.2).
//!
//! Ids must be *deterministic*: chaos and durability scenarios build two
//! identical worlds in one process and demand byte-identical reports, so
//! ids are derived from a stable namespace (hash of the daemon name) and
//! a per-daemon sequence number rather than a process-global counter.
//! [`TraceId::mint`] exists as a process-global fallback for contexts
//! built outside a daemon (unit tests, ad-hoc harnesses).

use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Spans retained by a [`Tracer`] before the oldest are evicted.
pub const DEFAULT_TRACER_CAP: usize = 65_536;

/// SplitMix64: a full-period mixing function; distinct inputs give
/// well-scattered outputs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A stable 64-bit namespace for [`TraceId::derive`], hashed from a
/// component name (FNV-1a then mixed).
pub fn namespace(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    splitmix64(h)
}

/// A 64-bit request-trace identifier, rendered as 16 lowercase hex
/// digits everywhere (display, audit details, metrics).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

/// Process-global sequence for [`TraceId::mint`].
static MINTED: AtomicU64 = AtomicU64::new(0);

impl TraceId {
    /// Wrap a raw id (e.g. decoded from the RADIUS vendor attribute).
    pub fn from_u64(v: u64) -> Self {
        TraceId(v)
    }

    /// The raw id (e.g. for wire encoding).
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Deterministically derive the `seq`-th id in `namespace`. Identical
    /// `(namespace, seq)` pairs always yield the same id, so two
    /// identically-constructed simulations produce identical traces.
    pub fn derive(namespace: u64, seq: u64) -> Self {
        TraceId(splitmix64(namespace ^ splitmix64(seq)))
    }

    /// Mint a fresh id from a process-global sequence. Not deterministic
    /// across differently-interleaved runs — simulation code paths use
    /// [`TraceId::derive`] instead.
    pub fn mint() -> Self {
        TraceId::derive(
            namespace("hpcmfa.mint"),
            MINTED.fetch_add(1, Ordering::Relaxed),
        )
    }

    /// The 16-hex-digit rendering (same as `Display`).
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parse the 16-hex-digit rendering back into an id.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Debug for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TraceId({:016x})", self.0)
    }
}

/// One hop of one traced request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// Which component recorded it (`pam`, `radius.client`,
    /// `radius.proxy`, `otp`).
    pub component: String,
    /// Short operation label (`authenticate`, `forward`, `validate`, …).
    pub label: String,
    /// Free-form detail (outcome, server name, attempt count; never
    /// secrets or token codes).
    pub detail: String,
}

struct TracerInner {
    spans: VecDeque<SpanRecord>,
    cap: usize,
    dropped: u64,
}

/// A bounded, thread-safe span buffer shared by every component on the
/// auth path (one per [`MetricsRegistry`]).
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
pub struct Tracer {
    inner: Mutex<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::with_cap(DEFAULT_TRACER_CAP)
    }
}

impl Tracer {
    /// New tracer with the default retention cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// New tracer retaining at most `cap` spans (ring eviction).
    pub fn with_cap(cap: usize) -> Self {
        Tracer {
            inner: Mutex::new(TracerInner {
                spans: VecDeque::new(),
                cap,
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TracerInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Record one span for `trace`.
    pub fn span(&self, trace: TraceId, component: &str, label: &str, detail: &str) {
        let mut inner = self.lock();
        if inner.cap == 0 {
            inner.dropped += 1;
            return;
        }
        while inner.spans.len() >= inner.cap {
            inner.spans.pop_front();
            inner.dropped += 1;
        }
        inner.spans.push_back(SpanRecord {
            trace,
            component: component.to_string(),
            label: label.to_string(),
            detail: detail.to_string(),
        });
    }

    /// All retained spans for `trace`, in recording order.
    pub fn spans_for(&self, trace: TraceId) -> Vec<SpanRecord> {
        self.lock()
            .spans
            .iter()
            .filter(|s| s.trace == trace)
            .cloned()
            .collect()
    }

    /// The distinct components that recorded spans for `trace`, sorted.
    pub fn components_for(&self, trace: TraceId) -> Vec<String> {
        self.lock()
            .spans
            .iter()
            .filter(|s| s.trace == trace)
            .map(|s| s.component.clone())
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// The distinct trace ids with retained spans, sorted.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        self.lock()
            .spans
            .iter()
            .map(|s| s.trace)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// Retained span count.
    pub fn len(&self) -> usize {
        self.lock().spans.len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.lock().spans.is_empty()
    }

    /// Spans evicted by the ring cap since creation.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Drop every retained span (the dropped counter is kept).
    pub fn clear(&self) {
        self.lock().spans.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_is_deterministic_and_scattered() {
        let ns = namespace("login1");
        assert_eq!(TraceId::derive(ns, 7), TraceId::derive(ns, 7));
        assert_ne!(TraceId::derive(ns, 7), TraceId::derive(ns, 8));
        assert_ne!(
            TraceId::derive(ns, 0),
            TraceId::derive(namespace("login2"), 0)
        );
    }

    #[test]
    fn hex_round_trip() {
        let id = TraceId::derive(namespace("x"), 42);
        assert_eq!(TraceId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(id.to_hex().len(), 16);
        assert_eq!(format!("{id}"), id.to_hex());
        assert!(TraceId::from_hex("nope").is_none());
        assert!(TraceId::from_hex("00112233445566778899").is_none());
    }

    #[test]
    fn mint_yields_distinct_ids() {
        assert_ne!(TraceId::mint(), TraceId::mint());
    }

    #[test]
    fn tracer_records_and_queries() {
        let t = Tracer::new();
        let a = TraceId::from_u64(1);
        let b = TraceId::from_u64(2);
        t.span(a, "pam", "authenticate", "challenge");
        t.span(a, "radius.proxy", "forward", "upstream=home");
        t.span(a, "otp", "validate", "ok");
        t.span(b, "pam", "authenticate", "reject");
        assert_eq!(t.spans_for(a).len(), 3);
        assert_eq!(t.components_for(a), vec!["otp", "pam", "radius.proxy"]);
        assert_eq!(t.trace_ids(), vec![a, b]);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn ring_cap_evicts_oldest() {
        let t = Tracer::with_cap(2);
        for i in 0..5 {
            t.span(TraceId::from_u64(i), "pam", "x", "");
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert!(t.spans_for(TraceId::from_u64(0)).is_empty());
        assert_eq!(t.spans_for(TraceId::from_u64(4)).len(), 1);
    }
}
