//! Export the simulated rollout's full per-day table as CSV — the raw data
//! behind Figures 3–6, for external plotting tools.
//!
//! ```text
//! cargo run --release -p hpcmfa-bench --bin export_csv > rollout.csv
//! ```

use hpcmfa_bench::FigureArgs;
use hpcmfa_otp::date::Date;
use hpcmfa_workload::figures::to_csv;

fn main() {
    let mut args = FigureArgs::parse();
    if args.to < Date::new(2017, 3, 31) {
        args.to = Date::new(2017, 3, 31);
    }
    let out = args.run();
    print!("{}", to_csv(&out));
}
