#!/usr/bin/env bash
# CI gate: hermetic build, full test suite, lint wall.
#
# Everything runs --offline: dependencies resolve to the path shims under
# shims/, so this must pass on a machine with no crate-registry access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> durability acceptance + crash-point sweep"
cargo test -q --offline --test durability
cargo test -q --offline -p hpcmfa-otpserver --test crash_sweep
cargo test -q --offline -p hpcmfa-otpserver --test wal_proptests

echo "==> telemetry: histogram properties, tracing, metrics scrape"
cargo test -q --offline -p hpcmfa-telemetry
cargo test -q --offline -p hpcmfa-telemetry --test histogram_props
cargo test -q --offline --test tracing
cargo test -q --offline --test telemetry

echo "==> alerting: rule engine, event stream, deterministic timelines"
cargo test -q --offline --test alerting
cargo test -q --offline -p hpcmfa-radius --test tracewire_props

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI green."
