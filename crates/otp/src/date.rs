//! Civil-date arithmetic (proleptic Gregorian ↔ Unix time).
//!
//! The MFA exemption configuration carries expiry dates ("temporary
//! variances that will automatically expire if the date has passed", §3.4)
//! and the rollout simulator walks a day-by-day calendar across the
//! 2016-08-10 → 10-04 transition. Both need date ↔ Unix-time conversion
//! without pulling a chrono dependency; the algorithms are the well-known
//! days-from-civil/civil-from-days routines.

/// A calendar date (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date {
    /// Year, e.g. 2016.
    pub year: i32,
    /// Month 1–12.
    pub month: u32,
    /// Day 1–31.
    pub day: u32,
}

/// Seconds per day.
pub const SECS_PER_DAY: u64 = 86_400;

/// Errors from [`Date::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DateParseError(pub String);

impl std::fmt::Display for DateParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid date: {}", self.0)
    }
}

impl std::error::Error for DateParseError {}

impl Date {
    /// Construct, panicking on out-of-range fields (validated construction
    /// goes through [`Date::new_checked`] or [`Date::parse`]).
    pub fn new(year: i32, month: u32, day: u32) -> Self {
        Self::new_checked(year, month, day)
            .unwrap_or_else(|| panic!("invalid date {year:04}-{month:02}-{day:02}"))
    }

    /// Construct with validation.
    pub fn new_checked(year: i32, month: u32, day: u32) -> Option<Self> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return None;
        }
        Some(Date { year, month, day })
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Self, DateParseError> {
        let parts: Vec<&str> = s.split('-').collect();
        if parts.len() != 3 || parts[0].len() != 4 {
            return Err(DateParseError(s.to_string()));
        }
        let year: i32 = parts[0].parse().map_err(|_| DateParseError(s.into()))?;
        let month: u32 = parts[1].parse().map_err(|_| DateParseError(s.into()))?;
        let day: u32 = parts[2].parse().map_err(|_| DateParseError(s.into()))?;
        Self::new_checked(year, month, day).ok_or_else(|| DateParseError(s.to_string()))
    }

    /// Days since 1970-01-01 (may be negative before the epoch).
    pub fn days_from_epoch(self) -> i64 {
        // Howard Hinnant's days_from_civil.
        let y = self.year as i64 - if self.month <= 2 { 1 } else { 0 };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = y - era * 400;
        let m = self.month as i64;
        let d = self.day as i64;
        let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
        era * 146_097 + doe - 719_468
    }

    /// The date containing Unix time `secs` (UTC).
    pub fn from_unix(secs: u64) -> Self {
        let days = (secs / SECS_PER_DAY) as i64;
        Self::from_days(days)
    }

    /// The date `days` after the epoch.
    pub fn from_days(days: i64) -> Self {
        // Howard Hinnant's civil_from_days.
        let z = days + 719_468;
        let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
        let doe = z - era * 146_097;
        let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
        Date {
            year: (y + if m <= 2 { 1 } else { 0 }) as i32,
            month: m,
            day: d,
        }
    }

    /// Unix time of this date's midnight UTC.
    pub fn unix_midnight(self) -> u64 {
        let days = self.days_from_epoch();
        assert!(days >= 0, "dates before 1970 have no unsigned Unix time");
        days as u64 * SECS_PER_DAY
    }

    /// The next calendar day.
    pub fn succ(self) -> Self {
        Self::from_days(self.days_from_epoch() + 1)
    }

    /// This date plus `n` days (n may be negative).
    pub fn plus_days(self, n: i64) -> Self {
        Self::from_days(self.days_from_epoch() + n)
    }

    /// Whole days from `self` to `other` (positive when other is later).
    pub fn days_until(self, other: Date) -> i64 {
        other.days_from_epoch() - self.days_from_epoch()
    }

    /// Day of week, 0 = Sunday … 6 = Saturday.
    pub fn weekday(self) -> u32 {
        ((self.days_from_epoch() + 4).rem_euclid(7)) as u32
    }

    /// Whether this is a Saturday or Sunday.
    pub fn is_weekend(self) -> bool {
        matches!(self.weekday(), 0 | 6)
    }
}

impl std::fmt::Display for Date {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04}-{:02}-{:02}", self.year, self.month, self.day)
    }
}

fn is_leap(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        let epoch = Date::new(1970, 1, 1);
        assert_eq!(epoch.days_from_epoch(), 0);
        assert_eq!(epoch.unix_midnight(), 0);
        assert_eq!(Date::from_unix(0), epoch);
    }

    #[test]
    fn known_dates() {
        // The paper's milestones.
        let announce = Date::parse("2016-08-10").unwrap();
        let phase2 = Date::parse("2016-09-06").unwrap();
        let mandatory = Date::parse("2016-10-04").unwrap();
        assert_eq!(announce.unix_midnight(), 1_470_787_200);
        assert_eq!(phase2.unix_midnight(), 1_473_120_000);
        assert_eq!(mandatory.unix_midnight(), 1_475_539_200);
        assert_eq!(announce.days_until(mandatory), 55);
        assert_eq!(phase2.weekday(), 2); // a Tuesday
    }

    #[test]
    fn round_trip_every_day_of_2016_2017() {
        let mut d = Date::new(2016, 1, 1);
        for _ in 0..730 {
            assert_eq!(Date::from_unix(d.unix_midnight()), d);
            assert_eq!(Date::from_unix(d.unix_midnight() + 86_399), d);
            let n = d.succ();
            assert_eq!(d.days_until(n), 1);
            d = n;
        }
        assert_eq!(d, Date::new(2017, 12, 31));
    }

    #[test]
    fn leap_year_handling() {
        assert!(Date::new_checked(2016, 2, 29).is_some());
        assert!(Date::new_checked(2017, 2, 29).is_none());
        assert!(Date::new_checked(2000, 2, 29).is_some());
        assert!(Date::new_checked(1900, 2, 29).is_none());
        assert_eq!(Date::new(2016, 2, 28).succ(), Date::new(2016, 2, 29));
        assert_eq!(Date::new(2016, 2, 29).succ(), Date::new(2016, 3, 1));
    }

    #[test]
    fn parse_and_display() {
        let d = Date::parse("2016-10-04").unwrap();
        assert_eq!(d.to_string(), "2016-10-04");
        assert!(Date::parse("2016-13-01").is_err());
        assert!(Date::parse("2016-00-01").is_err());
        assert!(Date::parse("2016-01-32").is_err());
        assert!(Date::parse("16-01-01").is_err());
        assert!(Date::parse("not-a-date").is_err());
        assert!(Date::parse("2016/01/01").is_err());
    }

    #[test]
    fn weekday_known_values() {
        assert_eq!(Date::new(1970, 1, 1).weekday(), 4); // Thursday
        assert_eq!(Date::new(2016, 10, 4).weekday(), 2); // Tuesday
        assert!(Date::new(2016, 10, 1).is_weekend()); // Saturday
        assert!(Date::new(2016, 10, 2).is_weekend()); // Sunday
        assert!(!Date::new(2016, 10, 3).is_weekend()); // Monday
    }

    #[test]
    fn plus_days_and_ordering() {
        let d = Date::new(2016, 8, 10);
        assert_eq!(d.plus_days(55), Date::new(2016, 10, 4));
        assert_eq!(d.plus_days(-10), Date::new(2016, 7, 31));
        assert!(Date::new(2016, 8, 10) < Date::new(2016, 9, 6));
    }
}
