//! The OTP back end: a LinOTP-work-alike validation server.
//!
//! The paper's §3.1 back end is "an open source OTP-platform" holding "a
//! repository that keeps track of users and their associated one-time
//! password secret key", reachable only through trusted RADIUS servers, with
//! a web admin interface for staff. This crate reproduces that component:
//!
//! * [`store`] — the token database (the MariaDB substitute): pairings for
//!   soft/hard TOTP tokens, SMS tokens, and static training tokens, with
//!   replay nullification and per-user failure counters.
//! * [`server`] — the validation engine: token-code checks with drift
//!   windows, the 20-consecutive-failure lockout (§3.1), SMS triggering
//!   with "already sent" suppression (§3.3), and resynchronization.
//! * [`sms`] — the Twilio-substitute SMS gateway with the paper's cost
//!   model ($1/month + $0.0075 per US message) and a carrier-delay model
//!   that occasionally delivers codes after expiry, as §5 reports.
//! * [`audit`] — the audit log admins consult ("Admins can view user
//!   pairings, re-synchronize tokens, access audit logs, and clear failure
//!   counters", §3.1).
//! * [`handler`] — the RADIUS [`Handler`](hpcmfa_radius::server::Handler)
//!   bridging Access-Requests to the validation engine, implementing the
//!   challenge–response flow of Figure 2.
//! * [`admin`] — the administrative REST-style interface the portal drives
//!   over HTTP digest auth (§3.5), with [`json`] as its wire format.

pub mod admin;
pub mod audit;
pub mod durability;
pub mod handler;
pub mod json;
pub mod overload;
pub mod server;
pub mod sms;
pub mod store;

pub use durability::{
    recover, ApplyResult, ClusterBackend, DurabilityCounters, FileBackend, LinkFaultPlan,
    MemoryBackend, MemoryLink, OtpCluster, Persistence, RecoverError, RecoveryReport, ReplEnvelope,
    ReplFrame, ReplicationLink, ReplicationMode, StandbyNode, StorageBackend, StorageError,
    StorageFaultPlan,
};
pub use handler::OtpRadiusHandler;
pub use overload::{AdmissionController, OverloadConfig, ShedReason};
pub use server::{LinotpServer, ResumeConsumeOutcome, SmsTrigger, ValidationOutcome};
pub use sms::{SmsProvider, TwilioSim};
pub use store::{TokenPairing, TokenStore, UserTokenStatus};

/// Consecutive failed validations before a user account is temporarily
/// deactivated ("a threshold of 20 consecutive failed attempts must occur
/// before a user account is temporarily deactivated", §3.1).
pub const LOCKOUT_THRESHOLD: u32 = 20;

/// Seconds an SMS-delivered token code stays valid.
pub const SMS_CODE_VALIDITY_SECS: u64 = 300;

/// Drift tolerance for TOTP validation, in seconds (§3.3: 300 s).
pub const DRIFT_TOLERANCE_SECS: u64 = 300;
