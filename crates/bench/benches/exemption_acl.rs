//! DESIGN.md ablation #1: exemption-list scan strategy at scale.
//!
//! "This mechanism allows for dynamic, powerful, and scalable
//! configurations" (§3.4) — this bench quantifies the scalability: the
//! linear first-match scan vs the per-user index, from 10 rules to 100k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcmfa_pam::access::{AccessConfig, AccessIndex};
use std::fmt::Write as _;
use std::hint::black_box;
use std::net::Ipv4Addr;

fn config_with(n: usize) -> AccessConfig {
    let mut text = String::new();
    for i in 0..n {
        let _ = writeln!(
            text,
            "+ : user{i:06} : 10.{}.{}.0/24 : ALL",
            (i / 250) % 250,
            i % 250
        );
    }
    // The internal-network catch-all sits last, like production.
    text.push_str("+ : ALL : 129.114.0.0/16 : ALL\n");
    AccessConfig::parse(&text).expect("valid config")
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("exemption_acl");
    let probe_ip: Ipv4Addr = "8.8.8.8".parse().unwrap();
    let internal_ip: Ipv4Addr = "129.114.7.7".parse().unwrap();
    for n in [10usize, 1_000, 10_000, 100_000] {
        let cfg = config_with(n);
        let index = AccessIndex::build(&cfg);
        // Worst case for the linear scan: a user matching no explicit rule
        // coming from outside (falls through everything).
        group.bench_with_input(BenchmarkId::new("linear_miss", n), &n, |b, _| {
            b.iter(|| cfg.decide(black_box("nobody"), probe_ip, 0))
        });
        group.bench_with_input(BenchmarkId::new("indexed_miss", n), &n, |b, _| {
            b.iter(|| index.decide(black_box("nobody"), probe_ip, 0))
        });
        // Internal traffic hits the trailing ALL rule.
        group.bench_with_input(BenchmarkId::new("linear_internal", n), &n, |b, _| {
            b.iter(|| cfg.decide(black_box("nobody"), internal_ip, 0))
        });
        group.bench_with_input(BenchmarkId::new("indexed_internal", n), &n, |b, _| {
            b.iter(|| index.decide(black_box("nobody"), internal_ip, 0))
        });
        // A user with an early explicit rule.
        group.bench_with_input(BenchmarkId::new("linear_hit_first", n), &n, |b, _| {
            b.iter(|| cfg.decide(black_box("user000000"), "10.0.0.5".parse().unwrap(), 0))
        });
        group.bench_with_input(BenchmarkId::new("indexed_hit_first", n), &n, |b, _| {
            b.iter(|| index.decide(black_box("user000000"), "10.0.0.5".parse().unwrap(), 0))
        });
    }
    group.finish();
}

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("exemption_parse");
    group.sample_size(20);
    for n in [1_000usize, 10_000] {
        let mut text = String::new();
        for i in 0..n {
            let _ = writeln!(text, "+ : user{i:06} : 10.0.0.0/8 : 2016-12-31");
        }
        group.bench_with_input(BenchmarkId::new("parse", n), &text, |b, t| {
            b.iter(|| AccessConfig::parse(black_box(t)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scaling, bench_parse);
criterion_main!(benches);
