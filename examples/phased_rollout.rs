//! The §5 phased rollout in miniature: run the calendar simulator over a
//! scaled-down population and print the phase-by-phase story plus Table 1.
//!
//! ```text
//! cargo run --release --example phased_rollout
//! ```

use securing_hpc::otp::date::Date;
use securing_hpc::workload::figures::Table1;
use securing_hpc::workload::rollout::{RolloutParams, RolloutSim};

fn main() {
    let params = RolloutParams {
        population_scale: 0.05,
        seed: 42,
        ..RolloutParams::default()
    };
    println!(
        "replaying 2016-07-01 .. 2016-12-31 at population scale {} ...",
        params.population_scale
    );
    let out = RolloutSim::new(params).run();

    let window = |from: Date, to: Date| {
        let mut mfa_users = 0u64;
        let mut ext = 0u64;
        let mut ext_mfa = 0u64;
        let mut pairings = 0u64;
        let mut n = 0u64;
        for d in &out.days {
            if d.date >= from && d.date <= to {
                mfa_users += d.unique_mfa_users as u64;
                ext += d.ext_total_logins;
                ext_mfa += d.ext_mfa_logins;
                pairings += d.new_pairings;
                n += 1;
            }
        }
        (
            mfa_users as f64 / n as f64,
            ext as f64 / n as f64,
            ext_mfa as f64 / n as f64,
            pairings,
        )
    };

    println!(
        "\n{:<34}{:>10}{:>12}{:>12}{:>10}",
        "window", "mfa/day", "ext/day", "extMFA/day", "pairings"
    );
    for (label, from, to) in [
        (
            "pre-announcement (Jul)",
            Date::new(2016, 7, 1),
            Date::new(2016, 8, 9),
        ),
        (
            "phase 1: opt-in (08-10..09-05)",
            Date::new(2016, 8, 10),
            Date::new(2016, 9, 5),
        ),
        (
            "phase 2: countdown (09-06..10-03)",
            Date::new(2016, 9, 6),
            Date::new(2016, 10, 3),
        ),
        (
            "phase 3: mandatory (10-04..12-16)",
            Date::new(2016, 10, 4),
            Date::new(2016, 12, 16),
        ),
        (
            "winter holiday (12-17..12-30)",
            Date::new(2016, 12, 17),
            Date::new(2016, 12, 30),
        ),
    ] {
        let (mfa, ext, ext_mfa, pairings) = window(from, to);
        println!("{label:<34}{mfa:>10.1}{ext:>12.1}{ext_mfa:>12.1}{pairings:>10}");
    }

    println!("\nbiggest pairing days:");
    for (rank, (date, n)) in securing_hpc::workload::figures::pairing_rank(&out)
        .iter()
        .take(5)
        .enumerate()
    {
        println!("  #{} {date}: {n}", rank + 1);
    }

    if let Some(t) = Table1::from_output(&out) {
        println!("\n{}", t.render_against_paper());
    }
    println!(
        "successful logins simulated: {} — SMS sent: {} (cost ${:.2})",
        out.total_successful_logins,
        out.sms_sent,
        out.sms_cost_micros as f64 / 1e6
    );
}
