//! The §6 growth features in action: "ready to be grown to incorporate new
//! features including geolocation services, dynamic risk assessment, or
//! biometric security."
//!
//! A risk gate and geolocation policy slot into the Figure 1 stack without
//! modifying any existing component: risky logins lose their MFA
//! exemption; impossible travel is refused outright.
//!
//! ```text
//! cargo run --example risk_assessment
//! ```

use securing_hpc::core::center::{Center, CenterConfig};
use securing_hpc::pam::context::PamContext;
use securing_hpc::pam::conv::ScriptedConversation;
use securing_hpc::pam::modules::exemption::ExemptionModule;
use securing_hpc::pam::modules::password::UnixPasswordModule;
use securing_hpc::pam::modules::token::{EnforcementMode, TokenModule};
use securing_hpc::pam::stack::{ControlFlag, PamStack};
use securing_hpc::risk::engine::{RiskEngine, RiskGateModule, RiskWeights};
use securing_hpc::risk::geo::GeoDb;
use std::sync::Arc;

const DAY: u64 = 86_400;

fn main() {
    let center = Center::new(CenterConfig::default());
    center.create_user("gateway1", "ops@gateway.org", "gw-pw");
    center
        .add_exemption_rule("+ : gateway1 : ALL : ALL")
        .unwrap();
    let node = &center.nodes[0];

    // A small GeoIP database (production would load a full one).
    let geodb = Arc::new(
        GeoDb::parse(
            "129.114.0.0/16 US  # the center itself\n\
             70.0.0.0/8     US\n\
             141.30.0.0/16  DE\n\
             1.2.0.0/16     CN\n",
        )
        .unwrap(),
    );
    let engine = RiskEngine::new(Arc::clone(&geodb), RiskWeights::default());

    // Figure 1 stack + risk gate at the top.
    let mut stack = PamStack::new();
    stack.push(
        ControlFlag::Requisite,
        RiskGateModule::new(Arc::clone(&engine)),
    );
    stack.push(
        ControlFlag::Requisite,
        UnixPasswordModule::new(center.directory.clone(), "ou=people,dc=tacc"),
    );
    stack.push(
        ControlFlag::Sufficient,
        ExemptionModule::new(node.exemptions.clone()),
    );
    stack.push(
        ControlFlag::Required,
        TokenModule::new(
            EnforcementMode::Full,
            Arc::clone(&node.radius_client),
            center.directory.clone(),
            "ou=people,dc=tacc",
            7,
        ),
    );

    let login = |label: &str, ip: &str, answers: Vec<&str>| {
        let mut conv = ScriptedConversation::with_answers(answers.iter().map(|s| s.to_string()));
        let transcript = conv.transcript();
        let mut ctx = PamContext::new(
            "gateway1",
            ip.parse().unwrap(),
            Arc::new(center.clock.clone()),
            &mut conv,
        );
        let verdict = stack.authenticate(&mut ctx);
        let (score, decision) = { (ctx.risk_step_up, verdict) };
        println!("{label:<44} from {ip:<12} -> {decision:?} (step-up demanded: {score})");
        for p in transcript.lock().iter() {
            println!("    prompt: {}", p.prompt.text());
        }
        verdict
    };

    println!("exempt gateway account under dynamic risk assessment:\n");
    login(
        "habitual location, exemption bypasses MFA",
        "70.1.2.3",
        vec!["gw-pw"],
    );

    center.clock.advance(45 * DAY);
    login(
        "new country: step-up, exemption refused",
        "141.30.9.9",
        vec!["gw-pw"],
    );

    center.clock.advance(900);
    login(
        "15 min later from another continent: denied",
        "1.2.3.4",
        vec!["gw-pw"],
    );

    center.clock.advance(45 * DAY);
    login(
        "back home: standing exemption works again",
        "70.1.2.3",
        vec!["gw-pw"],
    );
}
