//! Figure 5: user support tickets per day, MFA vs all inquiries.
//!
//! Paper numbers: MFA inquiries averaged 6.7 % of tickets August–December
//! 2016 and 2.7 % January–March 2017.

use hpcmfa_bench::FigureArgs;
use hpcmfa_otp::date::Date;
use hpcmfa_workload::figures::{fig5_series, render_multi_series};

fn main() {
    let mut args = FigureArgs::parse();
    // Figure 5 extends into Q1 2017, and its Q1 ticket counts are small
    // enough that the default population scale is too noisy — raise it
    // unless the user chose one explicitly.
    if args.to < Date::new(2017, 3, 31) {
        args.to = Date::new(2017, 3, 31);
    }
    if !args.scale_explicit {
        args.scale = 0.3;
    }
    let out = args.run();
    let series = fig5_series(&out);
    let rows: Vec<(Date, Vec<u64>)> = series
        .iter()
        .map(|(d, mfa, total)| (*d, vec![*mfa, *total]))
        .collect();
    println!(
        "{}",
        render_multi_series("Figure 5: support tickets per day", &["mfa", "all"], &rows)
    );

    let transition = out.ticket_mfa_share(Date::new(2016, 8, 1), Date::new(2016, 12, 31));
    let q1 = out.ticket_mfa_share(Date::new(2017, 1, 1), Date::new(2017, 3, 31));
    println!("\nMFA share of ticket inquiries:");
    println!(
        "  Aug–Dec 2016: measured {:5.1} %   (paper: 6.7 %)",
        transition * 100.0
    );
    println!(
        "  Jan–Mar 2017: measured {:5.1} %   (paper: 2.7 %)",
        q1 * 100.0
    );
}
