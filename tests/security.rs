//! Adversarial integration tests: the layered design must hold against
//! protocol-level attacks, not just wrong codes.

use rand::rngs::StdRng;
use rand::SeedableRng;
use securing_hpc::core::Clock as _;
use securing_hpc::crypto::digestauth::answer_challenge;
use securing_hpc::otp::clock::SimClock;
use securing_hpc::otp::device::SoftToken;
use securing_hpc::otp::totp::TotpParams;
use securing_hpc::otpserver::admin::{AdminApi, HttpRequest};
use securing_hpc::otpserver::handler::OtpRadiusHandler;
use securing_hpc::otpserver::json::Json;
use securing_hpc::otpserver::server::LinotpServer;
use securing_hpc::otpserver::sms::TwilioSim;
use securing_hpc::radius::attribute::{Attribute, AttributeType};
use securing_hpc::radius::auth::{hide_password, request_authenticator, verify_response};
use securing_hpc::radius::packet::{Code, Packet};
use securing_hpc::radius::server::RadiusServer;
use std::sync::Arc;

const NOW: u64 = 1_475_000_000;
const SECRET: &[u8] = b"pool-secret";

fn radius_rig() -> (Arc<RadiusServer>, Arc<LinotpServer>, SimClock) {
    let clock = SimClock::at(NOW);
    let linotp = LinotpServer::new(TwilioSim::new(1), 2);
    let handler = OtpRadiusHandler::new(Arc::clone(&linotp), Arc::new(clock.clone()));
    (Arc::new(RadiusServer::new(SECRET, handler)), linotp, clock)
}

/// An off-path attacker cannot forge an Access-Accept without the shared
/// secret: the response authenticator verification fails.
#[test]
fn forged_access_accept_is_detected() {
    let (_server, _linotp, _clock) = radius_rig();
    let mut rng = StdRng::seed_from_u64(3);
    let ra = request_authenticator(&mut rng);

    // The attacker fabricates an Accept with a guessed authenticator.
    let forged = Packet::new(Code::AccessAccept, 7, [0x41; 16]);
    assert!(!verify_response(&forged, &ra, SECRET));

    // Even copying a legitimate response under a *different* request
    // authenticator fails (no replay across requests).
    let (server, linotp, _clock) = radius_rig();
    linotp.enroll_soft("alice", NOW);
    let req_auth = request_authenticator(&mut rng);
    let req = Packet::new(Code::AccessRequest, 9, req_auth)
        .with_attribute(Attribute::text(AttributeType::UserName, "alice"))
        .with_attribute(Attribute::new(
            AttributeType::UserPassword,
            hide_password(b"", &req_auth, SECRET),
        ));
    let reply = server.process_datagram(&req.encode()).unwrap();
    let reply = Packet::decode(&reply).unwrap();
    assert!(verify_response(&reply, &req_auth, SECRET));
    let other_request_auth = request_authenticator(&mut rng);
    assert!(!verify_response(&reply, &other_request_auth, SECRET));
}

/// Token codes travel hidden inside `User-Password`; the wire bytes never
/// contain the cleartext code.
#[test]
fn token_code_not_visible_on_the_wire() {
    let mut rng = StdRng::seed_from_u64(4);
    let ra = request_authenticator(&mut rng);
    let code = b"123456";
    let req = Packet::new(Code::AccessRequest, 1, ra)
        .with_attribute(Attribute::text(AttributeType::UserName, "alice"))
        .with_attribute(Attribute::new(
            AttributeType::UserPassword,
            hide_password(code, &ra, SECRET),
        ));
    let wire = req.encode();
    assert!(
        !wire.windows(code.len()).any(|w| w == code),
        "cleartext code leaked on the wire"
    );
}

/// A captured valid code is worthless after use (server-side nullification)
/// and across nodes, because replay state lives in the shared back end.
#[test]
fn captured_code_replay_fails() {
    let (server, linotp, clock) = radius_rig();
    let secret = linotp.enroll_soft("alice", NOW);
    let device = SoftToken::new(secret, TotpParams::default());
    clock.advance(60);
    let code = device.displayed_code(clock.now());
    assert!(linotp.validate("alice", &code, clock.now()).is_success());
    // The eavesdropper replays the exact code seconds later.
    clock.advance(5);
    assert!(!linotp.validate("alice", &code, clock.now()).is_success());
    let _ = server;
}

/// Digest-auth admin sessions resist credential replay: a sniffed
/// Authorization header cannot be reused.
#[test]
fn admin_api_replay_and_privilege_checks() {
    let linotp = LinotpServer::new(TwilioSim::new(9), 8);
    let api = AdminApi::new(Arc::clone(&linotp), "LinOTP admin area", 3);
    api.add_admin("portal", "pw");

    let chal = api.issue_challenge();
    let auth = answer_challenge(&chal, "portal", "pw", "POST", "/admin/init", "cn", 1);
    let req = HttpRequest::new(
        "POST",
        "/admin/init",
        Json::obj([("user", Json::str("alice"))]),
    )
    .with_auth(auth.clone());
    assert_eq!(api.handle(&req, NOW).status, 200);
    // Replay of the same header: rejected with a fresh challenge.
    let replayed = api.handle(&req, NOW + 1);
    assert_eq!(replayed.status, 401);
    assert!(replayed.challenge.is_some());

    // A sniffed Authorization for one route cannot hit another route.
    let chal2 = api.issue_challenge();
    let auth2 = answer_challenge(&chal2, "portal", "pw", "POST", "/admin/init", "cn", 1);
    let cross = HttpRequest::new(
        "POST",
        "/admin/remove",
        Json::obj([("user", Json::str("alice"))]),
    )
    .with_auth(auth2);
    assert_eq!(api.handle(&cross, NOW).status, 401);
}

/// The SMS "null request" cannot be abused to spam texts: while a code is
/// active the provider is not contacted again (§3.3).
#[test]
fn sms_flooding_is_suppressed() {
    use securing_hpc::otpserver::sms::{PhoneNumber, SmsProvider};
    let twilio = TwilioSim::new(5);
    let linotp = LinotpServer::new(Arc::clone(&twilio) as Arc<dyn SmsProvider>, 6);
    linotp.enroll_sms("bob", PhoneNumber::parse("5125550002").unwrap(), NOW);
    for i in 0..50 {
        let _ = linotp.trigger_sms("bob", NOW + i);
    }
    assert_eq!(twilio.sent_count(), 1, "only the first trigger sends");
}

/// Malformed RADIUS datagrams are discarded silently, never answered.
#[test]
fn malformed_datagrams_are_discarded() {
    let (server, _linotp, _clock) = radius_rig();
    for garbage in [
        vec![],
        vec![0xff; 3],
        vec![0x01; 19], // one byte short of a header
        {
            let mut v = vec![0x63; 64]; // unknown code
            v[2] = 0;
            v[3] = 64;
            v
        },
    ] {
        assert_eq!(server.process_datagram(&garbage), None);
    }
}
