//! RADIUS packet encoding and decoding (RFC 2865 §3).
//!
//! Layout: `code(1) | identifier(1) | length(2, BE) | authenticator(16) |
//! attributes...`.
//!
//! Two decode paths share one validation discipline:
//!
//! * [`Packet::decode`] — owned: every attribute value is copied into its
//!   own `Vec<u8>`. Kept for construction-side round trips and anything
//!   that outlives the receive buffer.
//! * [`PacketView::parse`] — borrowed: one validating walk of the TLVs,
//!   then attributes are yielded as [`AttrView`] slices into the original
//!   buffer. Zero heap allocations per attribute — the ingest hot loop
//!   decodes every datagram this way. The two paths accept and reject
//!   byte-identical inputs with identical [`PacketError`]s (property
//!   tested in `tests/view_props.rs`).

use crate::attribute::{AttrView, Attribute, AttributeType};
use crate::{MAX_PACKET_LEN, MIN_PACKET_LEN};

/// RADIUS packet codes used by the authentication flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// 1 — login node asks the back end to authenticate.
    AccessRequest,
    /// 2 — authentication succeeded; PAM exits the stack successfully.
    AccessAccept,
    /// 3 — authentication failed.
    AccessReject,
    /// 11 — server demands more input (the token-code prompt).
    AccessChallenge,
}

impl Code {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            Code::AccessRequest => 1,
            Code::AccessAccept => 2,
            Code::AccessReject => 3,
            Code::AccessChallenge => 11,
        }
    }

    /// Parse a wire code.
    pub fn from_code(c: u8) -> Option<Self> {
        match c {
            1 => Some(Code::AccessRequest),
            2 => Some(Code::AccessAccept),
            3 => Some(Code::AccessReject),
            11 => Some(Code::AccessChallenge),
            _ => None,
        }
    }
}

/// Decode errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer than 20 bytes.
    TooShort,
    /// Longer than the RFC maximum or longer than the declared length.
    BadLength {
        /// Length declared in the header.
        declared: usize,
        /// Bytes actually available.
        actual: usize,
    },
    /// Unknown packet code.
    UnknownCode(u8),
    /// Attribute TLV runs past the packet or has length < 2.
    MalformedAttribute {
        /// Offset of the offending attribute.
        offset: usize,
    },
}

impl std::fmt::Display for PacketError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PacketError::TooShort => write!(f, "packet shorter than 20-byte header"),
            PacketError::BadLength { declared, actual } => {
                write!(f, "declared length {declared} vs actual {actual}")
            }
            PacketError::UnknownCode(c) => write!(f, "unknown packet code {c}"),
            PacketError::MalformedAttribute { offset } => {
                write!(f, "malformed attribute at offset {offset}")
            }
        }
    }
}

impl std::error::Error for PacketError {}

/// A decoded RADIUS packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Packet code.
    pub code: Code,
    /// Request/response matching identifier.
    pub identifier: u8,
    /// 16-byte authenticator (random for requests, MD5 chain for replies).
    pub authenticator: [u8; 16],
    /// Attributes in wire order.
    pub attributes: Vec<Attribute>,
}

impl Packet {
    /// Construct a packet.
    pub fn new(code: Code, identifier: u8, authenticator: [u8; 16]) -> Self {
        Packet {
            code,
            identifier,
            authenticator,
            attributes: Vec::new(),
        }
    }

    /// Builder-style attribute addition.
    pub fn with_attribute(mut self, attr: Attribute) -> Self {
        self.attributes.push(attr);
        self
    }

    /// First attribute of `ty`.
    pub fn attribute(&self, ty: AttributeType) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.ty == ty)
    }

    /// All attributes of `ty` (Proxy-State may repeat).
    pub fn attributes_of(&self, ty: AttributeType) -> Vec<&Attribute> {
        self.attributes.iter().filter(|a| a.ty == ty).collect()
    }

    /// Text value of the first attribute of `ty`.
    pub fn text(&self, ty: AttributeType) -> Option<&str> {
        self.attribute(ty).and_then(Attribute::as_text)
    }

    /// Total encoded length.
    pub fn wire_len(&self) -> usize {
        MIN_PACKET_LEN
            + self
                .attributes
                .iter()
                .map(Attribute::wire_len)
                .sum::<usize>()
    }

    /// Encode to wire bytes (thin allocating wrapper over
    /// [`Packet::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.wire_len());
        self.encode_into(&mut buf);
        buf
    }

    /// Encode into a caller-provided buffer, clearing it first. The hot
    /// encode path: per-worker reply buffers are reused across datagrams,
    /// so steady-state encoding allocates nothing.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let len = self.wire_len();
        debug_assert!(len <= MAX_PACKET_LEN, "packet exceeds RFC maximum");
        buf.clear();
        buf.reserve(len);
        buf.push(self.code.code());
        buf.push(self.identifier);
        buf.extend_from_slice(&(len as u16).to_be_bytes());
        buf.extend_from_slice(&self.authenticator);
        for attr in &self.attributes {
            attr.encode(buf);
        }
    }

    /// Decode from wire bytes.
    pub fn decode(data: &[u8]) -> Result<Self, PacketError> {
        if data.len() < MIN_PACKET_LEN {
            return Err(PacketError::TooShort);
        }
        let declared = u16::from_be_bytes([data[2], data[3]]) as usize;
        if declared < MIN_PACKET_LEN || declared > data.len() || declared > MAX_PACKET_LEN {
            return Err(PacketError::BadLength {
                declared,
                actual: data.len(),
            });
        }
        let code = Code::from_code(data[0]).ok_or(PacketError::UnknownCode(data[0]))?;
        let identifier = data[1];
        let mut authenticator = [0u8; 16];
        authenticator.copy_from_slice(&data[4..20]);

        let mut attributes = Vec::new();
        let mut offset = MIN_PACKET_LEN;
        // RFC: octets past the declared length are padding and ignored.
        while offset < declared {
            if declared - offset < 2 {
                return Err(PacketError::MalformedAttribute { offset });
            }
            let ty = AttributeType::from_code(data[offset]);
            let alen = data[offset + 1] as usize;
            if alen < 2 || offset + alen > declared {
                return Err(PacketError::MalformedAttribute { offset });
            }
            attributes.push(Attribute::new(ty, data[offset + 2..offset + alen].to_vec()));
            offset += alen;
        }
        Ok(Packet {
            code,
            identifier,
            authenticator,
            attributes,
        })
    }

    /// Borrow this packet's attributes as views (construction-side
    /// counterpart of [`PacketView::attributes`]).
    pub fn attribute_views(&self) -> impl Iterator<Item = AttrView<'_>> {
        self.attributes.iter().map(Attribute::as_view)
    }
}

/// A zero-copy decoded RADIUS packet: header fields plus a validated
/// attribute region borrowed from the receive buffer.
///
/// [`PacketView::parse`] performs the same validating TLV walk as
/// [`Packet::decode`] — same accepted inputs, same [`PacketError`]s — but
/// copies nothing: attributes are yielded as [`AttrView`] slices. This is
/// the decode path of the batched ingest loop, where one owned `Vec` per
/// attribute per datagram was the dominant allocation cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView<'a> {
    /// Packet code.
    pub code: Code,
    /// Request/response matching identifier.
    pub identifier: u8,
    /// 16-byte authenticator, borrowed.
    authenticator: &'a [u8; 16],
    /// The validated attribute region (`[20, declared_len)`).
    attrs: &'a [u8],
}

impl<'a> PacketView<'a> {
    /// Validate and borrow a packet from wire bytes. Accepts and rejects
    /// exactly the inputs [`Packet::decode`] does, with identical errors;
    /// octets past the declared length are padding and ignored.
    pub fn parse(data: &'a [u8]) -> Result<Self, PacketError> {
        if data.len() < MIN_PACKET_LEN {
            return Err(PacketError::TooShort);
        }
        let declared = u16::from_be_bytes([data[2], data[3]]) as usize;
        if declared < MIN_PACKET_LEN || declared > data.len() || declared > MAX_PACKET_LEN {
            return Err(PacketError::BadLength {
                declared,
                actual: data.len(),
            });
        }
        let code = Code::from_code(data[0]).ok_or(PacketError::UnknownCode(data[0]))?;
        // One validating walk of the TLV region; values are not touched.
        let mut offset = MIN_PACKET_LEN;
        while offset < declared {
            if declared - offset < 2 {
                return Err(PacketError::MalformedAttribute { offset });
            }
            let alen = data[offset + 1] as usize;
            if alen < 2 || offset + alen > declared {
                return Err(PacketError::MalformedAttribute { offset });
            }
            offset += alen;
        }
        let authenticator: &[u8; 16] = data[4..20].try_into().expect("length checked");
        Ok(PacketView {
            code,
            identifier: data[1],
            authenticator,
            attrs: &data[MIN_PACKET_LEN..declared],
        })
    }

    /// The 16-byte authenticator, borrowed from the buffer.
    pub fn authenticator(&self) -> &'a [u8; 16] {
        self.authenticator
    }

    /// Total length this packet declares on the wire.
    pub fn wire_len(&self) -> usize {
        MIN_PACKET_LEN + self.attrs.len()
    }

    /// Iterate the attributes in wire order, zero-copy. The region was
    /// validated at parse time, so iteration is infallible.
    pub fn attributes(&self) -> AttrIter<'a> {
        AttrIter { rest: self.attrs }
    }

    /// First attribute of `ty`.
    pub fn attribute(&self, ty: AttributeType) -> Option<AttrView<'a>> {
        self.attributes().find(|a| a.ty == ty)
    }

    /// All attributes of `ty` (Proxy-State may repeat), zero-copy.
    pub fn attributes_of(&self, ty: AttributeType) -> impl Iterator<Item = AttrView<'a>> {
        self.attributes().filter(move |a| a.ty == ty)
    }

    /// Text value of the first attribute of `ty`.
    pub fn text(&self, ty: AttributeType) -> Option<&'a str> {
        self.attribute(ty).and_then(|a| a.as_text())
    }

    /// Copy into an owned [`Packet`] (the compatibility bridge for
    /// handlers that have not opted into view dispatch).
    pub fn to_packet(&self) -> Packet {
        Packet {
            code: self.code,
            identifier: self.identifier,
            authenticator: *self.authenticator,
            attributes: self.attributes().map(|a| a.to_owned()).collect(),
        }
    }
}

/// Infallible TLV iterator over a validated attribute region.
#[derive(Debug, Clone, Copy)]
pub struct AttrIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for AttrIter<'a> {
    type Item = AttrView<'a>;

    fn next(&mut self) -> Option<AttrView<'a>> {
        if self.rest.len() < 2 {
            return None;
        }
        let ty = AttributeType::from_code(self.rest[0]);
        let alen = (self.rest[1] as usize).clamp(2, self.rest.len());
        let value = &self.rest[2..alen];
        self.rest = &self.rest[alen..];
        Some(AttrView { ty, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Packet {
        Packet::new(Code::AccessRequest, 42, [7u8; 16])
            .with_attribute(Attribute::text(AttributeType::UserName, "alice"))
            .with_attribute(Attribute::new(AttributeType::State, vec![1, 2, 3]))
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = sample();
        let decoded = Packet::decode(&p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn header_layout() {
        let p = sample();
        let wire = p.encode();
        assert_eq!(wire[0], 1); // Access-Request
        assert_eq!(wire[1], 42);
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]) as usize, wire.len());
        assert_eq!(&wire[4..20], &[7u8; 16]);
    }

    #[test]
    fn empty_attribute_list() {
        let p = Packet::new(Code::AccessAccept, 0, [0u8; 16]);
        let wire = p.encode();
        assert_eq!(wire.len(), 20);
        assert_eq!(Packet::decode(&wire).unwrap(), p);
    }

    #[test]
    fn trailing_padding_ignored() {
        let p = sample();
        let mut wire = p.encode();
        wire.extend_from_slice(&[0u8; 7]); // UDP padding
        assert_eq!(Packet::decode(&wire).unwrap(), p);
    }

    #[test]
    fn too_short_rejected() {
        assert_eq!(Packet::decode(&[1, 2, 0, 4]), Err(PacketError::TooShort));
    }

    #[test]
    fn declared_length_beyond_buffer_rejected() {
        let p = sample();
        let mut wire = p.encode();
        let bogus = (wire.len() + 10) as u16;
        wire[2..4].copy_from_slice(&bogus.to_be_bytes());
        assert!(matches!(
            Packet::decode(&wire),
            Err(PacketError::BadLength { .. })
        ));
    }

    #[test]
    fn declared_length_below_header_rejected() {
        let mut wire = Packet::new(Code::AccessAccept, 0, [0u8; 16]).encode();
        wire[2..4].copy_from_slice(&10u16.to_be_bytes());
        assert!(matches!(
            Packet::decode(&wire),
            Err(PacketError::BadLength { .. })
        ));
    }

    #[test]
    fn unknown_code_rejected() {
        let mut wire = sample().encode();
        wire[0] = 99;
        assert_eq!(Packet::decode(&wire), Err(PacketError::UnknownCode(99)));
    }

    #[test]
    fn truncated_attribute_rejected() {
        let mut wire = sample().encode();
        // Corrupt the last attribute's length to run past the packet.
        let len = wire.len();
        wire[len - 4] = 200;
        // Keep declared packet length the same: attribute overruns.
        assert!(matches!(
            Packet::decode(&wire),
            Err(PacketError::MalformedAttribute { .. })
        ));
    }

    #[test]
    fn attribute_length_below_two_rejected() {
        let mut p = Packet::new(Code::AccessRequest, 1, [0u8; 16]);
        p.attributes
            .push(Attribute::text(AttributeType::UserName, "x"));
        let mut wire = p.encode();
        wire[21] = 1; // attribute length field
        assert!(matches!(
            Packet::decode(&wire),
            Err(PacketError::MalformedAttribute { .. })
        ));
    }

    #[test]
    fn repeated_attributes_preserved_in_order() {
        let p = Packet::new(Code::AccessRequest, 1, [0u8; 16])
            .with_attribute(Attribute::new(AttributeType::ProxyState, vec![1]))
            .with_attribute(Attribute::new(AttributeType::ProxyState, vec![2]));
        let d = Packet::decode(&p.encode()).unwrap();
        let states = d.attributes_of(AttributeType::ProxyState);
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].value, vec![1]);
        assert_eq!(states[1].value, vec![2]);
    }

    #[test]
    fn codes_round_trip() {
        for c in [
            Code::AccessRequest,
            Code::AccessAccept,
            Code::AccessReject,
            Code::AccessChallenge,
        ] {
            assert_eq!(Code::from_code(c.code()), Some(c));
        }
        assert_eq!(Code::from_code(99), None);
    }

    #[test]
    fn encode_into_reuses_buffer() {
        let p = sample();
        let mut buf = Vec::new();
        p.encode_into(&mut buf);
        assert_eq!(buf, p.encode());
        let q = Packet::new(Code::AccessAccept, 9, [1u8; 16]);
        q.encode_into(&mut buf);
        assert_eq!(buf, q.encode());
    }

    #[test]
    fn view_matches_owned_decode() {
        let p = sample();
        let wire = p.encode();
        let view = PacketView::parse(&wire).unwrap();
        assert_eq!(view.code, p.code);
        assert_eq!(view.identifier, p.identifier);
        assert_eq!(view.authenticator(), &p.authenticator);
        assert_eq!(view.wire_len(), wire.len());
        assert_eq!(view.to_packet(), p);
        assert_eq!(view.text(AttributeType::UserName), Some("alice"));
        assert_eq!(
            view.attribute(AttributeType::State).map(|a| a.value),
            Some(&[1u8, 2, 3][..])
        );
        assert_eq!(view.attribute(AttributeType::ReplyMessage), None);
    }

    #[test]
    fn view_rejects_what_decode_rejects() {
        // Each corruption family must fail identically on both paths.
        let mut wire = sample().encode();
        wire.extend_from_slice(&[0u8; 3]); // padding: still fine
        assert_eq!(
            PacketView::parse(&wire).map(|v| v.to_packet()),
            Packet::decode(&wire)
        );
        wire[0] = 77; // unknown code
        assert_eq!(
            PacketView::parse(&wire).unwrap_err(),
            Packet::decode(&wire).unwrap_err()
        );
        assert_eq!(
            PacketView::parse(&[1, 2, 3]).unwrap_err(),
            PacketError::TooShort
        );
        let mut short = sample().encode();
        let last = short.len() - 4;
        short[last] = 250; // attribute runs past the packet
        assert_eq!(
            PacketView::parse(&short).unwrap_err(),
            Packet::decode(&short).unwrap_err()
        );
    }

    #[test]
    fn view_iterates_repeated_attributes_in_order() {
        let p = Packet::new(Code::AccessRequest, 1, [0u8; 16])
            .with_attribute(Attribute::new(AttributeType::ProxyState, vec![1]))
            .with_attribute(Attribute::new(AttributeType::ProxyState, vec![2]));
        let wire = p.encode();
        let view = PacketView::parse(&wire).unwrap();
        let states: Vec<&[u8]> = view
            .attributes_of(AttributeType::ProxyState)
            .map(|a| a.value)
            .collect();
        assert_eq!(states, vec![&[1u8][..], &[2u8][..]]);
    }
}
