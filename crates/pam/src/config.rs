//! `pam.d`-style stack configuration.
//!
//! "New authentication methods may be added by installing new PAM modules
//! and updating authentication policies controlled via configuration
//! files" (§3.4). This module parses that file format and assembles a
//! [`PamStack`] from a registry of module factories, so the Figure 1 stack
//! is built exactly the way a sysadmin would write it:
//!
//! ```text
//! auth [success=1 default=ignore] pam_tacc_pubkey.so
//! auth requisite                  pam_unix.so
//! auth sufficient                 pam_tacc_mfa_exempt.so
//! auth required                   pam_tacc_mfa_token.so mode=countdown deadline=2016-10-04 url=https://portal/mfa
//! ```

use crate::stack::{ControlFlag, PamModule, PamStack};
use std::collections::HashMap;
use std::sync::Arc;

/// Arguments after the module path, parsed as `key=value` (bare words get
/// an empty value).
pub type ModuleArgs = HashMap<String, String>;

/// Builds a module instance from its config-line arguments.
pub type ModuleFactory =
    Box<dyn Fn(&ModuleArgs) -> Result<Arc<dyn PamModule>, String> + Send + Sync>;

/// The set of installed modules.
#[derive(Default)]
pub struct ModuleRegistry {
    factories: HashMap<String, ModuleFactory>,
}

impl ModuleRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a module under `name` (with or without `.so`).
    pub fn install(
        &mut self,
        name: &str,
        factory: impl Fn(&ModuleArgs) -> Result<Arc<dyn PamModule>, String> + Send + Sync + 'static,
    ) {
        self.factories
            .insert(name.trim_end_matches(".so").to_string(), Box::new(factory));
    }

    /// Install a pre-built module that takes no arguments.
    pub fn install_instance(&mut self, name: &str, module: Arc<dyn PamModule>) {
        self.install(name, move |_args| Ok(Arc::clone(&module)));
    }

    fn get(&self, name: &str) -> Option<&ModuleFactory> {
        self.factories.get(name.trim_end_matches(".so"))
    }
}

/// Configuration errors, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line number.
    pub line: usize,
    /// Reason.
    pub reason: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pam config line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ConfigError {}

fn parse_control(
    tokens: &mut std::iter::Peekable<std::str::SplitWhitespace<'_>>,
) -> Result<ControlFlag, String> {
    let first = tokens.next().ok_or("missing control flag")?;
    match first {
        "required" => Ok(ControlFlag::Required),
        "requisite" => Ok(ControlFlag::Requisite),
        "sufficient" => Ok(ControlFlag::Sufficient),
        "optional" => Ok(ControlFlag::Optional),
        _ if first.starts_with('[') => {
            // Collect tokens until the closing bracket.
            let mut parts = vec![first.trim_start_matches('[').to_string()];
            if !first.ends_with(']') {
                loop {
                    let t = tokens.next().ok_or("unterminated '[' control")?;
                    if let Some(stripped) = t.strip_suffix(']') {
                        parts.push(stripped.to_string());
                        break;
                    }
                    parts.push(t.to_string());
                }
            } else {
                parts[0] = parts[0].trim_end_matches(']').to_string();
            }
            let mut success_skip = None;
            let mut default_ignore = false;
            for p in parts.iter().filter(|p| !p.is_empty()) {
                match p.split_once('=') {
                    Some(("success", n)) => {
                        success_skip = Some(n.parse::<usize>().map_err(|_| "bad success=N value")?)
                    }
                    Some(("default", "ignore")) => default_ignore = true,
                    _ => return Err(format!("unsupported control token {p:?}")),
                }
            }
            match (success_skip, default_ignore) {
                (Some(n), true) => Ok(ControlFlag::SuccessSkip(n)),
                _ => Err("bracket control must be [success=N default=ignore]".into()),
            }
        }
        other => Err(format!("unknown control flag {other:?}")),
    }
}

/// Parse a configuration and build the stack against `registry`.
pub fn build_stack(text: &str, registry: &ModuleRegistry) -> Result<PamStack, ConfigError> {
    let mut stack = PamStack::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace().peekable();
        let facility = tokens.next().unwrap();
        if facility != "auth" {
            return Err(ConfigError {
                line: line_no,
                reason: format!("only the 'auth' facility is supported, found {facility:?}"),
            });
        }
        let flag = parse_control(&mut tokens).map_err(|reason| ConfigError {
            line: line_no,
            reason,
        })?;
        let module_name = tokens.next().ok_or(ConfigError {
            line: line_no,
            reason: "missing module name".into(),
        })?;
        let mut args: ModuleArgs = HashMap::new();
        for t in tokens {
            match t.split_once('=') {
                Some((k, v)) => args.insert(k.to_string(), v.to_string()),
                None => args.insert(t.to_string(), String::new()),
            };
        }
        let factory = registry.get(module_name).ok_or_else(|| ConfigError {
            line: line_no,
            reason: format!("module {module_name:?} not installed"),
        })?;
        let module = factory(&args).map_err(|reason| ConfigError {
            line: line_no,
            reason,
        })?;
        stack.push(flag, module);
    }
    Ok(stack)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::PamContext;
    use crate::stack::{PamResult, PamVerdict};

    struct Fixed(&'static str, PamResult);
    impl PamModule for Fixed {
        fn name(&self) -> &'static str {
            self.0
        }
        fn authenticate(&self, _: &mut PamContext<'_>) -> PamResult {
            self.1
        }
    }

    fn registry() -> ModuleRegistry {
        let mut reg = ModuleRegistry::new();
        reg.install_instance("pam_pass", Arc::new(Fixed("pam_pass", PamResult::Success)));
        reg.install_instance("pam_fail", Arc::new(Fixed("pam_fail", PamResult::AuthErr)));
        reg.install("pam_mode", |args| {
            let r = match args.get("mode").map(String::as_str) {
                Some("ok") => PamResult::Success,
                Some("err") => PamResult::AuthErr,
                Some(other) => return Err(format!("bad mode {other:?}")),
                None => return Err("mode required".into()),
            };
            Ok(Arc::new(Fixed("pam_mode", r)) as Arc<dyn PamModule>)
        });
        reg
    }

    fn run(stack: &PamStack) -> PamVerdict {
        let mut conv = crate::conv::ScriptedConversation::with_answers(Vec::<String>::new());
        let mut ctx = PamContext::new(
            "u",
            std::net::Ipv4Addr::LOCALHOST,
            Arc::new(hpcmfa_otp::clock::SimClock::at(0)),
            &mut conv,
        );
        stack.authenticate(&mut ctx)
    }

    #[test]
    fn basic_stack_builds_and_runs() {
        let stack = build_stack(
            "# comment\n\
             auth required pam_pass.so\n",
            &registry(),
        )
        .unwrap();
        assert_eq!(stack.len(), 1);
        assert_eq!(run(&stack), PamVerdict::Granted);
    }

    #[test]
    fn bracket_control_parses() {
        let stack = build_stack(
            "auth [success=1 default=ignore] pam_pass.so\n\
             auth requisite pam_fail.so\n\
             auth required pam_pass.so\n",
            &registry(),
        )
        .unwrap();
        // pam_pass skips pam_fail; final pam_pass grants.
        assert_eq!(run(&stack), PamVerdict::Granted);
    }

    #[test]
    fn module_args_reach_factory() {
        let stack = build_stack("auth required pam_mode.so mode=ok\n", &registry()).unwrap();
        assert_eq!(run(&stack), PamVerdict::Granted);
        let stack = build_stack("auth required pam_mode.so mode=err\n", &registry()).unwrap();
        assert_eq!(run(&stack), PamVerdict::Denied);
    }

    #[test]
    fn factory_errors_surface_with_line() {
        let err = build_stack(
            "auth required pam_pass.so\n\
             auth required pam_mode.so mode=weird\n",
            &registry(),
        )
        .unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.reason.contains("bad mode"));
    }

    #[test]
    fn unknown_module_rejected() {
        let err = build_stack("auth required pam_nope.so\n", &registry()).unwrap_err();
        assert!(err.reason.contains("not installed"));
    }

    #[test]
    fn bad_facility_rejected() {
        let err = build_stack("session required pam_pass.so\n", &registry()).unwrap_err();
        assert!(err.reason.contains("auth"));
    }

    #[test]
    fn bad_controls_rejected() {
        assert!(build_stack("auth mandatory pam_pass.so\n", &registry()).is_err());
        assert!(build_stack("auth [success=x default=ignore] pam_pass.so\n", &registry()).is_err());
        assert!(build_stack("auth [success=1] pam_pass.so\n", &registry()).is_err());
        assert!(build_stack("auth [success=1 default=die] pam_pass.so\n", &registry()).is_err());
        assert!(build_stack("auth required\n", &registry()).is_err());
    }
}
