//! Transports carrying RADIUS datagrams between login nodes and servers.
//!
//! Two implementations:
//!
//! * [`InMemoryTransport`] — deterministic, in-process delivery to a
//!   [`RadiusServer`], with a [`FaultPlan`]
//!   for outage/packet-loss injection. The rollout simulator and the
//!   failover benches use this.
//! * [`UdpTransport`] — real UDP datagrams, used by integration tests to
//!   prove the wire format is sound end to end.

use crate::server::RadiusServer;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Transport failures a client must survive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// No reply within the timeout (server down or datagram lost).
    Timeout,
    /// The server actively refused (simulated host-down).
    Unreachable,
    /// OS-level I/O failure.
    Io(String),
    /// Reply was not a decodable RADIUS packet.
    GarbledReply,
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Timeout => write!(f, "timeout waiting for reply"),
            TransportError::Unreachable => write!(f, "server unreachable"),
            TransportError::Io(e) => write!(f, "I/O error: {e}"),
            TransportError::GarbledReply => write!(f, "garbled reply"),
        }
    }
}

impl std::error::Error for TransportError {}

/// A synchronous datagram exchange: one request, one reply.
pub trait Transport: Send + Sync {
    /// Send `request` bytes, wait for the reply bytes.
    fn exchange(&self, request: &[u8]) -> Result<Vec<u8>, TransportError>;

    /// [`Transport::exchange`] into a caller-provided buffer (cleared
    /// first). The client walk reuses one reply buffer across retries and
    /// servers, so per-attempt allocation disappears from the hot path.
    /// The default copies; [`UdpTransport`] receives straight into `reply`.
    fn exchange_into(&self, request: &[u8], reply: &mut Vec<u8>) -> Result<(), TransportError> {
        let r = self.exchange(request)?;
        reply.clear();
        reply.extend_from_slice(&r);
        Ok(())
    }

    /// Diagnostic name for logs and stats.
    fn name(&self) -> String;

    /// Simulated round-trip latency an answered exchange currently costs,
    /// in microseconds. Clients charge this to their virtual clock so the
    /// request-duration histogram — and the latency alert rules reading
    /// it — see injected latency spikes. Real transports return 0: their
    /// latency is wall time, which the virtual clock deliberately ignores.
    fn round_trip_latency_us(&self) -> u64 {
        0
    }
}

/// Deterministic fault injection for [`InMemoryTransport`].
///
/// All knobs are atomics so tests, benches and the chaos harness can flip
/// them while clients run on other threads — exactly the "specific RADIUS
/// servers are unavailable" scenario §3.4 designs for.
///
/// **Ordering contract.** Configuration knobs (`down`, `drop_every`,
/// `garble_every`, `flap_period`, …) are plain flags: writers use `SeqCst`
/// stores and readers may observe a flip one exchange late, which is fine —
/// fault injection needs no cross-knob consistency. The cadence *counters*
/// are different: every `1-in-n` decision must be taken exactly once per
/// exchange even when several client threads exchange concurrently, so the
/// counters use `SeqCst` RMWs and the decision is made from the value the
/// RMW returned (never from a separate re-read).
#[derive(Default)]
pub struct FaultPlan {
    /// Host down: every exchange fails with `Unreachable`.
    pub down: AtomicBool,
    /// Drop one datagram in every `n` (0 = never): `Timeout`s.
    pub drop_every: AtomicU64,
    drop_counter: AtomicU64,
    /// Garble one reply in every `n` (0 = never): the client receives an
    /// undecodable datagram instead of the server's answer.
    pub garble_every: AtomicU64,
    garble_counter: AtomicU64,
    /// Flapping host: alternates `n` exchanges up, `n` exchanges down
    /// (0 = never flaps). Down phases fail with `Unreachable`.
    pub flap_period: AtomicU64,
    flap_counter: AtomicU64,
    /// Simulated one-way latency in microseconds, accumulated into
    /// `total_latency_us` rather than slept, keeping simulations fast and
    /// deterministic.
    pub latency_us: AtomicU64,
    /// Additional one-way latency during a spike (added to `latency_us`).
    pub extra_latency_us: AtomicU64,
    /// Sum of simulated latency incurred (2× per exchange).
    pub total_latency_us: AtomicU64,
}

impl FaultPlan {
    /// A healthy, zero-latency plan.
    pub fn healthy() -> Arc<Self> {
        Arc::new(FaultPlan::default())
    }

    /// Mark the host down/up.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Drop one datagram in every `n` (0 disables).
    pub fn set_drop_every(&self, n: u64) {
        self.drop_every.store(n, Ordering::SeqCst);
    }

    /// Garble one reply in every `n` (0 disables).
    pub fn set_garble_every(&self, n: u64) {
        self.garble_every.store(n, Ordering::SeqCst);
    }

    /// Flap with half-period `n` exchanges (0 disables).
    pub fn set_flap_period(&self, n: u64) {
        self.flap_period.store(n, Ordering::SeqCst);
    }

    /// Add (or clear, with 0) a one-way latency spike.
    pub fn set_extra_latency_us(&self, us: u64) {
        self.extra_latency_us.store(us, Ordering::SeqCst);
    }

    /// One deterministic 1-in-`every` decision: advances `counter` and
    /// reports whether this exchange is selected. See the ordering
    /// contract in the type docs.
    fn cadence_hit(every: &AtomicU64, counter: &AtomicU64) -> bool {
        let n = every.load(Ordering::SeqCst);
        if n == 0 {
            return false;
        }
        let c = counter.fetch_add(1, Ordering::SeqCst) + 1;
        c.is_multiple_of(n)
    }

    /// Returns whether this exchange should be dropped, advancing the
    /// deterministic counter.
    fn should_drop(&self) -> bool {
        Self::cadence_hit(&self.drop_every, &self.drop_counter)
    }

    /// Returns whether this exchange's reply should be garbled.
    fn should_garble(&self) -> bool {
        Self::cadence_hit(&self.garble_every, &self.garble_counter)
    }

    /// Returns whether the host is in the down half of a flap cycle,
    /// advancing the flap counter.
    fn flapping_down(&self) -> bool {
        let period = self.flap_period.load(Ordering::SeqCst);
        if period == 0 {
            return false;
        }
        let c = self.flap_counter.fetch_add(1, Ordering::SeqCst);
        (c / period) % 2 == 1
    }

    fn charge_latency(&self) {
        let l =
            self.latency_us.load(Ordering::SeqCst) + self.extra_latency_us.load(Ordering::SeqCst);
        if l > 0 {
            self.total_latency_us.fetch_add(2 * l, Ordering::SeqCst);
        }
    }
}

/// In-process transport delivering datagrams straight to a server's
/// datagram handler, through the full encode/decode path.
pub struct InMemoryTransport {
    server: Arc<RadiusServer>,
    faults: Arc<FaultPlan>,
    label: String,
    /// Number of exchanges attempted through this transport.
    pub exchanges: AtomicU64,
}

impl InMemoryTransport {
    /// Wire a transport to `server` with `faults`.
    pub fn new(label: &str, server: Arc<RadiusServer>, faults: Arc<FaultPlan>) -> Self {
        InMemoryTransport {
            server,
            faults,
            label: label.to_string(),
            exchanges: AtomicU64::new(0),
        }
    }

    /// The fault plan, for tests flipping outages mid-run.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }
}

impl Transport for InMemoryTransport {
    fn exchange(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        self.exchanges.fetch_add(1, Ordering::Relaxed);
        if self.faults.down.load(Ordering::SeqCst) || self.faults.flapping_down() {
            return Err(TransportError::Unreachable);
        }
        if self.faults.should_drop() {
            return Err(TransportError::Timeout);
        }
        self.faults.charge_latency();
        // A server that discards the datagram looks like a timeout to the
        // client, exactly as over UDP.
        let reply = self
            .server
            .process_datagram(request)
            .ok_or(TransportError::Timeout)?;
        if self.faults.should_garble() {
            // Corrupt the reply on the wire: shorter than any legal RADIUS
            // packet and bit-flipped, so decode must fail at the client.
            let garbled: Vec<u8> = reply
                .iter()
                .take(crate::MIN_PACKET_LEN - 8)
                .map(|b| b ^ 0xa5)
                .collect();
            return Ok(garbled);
        }
        Ok(reply)
    }

    fn name(&self) -> String {
        self.label.clone()
    }

    fn round_trip_latency_us(&self) -> u64 {
        2 * (self.faults.latency_us.load(Ordering::SeqCst)
            + self.faults.extra_latency_us.load(Ordering::SeqCst))
    }
}

/// Real-UDP transport over one persistent socket.
///
/// Earlier revisions bound a fresh ephemeral socket and allocated a fresh
/// receive buffer for every exchange; at wire rate both dominated the
/// syscall budget. The socket is now bound lazily on first use and kept
/// for the transport's lifetime, and one receive buffer (guarded together
/// with the socket) is reused across exchanges.
///
/// Reusing a socket means a reply to a *timed-out earlier* exchange can
/// still be queued when the next exchange starts, so receives drain any
/// datagram whose RADIUS identifier byte does not match the in-flight
/// request until the deadline — a stale reply must surface as the original
/// timeout, never as an identifier mismatch on the next request.
pub struct UdpTransport {
    server_addr: SocketAddr,
    timeout: Duration,
    /// Lazily-bound socket plus the reusable receive buffer; one lock
    /// serializes exchanges so replies cannot cross between callers.
    io: parking_lot::Mutex<Option<(UdpSocket, Box<[u8; crate::MAX_PACKET_LEN]>)>>,
}

impl UdpTransport {
    /// Target `server_addr` with a per-exchange `timeout`.
    pub fn new(server_addr: SocketAddr, timeout: Duration) -> Self {
        UdpTransport {
            server_addr,
            timeout,
            io: parking_lot::Mutex::new(None),
        }
    }
}

impl Transport for UdpTransport {
    fn exchange(&self, request: &[u8]) -> Result<Vec<u8>, TransportError> {
        let mut reply = Vec::new();
        self.exchange_into(request, &mut reply)?;
        Ok(reply)
    }

    fn exchange_into(&self, request: &[u8], reply: &mut Vec<u8>) -> Result<(), TransportError> {
        reply.clear();
        let io_err = |e: std::io::Error| TransportError::Io(e.to_string());
        let mut guard = self.io.lock();
        if guard.is_none() {
            let sock = UdpSocket::bind(("127.0.0.1", 0)).map_err(io_err)?;
            *guard = Some((sock, Box::new([0u8; crate::MAX_PACKET_LEN])));
        }
        let (sock, buf) = guard.as_mut().expect("socket bound above");
        sock.send_to(request, self.server_addr).map_err(io_err)?;
        let deadline = std::time::Instant::now() + self.timeout;
        loop {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                return Err(TransportError::Timeout);
            }
            sock.set_read_timeout(Some(remaining)).map_err(io_err)?;
            match sock.recv_from(buf.as_mut()) {
                // Drain stale replies (identifier byte differs from the
                // in-flight request's) left over from timed-out exchanges.
                Ok((n, _)) if n >= 2 && request.len() >= 2 && buf[1] != request[1] => continue,
                Ok((n, _)) => {
                    reply.extend_from_slice(&buf[..n]);
                    return Ok(());
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    return Err(TransportError::Timeout)
                }
                Err(e) => return Err(io_err(e)),
            }
        }
    }

    fn name(&self) -> String {
        format!("udp://{}", self.server_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_drop_cadence() {
        let plan = FaultPlan::default();
        plan.drop_every.store(3, Ordering::SeqCst);
        let pattern: Vec<bool> = (0..9).map(|_| plan.should_drop()).collect();
        assert_eq!(
            pattern,
            vec![false, false, true, false, false, true, false, false, true]
        );
    }

    #[test]
    fn fault_plan_no_drops_by_default() {
        let plan = FaultPlan::default();
        assert!((0..100).all(|_| !plan.should_drop()));
    }

    #[test]
    fn latency_accounting() {
        let plan = FaultPlan::default();
        plan.latency_us.store(250, Ordering::SeqCst);
        plan.charge_latency();
        plan.charge_latency();
        assert_eq!(plan.total_latency_us.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn latency_spike_adds_to_base_latency() {
        let plan = FaultPlan::default();
        plan.latency_us.store(250, Ordering::SeqCst);
        plan.set_extra_latency_us(750);
        plan.charge_latency();
        assert_eq!(plan.total_latency_us.load(Ordering::SeqCst), 2000);
        plan.set_extra_latency_us(0);
        plan.charge_latency();
        assert_eq!(plan.total_latency_us.load(Ordering::SeqCst), 2500);
    }

    #[test]
    fn garble_cadence_is_deterministic() {
        let plan = FaultPlan::default();
        plan.set_garble_every(2);
        let pattern: Vec<bool> = (0..6).map(|_| plan.should_garble()).collect();
        assert_eq!(pattern, vec![false, true, false, true, false, true]);
    }

    #[test]
    fn flap_alternates_up_and_down_phases() {
        let plan = FaultPlan::default();
        plan.set_flap_period(3);
        let pattern: Vec<bool> = (0..12).map(|_| plan.flapping_down()).collect();
        assert_eq!(
            pattern,
            vec![false, false, false, true, true, true, false, false, false, true, true, true]
        );
    }

    #[test]
    fn drop_and_garble_counters_are_independent() {
        let plan = FaultPlan::default();
        plan.set_drop_every(2);
        plan.set_garble_every(2);
        // Interleaved queries must not perturb each other's cadence.
        assert!(!plan.should_drop());
        assert!(!plan.should_garble());
        assert!(plan.should_drop());
        assert!(plan.should_garble());
    }
}
