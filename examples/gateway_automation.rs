//! Automated, non-interactive workloads under MFA (§2, §3.4, §5).
//!
//! Science gateways and community accounts "negotiate in an automated
//! fashion on behalf of [satellite] users" — they can't type token codes.
//! This example shows the three survival strategies the paper deployed:
//! a standing exemption, a temporary variance that expires, and SSH
//! multiplexing.
//!
//! ```text
//! cargo run --example gateway_automation
//! ```

use securing_hpc::core::center::{Center, CenterConfig};
use securing_hpc::pam::modules::token::EnforcementMode;
use securing_hpc::ssh::client::{ClientProfile, TokenSource};
use securing_hpc::ssh::multiplex::MultiplexedConnection;
use std::net::Ipv4Addr;

const GATEWAY_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

fn main() {
    let center = Center::new(CenterConfig::default());
    center.set_enforcement(EnforcementMode::Full);

    center.create_user("gateway1", "ops@scigateway.org", "unused-pw");
    center.create_user("pi_smith", "smith@utexas.edu", "smith-pw");
    center.create_user("grad42", "grad@utexas.edu", "grad-pw");

    // --- Strategy 1: standing exemption for the trusted gateway. ---
    center
        .add_exemption_rule("+ : gateway1 : 198.51.100.7 : ALL")
        .unwrap();
    let key = center.provision_key("gateway1");
    let gw = ClientProfile::batch_client("gateway1", GATEWAY_IP, key);
    let mut ok = 0;
    for _ in 0..50 {
        center.clock.advance(60);
        if center.ssh(0, &gw).granted {
            ok += 1;
        }
    }
    println!("gateway1 (pubkey + standing exemption): {ok}/50 automated logins, zero prompts");

    // But only from its registered address — the exemption is IP-scoped.
    let elsewhere = ClientProfile::batch_client(
        "gateway1",
        Ipv4Addr::new(203, 0, 113, 9),
        center.provision_key("gateway1"),
    );
    println!(
        "gateway1 from an unregistered IP: granted = {}",
        center.ssh(0, &elsewhere).granted
    );

    // --- Strategy 2: a temporary variance while a workflow is reworked. ---
    center
        .add_exemption_rule("+ : pi_smith : ALL : 2016-08-24")
        .unwrap();
    let key = center.provision_key("pi_smith");
    let smith = ClientProfile::batch_client("pi_smith", Ipv4Addr::new(70, 1, 2, 3), key);
    println!(
        "\npi_smith under a variance through 2016-08-24: granted = {}",
        center.ssh(0, &smith).granted
    );
    center.clock.advance(16 * 86_400); // past the expiry
    println!(
        "pi_smith after the variance lapsed:          granted = {}",
        center.ssh(0, &smith).granted
    );

    // --- Strategy 3: SSH multiplexing — "perhaps most popular of all". ---
    let device = center.pair_soft("grad42");
    let profile = ClientProfile::interactive_user("grad42", Ipv4Addr::new(70, 4, 5, 6), "grad-pw")
        .with_token(TokenSource::device(move |now| {
            Some(device.displayed_code(now))
        }));
    let node = &center.nodes[0].daemon;
    let mut mux = MultiplexedConnection::new(node);
    mux.establish(&profile)
        .expect("master authenticates with MFA");
    for _ in 0..25 {
        mux.open_channel().unwrap();
    }
    println!(
        "\ngrad42 multiplexing: 1 MFA authentication, {} channels (scp/sftp/shells)",
        mux.channels()
    );
    let kb_interactive = node
        .authlog()
        .count_where(|e| e.method == securing_hpc::ssh::authlog::AuthMethod::KeyboardInteractive);
    println!(
        "keyboard-interactive auth events on the node (incl. the failed \
         gateway/variance probes above): {kb_interactive}"
    );
}
