//! Property tests for the log-linear histogram: bucket boundaries tile
//! the `u64` range, quantiles are monotone and error-bounded, and shard
//! merging is associative (so per-server shards can be folded in any
//! grouping and give the same report).

use hpcmfa_telemetry::histogram::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram, HistogramSnapshot,
    NUM_BUCKETS, SUB,
};
use proptest::prelude::*;

fn arb_value() -> BoxedStrategy<u64> {
    prop_oneof![
        0u64..64,
        64u64..100_000,
        100_000u64..10_000_000_000,
        Just(u64::MAX),
        Just(u64::MAX - 1),
    ]
    .boxed()
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    fn value_lands_inside_its_bucket(v in arb_value()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_lower_bound(i) <= v);
        prop_assert!(v < bucket_upper_bound(i) || i == NUM_BUCKETS - 1);
    }

    fn bucket_index_is_monotone(a in arb_value(), b in arb_value()) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(lo) <= bucket_index(hi));
    }

    fn bucket_width_bounds_relative_error(v in arb_value()) {
        prop_assume!(v >= SUB as u64);
        prop_assume!(v < u64::MAX / 2);
        let i = bucket_index(v);
        let width = bucket_upper_bound(i) - bucket_lower_bound(i);
        // Width is lower_bound / SUB rounded to a power of two: at most
        // v / SUB.
        prop_assert!(width <= v / SUB as u64 + 1, "v={v} width={width}");
    }

    fn quantiles_are_monotone_in_q(values in prop::collection::vec(arb_value(), 1..200)) {
        let s = snapshot_of(&values);
        let qs = [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0];
        for w in qs.windows(2) {
            prop_assert!(
                s.quantile(w[0]) <= s.quantile(w[1]),
                "q={} gave more than q={}",
                w[0],
                w[1]
            );
        }
    }

    fn quantiles_stay_within_observed_range(values in prop::collection::vec(arb_value(), 1..200), q in 0.0f64..1.0) {
        let s = snapshot_of(&values);
        let est = s.quantile(q);
        let max = *values.iter().max().unwrap();
        let min = *values.iter().min().unwrap();
        prop_assert!(est <= max);
        // The estimate is an upper bound of some observed value, so it can
        // never fall below the bucket floor of the minimum.
        prop_assert!(est >= bucket_lower_bound(bucket_index(min)));
    }

    fn quantile_upper_bounds_true_rank_value(values in prop::collection::vec(0u64..1_000_000, 1..200), q in 0.0f64..1.0) {
        let s = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = s.quantile(q);
        prop_assert!(est >= truth, "q={q}: est {est} below true {truth}");
        // Error is bounded by one bucket width.
        prop_assert!(
            est <= truth + truth / SUB as u64 + 1,
            "q={q}: est {est} too far above true {truth}"
        );
    }

    fn merge_is_associative_and_commutative(
        a in prop::collection::vec(arb_value(), 0..60),
        b in prop::collection::vec(arb_value(), 0..60),
        c in prop::collection::vec(arb_value(), 0..60),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut right_inner = sb.clone();
        right_inner.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_inner);
        prop_assert_eq!(&left, &right);
        // b ⊕ a == a ⊕ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        // Identity element.
        let mut with_empty = sa.clone();
        with_empty.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(&with_empty, &sa);
    }

    fn merge_equals_single_shard(
        a in prop::collection::vec(arb_value(), 0..60),
        b in prop::collection::vec(arb_value(), 0..60),
    ) {
        let mut merged = snapshot_of(&a);
        merged.merge(&snapshot_of(&b));
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&all));
    }
}
