//! Center assembly.

use hpcmfa_directory::identity::{IdentityDb, PairingMethod};
use hpcmfa_directory::ldap::{Directory, Entry};
use hpcmfa_federation::{ResumeAuthority, TrustConfig};
use hpcmfa_otp::clock::{Clock, SimClock};
use hpcmfa_otp::device::{HardTokenBatch, SoftToken};
use hpcmfa_otpserver::admin::AdminApi;
use hpcmfa_otpserver::handler::OtpRadiusHandler;
use hpcmfa_otpserver::overload::OverloadConfig;
use hpcmfa_otpserver::server::{LinotpServer, ServerConfig};
use hpcmfa_otpserver::sms::{PhoneNumber, SmsProvider, TwilioSim};
use hpcmfa_otpserver::{
    LinkFaultPlan, OtpCluster, RecoverError, RecoveryReport, ReplicationMode, StorageBackend,
};
use hpcmfa_pam::access::{AccessConfig, Cidr, WatchedAccessConfig};
use hpcmfa_pam::modules::exemption::ExemptionModule;
use hpcmfa_pam::modules::password::{hash_password, UnixPasswordModule, PASSWORD_ATTR};
use hpcmfa_pam::modules::pubkey::PubkeyCheckModule;
use hpcmfa_pam::modules::token::{DegradationPolicy, EnforcementMode, TokenModule};
use hpcmfa_pam::stack::{ControlFlag, PamStack};
use hpcmfa_radius::breaker::BreakerConfig;
use hpcmfa_radius::client::{ClientConfig, RadiusClient, RetryPolicy, ServerHealthSnapshot};
use hpcmfa_radius::realm::RealmRouter;
use hpcmfa_radius::server::{Handler, RadiusServer};
use hpcmfa_radius::transport::{FaultPlan, InMemoryTransport, Transport};
use hpcmfa_risk::engine::{RiskEngine, RiskGateModule, RiskWeights};
use hpcmfa_risk::geo::GeoDb;
use hpcmfa_ssh::authlog::AuthLog;
use hpcmfa_ssh::client::ClientProfile;
use hpcmfa_ssh::daemon::{SessionReport, SshDaemon};
use hpcmfa_ssh::keys::{KeyPair, PublicKey};
use hpcmfa_telemetry::{
    default_security_rules, AlertEngine, MetricsRegistry, MetricsSnapshot, TraceCollector,
};
use parking_lot::Mutex;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Behavioural risk assessment for the login path (§6 growth feature).
#[derive(Clone)]
pub struct RiskParams {
    /// IP → country database the engine scores against.
    pub geodb: Arc<GeoDb>,
    /// Scoring weights and thresholds.
    pub weights: RiskWeights,
}

/// Warm-standby replication for the OTP back end. The caller supplies
/// both storage nodes (keeping typed handles for fault injection); the
/// center builds the cluster, routes the validation server through it,
/// and arms breaker-driven failover in every RADIUS handler.
#[derive(Clone)]
pub struct OtpReplicationParams {
    /// Ack mode: `Sync` never acknowledges a write the standby has not
    /// applied; `Async` tolerates bounded staleness.
    pub mode: ReplicationMode,
    /// The primary's storage node.
    pub primary: Arc<dyn StorageBackend>,
    /// The warm standby's storage node.
    pub standby: Arc<dyn StorageBackend>,
    /// Breaker tuning for the primary's local-storage health (reuses the
    /// RADIUS breaker; an open breaker schedules the failover).
    pub breaker: BreakerConfig,
    /// Fault plan for the replication link (drops, reorder, partition,
    /// lag) — chaos scripts keep a handle to drive it mid-run.
    pub link_plan: Arc<LinkFaultPlan>,
}

impl OtpReplicationParams {
    /// Replication over the given nodes with a healthy link and default
    /// breaker tuning.
    pub fn new(
        mode: ReplicationMode,
        primary: Arc<dyn StorageBackend>,
        standby: Arc<dyn StorageBackend>,
    ) -> Self {
        OtpReplicationParams {
            mode,
            primary,
            standby,
            breaker: BreakerConfig::default(),
            link_plan: LinkFaultPlan::healthy(),
        }
    }
}

/// Cross-site federation for a center: realm routing plus stateless
/// session-resumption tokens.
#[derive(Clone)]
pub struct FederationParams {
    /// This site's home realm and the peers it trusts. Each peer entry
    /// carries that link's shared RADIUS secret and per-realm policy
    /// (degradation mode, risk weight). Peers' upstream pools are wired
    /// after construction with [`Center::connect_peer_realm`].
    pub trust: TrustConfig,
    /// Site-local HMAC key protecting resumption tokens. Never shared
    /// with peers: a token is only redeemable where it was minted.
    pub resume_key: Vec<u8>,
    /// Resumption-token lifetime in 30-second TOTP steps.
    pub resume_lifetime_steps: u64,
}

impl FederationParams {
    /// Federation for `trust` with a lifetime of `lifetime_steps` steps.
    pub fn new(trust: TrustConfig, resume_key: &[u8], resume_lifetime_steps: u64) -> Self {
        FederationParams {
            trust,
            resume_key: resume_key.to_vec(),
            resume_lifetime_steps,
        }
    }
}

/// Deployment parameters.
#[derive(Clone)]
pub struct CenterConfig {
    /// Shared secret between login nodes and the RADIUS fleet.
    pub radius_secret: Vec<u8>,
    /// Size of the RADIUS fleet ("a handful of servers", §3.2).
    pub radius_servers: usize,
    /// Login-node names.
    pub login_nodes: Vec<String>,
    /// The center's internal network, exempt by default so users can
    /// "move back and forth freely within login and reserved compute
    /// nodes" (§3.4).
    pub internal_network: Cidr,
    /// Initial token-module enforcement mode on all nodes.
    pub enforcement: EnforcementMode,
    /// Directory subtree for people entries.
    pub people_base: String,
    /// Simulation start time.
    pub start_time: u64,
    /// Master RNG seed for all deterministic components.
    pub seed: u64,
    /// Per-login retry budget for every node's RADIUS client.
    pub retry: RetryPolicy,
    /// Per-server circuit-breaker tuning for every node's RADIUS client.
    pub breaker: BreakerConfig,
    /// What the token module does during a total back-end outage.
    pub degradation: DegradationPolicy,
    /// Durable storage for the OTP back end. `None` (the default) runs
    /// the server purely in memory, as before; `Some` makes every store
    /// and audit mutation write-ahead-logged through the backend and lets
    /// [`Center::crash_otp_server`] kill and recover it mid-run.
    pub otp_storage: Option<Arc<dyn StorageBackend>>,
    /// Compaction cadence for the durable OTP server: a snapshot replaces
    /// the WAL after this many appends. Ignored without `otp_storage`.
    pub otp_snapshot_every: u64,
    /// The center-wide metrics registry. Every component — PAM stacks,
    /// RADIUS clients, sshd instances, the OTP back end — records into
    /// this one registry, so a single scrape sees the whole auth path.
    pub metrics: Arc<MetricsRegistry>,
    /// Behavioural risk assessment. `Some` places a `requisite` risk gate
    /// at the head of every node's PAM stack (before the pubkey check, so
    /// the pubkey module's skip arithmetic is untouched) and feeds login
    /// outcomes back to the engine. `None` (the default) keeps the stack
    /// exactly as before.
    pub risk: Option<RiskParams>,
    /// Overload protection for the OTP back end. `Some` puts a bounded
    /// admission queue with per-source-network rate limiting in front of
    /// validation; `None` (the default) leaves it unguarded.
    pub otp_overload: Option<OverloadConfig>,
    /// Warm-standby replication for the OTP back end. `Some` supersedes
    /// `otp_storage`: the server writes through the cluster's routing
    /// backend and every RADIUS handler promotes the standby when the
    /// primary's breaker opens. `None` (the default) keeps the
    /// single-node layout.
    pub otp_replication: Option<OtpReplicationParams>,
    /// Cross-site federation. `Some` fronts every RADIUS server with a
    /// realm router (`user@site` principals route to their home realm)
    /// and enables session-resumption token issuance on full-MFA logins.
    /// `None` (the default) keeps the single-site layout.
    pub federation: Option<FederationParams>,
}

impl Default for CenterConfig {
    fn default() -> Self {
        CenterConfig {
            radius_secret: b"tacc-radius-secret".to_vec(),
            radius_servers: 3,
            login_nodes: vec!["login1".into(), "login2".into()],
            internal_network: Cidr::parse("129.114.0.0/16").unwrap(),
            enforcement: EnforcementMode::Paired,
            people_base: "ou=people,dc=tacc".to_string(),
            start_time: 1_470_787_200, // 2016-08-10, announcement day
            seed: 2016,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            degradation: DegradationPolicy::FailClosed,
            otp_storage: None,
            otp_snapshot_every: ServerConfig::default().snapshot_every_appends,
            metrics: Arc::new(MetricsRegistry::new()),
            risk: None,
            otp_overload: None,
            otp_replication: None,
            federation: None,
        }
    }
}

/// One login node: sshd + its PAM stack and local state.
pub struct LoginNode {
    /// Node name (NAS identifier).
    pub name: String,
    /// The sshd instance.
    pub daemon: SshDaemon,
    /// This node's token module (mode switchable in production).
    pub token_module: Arc<TokenModule>,
    /// This node's exemption list (hot-reloadable).
    pub exemptions: WatchedAccessConfig,
    /// This node's RADIUS client (round-robin over the fleet).
    pub radius_client: Arc<RadiusClient>,
}

/// The fully assembled center.
pub struct Center {
    /// Deployment parameters.
    pub config: CenterConfig,
    /// The shared virtual clock.
    pub clock: SimClock,
    /// LDAP directory.
    pub directory: Directory,
    /// Identity-management database.
    pub identity: IdentityDb,
    /// The OTP back end.
    pub linotp: Arc<LinotpServer>,
    /// The SMS provider.
    pub twilio: Arc<TwilioSim>,
    /// The admin REST interface.
    pub admin: Arc<AdminApi>,
    /// The user portal.
    pub portal: Arc<hpcmfa_portal::portal::Portal>,
    /// Fault planes for each RADIUS server, index-aligned with the fleet.
    pub radius_faults: Vec<Arc<FaultPlan>>,
    /// The RADIUS servers themselves (for stats).
    pub radius_servers: Vec<Arc<RadiusServer>>,
    /// Login nodes.
    pub nodes: Vec<Arc<LoginNode>>,
    /// The center-wide alert engine: the default security rule set
    /// evaluated over the shared registry after every login, on the
    /// virtual clock. Also served by the admin API's `/system/alerts`.
    pub alerts: Arc<AlertEngine>,
    /// The behavioural risk engine, when [`CenterConfig::risk`] is set.
    pub risk_engine: Option<Arc<RiskEngine>>,
    /// The OTP replication cluster, when
    /// [`CenterConfig::otp_replication`] is set: epoch, lag, and
    /// promotion controls for chaos scripts and operators.
    pub otp_cluster: Option<Arc<OtpCluster>>,
    /// The realm routers fronting each RADIUS server, when
    /// [`CenterConfig::federation`] is set. Index-aligned with
    /// `radius_servers`.
    pub realm_routers: Vec<Arc<RealmRouter>>,
    /// The fleet's transports, exposed so peer sites can build their
    /// cross-realm upstream pools against this center.
    radius_transports: Vec<Arc<dyn Transport>>,
    /// Cross-site trace assembly over this site's registry plus any peer
    /// registries registered via [`Center::add_trace_source`]. Also served
    /// by the admin API's `GET /system/traces`.
    pub traces: Arc<TraceCollector>,
    /// Exemption file text lines added beyond the internal-network rule,
    /// mirrored to every node.
    exemption_lines: Mutex<Vec<String>>,
}

impl Center {
    /// Stand up the center.
    pub fn new(config: CenterConfig) -> Arc<Self> {
        let clock = SimClock::at(config.start_time);
        let clock_arc: Arc<dyn Clock> = Arc::new(clock.clone());
        // Span ids are namespaced by site so federated traces assembled
        // across several centers can never collide.
        let site_label = config
            .federation
            .as_ref()
            .map(|f| f.trust.home_realm.clone())
            .unwrap_or_else(|| "site".to_string());
        config.metrics.tracer().set_namespace(&site_label);
        let directory = Directory::new();
        let identity = IdentityDb::new();
        let twilio = TwilioSim::new(config.seed ^ 0x5115);
        // Replication supersedes plain durable storage: the server writes
        // through the cluster's routing backend, which ships every synced
        // batch to the warm standby.
        let otp_cluster_parts = config.otp_replication.as_ref().map(|p| {
            OtpCluster::new(
                Arc::clone(&p.primary),
                Arc::clone(&p.standby),
                p.mode,
                Arc::clone(&clock_arc),
                Arc::clone(&config.metrics),
                p.breaker,
                Arc::clone(&p.link_plan),
            )
        });
        let otp_backend: Option<Arc<dyn StorageBackend>> = match &otp_cluster_parts {
            Some((_, backend)) => Some(Arc::clone(backend) as Arc<dyn StorageBackend>),
            None => config.otp_storage.clone(),
        };
        let linotp = match &otp_backend {
            Some(backend) => LinotpServer::with_storage(
                Arc::clone(&twilio) as Arc<dyn SmsProvider>,
                config.seed,
                ServerConfig {
                    snapshot_every_appends: config.otp_snapshot_every,
                    metrics: Arc::clone(&config.metrics),
                    overload: config.otp_overload.clone(),
                    ..ServerConfig::default()
                },
                Arc::clone(backend),
            )
            .expect("durable OTP state recovers at startup"),
            None => LinotpServer::with_config(
                Arc::clone(&twilio) as Arc<dyn SmsProvider>,
                config.seed,
                ServerConfig {
                    metrics: Arc::clone(&config.metrics),
                    overload: config.otp_overload.clone(),
                    ..ServerConfig::default()
                },
            ),
        };
        let otp_cluster = otp_cluster_parts.map(|(cluster, _)| cluster);
        let admin = AdminApi::new(
            Arc::clone(&linotp),
            "LinOTP admin area",
            config.seed ^ 0xadd,
        );
        admin.add_admin("portal-svc", "portal-svc-password");
        let portal = hpcmfa_portal::portal::Portal::new(
            Arc::clone(&admin),
            "portal-svc",
            "portal-svc-password",
            identity.clone(),
            directory.clone(),
            &config.people_base,
            b"portal-url-signing-key",
            Arc::clone(&clock_arc),
        );

        // RADIUS fleet. With federation, a realm router fronts each
        // server's OTP handler: home traffic is stripped and served
        // locally, peer realms are proxied to their own upstream pools.
        let mut radius_faults = Vec::new();
        let mut radius_servers = Vec::new();
        let mut realm_routers = Vec::new();
        let mut transports: Vec<Arc<dyn Transport>> = Vec::new();
        for i in 0..config.radius_servers {
            let handler = match &otp_cluster {
                Some(cluster) => OtpRadiusHandler::with_cluster(
                    Arc::clone(&linotp),
                    Arc::clone(&clock_arc),
                    Arc::clone(cluster),
                ),
                None => OtpRadiusHandler::new(Arc::clone(&linotp), Arc::clone(&clock_arc)),
            };
            let front: Arc<dyn Handler> = match &config.federation {
                Some(fed) => {
                    // Distinct nonce streams per handler: the fleet is
                    // load-balanced, and two handlers at the same RNG
                    // position would mint colliding nonces.
                    handler.attach_resume(
                        ResumeAuthority::new(
                            &fed.resume_key,
                            &fed.trust.home_realm,
                            &fed.trust.home_realm,
                            fed.resume_lifetime_steps,
                            30,
                        ),
                        config.seed ^ 0xfed0 ^ (i as u64) << 8,
                    );
                    let router = Arc::new(RealmRouter::new(
                        fed.trust.clone(),
                        handler,
                        config.seed ^ 0xfed1 ^ (i as u64) << 8,
                        Arc::clone(&config.metrics),
                    ));
                    realm_routers.push(Arc::clone(&router));
                    router
                }
                None => handler,
            };
            let server = Arc::new(RadiusServer::new(config.radius_secret.clone(), front));
            let faults = FaultPlan::healthy();
            transports.push(Arc::new(InMemoryTransport::new(
                &format!("radius{i}"),
                Arc::clone(&server),
                Arc::clone(&faults),
            )));
            radius_faults.push(faults);
            radius_servers.push(server);
        }

        // Risk engine, shared by every node's gate and fed by Center::ssh.
        let risk_engine = config.risk.as_ref().map(|p| {
            let engine = RiskEngine::new(Arc::clone(&p.geodb), p.weights.clone());
            engine.attach_metrics(Arc::clone(&config.metrics));
            engine
        });

        // Login nodes.
        let internal_rule = format!(
            "+ : ALL : {}/{} : ALL",
            config.internal_network.addr, config.internal_network.prefix
        );
        let mut nodes = Vec::new();
        for (i, name) in config.login_nodes.iter().enumerate() {
            let authlog = AuthLog::new();
            let exemptions = WatchedAccessConfig::new(
                AccessConfig::parse(&internal_rule).expect("internal rule parses"),
            );
            let mut client_config = ClientConfig::new(config.radius_secret.clone(), name);
            client_config.retry = config.retry.clone();
            client_config.breaker = config.breaker;
            let radius_client = Arc::new(RadiusClient::with_metrics(
                client_config,
                transports.clone(),
                Arc::clone(&config.metrics),
            ));
            let token_module = TokenModule::new(
                config.enforcement.clone(),
                Arc::clone(&radius_client),
                directory.clone(),
                &config.people_base,
                config.seed ^ (i as u64),
            );
            token_module.set_degradation(config.degradation.clone());
            let mut stack = PamStack::new();
            // The risk gate leads the stack: a denied login never reaches
            // the password module (and the pubkey module's SuccessSkip(1)
            // arithmetic, which skips the *next* module, stays intact).
            if let Some(engine) = &risk_engine {
                stack.push(
                    ControlFlag::Requisite,
                    RiskGateModule::new(Arc::clone(engine)),
                );
            }
            stack.push(
                ControlFlag::SuccessSkip(1),
                PubkeyCheckModule::new(Arc::new(authlog.clone())),
            );
            stack.push(
                ControlFlag::Requisite,
                UnixPasswordModule::new(directory.clone(), &config.people_base),
            );
            stack.push(
                ControlFlag::Sufficient,
                ExemptionModule::new(exemptions.clone()),
            );
            stack.push(ControlFlag::Required, Arc::clone(&token_module) as _);
            stack.set_metrics(Arc::clone(&config.metrics));
            let daemon = SshDaemon::with_metrics(
                name,
                Arc::new(stack),
                authlog,
                Arc::clone(&clock_arc),
                Arc::clone(&config.metrics),
            );
            nodes.push(Arc::new(LoginNode {
                name: name.clone(),
                daemon,
                token_module,
                exemptions,
                radius_client,
            }));
        }

        let alerts = Arc::new(AlertEngine::new(
            Arc::clone(&config.metrics),
            default_security_rules(),
        ));
        admin.attach_alerts(Arc::clone(&alerts));

        // Cross-site trace assembly: this site's registry is the first
        // source; federation wiring adds peer registries so one login's
        // spans from every hop assemble into a single tree.
        let traces = Arc::new(TraceCollector::new());
        traces.add_source(Arc::clone(&config.metrics));
        admin.attach_traces(Arc::clone(&traces));

        Arc::new(Center {
            config,
            clock,
            directory,
            identity,
            linotp,
            twilio,
            admin,
            portal,
            radius_faults,
            radius_servers,
            nodes,
            alerts,
            risk_engine,
            otp_cluster,
            realm_routers,
            radius_transports: transports,
            traces,
            exemption_lines: Mutex::new(Vec::new()),
        })
    }

    /// A center with default parameters.
    pub fn default_center() -> Arc<Self> {
        Self::new(CenterConfig::default())
    }

    // ------------------------------------------------------------------
    // Account management
    // ------------------------------------------------------------------

    /// Create an account end to end: identity record, LDAP entry with
    /// password hash, uid number shared between both (§3.1).
    pub fn create_user(&self, username: &str, email: &str, password: &str) {
        let rec = self
            .identity
            .create_account(username, email)
            .expect("unique username");
        let dn = format!("uid={username},{}", self.config.people_base);
        self.directory
            .add(
                Entry::new(dn)
                    .with_attr("uid", username)
                    .with_attr(
                        hpcmfa_directory::UID_NUMBER_ATTR,
                        &rec.uid_number.to_string(),
                    )
                    .with_attr("mail", email)
                    .with_attr(PASSWORD_ATTR, &hash_password(password, username)),
            )
            .expect("unique dn");
    }

    /// Install a public key for `user` on every login node.
    pub fn authorize_key_everywhere(&self, user: &str, key: &PublicKey) {
        for node in &self.nodes {
            node.daemon.authorize_key(user, key);
        }
    }

    /// Generate and install a keypair for `user` on all nodes.
    pub fn provision_key(&self, user: &str) -> KeyPair {
        let key = KeyPair::generate(&format!("{user}@client"));
        self.authorize_key_everywhere(user, key.public());
        key
    }

    // ------------------------------------------------------------------
    // Pairing conveniences (drive the real portal flows)
    // ------------------------------------------------------------------

    /// Pair a soft token through the portal and return the working device.
    pub fn pair_soft(&self, user: &str) -> SoftToken {
        let qr = self.portal.begin_soft_pairing(user).expect("begin soft");
        let device = SoftToken::from_uri(qr.payload()).expect("scannable QR");
        let code = device.displayed_code(self.clock.now());
        self.portal
            .confirm_pairing(user, &code)
            .expect("confirm soft");
        // The confirmation consumed the current time step; step past it so
        // an immediately following login isn't a replay.
        self.clock.advance(30);
        device
    }

    /// Pair an SMS token through the portal; the confirmation code is read
    /// off the simulated phone after carrier delivery. A message that takes
    /// the slow carrier-retry path arrives after the code expired — the
    /// user waits out the validity window and restarts the pairing, as a
    /// real user would.
    pub fn pair_sms(&self, user: &str, phone: &str) -> PhoneNumber {
        let parsed = PhoneNumber::parse(phone).expect("valid phone");
        for _attempt in 0..8 {
            self.portal
                .begin_sms_pairing(user, phone)
                .expect("begin sms");
            let sent_at = self.clock.now();
            // Wait out carrier latency (fast path is ≤ 9 s).
            self.clock.advance(10);
            let inbox = self.twilio.inbox(&parsed, self.clock.now());
            let fresh = inbox.iter().rev().find(|m| m.sent_at >= sent_at);
            if let Some(msg) = fresh {
                let code = msg.body.rsplit(' ').next().unwrap().to_string();
                self.portal
                    .confirm_pairing(user, &code)
                    .expect("confirm sms");
                self.clock.advance(30);
                return parsed;
            }
            // Delayed delivery: let the pending code expire, then retry
            // from the top (the suppression window blocks earlier resends).
            self.clock
                .advance(hpcmfa_otpserver::SMS_CODE_VALIDITY_SECS + 1);
        }
        panic!("carrier failed to deliver a pairing SMS in 8 attempts");
    }

    /// Import a hard-token batch and pair one fob to `user` by serial.
    pub fn pair_hard(&self, user: &str, batch: &HardTokenBatch, serial: &str) {
        self.portal.import_hard_token_batch(batch.seed_file());
        self.portal
            .begin_hard_pairing(user, serial)
            .expect("begin hard");
        let fob = batch.by_serial(serial).expect("serial in batch");
        let code = fob.press_button(self.clock.now()).expect("battery ok");
        self.portal
            .confirm_pairing(user, &code)
            .expect("confirm hard");
        self.clock.advance(30);
    }

    /// Enroll a training account with a static code (§3.3). Also records
    /// the pairing in the identity back end and LDAP.
    pub fn enroll_training_account(&self, user: &str) -> String {
        let code = self.linotp.enroll_static(user, self.clock.now());
        let _ = self
            .identity
            .set_pairing(user, PairingMethod::Training, self.clock.now());
        let dn = format!("uid={user},{}", self.config.people_base);
        let _ = self.directory.modify(&dn, |e| {
            e.set_attr(
                hpcmfa_directory::MFA_PAIRING_ATTR,
                vec!["training".to_string()],
            );
        });
        code
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    /// Switch the enforcement mode on every node (the phase transitions of
    /// §5).
    pub fn set_enforcement(&self, mode: EnforcementMode) {
        for node in &self.nodes {
            node.token_module.set_mode(mode.clone());
        }
    }

    /// Switch the total-outage degradation policy on every node.
    pub fn set_degradation(&self, policy: DegradationPolicy) {
        for node in &self.nodes {
            node.token_module.set_degradation(policy.clone());
        }
    }

    /// Per-RADIUS-server health as seen from login node `node_idx`.
    pub fn radius_health(&self, node_idx: usize) -> Vec<ServerHealthSnapshot> {
        self.nodes[node_idx].radius_client.server_health()
    }

    /// The fleet's transports, for peer sites building cross-realm pools.
    pub fn radius_transports(&self) -> Vec<Arc<dyn Transport>> {
        self.radius_transports.clone()
    }

    /// Register a peer site's metrics registry with this site's trace
    /// collector: a federated login's spans recorded over there join the
    /// trees assembled (and served via `GET /system/traces`) here.
    pub fn add_trace_source(&self, registry: Arc<MetricsRegistry>) {
        self.traces.add_source(registry);
    }

    /// Wire `peer` as the upstream for `realm`: every realm router in
    /// this center gets a dedicated [`RadiusClient`] over the peer's
    /// fleet, keyed with the shared secret from this site's trust config.
    /// The realm must appear in the trust ACL (the secret comes from its
    /// peer entry) and this center must be federated.
    pub fn connect_peer_realm(&self, realm: &str, peer: &Center) {
        let fed = self
            .config
            .federation
            .as_ref()
            .expect("connect_peer_realm on a non-federated center");
        let secret = fed
            .trust
            .peer(realm)
            .unwrap_or_else(|| panic!("realm {realm} not in the trust ACL"))
            .secret
            .clone();
        let mut client_config =
            ClientConfig::new(secret, &format!("{}-to-{realm}", fed.trust.home_realm));
        client_config.retry = self.config.retry.clone();
        client_config.breaker = self.config.breaker;
        // One pool per realm, shared by all routers: its per-server
        // breakers are this realm's breakers, independent of every other
        // realm's pool and of the local fleet's clients.
        let upstream = Arc::new(RadiusClient::with_metrics(
            client_config,
            peer.radius_transports(),
            Arc::clone(&self.config.metrics),
        ));
        for router in &self.realm_routers {
            router.add_route(realm, Arc::clone(&upstream));
        }
    }

    /// Kill the OTP server mid-stream and bring it back from durable
    /// state: un-synced WAL bytes are lost (possibly leaving a torn
    /// tail), the in-memory store is wiped, and recovery replays
    /// snapshot + WAL. Requires `otp_storage` in the config; the RADIUS
    /// handlers and admin API share the recovered instance, so the fleet
    /// resumes serving immediately.
    pub fn crash_otp_server(&self) -> Result<RecoveryReport, RecoverError> {
        self.linotp.crash_and_recover()
    }

    /// Append an exemption rule (one config line) and reload every node's
    /// list — "changes take effect immediately upon write to disk" (§3.4).
    pub fn add_exemption_rule(
        &self,
        line: &str,
    ) -> Result<(), hpcmfa_pam::access::AccessParseError> {
        let mut lines = self.exemption_lines.lock();
        let internal_rule = format!(
            "+ : ALL : {}/{} : ALL",
            self.config.internal_network.addr, self.config.internal_network.prefix
        );
        let mut text = String::new();
        for l in lines.iter() {
            text.push_str(l);
            text.push('\n');
        }
        text.push_str(line);
        text.push('\n');
        text.push_str(&internal_rule);
        text.push('\n');
        let parsed = AccessConfig::parse(&text)?;
        for node in &self.nodes {
            node.exemptions.reload(parsed.clone());
        }
        lines.push(line.to_string());
        Ok(())
    }

    /// SSH into node `node_idx` with `profile`. Every login also drives
    /// one alert-engine evaluation at the current virtual time, so any
    /// center-based harness (chaos, rollout, tests) gets a per-login
    /// alert cadence with no extra pumping.
    pub fn ssh(&self, node_idx: usize, profile: &ClientProfile) -> SessionReport {
        let report = self.nodes[node_idx].daemon.connect(profile);
        if let Some(engine) = &self.risk_engine {
            engine.record_outcome(&profile.username, self.clock.now(), report.granted);
        }
        self.alerts
            .tick(self.clock.now(), &self.config.metrics.snapshot());
        report
    }

    /// The center-wide metrics registry shared by every component.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.config.metrics
    }

    /// A point-in-time snapshot of every metric in the center.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.config.metrics.snapshot()
    }

    /// An address inside the internal network (for intra-center traffic).
    pub fn internal_ip(&self, host: u8) -> Ipv4Addr {
        let base = u32::from(self.config.internal_network.addr);
        Ipv4Addr::from(base | ((40u32 << 8) | host as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmfa_ssh::client::TokenSource;

    const EXTERNAL_IP: Ipv4Addr = Ipv4Addr::new(70, 112, 50, 3);

    fn center() -> Arc<Center> {
        let c = Center::default_center();
        c.create_user("alice", "alice@utexas.edu", "alice-pw");
        c.create_user("gateway1", "gw@portal.org", "gw-pw");
        c
    }

    #[test]
    fn unpaired_user_passes_in_paired_mode() {
        let c = center();
        let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw");
        let report = c.ssh(0, &profile);
        assert!(report.granted);
        assert!(!report.mfa_prompted);
    }

    #[test]
    fn paired_user_is_challenged_and_succeeds() {
        let c = center();
        let device = c.pair_soft("alice");
        let clock = c.clock.clone();
        let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw").with_token(
            TokenSource::device(move |now| {
                let _ = &clock;
                Some(device.displayed_code(now))
            }),
        );
        let report = c.ssh(0, &profile);
        assert!(report.granted, "prompts: {:?}", report.prompts);
        assert!(report.mfa_prompted);
    }

    #[test]
    fn full_mode_locks_out_unpaired() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw");
        let report = c.ssh(0, &profile);
        assert!(!report.granted);
        assert!(report.mfa_prompted);
    }

    #[test]
    fn internal_traffic_is_exempt() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        let profile = ClientProfile::interactive_user("alice", c.internal_ip(7), "alice-pw");
        let report = c.ssh(0, &profile);
        assert!(report.granted);
        assert!(!report.mfa_prompted);
    }

    #[test]
    fn gateway_exemption_with_pubkey_runs_noninteractive() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        c.add_exemption_rule("+ : gateway1 : ALL : ALL").unwrap();
        let key = c.provision_key("gateway1");
        let profile = ClientProfile::batch_client("gateway1", EXTERNAL_IP, key);
        let report = c.ssh(0, &profile);
        assert!(report.granted);
        assert!(report.used_pubkey);
        assert!(report.prompts.is_empty(), "fully non-interactive");
    }

    #[test]
    fn batch_client_without_exemption_fails_in_full_mode() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        let key = c.provision_key("alice");
        let profile = ClientProfile::batch_client("alice", EXTERNAL_IP, key);
        let report = c.ssh(0, &profile);
        assert!(!report.granted);
    }

    #[test]
    fn temporary_variance_expires_mid_simulation() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        c.add_exemption_rule("+ : alice : ALL : 2016-08-20")
            .unwrap();
        let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw");
        assert!(c.ssh(0, &profile).granted);
        // Advance past the variance (start is 2016-08-10).
        c.clock.advance(12 * 86_400);
        assert!(!c.ssh(0, &profile).granted);
    }

    #[test]
    fn sms_pairing_and_login() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        let phone = c.pair_sms("alice", "5125551234");
        let twilio = Arc::clone(&c.twilio);
        let clock = c.clock.clone();
        // The login-time token source reads the most recent SMS; carrier
        // latency means we read slightly in the future of "now".
        let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw").with_token(
            TokenSource::device(move |now| {
                clock.advance(10); // user waits for the text
                let _ = now;
                twilio
                    .inbox(&phone, clock.now())
                    .last()
                    .map(|m| m.body.rsplit(' ').next().unwrap().to_string())
            }),
        );
        let report = c.ssh(0, &profile);
        assert!(report.granted, "prompts: {:?}", report.prompts);
        assert!(report.prompts.iter().any(|p| p.contains("SMS")));
    }

    #[test]
    fn hard_token_pairing_and_login() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        use rand::SeedableRng;
        let batch = HardTokenBatch::manufacture("TACC", 5, &mut rng);
        c.pair_hard("alice", &batch, "TACC-0003");
        let fob = batch.by_serial("TACC-0003").unwrap().clone();
        c.clock.advance(30);
        let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
            .with_token(TokenSource::device(move |now| fob.press_button(now)));
        assert!(c.ssh(0, &profile).granted);
    }

    #[test]
    fn training_account_static_code() {
        let c = center();
        c.create_user("train01", "train@tacc", "train-pw");
        c.set_enforcement(EnforcementMode::Full);
        let code = c.enroll_training_account("train01");
        let profile = ClientProfile::interactive_user("train01", EXTERNAL_IP, "train-pw")
            .with_token(TokenSource::Fixed(code.clone()));
        // Reusable: several participants log in with the same code.
        for _ in 0..3 {
            assert!(c.ssh(0, &profile).granted);
            c.clock.advance(60);
        }
    }

    #[test]
    fn radius_outage_failover_keeps_logins_working() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        let device = c.pair_soft("alice");
        // Take down 2 of 3 RADIUS servers.
        c.radius_faults[0].set_down(true);
        c.radius_faults[1].set_down(true);
        let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw").with_token(
            TokenSource::device(move |now| Some(device.displayed_code(now))),
        );
        assert!(c.ssh(0, &profile).granted);
        // Total outage fails secure.
        c.radius_faults[2].set_down(true);
        c.clock.advance(30);
        assert!(!c.ssh(1, &profile).granted);
    }

    #[test]
    fn both_nodes_share_backend_state() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        let device = c.pair_soft("alice");
        let d2 = device.clone();
        let p1 = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw").with_token(
            TokenSource::device(move |now| Some(device.displayed_code(now))),
        );
        assert!(c.ssh(0, &p1).granted);
        c.clock.advance(30);
        let p2 = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
            .with_token(TokenSource::device(move |now| Some(d2.displayed_code(now))));
        assert!(c.ssh(1, &p2).granted);
    }

    #[test]
    fn durable_center_keeps_replay_nullification_across_otp_crash() {
        use hpcmfa_otpserver::MemoryBackend;
        let backend = MemoryBackend::healthy();
        let c = Center::new(CenterConfig {
            otp_storage: Some(backend as Arc<dyn StorageBackend>),
            ..CenterConfig::default()
        });
        c.create_user("alice", "alice@utexas.edu", "alice-pw");
        c.set_enforcement(EnforcementMode::Full);
        let device = c.pair_soft("alice");
        let code = device.displayed_code(c.clock.now());
        let p = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
            .with_token(TokenSource::Fixed(code));
        assert!(c.ssh(0, &p).granted);

        let report = c.crash_otp_server().expect("recovers");
        assert!(report.wal_records > 0, "the login stream was logged");

        // The accepted code is still a replay on the recovered server.
        assert!(!c.ssh(1, &p).granted);

        // A fresh code works: the fleet resumed serving after recovery.
        c.clock.advance(30);
        let d2 = device.clone();
        let fresh = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
            .with_token(TokenSource::device(move |now| Some(d2.displayed_code(now))));
        assert!(c.ssh(0, &fresh).granted);
    }

    #[test]
    fn replicated_center_promotes_the_standby_when_the_primary_dies() {
        use hpcmfa_otpserver::MemoryBackend;
        let primary = MemoryBackend::healthy();
        let standby = MemoryBackend::healthy();
        let c = Center::new(CenterConfig {
            otp_replication: Some(OtpReplicationParams::new(
                ReplicationMode::Sync,
                Arc::clone(&primary) as Arc<dyn StorageBackend>,
                Arc::clone(&standby) as Arc<dyn StorageBackend>,
            )),
            ..CenterConfig::default()
        });
        c.create_user("alice", "alice@utexas.edu", "alice-pw");
        c.set_enforcement(EnforcementMode::Full);
        let device = c.pair_soft("alice");
        let code = device.displayed_code(c.clock.now());
        let replayed = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
            .with_token(TokenSource::Fixed(code));
        assert!(c.ssh(0, &replayed).granted);

        // Kill the primary's storage: durable appends fail, its breaker
        // opens, and the next request promotes the warm standby.
        primary.set_down(true);
        let d2 = device.clone();
        let fresh = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
            .with_token(TokenSource::device(move |now| Some(d2.displayed_code(now))));
        let cluster = c.otp_cluster.as_ref().expect("replicated center");
        for _ in 0..6 {
            c.clock.advance(30);
            let _ = c.ssh(0, &fresh);
            if cluster.epoch() > 1 {
                break;
            }
        }
        assert_eq!(cluster.epoch(), 2, "standby promoted");
        assert_eq!(cluster.failovers(), 1);

        // The fleet serves from the standby...
        c.clock.advance(30);
        assert!(c.ssh(1, &fresh).granted);
        // ...and the pre-crash acceptance replicated: replay still denied.
        assert!(!c.ssh(0, &replayed).granted);
    }

    #[test]
    fn one_login_populates_the_shared_registry_and_threads_one_trace() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        let device = c.pair_soft("alice");
        let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw").with_token(
            TokenSource::device(move |now| Some(device.displayed_code(now))),
        );
        let report = c.ssh(0, &profile);
        assert!(report.granted, "prompts: {:?}", report.prompts);

        // Every layer recorded into the ONE center-wide registry.
        let snap = c.metrics_snapshot();
        assert!(snap.counter_family("hpcmfa_ssh_sessions_total") >= 1);
        assert!(snap.counter_family("hpcmfa_pam_stack_runs_total") >= 1);
        assert!(snap.counter_family("hpcmfa_radius_requests_total") >= 1);
        assert!(
            snap.counter("hpcmfa_otp_validations_total{outcome=\"success\"}") >= 1,
            "the OTP back end shares the registry"
        );
        let hist = snap.histogram_family("hpcmfa_radius_request_duration_us");
        assert!(hist.count() >= 1, "auth-path latency histogram present");

        // The session minted a trace id that reached the OTP audit log:
        // PAM stamped it on the RADIUS wire, the back end appended it to
        // the audit detail, and the tracer saw spans from both ends.
        let trace = *report.trace_ids.last().expect("session minted a trace id");
        let needle = format!("trace={trace}");
        assert!(
            c.linotp
                .audit()
                .for_user("alice")
                .iter()
                .any(|e| e.detail.contains(&needle)),
            "audit rows carry the session trace id"
        );
        let components = c.metrics().tracer().components_for(trace);
        assert!(
            components.contains(&"pam".to_string()) && components.contains(&"otp".to_string()),
            "spans from both ends of the path: {components:?}"
        );
    }

    #[test]
    fn replayed_token_code_rejected_across_nodes() {
        let c = center();
        c.set_enforcement(EnforcementMode::Full);
        let device = c.pair_soft("alice");
        let code = device.displayed_code(c.clock.now());
        let p = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
            .with_token(TokenSource::Fixed(code.clone()));
        assert!(c.ssh(0, &p).granted);
        // Same code immediately on the other node: replay, denied.
        assert!(!c.ssh(1, &p).granted);
    }
}
