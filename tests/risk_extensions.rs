//! Integration of the §6 growth features: geolocation gating and dynamic
//! risk assessment wired into the full Figure 1 stack — a risky login
//! loses its exemption bypass, an impossible-travel login is denied.

use securing_hpc::core::center::{Center, CenterConfig};
use securing_hpc::core::Clock as _;
use securing_hpc::pam::context::PamContext;
use securing_hpc::pam::conv::ScriptedConversation;
use securing_hpc::pam::modules::exemption::ExemptionModule;
use securing_hpc::pam::modules::password::UnixPasswordModule;
use securing_hpc::pam::modules::token::{EnforcementMode, TokenModule};
use securing_hpc::pam::stack::{ControlFlag, PamStack, PamVerdict};
use securing_hpc::risk::engine::{RiskEngine, RiskGateModule, RiskWeights};
use securing_hpc::risk::geo::{CountryCode, GeoAction, GeoDb, GeoGateModule, GeoPolicy};
use std::sync::Arc;

const DAY: u64 = 86_400;

fn geodb() -> Arc<GeoDb> {
    Arc::new(
        GeoDb::parse(
            "129.114.0.0/16 US\n\
             70.0.0.0/8     US\n\
             141.30.0.0/16  DE\n\
             1.2.0.0/16     CN\n",
        )
        .unwrap(),
    )
}

/// Build the Figure 1 stack with the risk gate in front and return
/// everything needed to run logins by hand.
struct RiskRig {
    center: Arc<Center>,
    stack: PamStack,
    engine: Arc<RiskEngine>,
}

fn rig() -> RiskRig {
    let center = Center::new(CenterConfig::default());
    center.create_user("gateway1", "g@x.edu", "gw-pw");
    center.create_user("alice", "a@x.edu", "alice-pw");
    center
        .add_exemption_rule("+ : gateway1 : ALL : ALL")
        .unwrap();
    let node = &center.nodes[0];

    let engine = RiskEngine::new(geodb(), RiskWeights::default());
    let mut stack = PamStack::new();
    stack.push(
        ControlFlag::Requisite,
        RiskGateModule::new(Arc::clone(&engine)),
    );
    stack.push(
        ControlFlag::Requisite,
        UnixPasswordModule::new(center.directory.clone(), "ou=people,dc=tacc"),
    );
    stack.push(
        ControlFlag::Sufficient,
        ExemptionModule::new(node.exemptions.clone()),
    );
    stack.push(
        ControlFlag::Required,
        TokenModule::new(
            EnforcementMode::Full,
            Arc::clone(&node.radius_client),
            center.directory.clone(),
            "ou=people,dc=tacc",
            91,
        ),
    );
    RiskRig {
        center: Arc::clone(&center),
        stack,
        engine,
    }
}

fn login(rig: &RiskRig, user: &str, ip: &str, answers: Vec<String>) -> PamVerdict {
    let mut conv = ScriptedConversation::with_answers(answers);
    let mut ctx = PamContext::new(
        user,
        ip.parse().unwrap(),
        Arc::new(rig.center.clock.clone()),
        &mut conv,
    );
    let verdict = rig.stack.authenticate(&mut ctx);
    rig.engine
        .record_outcome(user, rig.center.clock.now(), verdict == PamVerdict::Granted);
    verdict
}

#[test]
fn exempt_gateway_loses_bypass_on_risky_login() {
    let r = rig();
    // The gateway's habitual location: exemption bypasses the token.
    assert_eq!(
        login(&r, "gateway1", "70.1.2.3", vec!["gw-pw".into()]),
        PamVerdict::Granted
    );
    r.center.clock.advance(30 * DAY);
    // Same credentials from a never-seen country: risk gate demands
    // step-up, so the exemption refuses to bypass — the token module runs
    // and this "gateway" has no device: denied.
    assert_eq!(
        login(&r, "gateway1", "141.30.9.9", vec!["gw-pw".into()]),
        PamVerdict::Denied
    );
    // Back home, the standing exemption works again.
    r.center.clock.advance(30 * DAY);
    assert_eq!(
        login(&r, "gateway1", "70.1.2.3", vec!["gw-pw".into()]),
        PamVerdict::Granted
    );
}

#[test]
fn impossible_travel_is_denied_before_password() {
    let r = rig();
    let device = r.center.pair_soft("alice");
    let code = |rig: &RiskRig| device.displayed_code(rig.center.clock.now());

    assert_eq!(
        login(&r, "alice", "70.1.2.3", vec!["alice-pw".into(), code(&r)]),
        PamVerdict::Granted
    );
    // Germany a month later: new country = step-up, but alice has a
    // device, so MFA satisfies it.
    r.center.clock.advance(30 * DAY);
    assert_eq!(
        login(&r, "alice", "141.30.9.9", vec!["alice-pw".into(), code(&r)]),
        PamVerdict::Granted
    );
    // "China" twenty minutes later: impossible travel — denied outright,
    // even with the correct password and token code available.
    r.center.clock.advance(1200);
    assert_eq!(
        login(&r, "alice", "1.2.3.4", vec!["alice-pw".into(), code(&r)]),
        PamVerdict::Denied
    );
}

#[test]
fn geo_deny_list_blocks_before_anything_else() {
    let center = Center::new(CenterConfig::default());
    center.create_user("restricted", "r@x.edu", "r-pw");
    let policy = Arc::new(GeoPolicy::new(GeoAction::Deny));
    policy.allow_user("restricted", &[CountryCode::parse("US").unwrap()]);
    let gate = GeoGateModule::new(geodb(), policy);

    let mut stack = PamStack::new();
    stack.push(ControlFlag::Requisite, gate);
    stack.push(
        ControlFlag::Required,
        UnixPasswordModule::new(center.directory.clone(), "ou=people,dc=tacc"),
    );

    let run = |ip: &str, answers: Vec<String>| {
        let mut conv = ScriptedConversation::with_answers(answers);
        let mut ctx = PamContext::new(
            "restricted",
            ip.parse().unwrap(),
            Arc::new(center.clock.clone()),
            &mut conv,
        );
        stack.authenticate(&mut ctx)
    };
    assert_eq!(run("70.1.1.1", vec!["r-pw".into()]), PamVerdict::Granted);
    // From Germany: denied with no password prompt at all.
    let mut conv = ScriptedConversation::with_answers(Vec::<String>::new());
    let transcript = conv.transcript();
    let mut ctx = PamContext::new(
        "restricted",
        "141.30.1.1".parse().unwrap(),
        Arc::new(center.clock.clone()),
        &mut conv,
    );
    assert_eq!(stack.authenticate(&mut ctx), PamVerdict::Denied);
    assert!(transcript.lock().is_empty(), "blocked before any prompt");
}
