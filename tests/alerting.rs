//! Alerting acceptance: the deterministic rule engine notices injected
//! faults and nothing else.
//!
//! Four claims are on trial:
//!
//! 1. Detection — a full RADIUS outage drives `radius_error_rate` and the
//!    multi-window `auth_slo_burn` through pending → firing *within* the
//!    injection window, and both resolve after recovery.
//! 2. Determinism — the same seed replays to a byte-identical alert
//!    timeline and security-event feed, under outage, garble, and
//!    latency-spike scripts alike.
//! 3. Specificity — a fault-free control run fires zero alerts and emits
//!    zero security events.
//! 4. Joinability — every security event carries a trace id that joins to
//!    at least one span or audit row from the same run.

use securing_hpc::core::center::{Center, CenterConfig};
use securing_hpc::crypto::digestauth::answer_challenge;
use securing_hpc::otp::clock::Clock;
use securing_hpc::otpserver::admin::{AdminApi, HttpRequest};
use securing_hpc::otpserver::json::Json;
use securing_hpc::pam::modules::token::EnforcementMode;
use securing_hpc::ssh::client::{ClientProfile, TokenSource};
use securing_hpc::workload::chaos::{ChaosParams, ChaosRunner, FaultAction, FaultScript};
use std::net::Ipv4Addr;
use std::sync::Arc;

const EXTERNAL_IP: Ipv4Addr = Ipv4Addr::new(70, 112, 50, 3);

/// A center with one soft-token user, plus a login profile for them.
fn center_with_alice() -> (Arc<Center>, ClientProfile) {
    let c = Center::new(CenterConfig::default());
    c.create_user("alice", "alice@utexas.edu", "alice-pw");
    c.set_enforcement(EnforcementMode::Full);
    let device = c.pair_soft("alice");
    let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw").with_token(
        TokenSource::device(move |now| Some(device.displayed_code(now))),
    );
    (c, profile)
}

/// Drive `n` logins 30 virtual seconds apart (a fresh TOTP step each, so
/// healthy logins never read as replays).
fn drive_logins(c: &Center, profile: &ClientProfile, n: usize) {
    for _ in 0..n {
        c.clock.advance(30);
        c.ssh(0, profile);
    }
}

/// The virtual timestamp leading a timeline line ("{at} {rule} {a}->{b}").
fn at_of(line: &str) -> u64 {
    line.split_whitespace().next().unwrap().parse().unwrap()
}

#[test]
fn outage_drives_rules_through_firing_and_back() {
    let (c, profile) = center_with_alice();

    // Healthy baseline so the SLO windows have good traffic to burn.
    drive_logins(&c, &profile, 12);
    assert!(
        c.alerts.timeline().is_empty(),
        "baseline already alerted: {:?}",
        c.alerts.timeline_lines()
    );

    // Full outage: every RADIUS server down. Failover has nowhere to go,
    // so each login records an `error` outcome (fail-secure denial).
    let t_inject = c.clock.now();
    for f in &c.radius_faults {
        f.set_down(true);
    }
    drive_logins(&c, &profile, 12); // 360 virtual seconds of outage
    let t_recover = c.clock.now();
    for f in &c.radius_faults {
        f.set_down(false);
    }
    // Recovery long enough for every window to drain and cooldowns to
    // elapse: 24 logins = 720 virtual seconds.
    drive_logins(&c, &profile, 24);

    let lines = c.alerts.timeline_lines();
    let fired_in_window = |rule: &str| {
        lines.iter().any(|l| {
            l.contains(rule)
                && l.ends_with("->firing")
                && (t_inject..=t_recover).contains(&at_of(l))
        })
    };
    assert!(
        fired_in_window("radius_error_rate"),
        "radius_error_rate never fired inside [{t_inject}, {t_recover}]:\n{lines:#?}"
    );
    assert!(
        fired_in_window("auth_slo_burn"),
        "auth_slo_burn never fired inside [{t_inject}, {t_recover}]:\n{lines:#?}"
    );
    // Both escalated through pending first — no teleporting states.
    for rule in ["radius_error_rate", "auth_slo_burn"] {
        assert!(
            lines
                .iter()
                .any(|l| l.contains(rule) && l.contains("inactive->pending")),
            "{rule} skipped pending:\n{lines:#?}"
        );
    }
    // And both resolved after recovery, at a post-recovery timestamp.
    for rule in ["radius_error_rate", "auth_slo_burn"] {
        assert!(
            lines.iter().any(|l| l.contains(rule)
                && l.contains("firing->resolved")
                && at_of(l) >= t_recover),
            "{rule} never resolved after recovery:\n{lines:#?}"
        );
    }
    assert!(
        !c.alerts
            .active()
            .iter()
            .any(|s| s.rule == "radius_error_rate" || s.rule == "auth_slo_burn"),
        "outage rules still active long after recovery: {:?}",
        c.alerts.active()
    );
}

#[test]
fn identical_seeds_replay_identical_alert_timelines() {
    let full_outage = FaultScript::new()
        .at(20, 0, FaultAction::ServerDown)
        .at(20, 1, FaultAction::ServerDown)
        .at(20, 2, FaultAction::ServerDown)
        .at(45, 0, FaultAction::ServerUp)
        .at(45, 1, FaultAction::ServerUp)
        .at(45, 2, FaultAction::ServerUp);
    let run = || {
        ChaosRunner::new(ChaosParams {
            radius_servers: 3,
            logins: 120,
            users: 4,
            seed: 0xa1e47,
            ..ChaosParams::default()
        })
        .run(&full_outage)
    };
    let a = run();
    let b = run();
    // The Display form includes the alert timeline and event feed, so one
    // comparison covers counters, alerts, and events at once.
    assert_eq!(format!("{a}"), format!("{b}"), "replay diverged");
    assert_eq!(a.alerts, b.alerts);
    assert_eq!(a.security_events, b.security_events);
    assert!(
        a.alerts.iter().any(|l| l.ends_with("->firing")),
        "full outage fired nothing:\n{:#?}",
        a.alerts
    );
    assert!(
        !a.security_events.is_empty(),
        "full outage emitted no security events"
    );
}

#[test]
fn garble_storm_replays_deterministically() {
    let script = FaultScript::new()
        .at(10, 1, FaultAction::GarbleStorm { one_in: 4 })
        .at(60, 1, FaultAction::GarbleStorm { one_in: 0 });
    let run = || {
        ChaosRunner::new(ChaosParams {
            radius_servers: 3,
            logins: 100,
            users: 4,
            seed: 0x6a4b1e,
            ..ChaosParams::default()
        })
        .run(&script)
    };
    let a = run();
    let b = run();
    assert_eq!(format!("{a}"), format!("{b}"), "garble replay diverged");
    // Corrupted replies on one server are absorbed by redials/failover:
    // the stream survives even if the alert engine takes note.
    assert_eq!(a.availability(), 1.0, "garble broke availability:\n{a}");
}

#[test]
fn latency_spike_fires_the_p99_rule() {
    // +150 ms one-way on every server: requests still succeed, but the
    // vclock p99 blows through the 100 ms objective.
    let mut script = FaultScript::new();
    for s in 0..3 {
        script = script
            .at(10, s, FaultAction::LatencySpike { extra_us: 150_000 })
            .at(50, s, FaultAction::LatencySpike { extra_us: 0 });
    }
    let run = || {
        ChaosRunner::new(ChaosParams {
            radius_servers: 3,
            logins: 110,
            users: 4,
            seed: 0x51a7e,
            ..ChaosParams::default()
        })
        .run(&script)
    };
    let a = run();
    let b = run();
    assert_eq!(format!("{a}"), format!("{b}"), "latency replay diverged");
    assert_eq!(a.availability(), 1.0, "slow is not down:\n{a}");
    assert!(
        a.alerts
            .iter()
            .any(|l| l.contains("auth_latency_p99") && l.ends_with("->firing")),
        "p99 rule never fired under a 150 ms spike:\n{:#?}",
        a.alerts
    );
}

#[test]
fn control_run_fires_zero_alerts_and_zero_events() {
    let report = ChaosRunner::new(ChaosParams {
        radius_servers: 3,
        logins: 120,
        users: 4,
        seed: 0xc0497801,
        ..ChaosParams::default()
    })
    .run(&FaultScript::new());
    assert_eq!(report.availability(), 1.0);
    assert!(
        report.alerts.is_empty(),
        "fault-free run produced alert transitions:\n{:#?}",
        report.alerts
    );
    assert!(
        report.security_events.is_empty(),
        "fault-free run emitted security events:\n{:#?}",
        report.security_events
    );
}

#[test]
fn every_security_event_joins_a_span_or_audit_row() {
    let (c, profile) = center_with_alice();
    drive_logins(&c, &profile, 6);

    // Outage: breaker-flap events from the client walk, then a PAM
    // failure burst as the denials stack up.
    for f in &c.radius_faults {
        f.set_down(true);
    }
    drive_logins(&c, &profile, 6);
    for f in &c.radius_faults {
        f.set_down(false);
    }

    // Replay: log in twice with the same frozen code; the second attempt
    // resubmits a consumed OTP.
    let (code_dev, _) = {
        let d = c.pair_soft("alice");
        (d.clone(), d)
    };
    c.clock.advance(30);
    let frozen = code_dev.displayed_code(c.clock.now());
    let replay_profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
        .with_token(TokenSource::Fixed(frozen));
    assert!(c.ssh(0, &replay_profile).granted);
    assert!(!c.ssh(0, &replay_profile).granted, "replay must be denied");

    let events = c.metrics().security_events().all();
    assert!(events.len() >= 2, "scenario emitted too few events");
    let kinds: Vec<&str> = events.iter().map(|e| e.kind.label()).collect();
    assert!(kinds.contains(&"breaker_flap"), "kinds: {kinds:?}");
    assert!(kinds.contains(&"replay_attempt"), "kinds: {kinds:?}");

    let audit = c.linotp.audit().export_all();
    for event in &events {
        let trace = event
            .trace
            .unwrap_or_else(|| panic!("event without a trace id: {event}"));
        let in_tracer = !c.metrics().tracer().spans_for(trace).is_empty();
        let needle = format!("trace={trace}");
        let in_audit = audit.iter().any(|row| row.detail.contains(&needle));
        assert!(
            in_tracer || in_audit,
            "event {event} joins neither a span nor an audit row"
        );
    }
}

/// Satellite regression: `/system/alerts` and `/system/metrics` must agree
/// on the lockout/SMS-pending gauges because both refresh them from the
/// same one-pass store census before reading the registry.
#[test]
fn alerts_and_metrics_routes_agree_on_gauges() {
    let c = Center::new(CenterConfig::default());
    c.create_user("alice", "alice@utexas.edu", "alice-pw");
    c.create_user("bob", "bob@utexas.edu", "bob-pw");
    c.set_enforcement(EnforcementMode::Full);
    c.pair_soft("alice");
    c.pair_sms("bob", "5125550142");

    // Lock alice out (20 wrong codes) and leave bob one SMS in flight.
    let now = c.clock.now();
    for _ in 0..20 {
        c.linotp.validate("alice", "000000", now);
    }
    c.linotp.trigger_sms("bob", now);

    let signed = |api: &AdminApi, path: &str| {
        let chal = api.issue_challenge();
        let auth = answer_challenge(
            &chal,
            "portal-svc",
            "portal-svc-password",
            "GET",
            path,
            "cn",
            1,
        );
        api.handle(
            &HttpRequest::new("GET", path, Json::Null).with_auth(auth),
            c.clock.now(),
        )
    };

    let alerts = signed(&c.admin, "/system/alerts");
    assert!(alerts.is_ok(), "alerts route failed: {}", alerts.status);
    let gauges = alerts.value().unwrap().get("gauges").unwrap().clone();
    let locked = gauges.get("locked_users").unwrap().as_f64().unwrap();
    let sms_pending = gauges.get("sms_pending").unwrap().as_f64().unwrap();
    assert_eq!(locked, 1.0, "alice is locked out");
    assert_eq!(sms_pending, 1.0, "bob's code is in flight");

    let metrics = signed(&c.admin, "/system/metrics");
    assert!(metrics.is_ok());
    let text = metrics.value().unwrap().as_str().unwrap().to_string();
    let scraped = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("{name} missing from scrape"))
            .rsplit_once(' ')
            .unwrap()
            .1
            .parse()
            .unwrap()
    };
    assert_eq!(scraped("hpcmfa_otp_locked_users"), locked);
    assert_eq!(scraped("hpcmfa_otp_sms_pending"), sms_pending);
}
