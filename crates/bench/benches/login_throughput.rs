//! §6 scale: "over half a million successful log ins". End-to-end login
//! throughput through sshd → PAM → RADIUS → OTP server, with concurrent
//! login storms across threads.
//!
//! Within one sample every user logs in exactly once and the shared clock
//! is advanced a single TOTP step *between* samples — concurrent clock
//! motion during a login would (correctly!) trip the drift window and
//! replay protection, which is its own test, not a throughput question.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpcmfa_core::center::{Center, CenterConfig};
use hpcmfa_pam::modules::token::EnforcementMode;
use hpcmfa_ssh::client::{ClientProfile, TokenSource};
use std::net::Ipv4Addr;
use std::sync::Arc;

const LOGINS_PER_THREAD: usize = 64;

fn storm_center(users: usize) -> (Arc<Center>, Vec<ClientProfile>) {
    let c = Center::new(CenterConfig::default());
    c.set_enforcement(EnforcementMode::Full);
    let mut profiles = Vec::new();
    for u in 0..users {
        let name = format!("user{u}");
        c.create_user(&name, &format!("{name}@x.edu"), &format!("{name}-pw"));
        let device = c.pair_soft(&name);
        let ip = Ipv4Addr::new(70, 1, (u / 250) as u8, (u % 250) as u8);
        profiles.push(
            ClientProfile::interactive_user(&name, ip, &format!("{name}-pw")).with_token(
                TokenSource::device(move |now| Some(device.displayed_code(now))),
            ),
        );
    }
    (c, profiles)
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("login_throughput");
    group.sample_size(10);

    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * LOGINS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("mfa_logins_threads", threads),
            &threads,
            |b, &nt| {
                let (center, profiles) = storm_center(nt * LOGINS_PER_THREAD);
                b.iter(|| {
                    // Fresh TOTP step for every user, once per sample.
                    center.clock.advance(30);
                    std::thread::scope(|s| {
                        for tid in 0..nt {
                            let center = Arc::clone(&center);
                            let profiles = &profiles;
                            s.spawn(move || {
                                for i in 0..LOGINS_PER_THREAD {
                                    let p = &profiles[tid * LOGINS_PER_THREAD + i];
                                    let node = i % center.nodes.len();
                                    let r = center.ssh(node, p);
                                    assert!(r.granted, "{:?}", r.prompts);
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
