//! Federated realm routing (the "multiple participating sites" deployment
//! the paper's infrastructure was built to support).
//!
//! A [`RealmRouter`] is a [`Handler`] that splits `user@site` principals
//! and dispatches by realm:
//!
//! - **Home or bare names** go to the local handler with the realm suffix
//!   stripped, so the local OTP engine only ever sees bare usernames.
//! - **Allowed peer realms** are proxied to that realm's upstream pool
//!   through a dedicated [`RadiusClient`] — each realm gets its own client
//!   and therefore its own per-server circuit breakers, so one partner
//!   site's outage cannot poison another's path. The full `user@site` name
//!   is forwarded unchanged: the remote router recognises its own realm
//!   and strips it there.
//! - **Unknown realms** are rejected outright (the trust ACL is the
//!   federation boundary).
//!
//! Upstream failure degrades per the peer's [`RealmPolicy`]: `FailClosed`
//! rejects (the user sees a clean denial), `Discard` stays silent so the
//! NAS retries another proxy. Either way a `realm_unreachable` security
//! event fires — roaming users stranded by a dead partner link are an
//! operational page, not a silent reject counter.

use crate::attribute::{Attribute, AttributeType};
use crate::client::{ClientError, Outcome, RadiusClient};
use crate::packet::Packet;
use crate::server::{Handler, ServerDecision};
use crate::tracewire;
use hpcmfa_federation::{split_principal, RealmDegradation, RealmPolicy, TrustConfig};
use hpcmfa_telemetry::{MetricsRegistry, SecurityEventKind, SpanCtx, SpanStatus, TraceClock};
use parking_lot::{Mutex, RwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One peer realm's upstream pool plus its degradation policy.
struct RealmRoute {
    upstream: Arc<RadiusClient>,
    policy: RealmPolicy,
}

/// Realm-splitting front handler for a federated site.
pub struct RealmRouter {
    /// Trust configuration: home realm name + allowed peers.
    trust: TrustConfig,
    /// The local site's handler (normally the OTP bridge or a proxy).
    local: Arc<dyn Handler>,
    /// Per-realm upstream pools, keyed by realm name. Behind a lock so
    /// federated sites can be wired together after each site's own fleet
    /// is standing (trust is mutual; neither side exists first).
    routes: RwLock<BTreeMap<String, RealmRoute>>,
    /// RNG for upstream request authenticators.
    rng: Mutex<StdRng>,
    metrics: Arc<MetricsRegistry>,
}

impl RealmRouter {
    /// Route for `trust.home_realm`, delegating home traffic to `local`.
    /// Peer pools are added with [`RealmRouter::add_route`].
    pub fn new(
        trust: TrustConfig,
        local: Arc<dyn Handler>,
        seed: u64,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        RealmRouter {
            trust,
            local,
            routes: RwLock::new(BTreeMap::new()),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            metrics,
        }
    }

    /// Attach the upstream pool for a peer `realm`. The realm must be in
    /// the trust config's ACL to ever receive traffic; the client carries
    /// that realm's shared secret and its own breakers.
    pub fn add_route(&self, realm: &str, upstream: Arc<RadiusClient>) {
        let policy = self
            .trust
            .peer(realm)
            .map(|p| p.policy.clone())
            .unwrap_or_default();
        self.routes
            .write()
            .insert(realm.to_string(), RealmRoute { upstream, policy });
    }

    /// The home realm this router answers for.
    pub fn home_realm(&self) -> &str {
        &self.trust.home_realm
    }

    fn count(&self, realm: &str, outcome: &str) {
        self.metrics
            .counter(
                "hpcmfa_radius_proxy_forwards_total",
                &[("realm", realm), ("outcome", outcome)],
            )
            .inc();
    }

    /// Forward to a peer realm's pool, degrading per policy on failure.
    fn forward(
        &self,
        realm: &str,
        upstream: &RadiusClient,
        policy: &RealmPolicy,
        request: &Packet,
        password: &[u8],
    ) -> ServerDecision {
        let username = request
            .text(AttributeType::UserName)
            .unwrap_or_default()
            .to_string();
        let calling = request
            .text(AttributeType::CallingStationId)
            .unwrap_or_default()
            .to_string();
        let state = request
            .attribute(AttributeType::State)
            .map(|a| a.value.clone());
        let wire_ctx = tracewire::trace_ctx_of(request);
        let trace = wire_ctx.map(|w| w.trace);

        // The realm hop's span opens on the caller's wire clock, parented
        // under the caller's attempt span; the peer realm's spans nest
        // under the upstream client's attempt in turn.
        let mut guard = wire_ctx.map(|w| {
            let ctx = SpanCtx {
                trace: w.trace,
                parent: w.parent,
                clock: TraceClock::at(w.clock_us),
            };
            let mut g = self.metrics.tracer().start(&ctx, "radius.realm", "forward");
            g.attr_str("realm", realm.to_string());
            g
        });
        let span_id = guard.as_ref().map(|g| g.id());
        let child_ctx = guard.as_ref().map(|g| g.child_ctx());
        let mut rng = self.rng.lock();
        let result = match (state, child_ctx.as_ref()) {
            (Some(s), Some(c)) => upstream
                .respond_to_challenge_spanned(&mut *rng, &username, password, &calling, &s, c),
            (Some(s), None) => {
                upstream.respond_to_challenge(&mut *rng, &username, password, &calling, &s)
            }
            (None, Some(c)) => {
                upstream.authenticate_spanned(&mut *rng, &username, password, &calling, c)
            }
            (None, None) => upstream.authenticate(&mut *rng, &username, password, &calling),
        };
        drop(rng);

        let detail = match &result {
            Ok(Outcome::Accept { .. }) => "accept",
            Ok(Outcome::Reject { .. }) => "reject",
            Ok(Outcome::Challenge { .. }) => "challenge",
            Err(_) => "realm_unreachable",
        };
        if let Some(g) = guard.as_mut() {
            g.set_detail(detail);
            if result.is_err() {
                g.set_status(SpanStatus::Error);
            }
        }
        drop(guard);
        let clock_attr = child_ctx.map(|c| tracewire::clock_attribute(c.clock.now_us()));
        let with_clock = |mut attrs: Vec<Attribute>| {
            if let Some(a) = clock_attr.clone() {
                attrs.push(a);
            }
            attrs
        };

        match result {
            Ok(Outcome::Accept { message }) => {
                self.count(realm, "accept");
                ServerDecision::Accept(with_clock(reply_attrs(message)))
            }
            Ok(Outcome::Reject { message }) => {
                self.count(realm, "reject");
                ServerDecision::Reject(with_clock(reply_attrs(message)))
            }
            Ok(Outcome::Challenge { state, message }) => {
                self.count(realm, "challenge");
                let mut attrs = reply_attrs(message);
                attrs.push(Attribute::new(AttributeType::State, state));
                ServerDecision::Challenge(with_clock(attrs))
            }
            Err(ClientError::AllServersFailed { .. }) | Err(_) => {
                self.count(realm, "unreachable");
                self.metrics.emit_event_spanned(
                    SecurityEventKind::RealmUnreachable,
                    trace,
                    span_id,
                    upstream.vclock_us(),
                    format!("realm={realm} upstream pool unreachable"),
                );
                match policy.degradation {
                    RealmDegradation::FailClosed => ServerDecision::Reject(vec![Attribute::text(
                        AttributeType::ReplyMessage,
                        "Authentication error",
                    )]),
                    RealmDegradation::Discard => ServerDecision::Discard,
                }
            }
        }
    }
}

impl Handler for RealmRouter {
    fn handle(&self, request: &Packet, password: Option<&[u8]>) -> ServerDecision {
        let Some(name) = request.text(AttributeType::UserName) else {
            return ServerDecision::Discard;
        };
        let principal = split_principal(name);
        match &principal.realm {
            // Bare or home-realm names: strip the suffix and serve locally.
            None => self.local.handle(request, password),
            Some(realm) if self.trust.is_home(realm) => {
                let mut local_req = request.clone();
                for attr in &mut local_req.attributes {
                    if attr.ty == AttributeType::UserName {
                        attr.value = principal.user.clone().into_bytes();
                    }
                }
                self.local.handle(&local_req, password)
            }
            Some(realm) => {
                if !self.trust.is_allowed(realm) {
                    self.count(realm, "denied_acl");
                    return ServerDecision::Reject(vec![Attribute::text(
                        AttributeType::ReplyMessage,
                        "Authentication error",
                    )]);
                }
                let Some(password) = password else {
                    return ServerDecision::Discard;
                };
                let route = self
                    .routes
                    .read()
                    .get(realm.as_str())
                    .map(|r| (Arc::clone(&r.upstream), r.policy.clone()));
                match route {
                    Some((upstream, policy)) => {
                        self.forward(realm, &upstream, &policy, request, password)
                    }
                    None => {
                        // In the ACL but no pool attached: treat as an
                        // unreachable realm (configuration half-done).
                        self.count(realm, "unreachable");
                        self.metrics.emit_event(
                            SecurityEventKind::RealmUnreachable,
                            tracewire::trace_id_of(request),
                            0,
                            format!("realm={realm} no upstream pool configured"),
                        );
                        ServerDecision::Reject(vec![Attribute::text(
                            AttributeType::ReplyMessage,
                            "Authentication error",
                        )])
                    }
                }
            }
        }
    }
}

fn reply_attrs(message: Option<String>) -> Vec<Attribute> {
    message
        .map(|m| vec![Attribute::text(AttributeType::ReplyMessage, &m)])
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientConfig;
    use crate::server::RadiusServer;
    use crate::transport::{FaultPlan, InMemoryTransport, Transport};
    use hpcmfa_federation::RealmPeer;
    use rand::SeedableRng;

    const TACC_SECRET: &[u8] = b"tacc-secret";
    const REMOTE_SECRET: &[u8] = b"remote-secret";

    /// Local handler that accepts "123456" and records the name it saw.
    fn local_handler(seen: Arc<Mutex<Vec<String>>>) -> Arc<dyn Handler> {
        Arc::new(move |req: &Packet, pw: Option<&[u8]>| {
            seen.lock()
                .push(req.text(AttributeType::UserName).unwrap_or("").to_string());
            match pw {
                Some(b"123456") => ServerDecision::Accept(vec![]),
                _ => ServerDecision::Reject(vec![]),
            }
        })
    }

    struct Rig {
        router: Arc<RealmRouter>,
        seen_local: Arc<Mutex<Vec<String>>>,
        seen_remote: Arc<Mutex<Vec<String>>>,
        remote_faults: Arc<FaultPlan>,
        metrics: Arc<MetricsRegistry>,
    }

    fn rig(degradation: RealmDegradation) -> Rig {
        let metrics = Arc::new(MetricsRegistry::new());
        let seen_local = Arc::new(Mutex::new(Vec::new()));
        let seen_remote = Arc::new(Mutex::new(Vec::new()));

        // Remote site: its own router would sit here; a plain handler is
        // enough to observe what crosses the trust boundary.
        let remote = Arc::new(RadiusServer::new(
            REMOTE_SECRET,
            local_handler(Arc::clone(&seen_remote)),
        ));
        let remote_faults = FaultPlan::healthy();
        let remote_transport: Arc<dyn Transport> = Arc::new(InMemoryTransport::new(
            "remote0",
            remote,
            Arc::clone(&remote_faults),
        ));
        let upstream = Arc::new(RadiusClient::with_metrics(
            ClientConfig::new(REMOTE_SECRET, "tacc-fed"),
            vec![remote_transport],
            Arc::clone(&metrics),
        ));

        let mut peer = RealmPeer::new("remote", REMOTE_SECRET.to_vec());
        peer.policy.degradation = degradation;
        let trust = TrustConfig {
            home_realm: "tacc".to_string(),
            peers: vec![peer],
        };
        let router = RealmRouter::new(
            trust,
            local_handler(Arc::clone(&seen_local)),
            7,
            Arc::clone(&metrics),
        );
        router.add_route("remote", upstream);
        Rig {
            router: Arc::new(router),
            seen_local,
            seen_remote,
            remote_faults,
            metrics,
        }
    }

    fn client_for(router: Arc<RealmRouter>) -> RadiusClient {
        let edge = Arc::new(RadiusServer::new(TACC_SECRET, router));
        RadiusClient::new(
            ClientConfig::new(TACC_SECRET, "login1"),
            vec![Arc::new(InMemoryTransport::new(
                "edge",
                edge,
                FaultPlan::healthy(),
            ))],
        )
    }

    #[test]
    fn bare_and_home_names_stay_local_and_are_stripped() {
        let rig = rig(RealmDegradation::FailClosed);
        let client = client_for(Arc::clone(&rig.router));
        let mut rng = StdRng::seed_from_u64(1);
        let out = client
            .authenticate(&mut rng, "alice", b"123456", "1.2.3.4")
            .unwrap();
        assert!(matches!(out, Outcome::Accept { .. }));
        let out = client
            .authenticate(&mut rng, "bob@tacc", b"123456", "1.2.3.4")
            .unwrap();
        assert!(matches!(out, Outcome::Accept { .. }));
        assert_eq!(rig.seen_local.lock().as_slice(), &["alice", "bob"]);
        assert!(rig.seen_remote.lock().is_empty());
    }

    #[test]
    fn peer_realm_forwards_full_principal() {
        let rig = rig(RealmDegradation::FailClosed);
        let client = client_for(Arc::clone(&rig.router));
        let mut rng = StdRng::seed_from_u64(2);
        let out = client
            .authenticate(&mut rng, "carol@remote", b"123456", "1.2.3.4")
            .unwrap();
        assert!(matches!(out, Outcome::Accept { .. }));
        // The remote side sees the unmodified principal (its own router
        // strips it); nothing leaked to the local handler.
        assert_eq!(rig.seen_remote.lock().as_slice(), &["carol@remote"]);
        assert!(rig.seen_local.lock().is_empty());
        assert_eq!(
            rig.metrics
                .snapshot()
                .counter("hpcmfa_radius_proxy_forwards_total{outcome=\"accept\",realm=\"remote\"}"),
            1
        );
    }

    #[test]
    fn unknown_realm_rejected_by_acl() {
        let rig = rig(RealmDegradation::FailClosed);
        let client = client_for(Arc::clone(&rig.router));
        let mut rng = StdRng::seed_from_u64(3);
        let out = client
            .authenticate(&mut rng, "mallory@evil", b"123456", "1.2.3.4")
            .unwrap();
        assert!(matches!(out, Outcome::Reject { .. }));
        assert!(rig.seen_remote.lock().is_empty());
        assert!(rig.seen_local.lock().is_empty());
    }

    #[test]
    fn dead_realm_fail_closed_rejects_and_alarms() {
        let rig = rig(RealmDegradation::FailClosed);
        let client = client_for(Arc::clone(&rig.router));
        let mut rng = StdRng::seed_from_u64(4);
        rig.remote_faults.set_down(true);
        let out = client
            .authenticate(&mut rng, "carol@remote", b"123456", "1.2.3.4")
            .unwrap();
        assert!(matches!(out, Outcome::Reject { .. }));
        let events = rig.metrics.security_events().all();
        assert!(events
            .iter()
            .any(|e| e.kind == SecurityEventKind::RealmUnreachable));
        assert_eq!(
            rig.metrics.snapshot().counter(
                "hpcmfa_radius_proxy_forwards_total{outcome=\"unreachable\",realm=\"remote\"}"
            ),
            1
        );
    }

    #[test]
    fn dead_realm_discard_policy_stays_silent() {
        let rig = rig(RealmDegradation::Discard);
        let client = client_for(Arc::clone(&rig.router));
        let mut rng = StdRng::seed_from_u64(5);
        rig.remote_faults.set_down(true);
        let err = client
            .authenticate(&mut rng, "carol@remote", b"123456", "1.2.3.4")
            .unwrap_err();
        assert!(matches!(err, ClientError::AllServersFailed { .. }));
    }
}
