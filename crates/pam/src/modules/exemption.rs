//! In-house module #2: "MFA Exemption Granted?" (§3.4).
//!
//! "The user's information, including username and remote IP address are
//! compared with an existing configuration file that contains white and
//! blacklists specific to the second factor of the MFA process. ... If an
//! exemption is granted, no further action by the user is required to gain
//! SSH entry into the system."
//!
//! Deployed `sufficient`: a grant short-circuits the stack before the token
//! module; a denial is `Ignore` so processing continues to the token
//! prompt.

use crate::access::{AccessDecision, WatchedAccessConfig};
use crate::context::PamContext;
use crate::stack::{PamModule, PamResult};
use std::sync::Arc;

/// The exemption-check module.
pub struct ExemptionModule {
    config: WatchedAccessConfig,
}

impl ExemptionModule {
    /// Check against the given hot-reloadable configuration.
    pub fn new(config: WatchedAccessConfig) -> Arc<Self> {
        Arc::new(ExemptionModule { config })
    }

    /// The live configuration handle (for sysadmin updates mid-production).
    pub fn config(&self) -> &WatchedAccessConfig {
        &self.config
    }
}

impl PamModule for ExemptionModule {
    fn name(&self) -> &'static str {
        "pam_tacc_mfa_exempt"
    }

    fn authenticate(&self, ctx: &mut PamContext<'_>) -> PamResult {
        // A risk module upstream may demand step-up authentication: the
        // exemption then declines to bypass the second factor (§6's
        // "dynamic risk assessment" growth feature).
        if ctx.risk_step_up {
            return PamResult::Ignore;
        }
        match self.config.decide(&ctx.username, ctx.rhost, ctx.now()) {
            AccessDecision::Exempt => PamResult::Success,
            AccessDecision::NotExempt => PamResult::Ignore,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConfig;
    use crate::conv::ScriptedConversation;
    use hpcmfa_otp::clock::SimClock;
    use std::net::Ipv4Addr;

    fn run(module: &ExemptionModule, user: &str, ip: Ipv4Addr, now: u64) -> PamResult {
        let mut conv = ScriptedConversation::with_answers(Vec::<String>::new());
        let mut ctx = PamContext::new(user, ip, Arc::new(SimClock::at(now)), &mut conv);
        module.authenticate(&mut ctx)
    }

    #[test]
    fn exempt_user_succeeds() {
        let cfg =
            WatchedAccessConfig::new(AccessConfig::parse("+ : gateway1 : ALL : ALL\n").unwrap());
        let m = ExemptionModule::new(cfg);
        assert_eq!(
            run(&m, "gateway1", Ipv4Addr::new(8, 8, 8, 8), 0),
            PamResult::Success
        );
        assert_eq!(
            run(&m, "alice", Ipv4Addr::new(8, 8, 8, 8), 0),
            PamResult::Ignore
        );
    }

    #[test]
    fn reload_takes_effect_immediately() {
        let cfg = WatchedAccessConfig::new(AccessConfig::empty());
        let m = ExemptionModule::new(cfg);
        assert_eq!(
            run(&m, "late_user", Ipv4Addr::new(8, 8, 8, 8), 0),
            PamResult::Ignore
        );
        m.config()
            .reload_from_text("+ : late_user : ALL : 2016-12-31\n")
            .unwrap();
        assert_eq!(
            run(&m, "late_user", Ipv4Addr::new(8, 8, 8, 8), 1_475_000_000),
            PamResult::Success
        );
    }
}
