//! Property-based tests for the OTP algorithms.

use hpcmfa_crypto::HashAlg;
use hpcmfa_otp::{
    hotp::hotp,
    secret::Secret,
    totp::{Totp, TotpParams},
    uri::OtpauthUri,
};
use proptest::prelude::*;

fn arb_secret() -> impl Strategy<Value = Secret> {
    proptest::collection::vec(any::<u8>(), 10..64).prop_map(Secret::from_bytes)
}

proptest! {
    #[test]
    fn hotp_codes_are_always_digits(secret in arb_secret(), counter in any::<u64>()) {
        let code = hotp(&secret, counter, 6, HashAlg::Sha1);
        prop_assert_eq!(code.len(), 6);
        prop_assert!(code.bytes().all(|b| b.is_ascii_digit()));
    }

    #[test]
    fn totp_verify_accepts_own_codes_within_window(
        secret in arb_secret(),
        time in 0u64..4_000_000_000,
        drift in -300i64..=300,
    ) {
        let t = Totp::new(secret);
        let device_time = time.saturating_add_signed(drift);
        let code = t.code_at(device_time);
        let window = t.window_for_drift(300);
        prop_assert!(t.verify(&code, time, window).is_some(),
            "code at drift {drift} rejected at t={time}");
    }

    #[test]
    fn totp_verify_never_accepts_wrong_length(
        secret in arb_secret(),
        time in 0u64..4_000_000_000,
        code in "[0-9]{1,5}|[0-9]{7,10}",
    ) {
        let t = Totp::new(secret);
        prop_assert_eq!(t.verify(&code, time, 10), None);
    }

    #[test]
    fn totp_matched_step_is_within_window(
        secret in arb_secret(),
        time in 400u64..4_000_000_000,
        offset in 0u64..=10,
    ) {
        let t = Totp::new(secret);
        let past = time - offset * 30;
        let code = t.code_at(past);
        if let Some(step) = t.verify(&code, time, 10) {
            let center = t.params.time_step(time);
            prop_assert!(step >= center.saturating_sub(10) && step <= center + 10);
        } else {
            prop_assert!(false, "in-window code rejected");
        }
    }

    #[test]
    fn uri_round_trips(
        secret in arb_secret(),
        account in "[a-z][a-z0-9]{0,15}",
        digits in 6u32..=8,
        period in prop::sample::select(vec![30u64, 60]),
    ) {
        let params = TotpParams { digits, step_secs: period, t0: 0, alg: HashAlg::Sha1 };
        let uri = OtpauthUri::new("TACC", &account, secret, params);
        let parsed = OtpauthUri::parse(&uri.render()).unwrap();
        prop_assert_eq!(parsed, uri);
    }

    #[test]
    fn distinct_secrets_rarely_collide_on_a_step(
        a in arb_secret(),
        b in arb_secret(),
        time in 0u64..4_000_000_000,
    ) {
        prop_assume!(a != b);
        let ta = Totp::new(a);
        let tb = Totp::new(b);
        // A 6-digit collision has probability 1e-6 per draw; over the test's
        // 256 cases a false failure is ~0.03% and proptest will show the seed.
        // We assert on the 31-bit pre-truncation value instead (2^-31).
        prop_assert_ne!(ta.value_at(time), tb.value_at(time));
    }
}
