//! HMAC keyed-hash message authentication code (RFC 2104 / FIPS 198-1),
//! generic over any [`Digest`].

use crate::Digest;

/// Incremental HMAC computation.
///
/// ```
/// use hpcmfa_crypto::{hmac::Hmac, sha1::Sha1};
/// let mut mac = Hmac::<Sha1>::new(b"key");
/// mac.update(b"The quick brown fox ");
/// mac.update(b"jumps over the lazy dog");
/// assert_eq!(
///     hpcmfa_crypto::hex::to_hex(&mac.finalize()),
///     "de7c9b85b8b78aa6bc8a7a36f70a90701c9db4d9"
/// );
/// ```
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    /// Key XOR opad, retained for the outer pass.
    opad_key: Vec<u8>,
}

impl<D: Digest> Hmac<D> {
    /// Start an HMAC computation with `key`. Keys longer than the digest
    /// block size are hashed first, as required by RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        let mut k = if key.len() > D::BLOCK_LEN {
            D::digest(key)
        } else {
            key.to_vec()
        };
        k.resize(D::BLOCK_LEN, 0);

        let ipad_key: Vec<u8> = k.iter().map(|b| b ^ 0x36).collect();
        let opad_key: Vec<u8> = k.iter().map(|b| b ^ 0x5c).collect();

        let mut inner = D::default();
        inner.update(&ipad_key);
        Hmac { inner, opad_key }
    }

    /// Absorb message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the MAC.
    pub fn finalize(self) -> Vec<u8> {
        let inner_digest = self.inner.finalize_vec();
        let mut outer = D::default();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize_vec()
    }
}

/// One-shot `HMAC_D(key, msg)`.
pub fn hmac<D: Digest>(key: &[u8], msg: &[u8]) -> Vec<u8> {
    let mut mac = Hmac::<D>::new(key);
    mac.update(msg);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;
    use crate::{md5::Md5, sha1::Sha1, sha256::Sha256, sha512::Sha512};

    // RFC 2202 HMAC-MD5 and HMAC-SHA1 test cases; RFC 4231 for SHA-2.
    #[test]
    fn rfc2202_md5_case1() {
        let key = [0x0bu8; 16];
        assert_eq!(
            to_hex(&hmac::<Md5>(&key, b"Hi There")),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );
    }

    #[test]
    fn rfc2202_md5_case2() {
        assert_eq!(
            to_hex(&hmac::<Md5>(b"Jefe", b"what do ya want for nothing?")),
            "750c783e6ab0b503eaa86e310a5db738"
        );
    }

    #[test]
    fn rfc2202_sha1_case1() {
        let key = [0x0bu8; 20];
        assert_eq!(
            to_hex(&hmac::<Sha1>(&key, b"Hi There")),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
    }

    #[test]
    fn rfc2202_sha1_case2() {
        assert_eq!(
            to_hex(&hmac::<Sha1>(b"Jefe", b"what do ya want for nothing?")),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
    }

    #[test]
    fn rfc2202_sha1_case3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        assert_eq!(
            to_hex(&hmac::<Sha1>(&key, &data)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
    }

    #[test]
    fn rfc2202_sha1_case6_oversized_key() {
        // 80-byte key exceeds the 64-byte block: must be hashed first.
        let key = [0xaau8; 80];
        assert_eq!(
            to_hex(&hmac::<Sha1>(
                &key,
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            )),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn rfc4231_case1_sha256_sha512() {
        let key = [0x0bu8; 20];
        assert_eq!(
            to_hex(&hmac::<Sha256>(&key, b"Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
        assert_eq!(
            to_hex(&hmac::<Sha512>(&key, b"Hi There")),
            "87aa7cdea5ef619d4ff0b4241a1d6cb02379f4e2ce4ec2787ad0b30545e17cde\
             daa833b7d6b8a702038b274eaea3f4e4be9d914eeb61f1702e696c203a126854"
        );
    }

    #[test]
    fn rfc4231_case2_jefe_sha256() {
        assert_eq!(
            to_hex(&hmac::<Sha256>(b"Jefe", b"what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let key = b"some-key-material";
        let msg: Vec<u8> = (0..300u16).map(|i| (i & 0xff) as u8).collect();
        let mut mac = Hmac::<Sha256>::new(key);
        for c in msg.chunks(17) {
            mac.update(c);
        }
        assert_eq!(mac.finalize(), hmac::<Sha256>(key, &msg));
    }

    #[test]
    fn empty_key_and_message() {
        // Degenerate inputs must not panic and must be deterministic.
        assert_eq!(hmac::<Sha1>(b"", b""), hmac::<Sha1>(b"", b""));
        assert_eq!(hmac::<Sha1>(b"", b"").len(), 20);
    }
}
