//! Base64 encoding (RFC 4648 §4 and the URL-safe §5 variant).
//!
//! The portal's out-of-band unpairing flow emails users a signed URL; the
//! HMAC signature and payload travel as URL-safe base64. SSH public keys in
//! `authorized_keys` files are standard base64.

const STD: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
const URL: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Errors from the decoders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base64Error {
    /// A character outside the selected alphabet.
    InvalidChar(char),
    /// Length not a valid base64 quantum or stray padding.
    InvalidLength,
}

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base64Error::InvalidChar(c) => write!(f, "invalid base64 character {c:?}"),
            Base64Error::InvalidLength => write!(f, "invalid base64 length"),
        }
    }
}

impl std::error::Error for Base64Error {}

fn encode_with(data: &[u8], alphabet: &[u8; 64], pad: bool) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let mut buf = [0u8; 3];
        buf[..chunk.len()].copy_from_slice(chunk);
        let bits = u32::from_be_bytes([0, buf[0], buf[1], buf[2]]);
        let n_sym = chunk.len() + 1;
        for i in 0..n_sym {
            out.push(alphabet[((bits >> (18 - 6 * i)) & 0x3f) as usize] as char);
        }
        if pad {
            for _ in n_sym..4 {
                out.push('=');
            }
        }
    }
    out
}

fn sym_value(c: char, alphabet: &[u8; 64]) -> Result<u32, Base64Error> {
    alphabet
        .iter()
        .position(|&a| a as char == c)
        .map(|p| p as u32)
        .ok_or(Base64Error::InvalidChar(c))
}

fn decode_with(s: &str, alphabet: &[u8; 64]) -> Result<Vec<u8>, Base64Error> {
    let trimmed = s.trim_end_matches('=');
    if trimmed.len() % 4 == 1 {
        return Err(Base64Error::InvalidLength);
    }
    let mut out = Vec::with_capacity(trimmed.len() * 3 / 4);
    let mut acc: u32 = 0;
    let mut acc_bits: u32 = 0;
    for c in trimmed.chars() {
        acc = (acc << 6) | sym_value(c, alphabet)?;
        acc_bits += 6;
        if acc_bits >= 8 {
            acc_bits -= 8;
            out.push((acc >> acc_bits) as u8);
        }
    }
    if acc_bits > 0 && (acc & ((1 << acc_bits) - 1)) != 0 {
        return Err(Base64Error::InvalidLength);
    }
    Ok(out)
}

/// Standard base64 with padding.
pub fn encode(data: &[u8]) -> String {
    encode_with(data, STD, true)
}

/// Decode standard base64 (padding optional).
pub fn decode(s: &str) -> Result<Vec<u8>, Base64Error> {
    decode_with(s, STD)
}

/// URL-safe base64, unpadded — for signed-URL tokens.
pub fn encode_url(data: &[u8]) -> String {
    encode_with(data, URL, false)
}

/// Decode URL-safe base64 (padding optional).
pub fn decode_url(s: &str) -> Result<Vec<u8>, Base64Error> {
    decode_with(s, URL)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "Zg=="),
            (b"fo", "Zm8="),
            (b"foo", "Zm9v"),
            (b"foob", "Zm9vYg=="),
            (b"fooba", "Zm9vYmE="),
            (b"foobar", "Zm9vYmFy"),
        ];
        for (raw, enc) in cases {
            assert_eq!(encode(raw), *enc);
            assert_eq!(decode(enc).unwrap(), raw.to_vec());
        }
    }

    #[test]
    fn url_safe_round_trip_no_padding() {
        let data = [0xfbu8, 0xef, 0xbe, 0xff, 0x00, 0x10];
        let enc = encode_url(&data);
        assert!(!enc.contains('='));
        assert!(!enc.contains('+') && !enc.contains('/'));
        assert_eq!(decode_url(&enc).unwrap(), data.to_vec());
    }

    #[test]
    fn url_alphabet_differs_on_62_63() {
        // 0xfb 0xff encodes symbols 62/63 in the first two positions.
        let std = encode(&[0xfb, 0xff]);
        let url = encode_url(&[0xfb, 0xff]);
        assert!(std.starts_with("+"));
        assert!(url.starts_with("-"));
    }

    #[test]
    fn invalid_inputs() {
        assert_eq!(decode("Z!g="), Err(Base64Error::InvalidChar('!')));
        // Interior padding is caught as an invalid character.
        assert_eq!(decode("Zg=v"), Err(Base64Error::InvalidChar('=')));
        assert_eq!(decode("A"), Err(Base64Error::InvalidLength));
        // "Zh" leaves nonzero trailing bits (only "Zg" maps to "f").
        assert_eq!(decode("Zh"), Err(Base64Error::InvalidLength));
        assert_eq!(decode_url("Zm+v"), Err(Base64Error::InvalidChar('+')));
    }

    #[test]
    fn all_byte_values_round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
        assert_eq!(decode_url(&encode_url(&data)).unwrap(), data);
    }
}
