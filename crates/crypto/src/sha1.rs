//! SHA-1 (FIPS 180-4).
//!
//! HMAC-SHA-1 is the mandatory-to-implement algorithm of HOTP (RFC 4226) and
//! the default of TOTP (RFC 6238). Every token device in the paper — the
//! in-house smartphone app, the Feitian OTP c200 key fob, SMS-delivered
//! codes, and the static training tokens — ultimately derives its six-digit
//! codes from HMAC-SHA-1. SHA-1 collision weaknesses do not impact its HMAC
//! usage here.

use crate::Digest;

/// Incremental SHA-1 hasher.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Sha1 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }
}

impl Sha1 {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    fn compress(state: &mut [u32; 5], block: &[u8]) {
        debug_assert_eq!(block.len(), 64);
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) =
            (state[0], state[1], state[2], state[3], state[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5a827999),
                1 => (b ^ c ^ d, 0x6ed9eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }

    /// Finalize into a fixed 20-byte array.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        Self::compress(&mut self.state, &{ self.buf });
        let mut out = [0u8; 20];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                Self::compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            Self::compress(&mut self.state, &data[..64]);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    fn finalize_vec(self) -> Vec<u8> {
        self.finalize().to_vec()
    }

    fn finalize_into(self, out: &mut [u8]) {
        out[..Self::OUTPUT_LEN].copy_from_slice(&self.finalize());
    }
}

/// One-shot SHA-1.
pub fn sha1(data: &[u8]) -> [u8; 20] {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::to_hex;

    // FIPS 180-4 / RFC 3174 vectors.
    #[test]
    fn standard_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(to_hex(&sha1(input)), *expect);
        }
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            to_hex(&sha1(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..500u16).map(|i| (i % 251) as u8).collect();
        for chunk in [1usize, 3, 7, 64, 65, 100] {
            let mut h = Sha1::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha1(&data), "chunk {chunk}");
        }
    }
}
