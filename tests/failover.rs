//! The failover acceptance scenario: warm-standby OTP replication with
//! epoch-fenced promotion, driven end to end through sshd → PAM →
//! RADIUS → OTP.
//!
//! Four claims are on trial:
//!
//! 1. Promotion — a seeded primary-crash chaos run opens the cluster
//!    breaker and promotes the standby, visible in the metrics, the
//!    alert timeline, and the security-event feed.
//! 2. Fencing — the deposed primary's un-replicated frames are all
//!    rejected by the epoch fence when it reconnects; the healed node is
//!    then readmitted as the new standby and converges.
//! 3. Invariants across promotion — a previously accepted OTP is still
//!    a replay on the promoted standby, and no user's `fail_count` or
//!    lockout state regresses.
//! 4. Determinism — the full chaos report (availability, health,
//!    failover alert timeline, event feed) and the replication metric
//!    series replay byte-identically across 5 seeded runs.

use securing_hpc::core::center::{Center, CenterConfig, OtpReplicationParams};
use securing_hpc::otp::clock::Clock;
use securing_hpc::otpserver::{MemoryBackend, ReplicationMode, StorageBackend, LOCKOUT_THRESHOLD};
use securing_hpc::pam::modules::token::EnforcementMode;
use securing_hpc::ssh::client::{ClientProfile, TokenSource};
use securing_hpc::workload::chaos::{ChaosParams, ChaosRunner, FaultScript};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

const EXTERNAL_IP: Ipv4Addr = Ipv4Addr::new(70, 112, 50, 3);

/// A replicated center with one soft-token user per name given.
fn replicated_center(
    mode: ReplicationMode,
) -> (Arc<Center>, Arc<MemoryBackend>, Arc<MemoryBackend>) {
    let primary = MemoryBackend::healthy();
    let standby = MemoryBackend::healthy();
    let center = Center::new(CenterConfig {
        otp_replication: Some(OtpReplicationParams::new(
            mode,
            Arc::clone(&primary) as Arc<dyn StorageBackend>,
            Arc::clone(&standby) as Arc<dyn StorageBackend>,
        )),
        ..CenterConfig::default()
    });
    center.set_enforcement(EnforcementMode::Full);
    (center, primary, standby)
}

fn user(center: &Center, name: &str) -> securing_hpc::otp::device::SoftToken {
    center.create_user(name, &format!("{name}@utexas.edu"), &format!("{name}-pw"));
    center.pair_soft(name)
}

fn fixed_profile(name: &str, code: &str) -> ClientProfile {
    ClientProfile::interactive_user(name, EXTERNAL_IP, &format!("{name}-pw"))
        .with_token(TokenSource::Fixed(code.to_string()))
}

/// Drive login attempts until the cluster promotes (the crashed
/// primary's failed appends open the breaker; the next RADIUS request
/// performs the failover). Panics if no promotion happens.
fn drive_until_promoted(center: &Center, profile: &ClientProfile) {
    let cluster = center.otp_cluster.as_ref().expect("replicated center");
    let before = cluster.epoch();
    for _ in 0..8 {
        let _ = center.ssh(0, profile);
        if cluster.epoch() > before {
            return;
        }
    }
    panic!("primary crash never promoted the standby");
}

#[test]
fn deposed_primary_is_epoch_fenced_on_rejoin() {
    let (center, primary, _standby) = replicated_center(ReplicationMode::Sync);
    let device = user(&center, "alice");
    let cluster = Arc::clone(center.otp_cluster.as_ref().unwrap());

    // Partition the link so real WAL frames pile up un-acked on the
    // primary (sync mode denies these logins fail-safe — and, the
    // split-brain check, never trips the breaker on its own).
    cluster.link_plan().set_partitioned(true);
    let d = device.clone();
    let fresh = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
        .with_token(TokenSource::device(move |now| Some(d.displayed_code(now))));
    for _ in 0..3 {
        center.clock.advance(30);
        assert!(
            !center.ssh(0, &fresh).granted,
            "sync mode must deny while partitioned"
        );
    }
    assert_eq!(cluster.epoch(), 1, "a partition alone must not promote");
    assert!(
        cluster.replication_lag() > 0,
        "frames are stranded on the primary"
    );

    // Now the partitioned primary dies for real: breaker opens, standby
    // is promoted, and the stranded frames become the deposed set.
    primary.set_down(true);
    center.clock.advance(30);
    drive_until_promoted(&center, &fresh);
    assert_eq!(cluster.epoch(), 2);
    assert_eq!(cluster.failovers(), 1);

    // The deposed node heals and replays what it still held: every
    // frame carries the old epoch and must be rejected by the fence.
    primary.set_down(false);
    cluster.link_plan().set_partitioned(false);
    let (offered, rejected) = cluster.rejoin_deposed();
    assert!(offered > 0, "the deposed primary held stranded frames");
    assert_eq!(offered, rejected, "every stale-epoch frame is fenced");

    // Fenced, the node is readmitted as the new warm standby and
    // converges on the promoted primary's state.
    assert!(cluster.rejoin_as_standby());
    assert!(cluster.has_standby());
    cluster.pump();
    cluster.pump();
    assert_eq!(cluster.replication_lag(), 0, "rejoined standby caught up");

    // Service continues on the new epoch.
    center.clock.advance(30);
    assert!(center.ssh(0, &fresh).granted);
}

#[test]
fn promotion_preserves_replay_fence_and_lockout_state() {
    let (center, primary, _standby) = replicated_center(ReplicationMode::Sync);
    let alice = user(&center, "alice");
    let _bob = user(&center, "bob");
    let _carol = user(&center, "carol");
    let cluster = Arc::clone(center.otp_cluster.as_ref().unwrap());

    // carol crosses the lockout threshold; bob accrues a partial streak.
    let carol_bad = fixed_profile("carol", "000000");
    for _ in 0..LOCKOUT_THRESHOLD {
        assert!(!center.ssh(0, &carol_bad).granted);
    }
    let bob_bad = fixed_profile("bob", "000000");
    for _ in 0..3 {
        assert!(!center.ssh(0, &bob_bad).granted);
    }
    // alice gets one code accepted — the replay-fence witness.
    let code = alice.displayed_code(center.clock.now());
    let alice_replay = fixed_profile("alice", &code);
    assert!(center.ssh(0, &alice_replay).granted);

    let now = center.clock.now();
    let carol_before = center.linotp.status("carol", now).unwrap();
    let bob_before = center.linotp.status("bob", now).unwrap();
    assert!(!carol_before.active, "carol locked out pre-failover");
    assert_eq!(bob_before.fail_count, 3);

    // Primary dies; the denied replays below also serve as the traffic
    // that opens the breaker and promotes the standby.
    primary.set_down(true);
    drive_until_promoted(&center, &alice_replay);
    assert_eq!(cluster.epoch(), 2);

    // Invariant 1: zero replay acceptances — the accepted code is still
    // a replay on the promoted standby (same validity window).
    assert!(
        !center.ssh(0, &alice_replay).granted,
        "accepted OTP must stay consumed across promotion"
    );

    // Invariant 2: no lockout or fail-count regression.
    let now = center.clock.now();
    let carol_after = center.linotp.status("carol", now).unwrap();
    let bob_after = center.linotp.status("bob", now).unwrap();
    assert!(!carol_after.active, "lockout must survive promotion");
    assert!(
        bob_after.fail_count >= bob_before.fail_count,
        "fail_count regressed across promotion: {} -> {}",
        bob_before.fail_count,
        bob_after.fail_count
    );

    // Fresh codes keep working on the new epoch.
    center.clock.advance(30);
    let d = alice.clone();
    let fresh = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
        .with_token(TokenSource::device(move |now| Some(d.displayed_code(now))));
    assert!(center.ssh(0, &fresh).granted);
}

/// One seeded primary-crash chaos run; returns the rendered report and
/// the deterministic replication metric series.
fn seeded_crash_run() -> (String, BTreeMap<String, u64>, i64) {
    let params = ChaosParams {
        logins: 30,
        users: 4,
        seed: 0xfa11,
        replicated_otp: Some(ReplicationMode::Sync),
        ..ChaosParams::default()
    };
    let script = FaultScript::primary_crash_mid_batch(30);
    let report = ChaosRunner::new(params).run(&script);
    let repl_counters: BTreeMap<String, u64> = report
        .metrics
        .counters()
        .iter()
        .filter(|(k, _)| k.contains("replication") || k.contains("failover"))
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    let epoch = report.metrics.gauge("hpcmfa_otp_replication_epoch");
    (format!("{report}"), repl_counters, epoch)
}

#[test]
fn seeded_primary_crash_chaos_replays_byte_identically_5_runs() {
    let (first, counters, epoch) = seeded_crash_run();

    // The promotion is visible across all three surfaces.
    assert!(
        first.contains("otp-ha: epoch 2, 1 failovers"),
        "report headline missing the failover:\n{first}"
    );
    assert!(
        first.contains("event:") && first.contains("failover"),
        "security-event feed missing the failover:\n{first}"
    );
    assert!(
        first.contains("alert:") && first.contains("otp_failover"),
        "alert timeline missing the failover:\n{first}"
    );
    assert_eq!(counters.get("hpcmfa_otp_failovers_total"), Some(&1));
    assert_eq!(epoch, 2, "epoch gauge on /system/metrics advanced");
    assert!(
        counters
            .get("hpcmfa_otp_replication_frames_applied_total")
            .copied()
            .unwrap_or(0)
            > 0,
        "standby applied real frames: {counters:?}"
    );

    // Byte-identical replay: report text AND the replication series.
    for run in 1..5 {
        let (text, c, e) = seeded_crash_run();
        assert_eq!(first, text, "run {run} diverged");
        assert_eq!(counters, c, "run {run} metric series diverged");
        assert_eq!(epoch, e, "run {run} epoch diverged");
    }
}
