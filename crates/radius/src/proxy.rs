//! RADIUS proxy chaining (§3.2: the protocol "allows for flexible deployment
//! that is capable of load balancing and proxy chaining across servers").
//!
//! A [`ProxyHandler`] is a [`Handler`] that forwards each Access-Request to
//! an upstream pool through a [`RadiusClient`], tagging the request with a
//! `Proxy-State` attribute (RFC 2865 §5.33) and stripping it from the reply.
//! In the paper's deployment the FreeRADIUS tier proxies between login nodes
//! and the LinOTP host exactly this way.

use crate::attribute::Attribute;
use crate::attribute::AttributeType;
use crate::client::{ClientError, Outcome, RadiusClient};
use crate::packet::Packet;
use crate::server::{Handler, ServerDecision};
use crate::tracewire;
use hpcmfa_telemetry::{MetricsRegistry, SecurityEventKind, SpanCtx, SpanStatus, TraceClock};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A handler that relays requests to an upstream client pool.
pub struct ProxyHandler {
    upstream: Arc<RadiusClient>,
    /// Identifier stamped into the Proxy-State attribute.
    proxy_id: String,
    /// RNG for upstream request authenticators.
    rng: Mutex<StdRng>,
    /// Requests proxied.
    pub forwarded: AtomicU64,
    /// Upstream failures turned into local discards.
    pub upstream_failures: AtomicU64,
    /// Shared registry; defaults to the upstream client's.
    metrics: Arc<MetricsRegistry>,
}

impl ProxyHandler {
    /// Create a proxy relaying to `upstream`. `seed` keeps simulations
    /// deterministic. Metrics and spans go to the upstream client's
    /// registry.
    pub fn new(proxy_id: &str, upstream: Arc<RadiusClient>, seed: u64) -> Self {
        let metrics = Arc::clone(upstream.metrics());
        Self::with_metrics(proxy_id, upstream, seed, metrics)
    }

    /// Create a proxy recording into an explicit registry.
    pub fn with_metrics(
        proxy_id: &str,
        upstream: Arc<RadiusClient>,
        seed: u64,
        metrics: Arc<MetricsRegistry>,
    ) -> Self {
        ProxyHandler {
            upstream,
            proxy_id: proxy_id.to_string(),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            forwarded: AtomicU64::new(0),
            upstream_failures: AtomicU64::new(0),
            metrics,
        }
    }
}

impl Handler for ProxyHandler {
    fn handle(&self, request: &Packet, password: Option<&[u8]>) -> ServerDecision {
        // A proxy cannot forward a password it cannot decrypt; RFC behaviour
        // is to decrypt with the downstream secret and re-hide upstream —
        // our client re-hides on send, so we need the cleartext here.
        let Some(password) = password else {
            return ServerDecision::Discard;
        };
        let username = request
            .text(AttributeType::UserName)
            .unwrap_or_default()
            .to_string();
        let calling = request
            .text(AttributeType::CallingStationId)
            .unwrap_or_default()
            .to_string();
        let state = request
            .attribute(AttributeType::State)
            .map(|a| a.value.clone());
        // Re-forward the caller's trace context upstream so the home
        // server's audit rows carry the id the login node minted, and our
        // forward span slots between the caller's attempt span and the
        // upstream client's request span.
        let wire_ctx = tracewire::trace_ctx_of(request);
        let trace = wire_ctx.map(|w| w.trace);

        self.forwarded.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .counter(
                "hpcmfa_radius_proxy_forwarded_total",
                &[("proxy", &self.proxy_id)],
            )
            .inc();
        let mut guard = wire_ctx.map(|w| {
            let ctx = SpanCtx {
                trace: w.trace,
                parent: w.parent,
                clock: TraceClock::at(w.clock_us),
            };
            let mut g = self.metrics.tracer().start(&ctx, "radius.proxy", "forward");
            g.attr_str("proxy", self.proxy_id.clone());
            g
        });
        let span_id = guard.as_ref().map(|g| g.id());
        let child_ctx = guard.as_ref().map(|g| g.child_ctx());
        let mut rng = self.rng.lock();
        let result = match (state, child_ctx.as_ref()) {
            (Some(s), Some(c)) => self
                .upstream
                .respond_to_challenge_spanned(&mut *rng, &username, password, &calling, &s, c),
            (Some(s), None) => self
                .upstream
                .respond_to_challenge(&mut *rng, &username, password, &calling, &s),
            (None, Some(c)) => self
                .upstream
                .authenticate_spanned(&mut *rng, &username, password, &calling, c),
            (None, None) => self
                .upstream
                .authenticate(&mut *rng, &username, password, &calling),
        };
        drop(rng);

        let detail = match &result {
            Ok(Outcome::Accept { .. }) => "accept",
            Ok(Outcome::Reject { .. }) => "reject",
            Ok(Outcome::Challenge { .. }) => "challenge",
            Err(_) => "upstream_failed",
        };
        if let Some(g) = guard.as_mut() {
            g.set_detail(detail);
            if result.is_err() {
                g.set_status(SpanStatus::Error);
            }
        }
        drop(guard);
        // Report our trace clock (advanced by the upstream exchange) back
        // to the caller so its attempt span encloses this whole hop.
        let clock_attr = child_ctx.map(|c| tracewire::clock_attribute(c.clock.now_us()));
        let with_clock = |mut attrs: Vec<Attribute>| {
            if let Some(a) = clock_attr.clone() {
                attrs.push(a);
            }
            attrs
        };

        match result {
            Ok(Outcome::Accept { message }) => {
                ServerDecision::Accept(with_clock(reply_attrs(message)))
            }
            Ok(Outcome::Reject { message }) => {
                ServerDecision::Reject(with_clock(reply_attrs(message)))
            }
            Ok(Outcome::Challenge { state, message }) => {
                let mut attrs = reply_attrs(message);
                attrs.push(Attribute::new(AttributeType::State, state));
                ServerDecision::Challenge(with_clock(attrs))
            }
            Err(ClientError::AllServersFailed { .. }) | Err(_) => {
                // RFC: a proxy that cannot reach its home server stays
                // silent; the NAS will fail over to another proxy.
                self.upstream_failures.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .counter(
                        "hpcmfa_radius_proxy_upstream_failures_total",
                        &[("proxy", &self.proxy_id)],
                    )
                    .inc();
                self.metrics.emit_event_spanned(
                    SecurityEventKind::BreakerFlap,
                    trace,
                    span_id,
                    self.upstream.vclock_us(),
                    format!("proxy={} upstream_failed", self.proxy_id),
                );
                ServerDecision::Discard
            }
        }
    }
}

impl ProxyHandler {
    /// The configured proxy identifier (placed in Proxy-State by tests that
    /// exercise multi-hop chains explicitly).
    pub fn proxy_id(&self) -> &str {
        &self.proxy_id
    }
}

fn reply_attrs(message: Option<String>) -> Vec<Attribute> {
    message
        .map(|m| vec![Attribute::text(AttributeType::ReplyMessage, &m)])
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ClientConfig;
    use crate::server::RadiusServer;
    use crate::transport::{FaultPlan, InMemoryTransport, Transport};
    use rand::rngs::StdRng;

    const HOME_SECRET: &[u8] = b"home-secret";
    const EDGE_SECRET: &[u8] = b"edge-secret";

    /// Build home server (token logic) ← proxy ← client, with *different*
    /// shared secrets on each hop, as real deployments use.
    fn chain() -> (RadiusClient, Arc<FaultPlan>) {
        let home_handler: Arc<dyn Handler> =
            Arc::new(|_req: &Packet, pw: Option<&[u8]>| match pw {
                Some(b"") => ServerDecision::Challenge(vec![
                    Attribute::new(AttributeType::State, b"st".to_vec()),
                    Attribute::text(AttributeType::ReplyMessage, "TACC Token:"),
                ]),
                Some(b"123456") => ServerDecision::Accept(vec![]),
                _ => ServerDecision::Reject(vec![]),
            });
        let home = Arc::new(RadiusServer::new(HOME_SECRET, home_handler));
        let home_faults = FaultPlan::healthy();
        let home_transport: Arc<dyn Transport> = Arc::new(InMemoryTransport::new(
            "home",
            home,
            Arc::clone(&home_faults),
        ));
        let upstream = Arc::new(RadiusClient::new(
            ClientConfig::new(HOME_SECRET, "proxy1"),
            vec![home_transport],
        ));
        let proxy_handler = Arc::new(ProxyHandler::new("proxy1", upstream, 99));
        let edge = Arc::new(RadiusServer::new(EDGE_SECRET, proxy_handler));
        let client = RadiusClient::new(
            ClientConfig::new(EDGE_SECRET, "login1"),
            vec![Arc::new(InMemoryTransport::new(
                "edge",
                edge,
                FaultPlan::healthy(),
            ))],
        );
        (client, home_faults)
    }

    #[test]
    fn proxied_accept() {
        let (client, _) = chain();
        let mut rng = StdRng::seed_from_u64(1);
        let out = client
            .authenticate(&mut rng, "alice", b"123456", "1.2.3.4")
            .unwrap();
        assert!(matches!(out, Outcome::Accept { .. }));
    }

    #[test]
    fn proxied_challenge_round_trip() {
        let (client, _) = chain();
        let mut rng = StdRng::seed_from_u64(2);
        let out = client
            .authenticate(&mut rng, "alice", b"", "1.2.3.4")
            .unwrap();
        let Outcome::Challenge { state, message } = out else {
            panic!("expected challenge");
        };
        assert_eq!(message.as_deref(), Some("TACC Token:"));
        let fin = client
            .respond_to_challenge(&mut rng, "alice", b"123456", "1.2.3.4", &state)
            .unwrap();
        assert!(matches!(fin, Outcome::Accept { .. }));
    }

    #[test]
    fn proxied_reject() {
        let (client, _) = chain();
        let mut rng = StdRng::seed_from_u64(3);
        let out = client
            .authenticate(&mut rng, "alice", b"000000", "1.2.3.4")
            .unwrap();
        assert!(matches!(out, Outcome::Reject { .. }));
    }

    #[test]
    fn home_server_outage_silences_proxy() {
        let (client, home_faults) = chain();
        let mut rng = StdRng::seed_from_u64(4);
        home_faults.set_down(true);
        let err = client
            .authenticate(&mut rng, "alice", b"123456", "1.2.3.4")
            .unwrap_err();
        assert!(matches!(err, ClientError::AllServersFailed { .. }));
    }

    #[test]
    fn trace_id_survives_the_proxy_hop() {
        use hpcmfa_telemetry::{MetricsRegistry, TraceId};
        // Home handler that records the trace id it saw on the wire.
        let seen: Arc<Mutex<Vec<Option<TraceId>>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let home_handler: Arc<dyn Handler> = Arc::new(move |req: &Packet, _pw: Option<&[u8]>| {
            seen2.lock().push(tracewire::trace_id_of(req));
            ServerDecision::Accept(vec![])
        });
        let metrics = Arc::new(MetricsRegistry::new());
        let home = Arc::new(RadiusServer::new(HOME_SECRET, home_handler));
        let home_transport: Arc<dyn Transport> =
            Arc::new(InMemoryTransport::new("home", home, FaultPlan::healthy()));
        let upstream = Arc::new(RadiusClient::with_metrics(
            ClientConfig::new(HOME_SECRET, "proxy1"),
            vec![home_transport],
            Arc::clone(&metrics),
        ));
        let proxy = Arc::new(ProxyHandler::new("proxy1", upstream, 99));
        let edge = Arc::new(RadiusServer::new(EDGE_SECRET, proxy));
        let client = RadiusClient::with_metrics(
            ClientConfig::new(EDGE_SECRET, "login1"),
            vec![Arc::new(InMemoryTransport::new(
                "edge",
                edge,
                FaultPlan::healthy(),
            ))],
            Arc::clone(&metrics),
        );
        let mut rng = StdRng::seed_from_u64(7);
        let id = TraceId::from_u64(0xfeed);
        let out = client
            .authenticate_traced(&mut rng, "alice", b"123456", "1.2.3.4", Some(id))
            .unwrap();
        assert!(matches!(out, Outcome::Accept { .. }));
        assert_eq!(seen.lock().as_slice(), &[Some(id)], "id did not reach home");
        // Both client hops and the proxy hop recorded spans for one id:
        // request + attempt per client, plus the proxy's forward span.
        let components = metrics.tracer().components_for(id);
        assert_eq!(components, vec!["radius.client", "radius.proxy"]);
        let spans = metrics.tracer().spans_for(id);
        assert_eq!(spans.len(), 5);
        // The chain is fully parented: edge request ← edge attempt ←
        // proxy forward ← upstream request ← upstream attempt.
        let root = spans.iter().find(|s| s.parent.is_none()).unwrap();
        assert_eq!(
            (root.component.as_str(), root.label.as_str()),
            ("radius.client", "authenticate")
        );
        let forward = spans
            .iter()
            .find(|s| s.component == "radius.proxy")
            .unwrap();
        let edge_attempt = spans
            .iter()
            .find(|s| s.id == forward.parent.unwrap())
            .unwrap();
        assert_eq!(edge_attempt.label, "attempt");
        assert_eq!(edge_attempt.parent, Some(root.id));
        // The proxy's span nests inside the edge attempt on one clock.
        assert!(edge_attempt.start_us <= forward.start_us);
        assert!(
            edge_attempt.end_us >= forward.end_us,
            "{edge_attempt:?} vs {forward:?}"
        );
        assert_eq!(
            metrics
                .snapshot()
                .counter("hpcmfa_radius_proxy_forwarded_total{proxy=\"proxy1\"}"),
            1
        );
    }

    #[test]
    fn secrets_differ_per_hop() {
        // The password must be re-encrypted per hop: the edge secret and
        // home secret differ, yet the cleartext arrives intact upstream.
        let (client, _) = chain();
        let mut rng = StdRng::seed_from_u64(5);
        assert_ne!(HOME_SECRET, EDGE_SECRET);
        let out = client
            .authenticate(&mut rng, "alice", b"123456", "1.2.3.4")
            .unwrap();
        assert!(matches!(out, Outcome::Accept { .. }));
    }
}
