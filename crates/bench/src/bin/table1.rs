//! Table 1: percentage breakdown of token device pairing types.
//!
//! Paper values: Soft 55.38 %, SMS 40.22 %, Training 2.97 %, Hard 1.43 %.

use hpcmfa_bench::FigureArgs;
use hpcmfa_workload::figures::Table1;

fn main() {
    let out = FigureArgs::parse().run();
    match Table1::from_output(&out) {
        Some(t) => {
            println!("{}", t.render_against_paper());
            println!(
                "total successful logins in the window: {}",
                out.total_successful_logins
            );
            println!("(paper §6: 'over half a million successful log ins' at full scale)");
        }
        None => println!("no pairings recorded — run a longer window"),
    }
}
