//! Storage backends: a real file-backed implementation and a
//! deterministic in-memory fault-injecting one.
//!
//! The file backend is what a production deployment would run on the OTP
//! server host: an append-only WAL, size-rotated into `wal.<seq>.log`
//! segments, plus an atomically-replaced `snapshot.bin` in one directory.
//! The memory backend is the test substrate: identical semantics, plus a
//! seeded [`StorageFaultPlan`] injecting the failure modes disks actually
//! exhibit — short writes, fsync failures, read corruption and torn crash
//! tails — in the same cadence-counter style as the RADIUS transport's
//! `FaultPlan`, and a [`MemoryBackend::set_down`] switch that models a
//! dead primary node for the replication layer.

use super::{StorageBackend, StorageError};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// File backend
// ---------------------------------------------------------------------

/// Base WAL file name inside the storage directory (segment 0; later
/// segments are `wal.<seq>.log`).
pub const WAL_FILE: &str = "wal.log";

/// Snapshot file name inside the storage directory.
pub const SNAPSHOT_FILE: &str = "snapshot.bin";

/// Default segment-rotation threshold: an active segment at or past this
/// size is sealed before the next append.
pub const DEFAULT_ROTATE_BYTES: u64 = 1 << 20;

#[derive(Clone)]
struct Segment {
    seq: u64,
    path: PathBuf,
    /// Length of the known-good prefix: bytes successfully written (a
    /// failed append truncates back to this, so a detected short write
    /// never poisons the stream).
    len: u64,
}

struct WalState {
    /// Sealed (rotated-out) segments, ascending by sequence. Synced at
    /// seal time; deleted when snapshot compaction resets the WAL.
    sealed: Vec<Segment>,
    active: Segment,
    /// Open append handle on the active segment.
    file: File,
}

impl WalState {
    fn total_len(&self) -> u64 {
        self.sealed.iter().map(|s| s.len).sum::<u64>() + self.active.len
    }
}

/// Durable storage in a directory: segmented `wal.log` / `wal.<seq>.log`
/// files plus `snapshot.bin`.
pub struct FileBackend {
    dir: PathBuf,
    rotate_bytes: u64,
    wal: Mutex<WalState>,
}

impl FileBackend {
    /// Open (creating if needed) the storage directory with the default
    /// rotation threshold. Existing WAL segments are kept — recovery
    /// decides what in them is valid.
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Arc<Self>> {
        Self::open_with_rotation(dir, DEFAULT_ROTATE_BYTES)
    }

    /// Open with an explicit rotation threshold (0 disables rotation).
    /// A leftover `snapshot.bin.tmp` from a crash mid-replace is removed;
    /// recovery never reads it.
    pub fn open_with_rotation(
        dir: impl AsRef<Path>,
        rotate_bytes: u64,
    ) -> std::io::Result<Arc<Self>> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let _ = std::fs::remove_file(dir.join(format!("{SNAPSHOT_FILE}.tmp")));
        let mut segments: Vec<Segment> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            let seq = if name == WAL_FILE {
                Some(0)
            } else {
                name.strip_prefix("wal.")
                    .and_then(|s| s.strip_suffix(".log"))
                    .and_then(|s| s.parse::<u64>().ok())
            };
            if let Some(seq) = seq {
                let len = entry.metadata()?.len();
                segments.push(Segment {
                    seq,
                    path: entry.path(),
                    len,
                });
            }
        }
        segments.sort_by_key(|s| s.seq);
        let active = match segments.pop() {
            Some(seg) => seg,
            None => Segment {
                seq: 0,
                path: dir.join(WAL_FILE),
                len: 0,
            },
        };
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&active.path)?;
        Ok(Arc::new(FileBackend {
            dir,
            rotate_bytes,
            wal: Mutex::new(WalState {
                sealed: segments,
                active,
                file,
            }),
        }))
    }

    fn io<T>(r: std::io::Result<T>) -> Result<T, StorageError> {
        r.map_err(|e| StorageError::Io(e.to_string()))
    }

    fn segment_path(&self, seq: u64) -> PathBuf {
        if seq == 0 {
            self.dir.join(WAL_FILE)
        } else {
            self.dir.join(format!("wal.{seq}.log"))
        }
    }

    /// Fsync the storage directory itself, making renames, creates and
    /// deletes durable. Without this a crash after a metadata operation
    /// can roll it back — the snapshot-resurrection bug this PR fixes.
    fn sync_dir(&self) -> Result<(), StorageError> {
        let d = Self::io(File::open(&self.dir))?;
        d.sync_all().map_err(|_| StorageError::FsyncFailed)
    }

    /// Seal the active segment and start a new one. The sealed file is
    /// fsynced first so its contents are durable before any append lands
    /// in the successor; the directory is fsynced so the new file's
    /// existence is durable too.
    fn rotate_locked(&self, wal: &mut WalState) -> Result<(), StorageError> {
        wal.file
            .sync_data()
            .map_err(|_| StorageError::FsyncFailed)?;
        let next_seq = wal.active.seq + 1;
        let path = self.segment_path(next_seq);
        let file = Self::io(OpenOptions::new().create(true).append(true).open(&path))?;
        let sealed = std::mem::replace(
            &mut wal.active,
            Segment {
                seq: next_seq,
                path,
                len: 0,
            },
        );
        wal.file = file;
        wal.sealed.push(sealed);
        self.sync_dir()
    }
}

impl StorageBackend for FileBackend {
    fn append_wal(&self, frame: &[u8]) -> Result<(), StorageError> {
        let mut wal = self.wal.lock();
        if self.rotate_bytes > 0 && wal.active.len >= self.rotate_bytes {
            self.rotate_locked(&mut wal)?;
        }
        match wal.file.write_all(frame) {
            Ok(()) => {
                wal.active.len += frame.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Cut any partial bytes back off the stream.
                let good = wal.active.len;
                let _ = wal.file.set_len(good);
                Err(StorageError::Io(e.to_string()))
            }
        }
    }

    fn sync_wal(&self) -> Result<(), StorageError> {
        // Sealed segments were synced at rotation; only the active one
        // can hold buffered bytes.
        let wal = self.wal.lock();
        wal.file.sync_data().map_err(|_| StorageError::FsyncFailed)
    }

    fn read_wal(&self) -> Result<Vec<u8>, StorageError> {
        let wal = self.wal.lock();
        let mut out = Vec::new();
        for seg in wal.sealed.iter().chain(std::iter::once(&wal.active)) {
            out.extend_from_slice(&Self::io(std::fs::read(&seg.path))?);
        }
        Ok(out)
    }

    fn truncate_wal(&self, len: u64) -> Result<(), StorageError> {
        let mut wal = self.wal.lock();
        let mut segments = std::mem::take(&mut wal.sealed);
        segments.push(wal.active.clone());
        let mut keep: Vec<Segment> = Vec::new();
        let mut remaining = len;
        let mut cutting = false;
        for seg in segments {
            if cutting {
                Self::io(std::fs::remove_file(&seg.path))?;
                continue;
            }
            if remaining >= seg.len {
                remaining -= seg.len;
                keep.push(seg);
                continue;
            }
            // The cut lands inside this segment; everything after it goes.
            let f = Self::io(OpenOptions::new().write(true).open(&seg.path))?;
            Self::io(f.set_len(remaining))?;
            f.sync_data().map_err(|_| StorageError::FsyncFailed)?;
            keep.push(Segment {
                len: remaining,
                ..seg
            });
            cutting = true;
        }
        let active = keep.pop().expect("a WAL always has at least one segment");
        let file = Self::io(
            OpenOptions::new()
                .create(true)
                .append(true)
                .open(&active.path),
        )?;
        wal.sealed = keep;
        wal.active = active;
        wal.file = file;
        self.sync_dir()
    }

    fn wal_len(&self) -> u64 {
        self.wal.lock().total_len()
    }

    fn write_snapshot(&self, bytes: &[u8]) -> Result<(), StorageError> {
        // Classic atomic replace: write sideways, fsync, rename, fsync
        // the directory. A crash at any point leaves either the old or
        // the new snapshot intact — the directory fsync is what makes the
        // rename itself durable; without it a crash right after the
        // rename can resurrect the *old* snapshot, silently rolling
        // recovery back past compacted WAL records.
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let mut f = Self::io(File::create(&tmp))?;
        Self::io(f.write_all(bytes))?;
        f.sync_data().map_err(|_| StorageError::FsyncFailed)?;
        drop(f);
        Self::io(std::fs::rename(&tmp, self.dir.join(SNAPSHOT_FILE)))?;
        self.sync_dir()
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StorageError> {
        match std::fs::read(self.dir.join(SNAPSHOT_FILE)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(StorageError::Io(e.to_string())),
        }
    }

    fn clear_snapshot(&self) -> Result<(), StorageError> {
        match std::fs::remove_file(self.dir.join(SNAPSHOT_FILE)) {
            Ok(()) => self.sync_dir(),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(StorageError::Io(e.to_string())),
        }
    }

    fn name(&self) -> &'static str {
        "file"
    }
}

// ---------------------------------------------------------------------
// Fault-injecting memory backend
// ---------------------------------------------------------------------

/// Deterministic, seeded fault injection for [`MemoryBackend`].
///
/// Cadence knobs follow the transport `FaultPlan` contract: `1-in-n`
/// decisions come from `SeqCst` counter RMWs so concurrent writers each
/// take every decision exactly once; 0 disables a knob.
pub struct StorageFaultPlan {
    /// Every `n`th append persists only a seeded prefix and errors.
    pub short_write_every: AtomicU64,
    short_write_counter: AtomicU64,
    /// Every `n`th fsync fails (buffered bytes stay un-durable).
    pub fsync_fail_every: AtomicU64,
    fsync_counter: AtomicU64,
    /// Every `n`th WAL read has one seeded bit flipped.
    pub read_corrupt_every: AtomicU64,
    read_counter: AtomicU64,
    /// Corrupt the *snapshot* on its next read (one-shot).
    pub corrupt_next_snapshot_read: AtomicBool,
    rng: Mutex<StdRng>,
}

impl StorageFaultPlan {
    /// No faults; RNG still seeded for torn-crash prefix lengths.
    pub fn healthy() -> Arc<Self> {
        Self::seeded(0)
    }

    /// All knobs off, RNG seeded with `seed`.
    pub fn seeded(seed: u64) -> Arc<Self> {
        Arc::new(StorageFaultPlan {
            short_write_every: AtomicU64::new(0),
            short_write_counter: AtomicU64::new(0),
            fsync_fail_every: AtomicU64::new(0),
            fsync_counter: AtomicU64::new(0),
            read_corrupt_every: AtomicU64::new(0),
            read_counter: AtomicU64::new(0),
            corrupt_next_snapshot_read: AtomicBool::new(false),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
        })
    }

    /// Short-write one append in every `n` (0 disables).
    pub fn set_short_write_every(&self, n: u64) {
        self.short_write_every.store(n, Ordering::SeqCst);
    }

    /// Fail one fsync in every `n` (0 disables).
    pub fn set_fsync_fail_every(&self, n: u64) {
        self.fsync_fail_every.store(n, Ordering::SeqCst);
    }

    /// Flip one bit in one WAL read in every `n` (0 disables).
    pub fn set_read_corrupt_every(&self, n: u64) {
        self.read_corrupt_every.store(n, Ordering::SeqCst);
    }

    fn cadence_hit(every: &AtomicU64, counter: &AtomicU64) -> bool {
        let n = every.load(Ordering::SeqCst);
        if n == 0 {
            return false;
        }
        let c = counter.fetch_add(1, Ordering::SeqCst) + 1;
        c.is_multiple_of(n)
    }

    fn short_write_hit(&self) -> bool {
        Self::cadence_hit(&self.short_write_every, &self.short_write_counter)
    }

    fn fsync_hit(&self) -> bool {
        Self::cadence_hit(&self.fsync_fail_every, &self.fsync_counter)
    }

    fn read_hit(&self) -> bool {
        Self::cadence_hit(&self.read_corrupt_every, &self.read_counter)
    }

    /// Seeded draw in `[0, n)`.
    fn draw(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        self.rng.lock().random_range(0..n)
    }
}

#[derive(Default)]
struct MemState {
    /// Bytes an fsync has made durable — what survives a crash.
    durable: Vec<u8>,
    /// Bytes appended but not yet synced.
    inflight: Vec<u8>,
    snapshot: Option<Vec<u8>>,
}

/// Deterministic in-memory backend with injected faults. Crash semantics:
/// [`StorageBackend::simulate_crash`] drops in-flight bytes, keeping a
/// seeded prefix — the torn-tail shape a real crash leaves on disk.
pub struct MemoryBackend {
    state: Mutex<MemState>,
    plan: Arc<StorageFaultPlan>,
    /// Node down: every operation fails with [`StorageError::Crashed`]
    /// until the node is brought back up. Durable state is retained —
    /// this models a crashed-but-recoverable replica, not disk loss.
    down: AtomicBool,
}

impl MemoryBackend {
    /// Fault-free backend.
    pub fn healthy() -> Arc<Self> {
        Self::with_plan(StorageFaultPlan::healthy())
    }

    /// Backend driven by `plan`.
    pub fn with_plan(plan: Arc<StorageFaultPlan>) -> Arc<Self> {
        Arc::new(MemoryBackend {
            state: Mutex::new(MemState::default()),
            plan,
            down: AtomicBool::new(false),
        })
    }

    /// Backend pre-loaded with durable contents — the crash-point sweep
    /// reconstructs "what was on disk" prefixes through this.
    pub fn with_contents(wal: Vec<u8>, snapshot: Option<Vec<u8>>) -> Arc<Self> {
        Arc::new(MemoryBackend {
            state: Mutex::new(MemState {
                durable: wal,
                inflight: Vec::new(),
                snapshot,
            }),
            plan: StorageFaultPlan::healthy(),
            down: AtomicBool::new(false),
        })
    }

    /// The fault plan.
    pub fn plan(&self) -> &Arc<StorageFaultPlan> {
        &self.plan
    }

    /// Take the node down (every operation fails) or bring it back up.
    pub fn set_down(&self, down: bool) {
        self.down.store(down, Ordering::SeqCst);
    }

    /// Whether the node is down.
    pub fn is_down(&self) -> bool {
        self.down.load(Ordering::SeqCst)
    }

    fn up(&self) -> Result<(), StorageError> {
        if self.is_down() {
            Err(StorageError::Crashed)
        } else {
            Ok(())
        }
    }

    /// The durable WAL bytes (test observability; no fault injection).
    pub fn durable_wal(&self) -> Vec<u8> {
        self.state.lock().durable.clone()
    }

    /// The durable snapshot bytes (test observability).
    pub fn durable_snapshot(&self) -> Option<Vec<u8>> {
        self.state.lock().snapshot.clone()
    }
}

impl StorageBackend for MemoryBackend {
    fn append_wal(&self, frame: &[u8]) -> Result<(), StorageError> {
        self.up()?;
        let mut st = self.state.lock();
        if self.plan.short_write_hit() {
            let keep = self.plan.draw(frame.len());
            st.inflight.extend_from_slice(&frame[..keep]);
            return Err(StorageError::ShortWrite {
                wrote: keep,
                of: frame.len(),
            });
        }
        st.inflight.extend_from_slice(frame);
        Ok(())
    }

    fn sync_wal(&self) -> Result<(), StorageError> {
        self.up()?;
        let mut st = self.state.lock();
        if self.plan.fsync_hit() {
            // Like a real failed fsync, the fate of the buffered bytes is
            // unknown to the caller; this model keeps them buffered.
            return Err(StorageError::FsyncFailed);
        }
        let inflight = std::mem::take(&mut st.inflight);
        st.durable.extend_from_slice(&inflight);
        Ok(())
    }

    fn read_wal(&self) -> Result<Vec<u8>, StorageError> {
        self.up()?;
        let st = self.state.lock();
        let mut bytes = st.durable.clone();
        if !bytes.is_empty() && self.plan.read_hit() {
            let bit = self.plan.draw(bytes.len() * 8);
            bytes[bit / 8] ^= 1 << (bit % 8);
        }
        Ok(bytes)
    }

    fn truncate_wal(&self, len: u64) -> Result<(), StorageError> {
        self.up()?;
        let mut st = self.state.lock();
        st.durable.truncate(len as usize);
        st.inflight.clear();
        Ok(())
    }

    fn wal_len(&self) -> u64 {
        if self.is_down() {
            return 0;
        }
        self.state.lock().durable.len() as u64
    }

    fn write_snapshot(&self, bytes: &[u8]) -> Result<(), StorageError> {
        self.up()?;
        self.state.lock().snapshot = Some(bytes.to_vec());
        Ok(())
    }

    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StorageError> {
        self.up()?;
        let st = self.state.lock();
        let mut snap = st.snapshot.clone();
        if let Some(bytes) = snap.as_mut() {
            if !bytes.is_empty()
                && self
                    .plan
                    .corrupt_next_snapshot_read
                    .swap(false, Ordering::SeqCst)
            {
                let bit = self.plan.draw(bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
        }
        Ok(snap)
    }

    fn clear_snapshot(&self) -> Result<(), StorageError> {
        self.up()?;
        self.state.lock().snapshot = None;
        Ok(())
    }

    fn rollback_inflight(&self) {
        self.state.lock().inflight.clear();
    }

    fn simulate_crash(&self) {
        let mut st = self.state.lock();
        let inflight = std::mem::take(&mut st.inflight);
        if !inflight.is_empty() {
            // A crash may tear the in-flight frame: a seeded prefix
            // (possibly empty, possibly all of it) reached the platter.
            let keep = self.plan.draw(inflight.len() + 1);
            st.durable.extend_from_slice(&inflight[..keep]);
        }
    }

    fn name(&self) -> &'static str {
        "memory"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::durability::wal::{decode_stream, WalRecord, WalTail};

    fn rec(user: &str) -> WalRecord {
        WalRecord::Remove { user: user.into() }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hpcmfa-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn wal_segment_count(dir: &Path) -> usize {
        std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name == WAL_FILE || (name.starts_with("wal.") && name.ends_with(".log"))
            })
            .count()
    }

    #[test]
    fn memory_append_sync_read_round_trip() {
        let b = MemoryBackend::healthy();
        b.append_wal(&rec("a").encode_frame()).unwrap();
        assert_eq!(b.wal_len(), 0, "unsynced bytes are not durable");
        b.sync_wal().unwrap();
        b.append_wal(&rec("b").encode_frame()).unwrap();
        b.sync_wal().unwrap();
        let (records, tail) = decode_stream(&b.read_wal().unwrap());
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records, vec![rec("a"), rec("b")]);
    }

    #[test]
    fn crash_drops_unsynced_bytes() {
        let b = MemoryBackend::healthy();
        b.append_wal(&rec("a").encode_frame()).unwrap();
        b.sync_wal().unwrap();
        b.append_wal(&rec("b").encode_frame()).unwrap();
        b.simulate_crash();
        let wal = b.read_wal().unwrap();
        let (records, tail) = decode_stream(&wal);
        // Only the synced record fully survives; the in-flight one is at
        // most a torn tail.
        assert_eq!(records, vec![rec("a")]);
        assert!(matches!(tail, WalTail::Clean | WalTail::Torn { .. }));
    }

    #[test]
    fn short_write_fault_reports_and_rollback_cleans() {
        let plan = StorageFaultPlan::seeded(3);
        plan.set_short_write_every(1);
        let b = MemoryBackend::with_plan(plan);
        let frame = rec("a").encode_frame();
        let err = b.append_wal(&frame).unwrap_err();
        assert!(matches!(err, StorageError::ShortWrite { .. }));
        b.rollback_inflight();
        b.sync_wal().unwrap();
        assert_eq!(b.wal_len(), 0);
    }

    #[test]
    fn fsync_fault_keeps_bytes_buffered() {
        let plan = StorageFaultPlan::seeded(3);
        plan.set_fsync_fail_every(1);
        let b = MemoryBackend::with_plan(plan);
        b.append_wal(&rec("a").encode_frame()).unwrap();
        assert_eq!(b.sync_wal().unwrap_err(), StorageError::FsyncFailed);
        assert_eq!(b.wal_len(), 0);
        // Clear the fault: the buffered bytes flush on the next sync.
        b.plan().set_fsync_fail_every(0);
        b.sync_wal().unwrap();
        assert!(b.wal_len() > 0);
    }

    #[test]
    fn read_corruption_flips_exactly_one_bit() {
        let plan = StorageFaultPlan::seeded(9);
        let b = MemoryBackend::with_plan(plan);
        b.append_wal(&rec("abcdef").encode_frame()).unwrap();
        b.sync_wal().unwrap();
        let clean = b.read_wal().unwrap();
        b.plan().set_read_corrupt_every(1);
        let dirty = b.read_wal().unwrap();
        let diff: u32 = clean
            .iter()
            .zip(&dirty)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1);
    }

    #[test]
    fn down_node_fails_everything_but_retains_state() {
        let b = MemoryBackend::healthy();
        b.append_wal(&rec("a").encode_frame()).unwrap();
        b.sync_wal().unwrap();
        b.set_down(true);
        assert_eq!(
            b.append_wal(&rec("b").encode_frame()),
            Err(StorageError::Crashed)
        );
        assert_eq!(b.sync_wal(), Err(StorageError::Crashed));
        assert_eq!(b.read_wal(), Err(StorageError::Crashed));
        assert_eq!(b.read_snapshot(), Err(StorageError::Crashed));
        assert_eq!(b.wal_len(), 0);
        b.set_down(false);
        let (records, tail) = decode_stream(&b.read_wal().unwrap());
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records, vec![rec("a")], "durable state survived the outage");
    }

    #[test]
    fn memory_clear_snapshot_removes_it() {
        let b = MemoryBackend::healthy();
        b.write_snapshot(b"snap").unwrap();
        b.clear_snapshot().unwrap();
        assert_eq!(b.read_snapshot().unwrap(), None);
    }

    #[test]
    fn file_backend_round_trip_and_truncate() {
        let dir = temp_dir("durability-test");
        let b = FileBackend::open(&dir).unwrap();
        let f1 = rec("a").encode_frame();
        let f2 = rec("b").encode_frame();
        b.append_wal(&f1).unwrap();
        b.append_wal(&f2).unwrap();
        b.sync_wal().unwrap();
        assert_eq!(b.wal_len(), (f1.len() + f2.len()) as u64);
        let (records, tail) = decode_stream(&b.read_wal().unwrap());
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 2);

        // Truncation drops the second record.
        b.truncate_wal(f1.len() as u64).unwrap();
        let (records, tail) = decode_stream(&b.read_wal().unwrap());
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records, vec![rec("a")]);

        // Snapshot replace + reopen persistence.
        b.write_snapshot(b"snap-v1").unwrap();
        assert_eq!(b.read_snapshot().unwrap().as_deref(), Some(&b"snap-v1"[..]));
        drop(b);
        let reopened = FileBackend::open(&dir).unwrap();
        assert_eq!(reopened.wal_len(), f1.len() as u64);
        assert_eq!(
            reopened.read_snapshot().unwrap().as_deref(),
            Some(&b"snap-v1"[..])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_missing_snapshot_is_none() {
        let dir = temp_dir("durability-nosnap");
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.read_snapshot().unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_cleans_stale_snapshot_tmp_on_open() {
        let dir = temp_dir("durability-staletmp");
        std::fs::create_dir_all(&dir).unwrap();
        // A crash between the tmp write and the rename leaves this file;
        // it must never be read as a snapshot, and reopening clears it.
        std::fs::write(dir.join(format!("{SNAPSHOT_FILE}.tmp")), b"half-written").unwrap();
        let b = FileBackend::open(&dir).unwrap();
        assert_eq!(b.read_snapshot().unwrap(), None);
        assert!(!dir.join(format!("{SNAPSHOT_FILE}.tmp")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_backend_clear_snapshot_is_idempotent() {
        let dir = temp_dir("durability-clearsnap");
        let b = FileBackend::open(&dir).unwrap();
        b.clear_snapshot().unwrap();
        b.write_snapshot(b"snap").unwrap();
        b.clear_snapshot().unwrap();
        assert_eq!(b.read_snapshot().unwrap(), None);
        b.clear_snapshot().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_seals_segments_and_replays_in_order() {
        let dir = temp_dir("durability-rotate");
        let b = FileBackend::open_with_rotation(&dir, 32).unwrap();
        let mut expect = Vec::new();
        for i in 0..12 {
            let r = rec(&format!("user{i:02}"));
            b.append_wal(&r.encode_frame()).unwrap();
            b.sync_wal().unwrap();
            expect.push(r);
        }
        assert!(
            wal_segment_count(&dir) > 1,
            "a 32-byte threshold must have rotated"
        );
        let (records, tail) = decode_stream(&b.read_wal().unwrap());
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records, expect, "replay order is stable across segments");
        let total = b.wal_len();
        drop(b);
        // Reopen: same bytes, same order, appends continue on the newest
        // segment.
        let reopened = FileBackend::open_with_rotation(&dir, 32).unwrap();
        assert_eq!(reopened.wal_len(), total);
        let (records, tail) = decode_stream(&reopened.read_wal().unwrap());
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records, expect);
        reopened.append_wal(&rec("more").encode_frame()).unwrap();
        reopened.sync_wal().unwrap();
        let (records, _) = decode_stream(&reopened.read_wal().unwrap());
        assert_eq!(records.len(), 13);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncate_across_segments_deletes_later_files() {
        let dir = temp_dir("durability-segtrunc");
        let b = FileBackend::open_with_rotation(&dir, 32).unwrap();
        let frames: Vec<Vec<u8>> = (0..10)
            .map(|i| rec(&format!("user{i:02}")).encode_frame())
            .collect();
        for f in &frames {
            b.append_wal(f).unwrap();
            b.sync_wal().unwrap();
        }
        let before = wal_segment_count(&dir);
        assert!(before > 1);
        // Keep only the first three frames — the cut lands in an early
        // segment and every later segment file must disappear.
        let keep: u64 = frames[..3].iter().map(|f| f.len() as u64).sum();
        b.truncate_wal(keep).unwrap();
        assert!(wal_segment_count(&dir) < before);
        assert_eq!(b.wal_len(), keep);
        let (records, tail) = decode_stream(&b.read_wal().unwrap());
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 3);
        // The stream keeps accepting appends after the cut.
        b.append_wal(&rec("next").encode_frame()).unwrap();
        b.sync_wal().unwrap();
        let (records, tail) = decode_stream(&b.read_wal().unwrap());
        assert_eq!(tail, WalTail::Clean);
        assert_eq!(records.len(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_after_compaction_deletes_sealed_segments() {
        let dir = temp_dir("durability-segreset");
        let b = FileBackend::open_with_rotation(&dir, 32).unwrap();
        for i in 0..10 {
            b.append_wal(&rec(&format!("user{i:02}")).encode_frame())
                .unwrap();
            b.sync_wal().unwrap();
        }
        assert!(wal_segment_count(&dir) > 1);
        b.write_snapshot(b"compacted").unwrap();
        b.reset_wal().unwrap();
        assert_eq!(
            wal_segment_count(&dir),
            1,
            "compaction must delete sealed segments"
        );
        assert_eq!(b.wal_len(), 0);
        assert_eq!(
            b.read_snapshot().unwrap().as_deref(),
            Some(&b"compacted"[..])
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
