//! The RADIUS server shell: datagram handling, password recovery, response
//! sealing, and a pluggable authentication [`Handler`].
//!
//! The paper's deployment put "a handful of servers ... set up to accept and
//! proxy requests between authentication agents, i.e. login nodes, and the
//! LinOTP server" (§3.2). The OTP-validation logic lives in
//! `hpcmfa-otpserver`; this crate provides the protocol plumbing those
//! handlers plug into.

use crate::attribute::{Attribute, AttributeType};
use crate::auth::{recover_password_into, seal_wire};
use crate::packet::{Code, Packet, PacketView};
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What a handler decides about an Access-Request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerDecision {
    /// Access-Accept with extra attributes.
    Accept(Vec<Attribute>),
    /// Access-Reject with extra attributes (e.g. a Reply-Message).
    Reject(Vec<Attribute>),
    /// Access-Challenge; attributes must include `State` for the round trip.
    Challenge(Vec<Attribute>),
    /// Silently discard (malformed or unauthorized source) — the RFC's
    /// response to unparseable requests, surfacing client-side as a timeout.
    Discard,
}

/// An authentication decision point.
pub trait Handler: Send + Sync {
    /// Decide on `request`. `password` is the recovered `User-Password`
    /// (None when absent or undecodable). An empty password is meaningful:
    /// it is the null request that starts a challenge round or triggers an
    /// SMS send (§3.3).
    fn handle(&self, request: &Packet, password: Option<&[u8]>) -> ServerDecision;

    /// Decide on a zero-copy [`PacketView`] of the request. The default
    /// bridges through an owned copy so existing handlers keep working;
    /// hot-path handlers (the OTP handler) override it to read usernames,
    /// trace contexts and source addresses straight out of the receive
    /// buffer, keeping the batched ingest loop allocation-free on decode.
    fn handle_view(&self, request: &PacketView<'_>, password: Option<&[u8]>) -> ServerDecision {
        self.handle(&request.to_packet(), password)
    }
}

impl<F> Handler for F
where
    F: Fn(&Packet, Option<&[u8]>) -> ServerDecision + Send + Sync,
{
    fn handle(&self, request: &Packet, password: Option<&[u8]>) -> ServerDecision {
        self(request, password)
    }
}

/// Counters exposed for capacity benches.
#[derive(Default)]
pub struct ServerStats {
    /// Datagrams received.
    pub received: AtomicU64,
    /// Replies sent.
    pub replied: AtomicU64,
    /// Datagrams discarded (undecodable or handler said so).
    pub discarded: AtomicU64,
}

/// A RADIUS server bound to one shared secret.
pub struct RadiusServer {
    secret: Vec<u8>,
    handler: Arc<dyn Handler>,
    /// Traffic counters.
    pub stats: ServerStats,
}

impl RadiusServer {
    /// Create a server with `secret` and `handler`.
    pub fn new(secret: impl Into<Vec<u8>>, handler: Arc<dyn Handler>) -> Self {
        RadiusServer {
            secret: secret.into(),
            handler,
            stats: ServerStats::default(),
        }
    }

    /// Process one raw datagram; `Some(reply_bytes)` or `None` to discard.
    /// Thin allocating wrapper over [`RadiusServer::process_into`].
    pub fn process_datagram(&self, data: &[u8]) -> Option<Vec<u8>> {
        let mut reply = Vec::new();
        let mut pw_scratch = Vec::new();
        self.process_into(data, &mut reply, &mut pw_scratch)
            .then_some(reply)
    }

    /// The zero-copy request path: parse `data` as a borrowed
    /// [`PacketView`] (no per-attribute allocation), recover the password
    /// into `pw_scratch`, dispatch to the handler's view entry point, and
    /// encode + seal the reply directly into `reply`. Both buffers are
    /// cleared and refilled — workers on the batched ingest loop reuse
    /// theirs across datagrams, so the steady-state path performs no heap
    /// allocation for decode, password recovery, reply encoding or
    /// sealing. Returns `false` (empty `reply`) on discard.
    pub fn process_into(&self, data: &[u8], reply: &mut Vec<u8>, pw_scratch: &mut Vec<u8>) -> bool {
        reply.clear();
        self.stats.received.fetch_add(1, Ordering::Relaxed);
        let Ok(request) = PacketView::parse(data) else {
            self.stats.discarded.fetch_add(1, Ordering::Relaxed);
            return false;
        };
        // Only Access-Requests are valid inbound traffic here.
        if request.code != Code::AccessRequest {
            self.stats.discarded.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let mut password: Option<&[u8]> = None;
        if let Some(a) = request.attribute(AttributeType::UserPassword) {
            if recover_password_into(a.value, request.authenticator(), &self.secret, pw_scratch) {
                password = Some(pw_scratch.as_slice());
            }
        }

        let decision = self.handler.handle_view(&request, password);
        let (code, attrs) = match decision {
            ServerDecision::Accept(a) => (Code::AccessAccept, a),
            ServerDecision::Reject(a) => (Code::AccessReject, a),
            ServerDecision::Challenge(a) => {
                debug_assert!(
                    a.iter().any(|at| at.ty == AttributeType::State),
                    "challenges must carry State"
                );
                (Code::AccessChallenge, a)
            }
            ServerDecision::Discard => {
                self.stats.discarded.fetch_add(1, Ordering::Relaxed);
                return false;
            }
        };

        // Encode the reply in place: header, decision attributes, then —
        // RFC 2865 §5.33 — the request's Proxy-State attributes echoed
        // unmodified in order, copied straight from the receive buffer.
        reply.push(code.code());
        reply.push(request.identifier);
        reply.extend_from_slice(&[0, 0]); // length, patched below
        reply.extend_from_slice(request.authenticator());
        for attr in &attrs {
            attr.encode(reply);
        }
        for ps in request.attributes_of(AttributeType::ProxyState) {
            ps.encode(reply);
        }
        debug_assert!(
            reply.len() <= crate::MAX_PACKET_LEN,
            "reply exceeds RFC maximum"
        );
        let len = (reply.len() as u16).to_be_bytes();
        reply[2..4].copy_from_slice(&len);
        seal_wire(reply, request.authenticator(), &self.secret);
        self.stats.replied.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// The shared secret (used by proxies re-hiding passwords upstream).
    pub fn secret(&self) -> &[u8] {
        &self.secret
    }

    /// Serve on a bound UDP socket until `shutdown` is set. Returns the
    /// join handle; the socket read timeout bounds shutdown latency.
    pub fn serve_udp(
        self: &Arc<Self>,
        socket: UdpSocket,
        shutdown: Arc<AtomicBool>,
    ) -> std::thread::JoinHandle<()> {
        let server = Arc::clone(self);
        socket
            .set_read_timeout(Some(std::time::Duration::from_millis(50)))
            .expect("set_read_timeout");
        std::thread::spawn(move || {
            let mut buf = [0u8; crate::MAX_PACKET_LEN];
            while !shutdown.load(Ordering::SeqCst) {
                match socket.recv_from(&mut buf) {
                    Ok((n, peer)) => {
                        if let Some(reply) = server.process_datagram(&buf[..n]) {
                            let _ = socket.send_to(&reply, peer);
                        }
                    }
                    Err(ref e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => break,
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::auth::{fixture_authenticator, hide_password, verify_response};

    const SECRET: &[u8] = b"s3cret";

    fn accept_all() -> Arc<dyn Handler> {
        Arc::new(|_: &Packet, _: Option<&[u8]>| ServerDecision::Accept(vec![]))
    }

    fn make_request(id: u8, password: Option<&[u8]>) -> Packet {
        let ra = fixture_authenticator("req");
        let mut p = Packet::new(Code::AccessRequest, id, ra)
            .with_attribute(Attribute::text(AttributeType::UserName, "alice"));
        if let Some(pw) = password {
            p = p.with_attribute(Attribute::new(
                AttributeType::UserPassword,
                hide_password(pw, &ra, SECRET),
            ));
        }
        p
    }

    #[test]
    fn accept_path_sealed_and_id_matched() {
        let server = RadiusServer::new(SECRET, accept_all());
        let req = make_request(7, Some(b"123456"));
        let reply = server.process_datagram(&req.encode()).unwrap();
        let resp = Packet::decode(&reply).unwrap();
        assert_eq!(resp.code, Code::AccessAccept);
        assert_eq!(resp.identifier, 7);
        assert!(verify_response(&resp, &req.authenticator, SECRET));
    }

    #[test]
    fn handler_sees_recovered_password() {
        let seen = Arc::new(parking_lot::Mutex::new(None::<Vec<u8>>));
        let seen2 = Arc::clone(&seen);
        let handler = Arc::new(move |_: &Packet, pw: Option<&[u8]>| {
            *seen2.lock() = pw.map(|p| p.to_vec());
            ServerDecision::Accept(vec![])
        });
        let server = RadiusServer::new(SECRET, handler);
        let req = make_request(1, Some(b"424242"));
        server.process_datagram(&req.encode()).unwrap();
        assert_eq!(seen.lock().as_deref(), Some(&b"424242"[..]));
    }

    #[test]
    fn empty_password_still_reaches_handler() {
        // The null request that triggers SMS delivery must not be dropped.
        let seen = Arc::new(parking_lot::Mutex::new(None::<Vec<u8>>));
        let seen2 = Arc::clone(&seen);
        let handler = Arc::new(move |_: &Packet, pw: Option<&[u8]>| {
            *seen2.lock() = pw.map(|p| p.to_vec());
            ServerDecision::Challenge(vec![Attribute::new(AttributeType::State, vec![1])])
        });
        let server = RadiusServer::new(SECRET, handler);
        let req = make_request(1, Some(b""));
        let reply = server.process_datagram(&req.encode()).unwrap();
        assert_eq!(Packet::decode(&reply).unwrap().code, Code::AccessChallenge);
        assert_eq!(seen.lock().as_deref(), Some(&b""[..]));
    }

    #[test]
    fn garbage_discarded() {
        let server = RadiusServer::new(SECRET, accept_all());
        assert_eq!(server.process_datagram(&[1, 2, 3]), None);
        assert_eq!(server.stats.discarded.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn non_request_codes_discarded() {
        let server = RadiusServer::new(SECRET, accept_all());
        let bogus = Packet::new(Code::AccessAccept, 1, [0u8; 16]);
        assert_eq!(server.process_datagram(&bogus.encode()), None);
    }

    #[test]
    fn handler_discard_yields_no_reply() {
        let server = RadiusServer::new(
            SECRET,
            Arc::new(|_: &Packet, _: Option<&[u8]>| ServerDecision::Discard),
        );
        let req = make_request(1, None);
        assert_eq!(server.process_datagram(&req.encode()), None);
    }

    #[test]
    fn proxy_state_echoed_in_order() {
        let server = RadiusServer::new(SECRET, accept_all());
        let req = make_request(3, None)
            .with_attribute(Attribute::new(AttributeType::ProxyState, vec![0xaa]))
            .with_attribute(Attribute::new(AttributeType::ProxyState, vec![0xbb]));
        let reply = server.process_datagram(&req.encode()).unwrap();
        let resp = Packet::decode(&reply).unwrap();
        let ps = resp.attributes_of(AttributeType::ProxyState);
        assert_eq!(ps.len(), 2);
        assert_eq!(ps[0].value, vec![0xaa]);
        assert_eq!(ps[1].value, vec![0xbb]);
    }

    #[test]
    fn reject_carries_reply_message() {
        let server = RadiusServer::new(
            SECRET,
            Arc::new(|_: &Packet, _: Option<&[u8]>| {
                ServerDecision::Reject(vec![Attribute::text(
                    AttributeType::ReplyMessage,
                    "Authentication error",
                )])
            }),
        );
        let req = make_request(5, Some(b"badcode"));
        let resp = Packet::decode(&server.process_datagram(&req.encode()).unwrap()).unwrap();
        assert_eq!(resp.code, Code::AccessReject);
        assert_eq!(
            resp.text(AttributeType::ReplyMessage),
            Some("Authentication error")
        );
    }

    #[test]
    fn stats_counted() {
        let server = RadiusServer::new(SECRET, accept_all());
        let req = make_request(1, None);
        server.process_datagram(&req.encode());
        server.process_datagram(&[0xff]);
        assert_eq!(server.stats.received.load(Ordering::SeqCst), 2);
        assert_eq!(server.stats.replied.load(Ordering::SeqCst), 1);
        assert_eq!(server.stats.discarded.load(Ordering::SeqCst), 1);
    }
}
