//! Regenerates `results/detection_report.txt`: detection precision/recall
//! per seeded attack kind, shed and step-up rates, and the benign
//! false-positive baseline from the risk-scored rollout.
//!
//! Everything below runs on the virtual clock with fixed seeds, so the
//! output is byte-identical across runs and machines.

use hpcmfa_otp::date::Date;
use hpcmfa_workload::attack::{AttackParams, AttackRunner, AttackScenario};
use hpcmfa_workload::rollout::{RolloutParams, RolloutSim};
use hpcmfa_workload::AttackReport;

fn row_named(name: &str, r: &AttackReport) -> String {
    format!(
        "{:<20} {:>8} {:>8} {:>7.3} {:>9.3} {:>12.3} {:>10.3}",
        name,
        r.attack_attempts,
        r.attack_granted,
        r.recall(),
        r.precision(),
        r.flagged_step_up as f64 / r.attack_attempts.max(1) as f64,
        r.shed_rate(),
    )
}

fn main() {
    println!("detection report: seeded attack scenarios vs the full defense stack");
    println!("(risk gate at deny_at=100 + OTP admission control; 16 benign users, 120 steps @30s)");
    println!();
    println!(
        "{:<20} {:>8} {:>8} {:>7} {:>9} {:>12} {:>10}",
        "attack", "attempts", "granted", "recall", "precision", "step-up-rate", "shed-rate"
    );

    let presets = [
        AttackScenario::credential_stuffing(),
        AttackScenario::password_spraying(),
        AttackScenario::token_phishing(),
        AttackScenario::sms_flood(),
        AttackScenario::slow_and_low(),
        AttackScenario::token_theft(),
    ];
    let mut reports = Vec::new();
    for scenario in presets {
        let r = AttackRunner::new(AttackParams::default(), scenario).run();
        println!("{}", row_named(r.kind, &r));
        reports.push(r);
    }

    // The token-theft run's dedicated signal: the /16 binding on stolen
    // resumption tokens, which fires where geography cannot.
    let theft = reports.last().expect("token_theft ran");
    println!();
    println!("token theft (stolen resumption token, in-country proxies):");
    println!(
        "  replay signals fired:         {} of {} attempts (granted: {})",
        theft.flagged_resume_replay, theft.attack_attempts, theft.attack_granted
    );

    // The overload acceptance pair: a 12×-benign-rate stuffing storm under
    // tight admission control, against its own no-attack control run.
    let control = AttackRunner::new(AttackParams::storm(), AttackScenario::control()).run();
    let storm = AttackRunner::new(AttackParams::storm(), AttackScenario::stuffing_storm()).run();
    println!("{}", row_named("stuffing_storm_12x", &storm));
    println!();
    println!("overload (stuffing storm, 12x benign rate, tight buckets):");
    println!(
        "  sheds on hostile attempts:    {} of {} ({:.1}%)",
        storm.flagged_shed,
        storm.attack_attempts,
        100.0 * storm.shed_rate()
    );
    println!(
        "  benign sheds / lockouts:      {} / {}",
        storm.benign_shed, storm.benign_lockouts
    );
    println!(
        "  benign trusted-lane p99:      {}us under storm vs {}us no-attack (SLO: within 2x)",
        storm.trusted_p99_us, control.trusted_p99_us
    );

    println!();
    println!("benign collateral (per-attack runs above):");
    for r in &reports {
        println!(
            "  {:<20} benign flagged {:>3}/{:<3} (fp rate {:.3}), shed {}, lockouts {}",
            r.kind,
            r.benign_flagged,
            r.benign_attempts,
            r.benign_fp_rate(),
            r.benign_shed,
            r.benign_lockouts
        );
    }

    // The rollout population scored through the risk engine: the
    // false-positive baseline at (scaled) paper population.
    let rollout = RolloutSim::new(RolloutParams {
        population_scale: 0.01,
        to: Date::new(2016, 10, 31),
        seed: 7,
        risk: true,
        ..RolloutParams::default()
    })
    .run();
    let allow = rollout
        .metrics
        .counter("hpcmfa_risk_decisions_total{decision=\"allow\"}");
    let step_up = rollout
        .metrics
        .counter("hpcmfa_risk_decisions_total{decision=\"step_up\"}");
    let deny = rollout
        .metrics
        .counter("hpcmfa_risk_decisions_total{decision=\"deny\"}");
    println!();
    println!("benign baseline (risk-scored rollout, 1% of paper population, Jul-Oct 2016):");
    println!(
        "  decisions: {} allow, {} step-up, {} deny (deny must be 0)",
        allow, step_up, deny
    );
}
