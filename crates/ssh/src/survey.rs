//! The §4.1 information-gathering analysis.
//!
//! "Users were ranked by the number of log in events in a fixed time
//! period. Any known gateway or community accounts ... were filtered out
//! and contacted separately. As a small sample but good point of
//! reference, staff members, who generally tend to be quite active on the
//! systems, served as threshold cutoffs. Any user more active in log ins
//! than this threshold were separated out to be targeted for inquiry."

use crate::authlog::AuthLog;
use std::collections::{HashMap, HashSet};

/// Per-user login activity over the audit window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserActivity {
    /// Login name.
    pub user: String,
    /// Successful entries in the window.
    pub logins: usize,
    /// Of those, how many had no TTY (scripted indicator).
    pub non_tty: usize,
}

impl UserActivity {
    /// Fraction of logins without a TTY.
    pub fn non_tty_fraction(&self) -> f64 {
        if self.logins == 0 {
            0.0
        } else {
            self.non_tty as f64 / self.logins as f64
        }
    }
}

/// The outcome of the audit: who to contact about automated workflows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurveyReport {
    /// Users above the staff-activity threshold, most active first.
    pub targeted: Vec<UserActivity>,
    /// The activity threshold used (max successful logins among staff).
    pub threshold: usize,
    /// Known gateway/community accounts excluded from targeting.
    pub excluded: Vec<UserActivity>,
}

/// Aggregate successful logins per user in `[from, to)`.
pub fn aggregate_activity(log: &AuthLog, from: u64, to: u64) -> Vec<UserActivity> {
    let mut map: HashMap<String, (usize, usize)> = HashMap::new();
    for e in log.entries() {
        if e.success && e.at >= from && e.at < to {
            let slot = map.entry(e.user.clone()).or_insert((0, 0));
            slot.0 += 1;
            if !e.tty {
                slot.1 += 1;
            }
        }
    }
    let mut out: Vec<UserActivity> = map
        .into_iter()
        .map(|(user, (logins, non_tty))| UserActivity {
            user,
            logins,
            non_tty,
        })
        .collect();
    out.sort_by(|a, b| b.logins.cmp(&a.logins).then(a.user.cmp(&b.user)));
    out
}

/// Run the full §4.1 analysis.
///
/// `staff` provides the threshold reference; `known_accounts` (gateways,
/// community accounts) are excluded from targeting and reported
/// separately.
pub fn survey(
    log: &AuthLog,
    from: u64,
    to: u64,
    staff: &HashSet<String>,
    known_accounts: &HashSet<String>,
) -> SurveyReport {
    let all = aggregate_activity(log, from, to);
    let threshold = all
        .iter()
        .filter(|a| staff.contains(&a.user))
        .map(|a| a.logins)
        .max()
        .unwrap_or(0);
    let mut targeted = Vec::new();
    let mut excluded = Vec::new();
    for a in all {
        if known_accounts.contains(&a.user) {
            excluded.push(a);
        } else if !staff.contains(&a.user) && a.logins > threshold {
            targeted.push(a);
        }
    }
    SurveyReport {
        targeted,
        threshold,
        excluded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::authlog::{AuthMethod, LogEntry};
    use std::net::Ipv4Addr;

    fn log_with(counts: &[(&str, usize, bool)]) -> AuthLog {
        let log = AuthLog::new();
        let mut t = 0u64;
        for (user, n, tty) in counts {
            for _ in 0..*n {
                t += 1;
                log.record(LogEntry {
                    at: t,
                    user: user.to_string(),
                    rhost: Ipv4Addr::new(1, 1, 1, 1),
                    method: AuthMethod::Publickey,
                    success: true,
                    tty: *tty,
                });
            }
        }
        log
    }

    #[test]
    fn ranks_by_activity() {
        let log = log_with(&[("light", 2, true), ("heavy", 50, false), ("mid", 10, true)]);
        let ranked = aggregate_activity(&log, 0, 10_000);
        assert_eq!(ranked[0].user, "heavy");
        assert_eq!(ranked[0].logins, 50);
        assert_eq!(ranked[0].non_tty, 50);
        assert_eq!(ranked[2].user, "light");
    }

    #[test]
    fn survey_targets_above_staff_threshold() {
        let log = log_with(&[
            ("staffer", 20, true),
            ("automator", 500, false),
            ("casual", 5, true),
            ("gateway1", 900, false),
        ]);
        let staff: HashSet<String> = ["staffer".to_string()].into();
        let known: HashSet<String> = ["gateway1".to_string()].into();
        let report = survey(&log, 0, 100_000, &staff, &known);
        assert_eq!(report.threshold, 20);
        assert_eq!(report.targeted.len(), 1);
        assert_eq!(report.targeted[0].user, "automator");
        // "the far majority of these log in events were not invoked with a
        // TTY" — the targeted population is overwhelmingly scripted.
        assert!(report.targeted[0].non_tty_fraction() > 0.9);
        assert_eq!(report.excluded.len(), 1);
        assert_eq!(report.excluded[0].user, "gateway1");
    }

    #[test]
    fn failures_and_out_of_window_ignored() {
        let log = AuthLog::new();
        log.record(LogEntry {
            at: 5,
            user: "u".into(),
            rhost: Ipv4Addr::new(1, 1, 1, 1),
            method: AuthMethod::Password,
            success: false,
            tty: true,
        });
        log.record(LogEntry {
            at: 50_000,
            user: "u".into(),
            rhost: Ipv4Addr::new(1, 1, 1, 1),
            method: AuthMethod::Password,
            success: true,
            tty: true,
        });
        let acts = aggregate_activity(&log, 0, 10_000);
        assert!(acts.is_empty());
    }

    #[test]
    fn empty_staff_targets_everyone_active() {
        let log = log_with(&[("u1", 3, true)]);
        let report = survey(&log, 0, 100, &HashSet::new(), &HashSet::new());
        assert_eq!(report.threshold, 0);
        assert_eq!(report.targeted.len(), 1);
    }
}
