//! Acceptance suite for the adversarial workload harness (DESIGN.md §12).
//!
//! Three claims are on trial:
//!
//! 1. **Detection** — every seeded attacker model is caught: recall ≥ 0.9
//!    for credential stuffing, password spraying, and SMS floods; a
//!    phishing relay holding valid credentials *and* live token codes
//!    never gets a shell; and a stuffing surge walks the alert engine
//!    through its full pending → firing → resolved lifecycle.
//! 2. **Collateral** — the defenses never lock a benign account out and
//!    never shed benign traffic, even mid-storm.
//! 3. **Replayability** — each scenario is deterministic on the virtual
//!    clock: two runs with the same seed produce byte-identical reports,
//!    alert timelines, and security-event feeds.

use securing_hpc::workload::attack::{AttackParams, AttackRunner, AttackScenario};

fn run_default(scenario: AttackScenario) -> securing_hpc::workload::AttackReport {
    AttackRunner::new(AttackParams::default(), scenario).run()
}

/// Every preset replays byte-identically: the Display output embeds the
/// full report, the alert transition timeline, and the security-event
/// feed, so one string comparison pins all three.
#[test]
fn all_scenarios_replay_byte_identically() {
    let presets: [fn() -> AttackScenario; 6] = [
        AttackScenario::credential_stuffing,
        AttackScenario::password_spraying,
        AttackScenario::token_phishing,
        AttackScenario::sms_flood,
        AttackScenario::slow_and_low,
        AttackScenario::token_theft,
    ];
    for preset in presets {
        let a = run_default(preset());
        let b = run_default(preset());
        assert_eq!(
            format!("{a}"),
            format!("{b}"),
            "scenario {} did not replay byte-identically",
            a.kind
        );
        // The comparison is only meaningful if the feeds have content.
        assert!(!a.alerts.is_empty() || !a.security_events.is_empty());
    }
}

#[test]
fn credential_stuffing_recall_and_alert_lifecycle() {
    let report = run_default(AttackScenario::credential_stuffing());
    assert!(
        report.recall() >= 0.9,
        "stuffing recall {:.3} < 0.9:\n{report}",
        report.recall()
    );
    assert_eq!(report.attack_granted, 0, "attacker got in:\n{report}");
    assert_eq!(report.benign_lockouts, 0, "benign lockout:\n{report}");
    // The deny surge must traverse the full alert state machine within
    // the run: inactive -> pending -> firing -> resolved.
    for transition in [
        "risk_deny_surge inactive->pending",
        "risk_deny_surge pending->firing",
        "risk_deny_surge firing->resolved",
    ] {
        assert!(
            report.alerts.iter().any(|l| l.contains(transition)),
            "missing alert transition {transition:?}:\n{report}"
        );
    }
}

#[test]
fn password_spraying_recall() {
    let report = run_default(AttackScenario::password_spraying());
    assert!(
        report.recall() >= 0.9,
        "spraying recall {:.3} < 0.9:\n{report}",
        report.recall()
    );
    assert_eq!(report.attack_granted, 0, "attacker got in:\n{report}");
    assert_eq!(report.benign_lockouts, 0, "benign lockout:\n{report}");
}

#[test]
fn sms_flood_recall_and_suppression() {
    let report = run_default(AttackScenario::sms_flood());
    assert!(
        report.recall() >= 0.9,
        "sms-flood recall {:.3} < 0.9:\n{report}",
        report.recall()
    );
    assert_eq!(report.attack_granted, 0, "attacker got in:\n{report}");
    assert_eq!(report.benign_lockouts, 0, "benign lockout:\n{report}");
    // The §3.3 resend suppression is the SMS flood's cost ceiling: the
    // flood must trip it, or every null request would cost carrier money.
    assert!(
        report.flagged_sms_abuse > 0,
        "flood never hit the resend suppression:\n{report}"
    );
}

#[test]
fn token_phishing_is_always_stopped() {
    let report = run_default(AttackScenario::token_phishing());
    // The relay holds the victim's password and clones their live codes;
    // behavioural geography is the only remaining defense — and it must
    // flag and stop every single attempt.
    assert_eq!(report.attack_granted, 0, "phisher got a shell:\n{report}");
    assert_eq!(
        report.attack_flagged, report.attack_attempts,
        "phishing attempt went unflagged:\n{report}"
    );
    assert_eq!(report.benign_lockouts, 0, "benign lockout:\n{report}");
}

#[test]
fn token_theft_replay_is_stopped_and_attributed() {
    let report = run_default(AttackScenario::token_theft());
    // The thief holds the victim's password AND a live resumption token,
    // and replays from in-country proxies the risk engine cannot score
    // on geography; the token's /16 binding must still hold the door.
    assert_eq!(report.attack_granted, 0, "thief got a shell:\n{report}");
    assert!(
        report.flagged_resume_replay > 0,
        "no replay signal fired:\n{report}"
    );
    assert_eq!(report.benign_lockouts, 0, "benign lockout:\n{report}");
    // The home realm names the theft in its typed event feed, and the
    // replay surge drives the resume_replay alert rule through pending.
    assert!(
        report
            .security_events
            .iter()
            .any(|e| e.contains("resume_replay") && e.contains("foreign /16")),
        "no typed resume_replay event:\n{report}"
    );
    assert!(
        report
            .alerts
            .iter()
            .any(|l| l.contains("resume_replay inactive->pending")),
        "resume_replay alert never left inactive:\n{report}"
    );
    // Byte-identical replay pins the event/alert timeline in full.
    let again = run_default(AttackScenario::token_theft());
    assert_eq!(format!("{report}"), format!("{again}"));
}

#[test]
fn slow_and_low_probing_is_flagged() {
    let report = run_default(AttackScenario::slow_and_low());
    assert!(
        report.recall() >= 0.9,
        "slow-and-low recall {:.3} < 0.9:\n{report}",
        report.recall()
    );
    assert_eq!(report.attack_granted, 0, "prober got in:\n{report}");
    assert_eq!(report.benign_lockouts, 0, "benign lockout:\n{report}");
}

/// The overload acceptance: a stuffing storm at 12× the benign login rate
/// under tight admission control. The storm must shed (fail-safe deny at
/// the queue, before the store sees the attempt), benign traffic must
/// ride the trusted lane unshed and un-locked-out, and the benign p99
/// virtual queueing latency must stay within 2× of a no-attack run.
#[test]
fn stuffing_storm_smoke() {
    let control = AttackRunner::new(AttackParams::storm(), AttackScenario::control()).run();
    let storm = AttackRunner::new(AttackParams::storm(), AttackScenario::stuffing_storm()).run();

    assert!(storm.recall() > 0.0, "storm went undetected:\n{storm}");
    assert!(
        storm.flagged_shed > 0,
        "admission control never shed:\n{storm}"
    );
    assert_eq!(storm.attack_granted, 0, "storm got a shell in:\n{storm}");
    assert_eq!(storm.benign_shed, 0, "benign traffic shed:\n{storm}");
    assert_eq!(storm.benign_lockouts, 0, "benign lockout:\n{storm}");
    assert!(
        storm.trusted_p99_us <= control.trusted_p99_us.saturating_mul(2),
        "benign p99 {}us blew the 2x SLO vs control {}us",
        storm.trusted_p99_us,
        control.trusted_p99_us
    );
    // And the storm itself replays byte-identically.
    let again = AttackRunner::new(AttackParams::storm(), AttackScenario::stuffing_storm()).run();
    assert_eq!(format!("{storm}"), format!("{again}"));
}
