//! Offline drop-in replacement for the subset of `parking_lot` this
//! workspace uses: [`Mutex`] and [`RwLock`] with infallible, non-poisoning
//! `lock`/`read`/`write`. Internally these wrap `std::sync` primitives and
//! recover from poisoning (a panicking holder) by taking the inner guard —
//! matching parking_lot's "no poisoning" semantics.

use std::sync;

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn survives_poisoning() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
