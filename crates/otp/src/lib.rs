//! One-time-password algorithms and token-device models.
//!
//! Implements the algorithmic heart of the paper's second factor:
//!
//! * [`hotp()`] — HMAC-based OTP, RFC 4226 (counter mode), with the dynamic
//!   truncation the RFC specifies.
//! * [`totp`] — time-based OTP, RFC 6238: the "six digit, timed-based one
//!   time password, known colloquially as a token code" (§1) generated
//!   "every 30 seconds using the combination of the current time and a
//!   secret key" (§3.3).
//! * [`uri`] — `otpauth://` provisioning URIs, the payload of the QR code
//!   the portal shows during soft-token pairing.
//! * [`qr`] — a minimal QR-payload model so the pairing flow exercises a
//!   scan/import round trip without an imaging stack.
//! * [`device`] — concrete token devices: the smartphone soft token with
//!   bounded clock drift, the Feitian-style hard token fob with a serial
//!   number, and the static training token used for workshop accounts.
//!
//! All code is validated against the RFC 4226 Appendix D and RFC 6238
//! Appendix B test vectors.

pub mod clock;
pub mod date;
pub mod device;
pub mod hotp;
pub mod qr;
pub mod secret;
pub mod totp;
pub mod uri;

pub use device::{HardToken, SoftToken, StaticToken};
pub use hotp::hotp;
pub use secret::Secret;
pub use totp::{Totp, TotpParams};

/// Number of decimal digits in a token code. The paper uses six everywhere.
pub const DEFAULT_DIGITS: u32 = 6;

/// TOTP time step in seconds ("a code is generated every 30 seconds", §3.3).
pub const DEFAULT_STEP_SECS: u64 = 30;

/// Maximum tolerated client clock drift in seconds: "the smartphone keep a
/// time that does not drift more than a time delta of 300 seconds from the
/// LinOTP server's time" (§3.3).
pub const MAX_DRIFT_SECS: u64 = 300;

/// Render an OTP value as a zero-padded decimal code of `digits` digits.
pub fn format_code(value: u32, digits: u32) -> String {
    format!("{value:0width$}", width = digits as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_code_pads() {
        assert_eq!(format_code(42, 6), "000042");
        assert_eq!(format_code(999999, 6), "999999");
        assert_eq!(format_code(0, 8), "00000000");
    }

    #[test]
    fn constants_match_paper() {
        assert_eq!(DEFAULT_DIGITS, 6);
        assert_eq!(DEFAULT_STEP_SECS, 30);
        assert_eq!(MAX_DRIFT_SECS, 300);
    }
}
