//! Base32 encoding (RFC 4648 §6), the interchange format for OTP secret keys.
//!
//! Soft-token apps in the Google Authenticator lineage — including the
//! in-house application described in the paper — import secrets from
//! `otpauth://` URIs whose `secret` parameter is unpadded base32.

/// The RFC 4648 base32 alphabet.
const ALPHABET: &[u8; 32] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ234567";

/// Errors from [`decode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Base32Error {
    /// A character outside the RFC 4648 alphabet (after case folding).
    InvalidChar(char),
    /// Padding appears somewhere other than the end, or the input length is
    /// not a valid base32 quantum.
    InvalidLength,
}

impl std::fmt::Display for Base32Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Base32Error::InvalidChar(c) => write!(f, "invalid base32 character {c:?}"),
            Base32Error::InvalidLength => write!(f, "invalid base32 length"),
        }
    }
}

impl std::error::Error for Base32Error {}

/// Encode `data` as unpadded base32 (the otpauth convention).
pub fn encode(data: &[u8]) -> String {
    encode_inner(data, false)
}

/// Encode `data` as padded base32 (`=` to a multiple of 8 chars).
pub fn encode_padded(data: &[u8]) -> String {
    encode_inner(data, true)
}

fn encode_inner(data: &[u8], pad: bool) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(5) * 8);
    for chunk in data.chunks(5) {
        let mut buf = [0u8; 5];
        buf[..chunk.len()].copy_from_slice(chunk);
        let bits = u64::from_be_bytes([0, 0, 0, buf[0], buf[1], buf[2], buf[3], buf[4]]);
        // Number of 5-bit symbols carrying real data for this chunk length.
        let n_sym = match chunk.len() {
            1 => 2,
            2 => 4,
            3 => 5,
            4 => 7,
            _ => 8,
        };
        for i in 0..n_sym {
            let idx = ((bits >> (35 - 5 * i)) & 0x1f) as usize;
            out.push(ALPHABET[idx] as char);
        }
        if pad {
            for _ in n_sym..8 {
                out.push('=');
            }
        }
    }
    out
}

/// Decode base32, accepting lower case and optional trailing padding.
pub fn decode(s: &str) -> Result<Vec<u8>, Base32Error> {
    let trimmed = s.trim_end_matches('=');
    if s.len() != trimmed.len() && !s.len().is_multiple_of(8) {
        return Err(Base32Error::InvalidLength);
    }
    // Reject quanta that can never occur: 1, 3, or 6 symbols mod 8.
    match trimmed.len() % 8 {
        1 | 3 | 6 => return Err(Base32Error::InvalidLength),
        _ => {}
    }
    let mut out = Vec::with_capacity(trimmed.len() * 5 / 8);
    let mut acc: u64 = 0;
    let mut acc_bits: u32 = 0;
    for ch in trimmed.chars() {
        let v = match ch.to_ascii_uppercase() {
            c @ 'A'..='Z' => c as u8 - b'A',
            c @ '2'..='7' => c as u8 - b'2' + 26,
            other => return Err(Base32Error::InvalidChar(other)),
        };
        acc = (acc << 5) | v as u64;
        acc_bits += 5;
        if acc_bits >= 8 {
            acc_bits -= 8;
            out.push((acc >> acc_bits) as u8);
        }
    }
    // Leftover bits must be zero padding from the encoder.
    if acc_bits > 0 && (acc & ((1 << acc_bits) - 1)) != 0 {
        return Err(Base32Error::InvalidLength);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4648 §10 test vectors.
    #[test]
    fn rfc4648_vectors_padded() {
        let cases: &[(&[u8], &str)] = &[
            (b"", ""),
            (b"f", "MY======"),
            (b"fo", "MZXQ===="),
            (b"foo", "MZXW6==="),
            (b"foob", "MZXW6YQ="),
            (b"fooba", "MZXW6YTB"),
            (b"foobar", "MZXW6YTBOI======"),
        ];
        for (raw, enc) in cases {
            assert_eq!(encode_padded(raw), *enc);
            assert_eq!(decode(enc).unwrap(), raw.to_vec());
        }
    }

    #[test]
    fn unpadded_round_trip() {
        for n in 0..40usize {
            let data: Vec<u8> = (0..n as u8).map(|i| i.wrapping_mul(37)).collect();
            let enc = encode(&data);
            assert!(!enc.contains('='));
            assert_eq!(decode(&enc).unwrap(), data, "n={n}");
        }
    }

    #[test]
    fn lower_case_accepted() {
        assert_eq!(decode("mzxw6ytb").unwrap(), b"fooba".to_vec());
    }

    #[test]
    fn invalid_characters_rejected() {
        assert_eq!(decode("MZ1W6YTB"), Err(Base32Error::InvalidChar('1')));
        assert_eq!(decode("MZ W6YTB"), Err(Base32Error::InvalidChar(' ')));
        assert_eq!(decode("MZ8W6YTB"), Err(Base32Error::InvalidChar('8')));
    }

    #[test]
    fn invalid_lengths_rejected() {
        assert_eq!(decode("A"), Err(Base32Error::InvalidLength));
        assert_eq!(decode("ABC"), Err(Base32Error::InvalidLength));
        assert_eq!(decode("ABCDEF"), Err(Base32Error::InvalidLength));
    }

    #[test]
    fn nonzero_trailing_bits_rejected() {
        // "MY" (= "f") has zero leftover bits; "MZ" leaves a nonzero remainder.
        assert_eq!(decode("MY").unwrap(), b"f".to_vec());
        assert_eq!(decode("MZ"), Err(Base32Error::InvalidLength));
    }
}
