//! The assembled center: every paper component wired together.
//!
//! [`Center`] stands up the full §3 architecture in one call — identity
//! plant (LDAP + identity DB), LinOTP-substitute OTP server with its
//! Twilio-substitute SMS gateway and admin API, a FreeRADIUS-substitute
//! server fleet with fault injection, the user portal, and a set of login
//! nodes whose sshd hands authentication to the Figure 1 PAM stack.
//!
//! Everything runs against one shared [`SimClock`], so integration tests,
//! examples, benches, and the five-month rollout simulation in
//! `hpcmfa-workload` are deterministic and fast.

pub mod center;

pub use center::{Center, CenterConfig, FederationParams, LoginNode};

pub use hpcmfa_otp::clock::{Clock, SimClock};
