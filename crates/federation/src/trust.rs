//! Cross-site trust configuration.
//!
//! Federation is pairwise and explicit: a site routes logins only for
//! realms it has exchanged a shared secret with, and every peer carries
//! its own policy knobs. There is no transitive trust — exactly the
//! posture the InCommon/eduGAIN federations impose on their members.

/// What the router does when a peer realm's entire upstream pool is
/// unreachable (every breaker open or the deadline budget spent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealmDegradation {
    /// Reject the login outright: no reachable home realm, no entry.
    FailClosed,
    /// RFC 2865 "silently discard" so the NAS fails over to another
    /// proxy that may still hold a live path to the realm.
    Discard,
}

/// Per-realm policy attached to a trust peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealmPolicy {
    /// Behaviour when the realm is unreachable.
    pub degradation: RealmDegradation,
    /// Extra risk weight charged to logins arriving *from* this realm —
    /// federated entries are first-party authenticated but remotely
    /// vouched, so sites may score them more conservatively.
    pub risk_weight: u32,
}

impl Default for RealmPolicy {
    fn default() -> Self {
        RealmPolicy {
            degradation: RealmDegradation::FailClosed,
            risk_weight: 0,
        }
    }
}

/// One federation peer: a realm this site will route logins to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealmPeer {
    /// Realm name (`psc`, `ncsa`, ...).
    pub realm: String,
    /// Shared RADIUS secret for the proxy ↔ peer leg.
    pub secret: Vec<u8>,
    /// Policy applied to logins routed to this realm.
    pub policy: RealmPolicy,
}

impl RealmPeer {
    /// A peer with default policy.
    pub fn new(realm: &str, secret: impl Into<Vec<u8>>) -> Self {
        RealmPeer {
            realm: realm.to_string(),
            secret: secret.into(),
            policy: RealmPolicy::default(),
        }
    }
}

/// A site's complete trust configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TrustConfig {
    /// The realm this site answers for locally; `user@home` and bare
    /// `user` are equivalent.
    pub home_realm: String,
    /// Realms this site will proxy to. Order is the ACL order reported
    /// to operators; lookup is by name.
    pub peers: Vec<RealmPeer>,
}

impl TrustConfig {
    /// A config with no peers (federation disabled beyond the home realm).
    pub fn local_only(home_realm: &str) -> Self {
        TrustConfig {
            home_realm: home_realm.to_string(),
            peers: Vec::new(),
        }
    }

    /// Is `realm` the home realm?
    pub fn is_home(&self, realm: &str) -> bool {
        realm == self.home_realm
    }

    /// The allowed-realm ACL: home plus every configured peer.
    pub fn is_allowed(&self, realm: &str) -> bool {
        self.is_home(realm) || self.peer(realm).is_some()
    }

    /// Look up a peer by realm name.
    pub fn peer(&self, realm: &str) -> Option<&RealmPeer> {
        self.peers.iter().find(|p| p.realm == realm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acl_is_home_plus_peers() {
        let trust = TrustConfig {
            home_realm: "tacc".into(),
            peers: vec![RealmPeer::new("psc", b"s1".to_vec())],
        };
        assert!(trust.is_allowed("tacc"));
        assert!(trust.is_allowed("psc"));
        assert!(!trust.is_allowed("ncsa"));
        assert!(trust.is_home("tacc"));
        assert!(!trust.is_home("psc"));
        assert_eq!(trust.peer("psc").unwrap().secret, b"s1");
        assert!(trust.peer("tacc").is_none(), "home realm is not a peer");
    }

    #[test]
    fn local_only_denies_everything_foreign() {
        let trust = TrustConfig::local_only("tacc");
        assert!(trust.is_allowed("tacc"));
        assert!(!trust.is_allowed("psc"));
    }

    #[test]
    fn default_policy_fails_closed() {
        assert_eq!(
            RealmPolicy::default().degradation,
            RealmDegradation::FailClosed
        );
    }
}
