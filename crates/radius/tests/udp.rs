//! End-to-end RADIUS over real UDP sockets: proves the wire format and the
//! serve loop work outside the in-memory harness.

use hpcmfa_radius::attribute::{Attribute, AttributeType};
use hpcmfa_radius::client::{ClientConfig, Outcome, RadiusClient};
use hpcmfa_radius::packet::Packet;
use hpcmfa_radius::server::{RadiusServer, ServerDecision};
use hpcmfa_radius::transport::{Transport, UdpTransport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::UdpSocket;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const SECRET: &[u8] = b"udp-secret";

fn spawn_server() -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let handler = Arc::new(|_req: &Packet, pw: Option<&[u8]>| match pw {
        Some(b"") => ServerDecision::Challenge(vec![
            Attribute::new(AttributeType::State, b"udp-state".to_vec()),
            Attribute::text(AttributeType::ReplyMessage, "TACC Token:"),
        ]),
        Some(b"654321") => ServerDecision::Accept(vec![]),
        _ => ServerDecision::Reject(vec![Attribute::text(
            AttributeType::ReplyMessage,
            "Authentication error",
        )]),
    });
    let server = Arc::new(RadiusServer::new(SECRET, handler));
    let socket = UdpSocket::bind(("127.0.0.1", 0)).expect("bind");
    let addr = socket.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let handle = server.serve_udp(socket, Arc::clone(&shutdown));
    (addr, shutdown, handle)
}

#[test]
fn udp_full_challenge_flow() {
    let (addr, shutdown, handle) = spawn_server();
    let transport: Arc<dyn Transport> =
        Arc::new(UdpTransport::new(addr, Duration::from_millis(500)));
    let client = RadiusClient::new(ClientConfig::new(SECRET, "login-udp"), vec![transport]);
    let mut rng = StdRng::seed_from_u64(11);

    let out = client
        .authenticate(&mut rng, "alice", b"", "192.0.2.7")
        .expect("challenge");
    let Outcome::Challenge { state, message } = out else {
        panic!("expected challenge, got {out:?}");
    };
    assert_eq!(message.as_deref(), Some("TACC Token:"));

    let ok = client
        .respond_to_challenge(&mut rng, "alice", b"654321", "192.0.2.7", &state)
        .expect("accept");
    assert!(matches!(ok, Outcome::Accept { .. }));

    let bad = client
        .respond_to_challenge(&mut rng, "alice", b"111111", "192.0.2.7", &state)
        .expect("reject");
    assert!(matches!(bad, Outcome::Reject { message: Some(m) } if m == "Authentication error"));

    shutdown.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}

#[test]
fn udp_timeout_when_no_server() {
    // Reserve a port then close it: nothing listens there.
    let sock = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let addr = sock.local_addr().unwrap();
    drop(sock);

    let transport: Arc<dyn Transport> =
        Arc::new(UdpTransport::new(addr, Duration::from_millis(100)));
    let client = RadiusClient::new(ClientConfig::new(SECRET, "login-udp"), vec![transport]);
    let mut rng = StdRng::seed_from_u64(12);
    assert!(client
        .authenticate(&mut rng, "alice", b"654321", "192.0.2.7")
        .is_err());
}

#[test]
fn udp_timeout_when_server_never_answers() {
    // A bound socket that nobody reads: the datagram is accepted by the
    // kernel but no reply ever comes, so the transport itself must report
    // Timeout (not Io, not a hang).
    let silent = UdpSocket::bind(("127.0.0.1", 0)).unwrap();
    let addr = silent.local_addr().unwrap();

    let transport = UdpTransport::new(addr, Duration::from_millis(100));
    let start = std::time::Instant::now();
    let err = transport.exchange(b"any request").unwrap_err();
    assert_eq!(err, hpcmfa_radius::transport::TransportError::Timeout);
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "timeout not honored"
    );
    drop(silent);
}

/// A "server" that answers every datagram with undecodable junk.
fn spawn_junk_server() -> (
    std::net::SocketAddr,
    Arc<AtomicBool>,
    std::thread::JoinHandle<()>,
) {
    let socket = UdpSocket::bind(("127.0.0.1", 0)).expect("bind");
    let addr = socket.local_addr().unwrap();
    let shutdown = Arc::new(AtomicBool::new(false));
    let stop = Arc::clone(&shutdown);
    let handle = std::thread::spawn(move || {
        socket
            .set_read_timeout(Some(Duration::from_millis(50)))
            .unwrap();
        let mut buf = [0u8; 4096];
        while !stop.load(Ordering::SeqCst) {
            if let Ok((_, peer)) = socket.recv_from(&mut buf) {
                let _ = socket.send_to(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x01], peer);
            }
        }
    });
    (addr, shutdown, handle)
}

#[test]
fn udp_garbled_reply_fails_over_to_healthy_server() {
    let (junk_addr, junk_stop, junk_handle) = spawn_junk_server();
    let (good_addr, good_stop, good_handle) = spawn_server();

    // Junk server first in the pool: RFC 2865 silently-discard semantics
    // mean the undecodable reply must fail over, not abort the login.
    let transports: Vec<Arc<dyn Transport>> = vec![
        Arc::new(UdpTransport::new(junk_addr, Duration::from_millis(500))),
        Arc::new(UdpTransport::new(good_addr, Duration::from_millis(500))),
    ];
    let client = RadiusClient::new(ClientConfig::new(SECRET, "login-udp"), transports);
    let mut rng = StdRng::seed_from_u64(13);
    let out = client
        .authenticate(&mut rng, "alice", b"654321", "192.0.2.7")
        .expect("failover past garbled reply");
    assert!(matches!(out, Outcome::Accept { .. }));
    let health = client.server_health();
    assert!(
        health[0].failures > 0,
        "garbled reply not counted as failure"
    );

    junk_stop.store(true, Ordering::SeqCst);
    good_stop.store(true, Ordering::SeqCst);
    junk_handle.join().unwrap();
    good_handle.join().unwrap();
}

#[test]
fn udp_concurrent_clients() {
    let (addr, shutdown, handle) = spawn_server();
    let mut joins = Vec::new();
    for t in 0..8 {
        joins.push(std::thread::spawn(move || {
            let transport: Arc<dyn Transport> =
                Arc::new(UdpTransport::new(addr, Duration::from_millis(500)));
            let client = RadiusClient::new(ClientConfig::new(SECRET, "login-udp"), vec![transport]);
            let mut rng = StdRng::seed_from_u64(100 + t);
            for _ in 0..10 {
                let out = client
                    .authenticate(&mut rng, "bob", b"654321", "192.0.2.9")
                    .expect("accept");
                assert!(matches!(out, Outcome::Accept { .. }));
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    shutdown.store(true, Ordering::SeqCst);
    handle.join().unwrap();
}
