//! Property-based tests for the RADIUS codec and password hiding.

use hpcmfa_radius::attribute::{Attribute, AttributeType};
use hpcmfa_radius::auth::{hide_password, recover_password};
use hpcmfa_radius::client::RetryPolicy;
use hpcmfa_radius::packet::{Code, Packet};
use proptest::prelude::*;

fn arb_retry_policy() -> impl Strategy<Value = RetryPolicy> {
    (
        1_000u64..30_000_000, // deadline
        1u64..200_000,        // initial backoff
        1u64..2_000_000,      // max backoff
        any::<u64>(),         // jitter seed
    )
        .prop_map(
            |(deadline_us, initial_backoff_us, max_backoff_us, jitter_seed)| RetryPolicy {
                deadline_us,
                initial_backoff_us,
                max_backoff_us,
                jitter_seed,
                ..RetryPolicy::default()
            },
        )
}

fn arb_code() -> impl Strategy<Value = Code> {
    prop::sample::select(vec![
        Code::AccessRequest,
        Code::AccessAccept,
        Code::AccessReject,
        Code::AccessChallenge,
    ])
}

fn arb_attr() -> impl Strategy<Value = Attribute> {
    (any::<u8>(), proptest::collection::vec(any::<u8>(), 0..100))
        .prop_map(|(ty, value)| Attribute::new(AttributeType::from_code(ty), value))
}

proptest! {
    #[test]
    fn packet_round_trips(
        code in arb_code(),
        id in any::<u8>(),
        auth in any::<[u8; 16]>(),
        attrs in proptest::collection::vec(arb_attr(), 0..8),
    ) {
        let mut p = Packet::new(code, id, auth);
        p.attributes = attrs;
        let decoded = Packet::decode(&p.encode()).unwrap();
        prop_assert_eq!(decoded, p);
    }

    #[test]
    fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let _ = Packet::decode(&data);
    }

    #[test]
    fn decode_of_mutated_packet_never_panics(
        id in any::<u8>(),
        attrs in proptest::collection::vec(arb_attr(), 0..5),
        flip_at in any::<usize>(),
        flip_bits in 1u8..=255,
    ) {
        let mut p = Packet::new(Code::AccessRequest, id, [0u8; 16]);
        p.attributes = attrs;
        let mut wire = p.encode();
        let idx = flip_at % wire.len();
        wire[idx] ^= flip_bits;
        let _ = Packet::decode(&wire);
    }

    #[test]
    fn password_hiding_round_trips(
        pw in proptest::collection::vec(1u8..=255, 0..128),
        auth in any::<[u8; 16]>(),
        secret in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        // NUL-free passwords round-trip exactly (trailing NULs are padding).
        let hidden = hide_password(&pw, &auth, &secret);
        prop_assert_eq!(hidden.len() % 16, 0);
        let recovered = recover_password(&hidden, &auth, &secret).unwrap();
        prop_assert_eq!(recovered, pw);
    }

    #[test]
    fn hidden_never_contains_cleartext_prefix(
        pw in proptest::collection::vec(1u8..=255, 6..64),
        auth in any::<[u8; 16]>(),
    ) {
        let hidden = hide_password(&pw, &auth, b"secret");
        // The first 6 bytes matching cleartext would require a zero
        // keystream prefix, probability 2^-48 per case.
        prop_assert_ne!(&hidden[..6], &pw[..6]);
    }
}

proptest! {
    /// The backoff schedule is a pure function of the policy: regenerating
    /// it yields the identical sequence (fixed seed ⇒ fixed jitter).
    #[test]
    fn backoff_schedule_is_deterministic(policy in arb_retry_policy()) {
        let first = policy.backoff_schedule();
        let second = policy.clone().backoff_schedule();
        prop_assert_eq!(first, second);
    }

    /// The cumulative backoff never exceeds the login deadline, and every
    /// delay stays within the exponential envelope (cap + 25% jitter).
    #[test]
    fn backoff_schedule_never_exceeds_deadline(policy in arb_retry_policy()) {
        let schedule = policy.backoff_schedule();
        let total: u64 = schedule.iter().sum();
        prop_assert!(total <= policy.deadline_us,
            "schedule spends {total} of a {} budget", policy.deadline_us);
        let cap = policy.max_backoff_us.max(1);
        for d in &schedule {
            prop_assert!(*d >= 1 && *d <= cap + cap / 4, "delay {d} outside envelope");
        }
    }
}
