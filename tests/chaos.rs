//! The acceptance chaos scenario: 1 of 3 RADIUS servers hard-down plus
//! 1-in-5 packet loss on the survivors, under a full login stream.
//!
//! Two claims are on trial:
//!
//! 1. Availability — every login in the stream eventually succeeds (the
//!    §3.4 resiliency claim, now under compound faults).
//! 2. Efficiency — the circuit breaker stops paying for the dead server: it
//!    sends strictly fewer probes there than the every-request walk would
//!    (which retries the dead server on every RADIUS request).

use securing_hpc::radius::breaker::BreakerState;
use securing_hpc::workload::chaos::{ChaosParams, ChaosRunner, FaultScript};

#[test]
fn one_dead_server_plus_packet_loss_full_stream() {
    let logins = 150;
    let params = ChaosParams {
        radius_servers: 3,
        logins,
        users: 5,
        seed: 2017,
        ..ChaosParams::default()
    };
    let script = FaultScript::outage_with_loss(0, 3, 5);
    let report = ChaosRunner::new(params).run(&script);

    // --- Claim 1: 100% eventual auth success. ---
    assert_eq!(
        report.eventual_successes, logins,
        "some logins never recovered:\n{report}"
    );
    assert_eq!(report.availability(), 1.0);

    // --- Claim 2: the breaker beats the every-request walk. ---
    // Each login is at least two RADIUS requests (challenge open + token
    // answer). A walk with no breaker retries the dead server on every
    // request; the breaker must do strictly better.
    let walk_attempts = 2 * logins as u64;
    let dead = &report.health[0];
    assert!(
        dead.attempts < walk_attempts,
        "breaker sent {} probes to the dead server; an every-request walk sends >= {walk_attempts}\n{report}",
        dead.attempts,
    );
    // And the quarantine is visible in the stats, not incidental.
    assert!(dead.skipped > 0, "no sends were skipped:\n{report}");
    assert!(dead.breaker_opens >= 1, "breaker never opened:\n{report}");
    assert!(
        matches!(dead.breaker, BreakerState::Open | BreakerState::HalfOpen),
        "dead server's breaker ended {:?}:\n{report}",
        dead.breaker,
    );
    // The survivors carried the whole stream despite the packet loss.
    let carried: u64 = report.health[1..].iter().map(|h| h.successes).sum();
    assert!(
        carried >= walk_attempts,
        "survivors answered only {carried} requests:\n{report}"
    );
    for h in &report.health[1..] {
        assert_eq!(h.breaker, BreakerState::Closed, "{report}");
        assert!(h.successes > 0, "{report}");
    }
}
