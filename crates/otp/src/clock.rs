//! Time sources.
//!
//! Every component that touches TOTP needs "now". Production uses the
//! system clock; the rollout simulator and all tests use a [`SimClock`]
//! whose virtual time is advanced explicitly, making every run
//! deterministic and letting five months of calendar time pass in
//! milliseconds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A source of Unix time (seconds).
pub trait Clock: Send + Sync {
    /// Current Unix time in seconds.
    fn now(&self) -> u64;
}

/// Wall-clock time.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

/// A shared, manually advanced virtual clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: Arc<AtomicU64>,
}

impl SimClock {
    /// Start at `unix_time`.
    pub fn at(unix_time: u64) -> Self {
        SimClock {
            now: Arc::new(AtomicU64::new(unix_time)),
        }
    }

    /// Jump to an absolute time. Panics on attempts to move backwards,
    /// which would silently break TOTP replay bookkeeping.
    pub fn set(&self, unix_time: u64) {
        let prev = self.now.swap(unix_time, Ordering::SeqCst);
        assert!(
            unix_time >= prev,
            "SimClock moved backwards: {prev} -> {unix_time}"
        );
    }

    /// Advance by `secs`.
    pub fn advance(&self, secs: u64) {
        self.now.fetch_add(secs, Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_clock_advances() {
        let c = SimClock::at(1000);
        assert_eq!(c.now(), 1000);
        c.advance(30);
        assert_eq!(c.now(), 1030);
        c.set(2000);
        assert_eq!(c.now(), 2000);
    }

    #[test]
    fn sim_clock_is_shared_between_clones() {
        let a = SimClock::at(0);
        let b = a.clone();
        a.advance(60);
        assert_eq!(b.now(), 60);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn sim_clock_refuses_time_travel() {
        let c = SimClock::at(100);
        c.set(50);
    }

    #[test]
    fn system_clock_is_sane() {
        // After 2020-01-01 and before 2100.
        let now = SystemClock.now();
        assert!(now > 1_577_836_800 && now < 4_102_444_800);
    }
}
