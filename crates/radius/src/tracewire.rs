//! Trace-id propagation over the RADIUS wire.
//!
//! The telemetry [`TraceId`] rides requests as a Vendor-Specific attribute
//! (IANA type 26, RFC 2865 §5.26): a 4-byte vendor id, a 1-byte
//! vendor-type, a 1-byte vendor-length, then the 8-byte big-endian id.
//! The vendor id is 32473 — the enterprise number RFC 5612 reserves for
//! documentation/example use, which is exactly what a reproduction
//! deployment should squat on. Real RADIUS tooling ignores unknown VSAs,
//! so the attribute is transparent to interoperating servers; our proxy
//! copies it upstream so the home server's audit rows carry the same id
//! the login node minted.

use crate::attribute::{Attribute, AttributeType};
use crate::packet::Packet;
use hpcmfa_telemetry::TraceId;

/// RFC 5612 documentation enterprise number, used as our vendor id.
pub const TRACE_VENDOR_ID: u32 = 32473;

/// Vendor-type of the trace-id sub-attribute within our vendor space.
pub const TRACE_VENDOR_TYPE: u8 = 1;

/// Encode `trace` as a Vendor-Specific attribute.
pub fn trace_attribute(trace: TraceId) -> Attribute {
    let mut value = Vec::with_capacity(14);
    value.extend_from_slice(&TRACE_VENDOR_ID.to_be_bytes());
    value.push(TRACE_VENDOR_TYPE);
    value.push(10); // vendor-length: type + len + 8-byte id
    value.extend_from_slice(&trace.as_u64().to_be_bytes());
    Attribute::new(AttributeType::VendorSpecific, value)
}

/// Decode the trace id from one Vendor-Specific attribute, if it is ours.
pub fn decode_trace(attr: &Attribute) -> Option<TraceId> {
    if attr.ty != AttributeType::VendorSpecific || attr.value.len() != 14 {
        return None;
    }
    let vendor = u32::from_be_bytes(attr.value[0..4].try_into().ok()?);
    if vendor != TRACE_VENDOR_ID || attr.value[4] != TRACE_VENDOR_TYPE || attr.value[5] != 10 {
        return None;
    }
    let id = u64::from_be_bytes(attr.value[6..14].try_into().ok()?);
    Some(TraceId::from_u64(id))
}

/// The trace id carried by `packet`, if any (first matching VSA wins).
pub fn trace_id_of(packet: &Packet) -> Option<TraceId> {
    packet
        .attributes_of(AttributeType::VendorSpecific)
        .into_iter()
        .find_map(decode_trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Code;

    #[test]
    fn round_trip_through_attribute() {
        let id = TraceId::from_u64(0x0123_4567_89ab_cdef);
        let attr = trace_attribute(id);
        assert_eq!(attr.ty, AttributeType::VendorSpecific);
        assert_eq!(attr.value.len(), 14);
        assert_eq!(decode_trace(&attr), Some(id));
    }

    #[test]
    fn round_trip_through_packet_encoding() {
        let id = TraceId::from_u64(42);
        let pkt =
            Packet::new(Code::AccessRequest, 7, [0u8; 16]).with_attribute(trace_attribute(id));
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(trace_id_of(&decoded), Some(id));
    }

    #[test]
    fn foreign_vsas_are_ignored() {
        // Wrong vendor id.
        let mut value = 9u32.to_be_bytes().to_vec();
        value.push(TRACE_VENDOR_TYPE);
        value.push(10);
        value.extend_from_slice(&7u64.to_be_bytes());
        let foreign = Attribute::new(AttributeType::VendorSpecific, value);
        assert_eq!(decode_trace(&foreign), None);
        // Truncated payload.
        let short = Attribute::new(AttributeType::VendorSpecific, vec![1, 2, 3]);
        assert_eq!(decode_trace(&short), None);
        // A packet with only foreign VSAs carries no trace.
        let pkt = Packet::new(Code::AccessRequest, 1, [0u8; 16]).with_attribute(foreign);
        assert_eq!(trace_id_of(&pkt), None);
        // But ours is still found after a foreign one.
        let id = TraceId::from_u64(5);
        let pkt = pkt.with_attribute(trace_attribute(id));
        assert_eq!(trace_id_of(&pkt), Some(id));
    }
}
