//! Offline drop-in replacement for the subset of the `bytes` crate this
//! workspace uses: a growable [`BytesMut`] buffer and the [`BufMut`] write
//! trait (`put_u8`/`put_u16`/`put_slice`, big-endian as on the wire).

use std::ops::{Deref, DerefMut};

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Copy the contents out.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.buf
    }
}

/// Sequential big-endian writes into a byte buffer.
pub trait BufMut {
    /// Append one byte.
    fn put_u8(&mut self, v: u8);
    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16);
    /// Append a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_are_big_endian_and_ordered() {
        let mut b = BytesMut::with_capacity(8);
        b.put_u8(0x01);
        b.put_u16(0x0203);
        b.put_slice(&[0x04, 0x05]);
        assert_eq!(&b[..], &[0x01, 0x02, 0x03, 0x04, 0x05]);
        assert_eq!(b.to_vec(), vec![1, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert!(!b.is_empty());
    }
}
