//! The day-by-day rollout simulator.
//!
//! Replays §5's calendar against a real [`Center`]: phase 1 ("paired")
//! begins with the 2016-08-10 announcement, phase 2 ("countdown") on
//! 09-06, phase 3 ("full"/mandatory) on 10-04. Every login below runs the
//! complete sshd → PAM → RADIUS → OTP-server path; every pairing runs the
//! real portal flow; SMS codes ride the simulated carrier with its
//! occasional delayed-past-expiry deliveries.
//!
//! The §5 mitigation strategies are modeled as reactions: when a scripted
//! workflow first breaks (the phase-2 mandatory acknowledgement, then
//! mandatory MFA), its owner either obtains a temporary exemption, moves
//! the cron job onto a login node (internal, exempt traffic), or adopts
//! SSH multiplexing (pairs a device; external volume collapses to the
//! master connections).

use crate::population::{Cohort, DevicePreference, Population, UserSpec};
use hpcmfa_core::center::{Center, CenterConfig, RiskParams};
use hpcmfa_otp::clock::Clock as _;
use hpcmfa_otp::date::Date;
use hpcmfa_otp::device::HardTokenBatch;
use hpcmfa_pam::modules::token::EnforcementMode;
use hpcmfa_ssh::client::{ClientProfile, TokenSource};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The §5 milestone dates.
#[derive(Debug, Clone, Copy)]
pub struct Milestones {
    /// First public announcement; phase 1 ("paired") begins.
    pub announce: Date,
    /// Phase 2 ("countdown") begins.
    pub phase2: Date,
    /// Phase 3: MFA mandatory ("full").
    pub mandatory: Date,
}

impl Default for Milestones {
    fn default() -> Self {
        Milestones {
            announce: Date::new(2016, 8, 10),
            phase2: Date::new(2016, 9, 6),
            mandatory: Date::new(2016, 10, 4),
        }
    }
}

/// Ticket-model rates (tuned so the MFA share of tickets lands near the
/// paper's 6.7 % during the transition and 2.7 % in Q1 2017).
#[derive(Debug, Clone)]
pub struct TicketParams {
    /// Mean non-MFA tickets per weekday.
    pub base_weekday: f64,
    /// Mean non-MFA tickets per weekend day.
    pub base_weekend: f64,
    /// P(ticket) per new pairing.
    pub per_pairing: f64,
    /// P(ticket) per failed login.
    pub per_failed_login: f64,
    /// P(ticket) per newly disrupted automated workflow.
    pub per_disruption: f64,
    /// Extra MFA tickets on each phase-transition day.
    pub phase_bump: f64,
}

impl Default for TicketParams {
    fn default() -> Self {
        TicketParams {
            base_weekday: 55.0,
            base_weekend: 13.0,
            per_pairing: 0.065,
            per_failed_login: 0.018,
            per_disruption: 0.12,
            phase_bump: 4.0,
        }
    }
}

/// Full simulation parameters.
#[derive(Debug, Clone)]
pub struct RolloutParams {
    /// Population scale factor (1.0 = paper scale, >10k accounts).
    pub population_scale: f64,
    /// First simulated day (inclusive).
    pub from: Date,
    /// Last simulated day (inclusive).
    pub to: Date,
    /// Phase dates.
    pub milestones: Milestones,
    /// Ticket model.
    pub tickets: TicketParams,
    /// Daily probability that a paired user replaces their device pairing
    /// (new phone, new number — §3.5's update flows; the paper's Q1-2017
    /// inquiries were "from new users or those who wished to change their
    /// MFA device pairing").
    pub repair_daily_prob: f64,
    /// Simulation seed.
    pub seed: u64,
    /// Score every login through the behavioural risk engine (default
    /// weights). The rollout population is the benign baseline for the
    /// detection report: with everyone logging in from their stable home
    /// networks, the deny counter must stay at zero.
    pub risk: bool,
}

impl Default for RolloutParams {
    fn default() -> Self {
        RolloutParams {
            population_scale: 1.0,
            from: Date::new(2016, 7, 1),
            to: Date::new(2016, 12, 31),
            milestones: Milestones::default(),
            tickets: TicketParams::default(),
            repair_daily_prob: 0.001,
            seed: 1017,
            risk: false,
        }
    }
}

impl RolloutParams {
    /// A small, fast configuration for tests.
    pub fn test_scale() -> Self {
        RolloutParams {
            population_scale: 0.02,
            ..Self::default()
        }
    }
}

/// One simulated day's aggregates — the raw material of Figures 3–6.
#[derive(Debug, Clone, PartialEq)]
pub struct DayRecord {
    /// Calendar day.
    pub date: Date,
    /// Phase in effect: 0 = pre-announcement, 1/2/3 as in the paper.
    pub phase: u8,
    /// Distinct users with ≥1 successful MFA login (Figure 3).
    pub unique_mfa_users: usize,
    /// External logins that used MFA (Figure 4, blue).
    pub ext_mfa_logins: u64,
    /// All external logins (Figure 4, red).
    pub ext_total_logins: u64,
    /// All logins including internal traffic (Figure 4, black).
    pub total_logins: u64,
    /// Newly initialized pairings (Figure 6).
    pub new_pairings: u64,
    /// Login attempts that were denied.
    pub failed_logins: u64,
    /// MFA-related support tickets (Figure 5).
    pub tickets_mfa: u64,
    /// All other tickets (Figure 5).
    pub tickets_other: u64,
}

/// The simulation result.
pub struct SimOutput {
    /// Per-day aggregates, in calendar order.
    pub days: Vec<DayRecord>,
    /// Final pairing breakdown [soft, sms, hard, training] as fractions of
    /// paired accounts (Table 1).
    pub table1: Option<[f64; 4]>,
    /// Total successful logins across the run (§6's "over half a million
    /// successful log ins" at paper scale).
    pub total_successful_logins: u64,
    /// Total SMS messages sent and their cost in micro-dollars.
    pub sms_sent: usize,
    /// SMS cost including monthly fees, micro-dollars.
    pub sms_cost_micros: u64,
    /// Failed-login counts by cohort (diagnostics; which population the
    /// transition actually hurt).
    pub failures_by_cohort: std::collections::HashMap<Cohort, u64>,
    /// End-of-run snapshot of the center-wide metrics registry: the
    /// counters and latency histograms behind the per-day aggregates.
    pub metrics: hpcmfa_telemetry::MetricsSnapshot,
    /// Full alert-transition timeline from the center's rule engine, in
    /// virtual-time order (deterministic for a given seed).
    pub alerts: Vec<String>,
    /// Security events observed during the run, rendered in emission
    /// order (deterministic for a given seed).
    pub security_events: Vec<String>,
}

impl SimOutput {
    /// The record for `date`, if simulated.
    pub fn day(&self, date: Date) -> Option<&DayRecord> {
        self.days.iter().find(|d| d.date == date)
    }

    /// MFA share of tickets over `[from, to]`, as a fraction.
    pub fn ticket_mfa_share(&self, from: Date, to: Date) -> f64 {
        let (mut mfa, mut total) = (0u64, 0u64);
        for d in &self.days {
            if d.date >= from && d.date <= to {
                mfa += d.tickets_mfa;
                total += d.tickets_mfa + d.tickets_other;
            }
        }
        if total == 0 {
            0.0
        } else {
            mfa as f64 / total as f64
        }
    }
}

enum DeviceHandle {
    Closure(Arc<dyn Fn(u64) -> Option<String> + Send + Sync>),
    Fixed(String),
    None,
}

impl DeviceHandle {
    fn token_source(&self) -> TokenSource {
        match self {
            DeviceHandle::Closure(f) => TokenSource::Device(Arc::clone(f)),
            DeviceHandle::Fixed(code) => TokenSource::Fixed(code.clone()),
            DeviceHandle::None => TokenSource::None,
        }
    }
}

/// How a disrupted automated workflow adapted (§5 strategies).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Migration {
    /// Staff granted a temporary variance.
    Exemption,
    /// Cron moved onto a login node: traffic becomes internal.
    InternalCron,
    /// SSH multiplexing: owner paired a device; external volume drops to
    /// the master connections.
    Multiplex,
}

struct UserState {
    spec: UserSpec,
    device: DeviceHandle,
    key: Option<hpcmfa_ssh::keys::KeyPair>,
    ext_ip: Ipv4Addr,
    disrupted: bool,
    migration: Option<Migration>,
    paired: bool,
}

/// The simulator.
pub struct RolloutSim {
    /// The center under test.
    pub center: Arc<Center>,
    params: RolloutParams,
    users: Vec<UserState>,
    hard_batch: HardTokenBatch,
    next_hard_serial: usize,
    rng: StdRng,
    new_user_counter: usize,
    failures_by_cohort: std::collections::HashMap<Cohort, u64>,
}

impl RolloutSim {
    /// Build the center, create all accounts, install keys, pre-exempt
    /// gateway and community accounts.
    pub fn new(params: RolloutParams) -> Self {
        let population = Population::generate(crate::population::PopulationParams {
            seed: params.seed ^ 0x9e37,
            ..crate::population::PopulationParams::scaled(params.population_scale)
        });
        let center = Center::new(CenterConfig {
            start_time: params.from.unix_midnight(),
            enforcement: EnforcementMode::Off,
            seed: params.seed,
            // One-country fixture spanning every simulated external /8 plus
            // the internal network: the benign baseline only exercises the
            // velocity/failure/new-network signals, never geography.
            risk: params.risk.then(|| RiskParams {
                geodb: Arc::new(
                    hpcmfa_risk::geo::GeoDb::parse("64.0.0.0/2 US\n128.0.0.0/2 US\n")
                        .expect("baseline geodb parses"),
                ),
                weights: hpcmfa_risk::engine::RiskWeights::default(),
            }),
            ..CenterConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(params.seed);

        let hard_count = population
            .users
            .iter()
            .filter(|u| u.device == DevicePreference::Hard)
            .count();
        let mut batch_rng = StdRng::seed_from_u64(params.seed ^ 0xfe17);
        let hard_batch = HardTokenBatch::manufacture("TACC", hard_count + 64, &mut batch_rng);

        let mut users = Vec::with_capacity(population.len());
        let mut gateway_names = Vec::new();
        let mut community_names = Vec::new();
        for spec in &population.users {
            if spec.cohort == Cohort::Inactive {
                // Dormant accounts exist in the identity plant but never
                // generate events; keep them out of the hot loop.
                center.create_user(
                    &spec.username,
                    &format!("{}@x.edu", spec.username),
                    "unused",
                );
                continue;
            }
            center.create_user(
                &spec.username,
                &format!("{}@utexas.edu", spec.username),
                &format!("{}-pw", spec.username),
            );
            let key = spec
                .uses_pubkey
                .then(|| center.provision_key(&spec.username));
            match spec.cohort {
                Cohort::Gateway => gateway_names.push(spec.username.clone()),
                Cohort::Community => community_names.push(spec.username.clone()),
                _ => {}
            }
            let ext_ip = Ipv4Addr::new(
                70 + (rng.random_range(0..60u8)),
                rng.random_range(1..250),
                rng.random_range(1..250),
                rng.random_range(1..250),
            );
            users.push(UserState {
                spec: spec.clone(),
                device: DeviceHandle::None,
                key,
                ext_ip,
                disrupted: false,
                migration: None,
                paired: false,
            });
        }
        // Trusted accounts are whitelisted before the rollout starts so
        // their automated transactions continue uninterrupted (§3.4).
        if !gateway_names.is_empty() {
            center
                .add_exemption_rule(&format!("+ : {} : ALL : ALL", gateway_names.join(" ")))
                .expect("gateway rule");
        }
        if !community_names.is_empty() {
            center
                .add_exemption_rule(&format!("+ : {} : ALL : ALL", community_names.join(" ")))
                .expect("community rule");
        }

        RolloutSim {
            center,
            params,
            users,
            hard_batch,
            next_hard_serial: 0,
            rng,
            new_user_counter: 0,
            failures_by_cohort: std::collections::HashMap::new(),
        }
    }

    fn activity_multiplier(date: Date) -> f64 {
        let holiday = (date >= Date::new(2016, 12, 17) && date <= Date::new(2017, 1, 2))
            || (date >= Date::new(2016, 11, 24) && date <= Date::new(2016, 11, 27));
        let base = if date.is_weekend() { 0.5 } else { 1.0 };
        if holiday {
            base * 0.35
        } else {
            base
        }
    }

    fn phase_of(&self, date: Date) -> u8 {
        let m = &self.params.milestones;
        if date >= m.mandatory {
            3
        } else if date >= m.phase2 {
            2
        } else if date >= m.announce {
            1
        } else {
            0
        }
    }

    /// Pair user `idx` through the real portal flows. Returns whether a new
    /// pairing was made.
    fn pair_user(&mut self, idx: usize) -> bool {
        let (username, device, phone) = {
            let u = &self.users[idx];
            if u.paired {
                return false;
            }
            (u.spec.username.clone(), u.spec.device, u.spec.phone.clone())
        };
        let handle = match device {
            DevicePreference::Soft => {
                let dev = self.center.pair_soft(&username);
                DeviceHandle::Closure(Arc::new(move |now| Some(dev.displayed_code(now))))
            }
            DevicePreference::Sms => {
                let phone = phone.expect("sms users carry phones");
                let parsed = self.center.pair_sms(&username, &phone);
                let twilio = Arc::clone(&self.center.twilio);
                let clock = self.center.clock.clone();
                DeviceHandle::Closure(Arc::new(move |_now| {
                    // The user waits for the text, then types the code.
                    clock.advance(10);
                    use hpcmfa_otpserver::sms::SmsProvider;
                    twilio
                        .inbox(&parsed, clock.now())
                        .last()
                        .map(|m| m.body.rsplit(' ').next().unwrap().to_string())
                }))
            }
            DevicePreference::Hard => {
                let serial = self.hard_batch.fobs[self.next_hard_serial].serial.clone();
                self.next_hard_serial += 1;
                self.center.pair_hard(&username, &self.hard_batch, &serial);
                let fob = self.hard_batch.by_serial(&serial).unwrap().clone();
                DeviceHandle::Closure(Arc::new(move |now| fob.press_button(now)))
            }
            DevicePreference::Training => {
                let code = self.center.enroll_training_account(&username);
                DeviceHandle::Fixed(code)
            }
        };
        self.users[idx].device = handle;
        self.users[idx].paired = true;
        true
    }

    /// React to a broken scripted workflow with one of the §5 strategies.
    /// A workflow whose temporary variance later expires re-migrates to a
    /// permanent strategy (staff "worked with these users", §5).
    fn migrate_automated(&mut self, idx: usize, pairings_today: &mut u64) {
        let roll: f64 = self.rng.random();
        let migration = if self.users[idx].migration.is_some() {
            // Second disruption (an expired variance): go permanent.
            if roll < 0.6 {
                Migration::InternalCron
            } else {
                Migration::Multiplex
            }
        } else if roll < 0.40 {
            Migration::Exemption
        } else if roll < 0.75 {
            Migration::InternalCron
        } else {
            Migration::Multiplex
        };
        let username = self.users[idx].spec.username.clone();
        match migration {
            Migration::Exemption => {
                // Temporary variance for the account; staff grant these
                // "easily" (§6).
                let expiry = self
                    .params
                    .milestones
                    .mandatory
                    .plus_days(self.rng.random_range(20..90));
                let _ = self
                    .center
                    .add_exemption_rule(&format!("+ : {username} : ALL : {expiry}"));
            }
            Migration::InternalCron => {
                // Traffic moves inside the center; nothing to configure —
                // the internal network is exempt.
            }
            Migration::Multiplex => {
                // The owner pairs a device for master connections.
                if self.pair_user(idx) {
                    *pairings_today += 1;
                }
            }
        }
        self.users[idx].migration = Some(migration);
        self.users[idx].disrupted = true;
    }

    /// Simulate one day; returns its aggregate record.
    fn run_day(&mut self, date: Date) -> DayRecord {
        let phase = self.phase_of(date);
        let m = self.params.milestones;
        // Phase transitions, applied center-wide exactly once.
        if date == m.announce {
            self.center.set_enforcement(EnforcementMode::Paired);
        } else if date == m.phase2 {
            self.center.set_enforcement(EnforcementMode::Countdown {
                deadline: m.mandatory,
                url: "https://portal.tacc.utexas.edu/mfa".into(),
            });
        } else if date == m.mandatory {
            self.center.set_enforcement(EnforcementMode::Full);
        }

        let mult = Self::activity_multiplier(date);
        let mut record = DayRecord {
            date,
            phase,
            unique_mfa_users: 0,
            ext_mfa_logins: 0,
            ext_total_logins: 0,
            total_logins: 0,
            new_pairings: 0,
            failed_logins: 0,
            tickets_mfa: 0,
            tickets_other: 0,
        };
        let mut mfa_users_today: HashSet<String> = HashSet::new();
        let mut disruptions_today = 0u64;

        // --- Pairings scheduled for today (non-automated cohorts; the
        // automated accounts pair only through the multiplex strategy). ---
        let due: Vec<usize> = self
            .users
            .iter()
            .enumerate()
            .filter(|(_, u)| {
                u.spec.adoption_day == Some(date) && u.spec.cohort != Cohort::Automated && !u.paired
            })
            .map(|(i, _)| i)
            .collect();
        for idx in due {
            if self.pair_user(idx) {
                record.new_pairings += 1;
            }
        }

        // --- New-user onboarding (from late August; spring uptick). ---
        if date >= Date::new(2016, 8, 22) && !date.is_weekend() {
            let rate = if date >= Date::new(2017, 1, 9) && date <= Date::new(2017, 2, 15) {
                14.0
            } else if date >= Date::new(2017, 1, 1) {
                8.0
            } else {
                6.0
            } * self.params.population_scale;
            let n = self.sample_count(rate);
            for _ in 0..n {
                let idx = self.onboard_new_user(date);
                // New users pair at signup once instructed to (§4.2).
                if self.pair_user(idx) {
                    record.new_pairings += 1;
                }
            }
        }

        // --- Device re-pairings: a trickle of paired users replace their
        // device (lost/upgraded phones). Counted as new pairings, exactly
        // as the production Figure 6 counted re-initializations. ---
        if phase >= 1 {
            let p = self.params.repair_daily_prob;
            let candidates: Vec<usize> = (0..self.users.len())
                .filter(|&i| {
                    let u = &self.users[i];
                    u.paired && matches!(u.spec.cohort, Cohort::Interactive | Cohort::Staff)
                })
                .collect();
            for idx in candidates {
                if self.rng.random_bool(p) {
                    self.users[idx].paired = false;
                    if self.pair_user(idx) {
                        record.new_pairings += 1;
                    }
                }
            }
        }

        // --- Plan today's logins. ---
        struct LoginPlan {
            idx: usize,
            internal: bool,
        }
        let mut plan: Vec<LoginPlan> = Vec::new();
        for idx in 0..self.users.len() {
            let (cohort, daily_logins, activity_prob, migration) = {
                let u = &self.users[idx];
                (
                    u.spec.cohort,
                    u.spec.daily_logins,
                    u.spec.activity_prob,
                    u.migration,
                )
            };
            if cohort == Cohort::Inactive || daily_logins == 0.0 {
                continue;
            }
            // Training accounts only log in during workshops, i.e. once a
            // static code has been assigned.
            if cohort == Cohort::Training && !self.users[idx].paired {
                continue;
            }
            let active: bool = self.rng.random_bool((activity_prob * mult).clamp(0.0, 1.0));
            if !active {
                continue;
            }
            let mut n_ext = self.sample_count(daily_logins * mult).max(1) as usize;
            let mut n_int = 0usize;
            match migration {
                Some(Migration::InternalCron) => {
                    n_int = n_ext;
                    n_ext = 0;
                }
                Some(Migration::Multiplex) => {
                    n_ext = n_ext.min(2);
                }
                _ => {}
            }
            // Interactive users also generate intra-center traffic (job
            // scripts, storage transfers) roughly matching their external
            // activity.
            if matches!(cohort, Cohort::Interactive | Cohort::Staff) {
                n_int += self.sample_count(daily_logins * mult * 1.2) as usize;
            }
            for _ in 0..n_ext {
                plan.push(LoginPlan {
                    idx,
                    internal: false,
                });
            }
            for _ in 0..n_int {
                plan.push(LoginPlan {
                    idx,
                    internal: true,
                });
            }
        }

        // --- Execute, spreading events across the working day. The plan
        // is shuffled so one user's logins interleave with everyone
        // else's; back-to-back same-user logins inside one TOTP step would
        // otherwise read as replay attacks. ---
        use rand::seq::SliceRandom;
        plan.shuffle(&mut self.rng);
        let day_end = date.succ().unix_midnight();
        let events = plan.len().max(1) as u64;
        let budget = day_end.saturating_sub(self.center.clock.now());
        let dt = (budget.saturating_mul(8) / 10 / events).clamp(1, 600);
        let mut node_rotor = 0usize;
        for login in plan {
            if self.center.clock.now() + dt < day_end {
                self.center.clock.advance(dt);
            }
            let u = &self.users[login.idx];
            let ip = if login.internal {
                self.center.internal_ip((login.idx % 200) as u8)
            } else {
                u.ext_ip
            };
            let profile = self.profile_for(login.idx, ip);
            node_rotor = (node_rotor + 1) % self.center.nodes.len();
            let report = self.center.ssh(node_rotor, &profile);

            record.total_logins += 1;
            if !login.internal {
                record.ext_total_logins += 1;
                if report.granted && report.mfa_prompted {
                    record.ext_mfa_logins += 1;
                }
            }
            if report.granted {
                if report.mfa_prompted {
                    mfa_users_today.insert(self.users[login.idx].spec.username.clone());
                }
            } else {
                record.failed_logins += 1;
                *self
                    .failures_by_cohort
                    .entry(self.users[login.idx].spec.cohort)
                    .or_insert(0) += 1;
                let u = &self.users[login.idx];
                let needs_migration = u.spec.cohort == Cohort::Automated
                    && phase >= 2
                    && (!u.disrupted || u.migration == Some(Migration::Exemption));
                let forced_adoption = phase >= 3
                    && !u.paired
                    && matches!(u.spec.cohort, Cohort::Interactive | Cohort::Staff);
                if needs_migration {
                    disruptions_today += 1;
                    self.migrate_automated(login.idx, &mut record.new_pairings);
                } else if forced_adoption {
                    // Locked out at the door: the user pairs a device the
                    // same day rather than waiting for their planned date.
                    if self.pair_user(login.idx) {
                        record.new_pairings += 1;
                    }
                }
            }
        }
        record.unique_mfa_users = mfa_users_today.len();

        // --- Tickets. ---
        // Baseline (non-MFA) ticket volume tracks the population size, as
        // MFA ticket volume implicitly does through pairings and failures.
        let t = self.params.tickets.clone();
        let base = if date.is_weekend() {
            t.base_weekend
        } else {
            t.base_weekday
        } * if mult < 0.5 { 0.5 } else { 1.0 }
            * self.params.population_scale;
        record.tickets_other = self.sample_count(base);
        let mut mfa_tickets = 0u64;
        mfa_tickets += self.binomial(record.new_pairings, t.per_pairing);
        mfa_tickets += self.binomial(record.failed_logins, t.per_failed_login);
        mfa_tickets += self.binomial(disruptions_today, t.per_disruption);
        if date == m.announce || date == m.phase2 || date == m.mandatory {
            mfa_tickets += self.sample_count(t.phase_bump * self.params.population_scale);
        }
        record.tickets_mfa = mfa_tickets;

        // --- Day end: advance to midnight, rotate logs. ---
        self.center.clock.set(day_end);
        let cutoff = day_end.saturating_sub(2 * 86_400);
        for node in &self.center.nodes {
            node.daemon.authlog().prune_older_than(cutoff);
        }
        self.center.linotp.audit().prune_older_than(cutoff);
        record
    }

    fn profile_for(&self, idx: usize, ip: Ipv4Addr) -> ClientProfile {
        let u = &self.users[idx];
        // Multiplexing masters are established interactively with the
        // owner's device; only the master connections appear as traffic.
        let interactive = matches!(
            u.spec.cohort,
            Cohort::Interactive | Cohort::Staff | Cohort::Training
        ) || u.migration == Some(Migration::Multiplex);
        let mut profile = if interactive {
            ClientProfile::interactive_user(
                &u.spec.username,
                ip,
                &format!("{}-pw", u.spec.username),
            )
        } else {
            ClientProfile {
                username: u.spec.username.clone(),
                source_ip: ip,
                key: None,
                password: None,
                token: TokenSource::None,
                interactive: false,
                wants_tty: false,
            }
        };
        if let Some(key) = &u.key {
            profile = profile.with_key(key.clone());
        }
        if interactive {
            profile = profile.with_token(u.device.token_source());
        }
        profile
    }

    fn onboard_new_user(&mut self, date: Date) -> usize {
        self.new_user_counter += 1;
        let name = format!("newuser{:05}", self.new_user_counter);
        self.center
            .create_user(&name, &format!("{name}@utexas.edu"), &format!("{name}-pw"));
        let device = if self.rng.random_bool(0.58) {
            DevicePreference::Soft
        } else {
            DevicePreference::Sms
        };
        let phone = matches!(device, DevicePreference::Sms)
            .then(|| format!("512556{:04}", self.rng.random_range(0..10_000)));
        let ext_ip = Ipv4Addr::new(
            70 + self.rng.random_range(0..60u8),
            self.rng.random_range(1..250),
            self.rng.random_range(1..250),
            self.rng.random_range(1..250),
        );
        self.users.push(UserState {
            spec: UserSpec {
                username: name,
                cohort: Cohort::Interactive,
                device,
                daily_logins: 1.0,
                activity_prob: 0.2,
                adoption_day: Some(date),
                uses_pubkey: false,
                phone,
            },
            device: DeviceHandle::None,
            key: None,
            ext_ip,
            disrupted: false,
            migration: None,
            paired: false,
        });
        self.users.len() - 1
    }

    /// Poisson-ish count with mean `lambda` (normal approximation above a
    /// threshold, exact inversion below — adequate for aggregate counts).
    fn sample_count(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            // Knuth inversion.
            let l = (-lambda).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.rng.random::<f64>();
                if p <= l {
                    return k;
                }
                k += 1;
                if k > 10_000 {
                    return k;
                }
            }
        }
        let std = lambda.sqrt();
        let u1: f64 = self.rng.random::<f64>().max(1e-12);
        let u2: f64 = self.rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (lambda + std * z).round().max(0.0) as u64
    }

    fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if n > 200 {
            return self.sample_count(n as f64 * p);
        }
        (0..n).filter(|_| self.rng.random_bool(p.min(1.0))).count() as u64
    }

    /// Run the whole calendar and collect the output.
    pub fn run(mut self) -> SimOutput {
        let mut days = Vec::new();
        let mut date = self.params.from;
        let mut total_ok = 0u64;
        while date <= self.params.to {
            let record = self.run_day(date);
            total_ok += record.total_logins - record.failed_logins;
            days.push(record);
            date = date.succ();
        }
        use hpcmfa_otpserver::sms::SmsProvider;
        let months = (self.params.from.days_until(self.params.to) as u64 / 30).max(1);
        SimOutput {
            failures_by_cohort: self.failures_by_cohort.clone(),
            table1: self.center.identity.pairing_breakdown(),
            days,
            total_successful_logins: total_ok,
            sms_sent: self.center.twilio.sent_count(),
            sms_cost_micros: self.center.twilio.total_cost_micros(months),
            metrics: self.center.metrics_snapshot(),
            alerts: self.center.alerts.timeline_lines(),
            security_events: self
                .center
                .metrics()
                .security_events()
                .all()
                .iter()
                .map(|e| e.to_string())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared small run for the assertion-heavy tests (building and
    /// running the calendar once keeps the suite fast).
    fn small_run() -> SimOutput {
        RolloutSim::new(RolloutParams {
            population_scale: 0.02,
            seed: 7,
            ..RolloutParams::default()
        })
        .run()
    }

    #[test]
    fn risk_scored_baseline_never_denies_benign_users() {
        // The 10k-user rollout (scaled) with every login scored by the
        // risk engine: the benign population must draw zero denies —
        // this run is the false-positive baseline the detection report
        // cites.
        let out = RolloutSim::new(RolloutParams {
            population_scale: 0.01,
            to: Date::new(2016, 10, 31),
            seed: 7,
            risk: true,
            ..RolloutParams::default()
        })
        .run();
        assert_eq!(
            out.metrics
                .counter("hpcmfa_risk_decisions_total{decision=\"deny\"}"),
            0
        );
        assert!(
            out.metrics
                .counter("hpcmfa_risk_decisions_total{decision=\"allow\"}")
                > 0
        );
    }

    #[test]
    fn rollout_reproduces_evaluation_shapes() {
        let out = small_run();
        let m = Milestones::default();

        // --- Figure 3 shape: adoption grows, jumps at phase 2, plateaus.
        let avg = |from: Date, to: Date| {
            let mut sum = 0usize;
            let mut n = 0usize;
            for d in &out.days {
                if d.date >= from && d.date <= to && !d.date.is_weekend() {
                    sum += d.unique_mfa_users;
                    n += 1;
                }
            }
            sum as f64 / n.max(1) as f64
        };
        let pre = avg(Date::new(2016, 7, 5), Date::new(2016, 8, 9));
        let phase1 = avg(m.announce, Date::new(2016, 9, 5));
        let phase2 = avg(Date::new(2016, 9, 8), Date::new(2016, 10, 3));
        let phase3 = avg(Date::new(2016, 10, 10), Date::new(2016, 12, 10));
        assert!(
            phase1 > pre,
            "adoption begins in phase 1: {pre} -> {phase1}"
        );
        assert!(
            phase2 > phase1 * 1.5,
            "phase 2 accelerates: {phase1} -> {phase2}"
        );
        assert!(
            phase3 > phase2,
            "phase 3 is the plateau: {phase2} -> {phase3}"
        );
        // Holiday dip.
        let holiday = avg(Date::new(2016, 12, 24), Date::new(2016, 12, 30));
        assert!(holiday < phase3 * 0.7, "winter dip: {phase3} -> {holiday}");

        // --- Figure 4 shape: external non-MFA traffic collapses at phase
        // 2 but never vanishes (exempt gateways).
        let nonmfa = |from: Date, to: Date| {
            let mut sum = 0u64;
            let mut n = 0u64;
            for d in &out.days {
                if d.date >= from && d.date <= to && !d.date.is_weekend() {
                    sum += d.ext_total_logins - d.ext_mfa_logins;
                    n += 1;
                }
            }
            sum as f64 / n.max(1) as f64
        };
        let before = nonmfa(Date::new(2016, 8, 20), Date::new(2016, 9, 5));
        let after = nonmfa(Date::new(2016, 10, 20), Date::new(2016, 11, 20));
        assert!(
            after < before * 0.7,
            "automated non-MFA external traffic drops: {before} -> {after}"
        );
        assert!(after > 0.0, "exempt traffic persists in phase 3");
        // Internal traffic dwarfs external and is unaffected by MFA.
        let d = out.day(Date::new(2016, 11, 2)).unwrap();
        assert!(d.total_logins > d.ext_total_logins);

        // --- Figure 6 shape: Sep 7 is the biggest pairing day.
        let mut ranked: Vec<(&DayRecord, u64)> =
            out.days.iter().map(|d| (d, d.new_pairings)).collect();
        ranked.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        assert_eq!(
            ranked[0].0.date,
            Date::new(2016, 9, 7),
            "Sep 7 ranks first in new pairings"
        );
        let oct4_rank = ranked
            .iter()
            .position(|(d, _)| d.date == m.mandatory)
            .unwrap();
        assert!(
            oct4_rank <= 6,
            "Oct 4 among the top pairing days (rank {oct4_rank})"
        );

        // --- Table 1 ordering.
        let t1 = out.table1.expect("some pairings");
        assert!(t1[0] > t1[1], "soft > sms");
        assert!(t1[1] > t1[3], "sms > training");
        assert!(t1[0] + t1[1] > 0.9, "mobile devices dominate (>90 %)");

        // --- Figure 5: MFA tickets are a modest share during transition.
        let share = out.ticket_mfa_share(m.announce, Date::new(2016, 12, 31));
        assert!(
            (0.02..0.15).contains(&share),
            "transition MFA ticket share {share}"
        );

        // --- SMS cost model produced charges.
        assert!(out.sms_sent > 0);
        assert!(out.sms_cost_micros > out.sms_sent as u64 * 7_500);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = RolloutSim::new(RolloutParams {
            population_scale: 0.01,
            to: Date::new(2016, 9, 15),
            seed: 99,
            ..RolloutParams::default()
        })
        .run();
        let b = RolloutSim::new(RolloutParams {
            population_scale: 0.01,
            to: Date::new(2016, 9, 15),
            seed: 99,
            ..RolloutParams::default()
        })
        .run();
        assert_eq!(a.days, b.days);
        assert_eq!(a.alerts, b.alerts, "alert timelines diverge across seeds");
        assert_eq!(
            a.security_events, b.security_events,
            "security-event feeds diverge across seeds"
        );
    }

    #[test]
    fn phases_advance_on_schedule() {
        let out = RolloutSim::new(RolloutParams {
            population_scale: 0.005,
            seed: 3,
            ..RolloutParams::default()
        })
        .run();
        assert_eq!(out.day(Date::new(2016, 7, 15)).unwrap().phase, 0);
        assert_eq!(out.day(Date::new(2016, 8, 10)).unwrap().phase, 1);
        assert_eq!(out.day(Date::new(2016, 9, 6)).unwrap().phase, 2);
        assert_eq!(out.day(Date::new(2016, 10, 4)).unwrap().phase, 3);
        assert_eq!(out.days.len(), 184); // Jul 1 .. Dec 31 inclusive
    }
}
