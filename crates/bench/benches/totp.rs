//! Token-code costs, including the drift-window ablation (DESIGN.md #4):
//! the ±300 s tolerance (§3.3) costs a 21-step scan per validation versus
//! 1 step with no tolerance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcmfa_crypto::HashAlg;
use hpcmfa_otp::hotp::hotp;
use hpcmfa_otp::secret::Secret;
use hpcmfa_otp::totp::Totp;
use std::hint::black_box;

fn bench_generation(c: &mut Criterion) {
    let secret = Secret::from_bytes(*b"12345678901234567890");
    let totp = Totp::new(secret.clone());
    c.bench_function("hotp_generate", |b| {
        let mut counter = 0u64;
        b.iter(|| {
            counter += 1;
            hotp(black_box(&secret), black_box(counter), 6, HashAlg::Sha1)
        })
    });
    c.bench_function("totp_generate", |b| {
        b.iter(|| totp.code_at(black_box(1_475_000_000)))
    });
}

fn bench_verify_windows(c: &mut Criterion) {
    let totp = Totp::new(Secret::from_bytes(*b"12345678901234567890"));
    let now = 1_475_000_000u64;
    let good = totp.code_at(now);
    let bad = "000000".to_string();
    let mut group = c.benchmark_group("totp_verify_window");
    for window in [0u64, 1, 5, 10, 20] {
        group.bench_with_input(BenchmarkId::new("accept", window), &window, |b, &w| {
            b.iter(|| totp.verify(black_box(&good), now, w))
        });
        group.bench_with_input(BenchmarkId::new("reject", window), &window, |b, &w| {
            b.iter(|| totp.verify(black_box(&bad), now, w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generation, bench_verify_windows);
criterion_main!(benches);
