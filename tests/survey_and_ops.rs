//! Integration of the §4.1 information-gathering pipeline and operational
//! behaviours: auth-log auditing identifies automated users; exemption
//! reloads propagate instantly; RADIUS fleet failures degrade gracefully.

use securing_hpc::core::center::{Center, CenterConfig};
use securing_hpc::core::Clock as _;
use securing_hpc::pam::modules::token::EnforcementMode;
use securing_hpc::ssh::client::{ClientProfile, TokenSource};
use securing_hpc::ssh::survey::survey;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::Arc;

const OUTSIDE: Ipv4Addr = Ipv4Addr::new(70, 70, 70, 70);

#[test]
fn survey_pipeline_finds_the_automators() {
    // Pre-MFA state: the center watches who logs in and how (§4.1).
    let c = Center::new(CenterConfig::default());
    c.set_enforcement(EnforcementMode::Off);
    for (name, logins, tty) in [
        ("casual1", 3, true),
        ("casual2", 5, true),
        ("staffer1", 15, true),
        ("cronjob_carl", 120, false),
        ("datamover_dana", 90, false),
        ("gateway1", 400, false),
    ] {
        c.create_user(name, &format!("{name}@x.edu"), &format!("{name}-pw"));
        let key = c.provision_key(name);
        let profile = if tty {
            ClientProfile::interactive_user(name, OUTSIDE, &format!("{name}-pw")).with_key(key)
        } else {
            ClientProfile::batch_client(name, OUTSIDE, key)
        };
        for _ in 0..logins {
            c.clock.advance(40);
            assert!(c.ssh(0, &profile).granted);
        }
    }

    let from = c.config.start_time;
    let to = c.clock.now() + 1;
    let staff: HashSet<String> = ["staffer1".to_string()].into();
    let known: HashSet<String> = ["gateway1".to_string()].into();
    let report = survey(c.nodes[0].daemon.authlog(), from, to, &staff, &known);

    let targeted: Vec<&str> = report.targeted.iter().map(|a| a.user.as_str()).collect();
    assert!(targeted.contains(&"cronjob_carl"));
    assert!(targeted.contains(&"datamover_dana"));
    assert!(!targeted.contains(&"casual1"));
    assert!(!targeted.contains(&"gateway1"), "known accounts excluded");
    // "The far majority of these log in events were not invoked with a TTY."
    for t in &report.targeted {
        assert!(t.non_tty_fraction() > 0.9, "{} tty fraction", t.user);
    }
}

#[test]
fn exemption_reload_applies_to_inflight_traffic() {
    let c = Center::new(CenterConfig::default());
    c.set_enforcement(EnforcementMode::Full);
    c.create_user("late_prof", "p@x.edu", "prof-pw");
    let key = c.provision_key("late_prof");
    let batch = ClientProfile::batch_client("late_prof", OUTSIDE, key);

    assert!(!c.ssh(0, &batch).granted, "no exemption yet");
    // Staff grant a variance; "changes take effect immediately" (§3.4).
    c.add_exemption_rule("+ : late_prof : ALL : 2016-12-31")
        .unwrap();
    assert!(c.ssh(0, &batch).granted);
    // And on the other login node too — each node reloaded.
    assert!(c.ssh(1, &batch).granted);
}

#[test]
fn radius_fleet_degrades_gracefully_and_recovers() {
    let c = Center::new(CenterConfig::default());
    c.set_enforcement(EnforcementMode::Full);
    c.create_user("alice", "a@x.edu", "alice-pw");
    let device = c.pair_soft("alice");
    let profile = ClientProfile::interactive_user("alice", OUTSIDE, "alice-pw").with_token(
        TokenSource::device(move |now| Some(device.displayed_code(now))),
    );

    // Rolling outage: kill one server at a time; logins keep working.
    for victim in 0..c.radius_faults.len() {
        for (i, f) in c.radius_faults.iter().enumerate() {
            f.set_down(i == victim);
        }
        c.clock.advance(30);
        assert!(c.ssh(0, &profile).granted, "outage of server {victim}");
    }
    // Total outage: fail secure.
    for f in &c.radius_faults {
        f.set_down(true);
    }
    c.clock.advance(30);
    assert!(!c.ssh(0, &profile).granted);
    // Recovery.
    for f in &c.radius_faults {
        f.set_down(false);
    }
    c.clock.advance(30);
    assert!(c.ssh(0, &profile).granted);
    // The fleet actually shared the load: every server replied at least
    // once across the test.
    for srv in &c.radius_servers {
        assert!(
            srv.stats.replied.load(std::sync::atomic::Ordering::SeqCst) > 0,
            "round-robin spread load to every server"
        );
    }
}

#[test]
fn training_workshop_day() {
    // A workshop: one static code per account, reused by participants all
    // day, regenerated afterwards (§3.3).
    let c = Center::new(CenterConfig::default());
    c.set_enforcement(EnforcementMode::Full);
    let mut codes = Vec::new();
    for i in 0..5 {
        let name = format!("train{i:02}");
        c.create_user(&name, &format!("{name}@x.edu"), "tacc-training");
        codes.push((name.clone(), c.enroll_training_account(&name)));
    }
    for (name, code) in &codes {
        let p = ClientProfile::interactive_user(name, OUTSIDE, "tacc-training")
            .with_token(TokenSource::Fixed(code.clone()));
        for _ in 0..3 {
            c.clock.advance(20);
            assert!(c.ssh(0, &p).granted, "{name} logs in repeatedly");
        }
    }
    // After the session the codes are rotated and the old ones die.
    let (name, old_code) = &codes[0];
    let new_code = c.enroll_training_account(name);
    assert_ne!(&new_code, old_code);
    let stale = ClientProfile::interactive_user(name, OUTSIDE, "tacc-training")
        .with_token(TokenSource::Fixed(old_code.clone()));
    c.clock.advance(20);
    assert!(!c.ssh(0, &stale).granted);
    let _ = Arc::strong_count(&c);
}
