//! The SMS gateway: a Twilio-substitute with the paper's cost model and a
//! carrier-delay model.
//!
//! §3.3: "Twilio provides SMS text messaging services for a flat rate of $1
//! per month plus each US-based text message costs an additional $0.0075."
//! §5: "In a handful of cases, an SMS text message will arrive delayed.
//! Logs indicate that the user's network carrier had failed to deliver the
//! message until subsequent retries delivered the token code in an expired
//! state." Both behaviours are reproduced here deterministically.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Costs are tracked in micro-dollars to stay in integer arithmetic.
pub const USD: u64 = 1_000_000;

/// Per-message cost for US numbers: $0.0075.
pub const US_MSG_COST_MICROS: u64 = 7_500;

/// Per-message cost for international numbers (higher, §3.3 "International
/// text messaging services can also be provided but cost more"); modeled at
/// $0.05.
pub const INTL_MSG_COST_MICROS: u64 = 50_000;

/// Monthly flat fee: $1.
pub const MONTHLY_FEE_MICROS: u64 = USD;

/// A phone number; US numbers are ten digits (§3.5: "a ten-digit, US-based
/// phone number").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PhoneNumber(String);

/// Errors constructing a phone number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhoneError {
    /// Not a recognized format.
    Invalid(String),
}

impl std::fmt::Display for PhoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhoneError::Invalid(s) => write!(f, "invalid phone number: {s}"),
        }
    }
}

impl std::error::Error for PhoneError {}

impl PhoneNumber {
    /// Parse a number: ten digits = US; `+` followed by 8–15 digits =
    /// international.
    pub fn parse(s: &str) -> Result<Self, PhoneError> {
        let digits = |t: &str| t.bytes().all(|b| b.is_ascii_digit());
        if s.len() == 10 && digits(s) {
            return Ok(PhoneNumber(s.to_string()));
        }
        if let Some(rest) = s.strip_prefix('+') {
            if (8..=15).contains(&rest.len()) && digits(rest) {
                return Ok(PhoneNumber(s.to_string()));
            }
        }
        Err(PhoneError::Invalid(s.to_string()))
    }

    /// Whether this is a US-based number.
    pub fn is_us(&self) -> bool {
        !self.0.starts_with('+') || self.0.starts_with("+1")
    }

    /// The canonical string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

/// One sent message and its (simulated) delivery fate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmsMessage {
    /// Destination.
    pub to: PhoneNumber,
    /// Message body (contains the token code).
    pub body: String,
    /// Unix time the provider accepted the message.
    pub sent_at: u64,
    /// Unix time the carrier actually delivers it.
    pub deliver_at: u64,
    /// Cost charged, in micro-dollars.
    pub cost_micros: u64,
}

impl SmsMessage {
    /// Whether the carrier has delivered by `now`.
    pub fn delivered_by(&self, now: u64) -> bool {
        now >= self.deliver_at
    }

    /// Carrier latency in seconds.
    pub fn latency_secs(&self) -> u64 {
        self.deliver_at - self.sent_at
    }
}

/// An SMS provider (Twilio in production).
pub trait SmsProvider: Send + Sync {
    /// Send `body` to `to` at time `now`; returns the accepted message.
    fn send(&self, to: &PhoneNumber, body: &str, now: u64) -> SmsMessage;

    /// Messages delivered to `to` by time `now` (what the user's phone
    /// shows).
    fn inbox(&self, to: &PhoneNumber, now: u64) -> Vec<SmsMessage>;

    /// Total charges so far, in micro-dollars, including monthly fees for
    /// `months` of service.
    fn total_cost_micros(&self, months: u64) -> u64;
}

/// Tuning for the simulated carrier network.
#[derive(Debug, Clone)]
pub struct CarrierModel {
    /// Fast-path delivery latency range, seconds.
    pub fast_latency: (u64, u64),
    /// Probability a message takes the slow carrier-retry path.
    pub delayed_prob: f64,
    /// Slow-path latency range, seconds — beyond code validity, so these
    /// arrive expired, as the paper observed.
    pub slow_latency: (u64, u64),
}

impl Default for CarrierModel {
    fn default() -> Self {
        CarrierModel {
            fast_latency: (2, 9),
            delayed_prob: 0.01,
            slow_latency: (400, 900),
        }
    }
}

struct TwilioState {
    rng: StdRng,
    outbox: Vec<SmsMessage>,
    message_cost_total: u64,
}

/// The Twilio-substitute provider. Deterministic for a fixed seed.
pub struct TwilioSim {
    model: CarrierModel,
    state: Mutex<TwilioState>,
}

impl TwilioSim {
    /// Create with the default carrier model.
    pub fn new(seed: u64) -> Arc<Self> {
        Self::with_model(seed, CarrierModel::default())
    }

    /// Create with a custom carrier model.
    pub fn with_model(seed: u64, model: CarrierModel) -> Arc<Self> {
        Arc::new(TwilioSim {
            model,
            state: Mutex::new(TwilioState {
                rng: StdRng::seed_from_u64(seed),
                outbox: Vec::new(),
                message_cost_total: 0,
            }),
        })
    }

    /// Number of messages accepted so far.
    pub fn sent_count(&self) -> usize {
        self.state.lock().outbox.len()
    }

    /// Messages that were delivered after `threshold_secs` latency — the
    /// "arrived in an expired state" population.
    pub fn delayed_deliveries(&self, threshold_secs: u64) -> usize {
        self.state
            .lock()
            .outbox
            .iter()
            .filter(|m| m.latency_secs() > threshold_secs)
            .count()
    }
}

impl SmsProvider for TwilioSim {
    fn send(&self, to: &PhoneNumber, body: &str, now: u64) -> SmsMessage {
        let mut st = self.state.lock();
        let latency = if st.rng.random_bool(self.model.delayed_prob) {
            st.rng
                .random_range(self.model.slow_latency.0..=self.model.slow_latency.1)
        } else {
            st.rng
                .random_range(self.model.fast_latency.0..=self.model.fast_latency.1)
        };
        let cost = if to.is_us() {
            US_MSG_COST_MICROS
        } else {
            INTL_MSG_COST_MICROS
        };
        let msg = SmsMessage {
            to: to.clone(),
            body: body.to_string(),
            sent_at: now,
            deliver_at: now + latency,
            cost_micros: cost,
        };
        st.message_cost_total += cost;
        st.outbox.push(msg.clone());
        msg
    }

    fn inbox(&self, to: &PhoneNumber, now: u64) -> Vec<SmsMessage> {
        self.state
            .lock()
            .outbox
            .iter()
            .filter(|m| &m.to == to && m.delivered_by(now))
            .cloned()
            .collect()
    }

    fn total_cost_micros(&self, months: u64) -> u64 {
        self.state.lock().message_cost_total + months * MONTHLY_FEE_MICROS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us_phone() -> PhoneNumber {
        PhoneNumber::parse("5125551234").unwrap()
    }

    #[test]
    fn phone_parsing() {
        assert!(PhoneNumber::parse("5125551234").unwrap().is_us());
        assert!(PhoneNumber::parse("+15125551234").unwrap().is_us());
        assert!(!PhoneNumber::parse("+4915112345678").unwrap().is_us());
        assert!(PhoneNumber::parse("123").is_err());
        assert!(PhoneNumber::parse("512555123a").is_err());
        assert!(PhoneNumber::parse("51255512345").is_err()); // 11 digits, no '+'
        assert!(PhoneNumber::parse("+12").is_err());
    }

    #[test]
    fn send_and_receive() {
        let twilio = TwilioSim::new(1);
        let msg = twilio.send(&us_phone(), "Your TACC token code is 123456", 1000);
        assert_eq!(msg.cost_micros, US_MSG_COST_MICROS);
        assert!(msg.deliver_at > msg.sent_at);
        // Before delivery: inbox empty. After: message present.
        assert!(twilio.inbox(&us_phone(), msg.sent_at).is_empty());
        let inbox = twilio.inbox(&us_phone(), msg.deliver_at);
        assert_eq!(inbox.len(), 1);
        assert!(inbox[0].body.contains("123456"));
    }

    #[test]
    fn international_costs_more() {
        let twilio = TwilioSim::new(2);
        let de = PhoneNumber::parse("+4915112345678").unwrap();
        let msg = twilio.send(&de, "code", 0);
        assert_eq!(msg.cost_micros, INTL_MSG_COST_MICROS);
    }

    #[test]
    fn cost_model_matches_paper() {
        let twilio = TwilioSim::new(3);
        for i in 0..1000 {
            twilio.send(&us_phone(), "code", i);
        }
        // 1000 messages × $0.0075 + 1 month × $1 = $8.50.
        assert_eq!(twilio.total_cost_micros(1), 8_500_000);
    }

    #[test]
    fn delayed_fraction_near_model() {
        let model = CarrierModel {
            delayed_prob: 0.05,
            ..CarrierModel::default()
        };
        let twilio = TwilioSim::with_model(4, model);
        for i in 0..10_000 {
            twilio.send(&us_phone(), "code", i);
        }
        let delayed = twilio.delayed_deliveries(300);
        // 5% ± generous slack for a seeded RNG.
        assert!((300..=700).contains(&delayed), "delayed={delayed}");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = TwilioSim::new(7);
        let b = TwilioSim::new(7);
        for i in 0..50 {
            assert_eq!(
                a.send(&us_phone(), "x", i).deliver_at,
                b.send(&us_phone(), "x", i).deliver_at
            );
        }
    }

    #[test]
    fn inbox_filters_by_recipient() {
        let twilio = TwilioSim::new(8);
        let other = PhoneNumber::parse("5125550000").unwrap();
        twilio.send(&us_phone(), "mine", 0);
        twilio.send(&other, "theirs", 0);
        let inbox = twilio.inbox(&us_phone(), 10_000);
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].body, "mine");
    }
}
