//! The MFA exemption control list (§3.4).
//!
//! "The configuration file extends typical PAM access configuration syntax
//! and allows for either permanent exemptions or for temporary variances
//! that will automatically expire if the date has passed. Individual
//! accounts, specific IP addresses or IP ranges, or any combination of the
//! two may be targeted for MFA exemption with or without an expiration
//! date. Additionally, special "ALL" keywords can be set in the date,
//! account, and IP address fields ... By default, all accounts are subject
//! to multi-factor authentication and are denied an MFA exemption."
//!
//! Line format (pam_access-flavoured), first match wins:
//!
//! ```text
//! # action : users            : origins                : expiry
//!   +      : gateway1 portal2 : ALL                    : ALL
//!   +      : ALL              : 129.114.0.0/16         : ALL
//!   +      : pi_smith         : 198.51.100.7           : 2016-10-18
//!   -      : baduser          : ALL                    : ALL
//! ```
//!
//! `+` grants an exemption (second factor skipped), `-` explicitly denies
//! one (useful to carve a user out of a broad rule above... below it).
//! The expiry date is inclusive: the variance lapses at the following
//! midnight UTC.

use hpcmfa_otp::date::Date;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// An IPv4 network in CIDR form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cidr {
    /// Network address.
    pub addr: Ipv4Addr,
    /// Prefix length 0–32.
    pub prefix: u8,
}

impl Cidr {
    /// Parse `a.b.c.d` (a /32) or `a.b.c.d/n`.
    pub fn parse(s: &str) -> Option<Self> {
        let (ip_str, prefix) = match s.split_once('/') {
            Some((ip, p)) => (ip, p.parse::<u8>().ok()?),
            None => (s, 32),
        };
        if prefix > 32 {
            return None;
        }
        let addr: Ipv4Addr = ip_str.parse().ok()?;
        Some(Cidr { addr, prefix })
    }

    /// Whether `ip` falls inside this network.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        if self.prefix == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - self.prefix as u32);
        (u32::from(self.addr) & mask) == (u32::from(ip) & mask)
    }
}

/// Who a rule applies to.
#[derive(Debug, Clone, PartialEq, Eq)]
enum UserPattern {
    All,
    Named(Vec<String>),
}

/// Where a rule applies from.
#[derive(Debug, Clone, PartialEq, Eq)]
enum OriginPattern {
    All,
    Nets(Vec<Cidr>),
}

/// Until when a rule applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ExpiryPattern {
    /// `ALL`: permanent.
    Never,
    /// Valid through this date (inclusive).
    Through(Date),
}

/// One parsed rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessEntry {
    grant: bool,
    users: UserPattern,
    origins: OriginPattern,
    expiry: ExpiryPattern,
    /// 1-based source line, for diagnostics.
    pub line: usize,
}

impl AccessEntry {
    fn matches(&self, user: &str, ip: Ipv4Addr, now: u64) -> bool {
        let user_ok = match &self.users {
            UserPattern::All => true,
            UserPattern::Named(names) => names.iter().any(|n| n == user),
        };
        if !user_ok {
            return false;
        }
        let origin_ok = match &self.origins {
            OriginPattern::All => true,
            OriginPattern::Nets(nets) => nets.iter().any(|n| n.contains(ip)),
        };
        if !origin_ok {
            return false;
        }
        match self.expiry {
            ExpiryPattern::Never => true,
            ExpiryPattern::Through(date) => now < date.succ().unix_midnight(),
        }
    }
}

/// The outcome of an exemption lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDecision {
    /// Second factor skipped.
    Exempt,
    /// Subject to MFA (the default).
    NotExempt,
}

/// Parse failures, with line numbers so sysadmins can fix the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessParseError {
    /// 1-based line.
    pub line: usize,
    /// Reason.
    pub reason: String,
}

impl std::fmt::Display for AccessParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "access config line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for AccessParseError {}

/// A parsed exemption configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessConfig {
    entries: Vec<AccessEntry>,
}

impl AccessConfig {
    /// The empty config: everyone subject to MFA.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Parse a configuration file.
    pub fn parse(text: &str) -> Result<Self, AccessParseError> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split(':').map(str::trim).collect();
            if fields.len() != 4 {
                return Err(AccessParseError {
                    line: line_no,
                    reason: format!("expected 4 ':'-separated fields, found {}", fields.len()),
                });
            }
            let grant = match fields[0] {
                "+" => true,
                "-" => false,
                other => {
                    return Err(AccessParseError {
                        line: line_no,
                        reason: format!("action must be '+' or '-', found {other:?}"),
                    })
                }
            };
            let users = if fields[1].eq_ignore_ascii_case("ALL") {
                UserPattern::All
            } else {
                let names: Vec<String> = fields[1]
                    .split([' ', ','])
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
                if names.is_empty() {
                    return Err(AccessParseError {
                        line: line_no,
                        reason: "empty user list".into(),
                    });
                }
                UserPattern::Named(names)
            };
            let origins = if fields[2].eq_ignore_ascii_case("ALL") {
                OriginPattern::All
            } else {
                let mut nets = Vec::new();
                for tok in fields[2].split([' ', ',']).filter(|s| !s.is_empty()) {
                    match Cidr::parse(tok) {
                        Some(c) => nets.push(c),
                        None => {
                            return Err(AccessParseError {
                                line: line_no,
                                reason: format!("bad IP or CIDR {tok:?}"),
                            })
                        }
                    }
                }
                if nets.is_empty() {
                    return Err(AccessParseError {
                        line: line_no,
                        reason: "empty origin list".into(),
                    });
                }
                OriginPattern::Nets(nets)
            };
            let expiry = if fields[3].eq_ignore_ascii_case("ALL") {
                ExpiryPattern::Never
            } else {
                match Date::parse(fields[3]) {
                    Ok(d) => ExpiryPattern::Through(d),
                    Err(e) => {
                        return Err(AccessParseError {
                            line: line_no,
                            reason: e.to_string(),
                        })
                    }
                }
            };
            entries.push(AccessEntry {
                grant,
                users,
                origins,
                expiry,
                line: line_no,
            });
        }
        Ok(AccessConfig { entries })
    }

    /// First-match-wins decision; default deny-exemption.
    pub fn decide(&self, user: &str, ip: Ipv4Addr, now: u64) -> AccessDecision {
        for entry in &self.entries {
            if entry.matches(user, ip, now) {
                return if entry.grant {
                    AccessDecision::Exempt
                } else {
                    AccessDecision::NotExempt
                };
            }
        }
        AccessDecision::NotExempt
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no rules.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A pre-indexed variant of [`AccessConfig`] for large rule sets: rules are
/// bucketed per explicit username (plus an `ALL`-users bucket), and the
/// earliest matching rule index across buckets wins, preserving
/// first-match-wins semantics exactly. The `exemption_acl` bench compares
/// this against the linear scan — the DESIGN.md ablation #1.
pub struct AccessIndex {
    by_user: HashMap<String, Vec<usize>>,
    all_users: Vec<usize>,
    entries: Vec<AccessEntry>,
}

impl AccessIndex {
    /// Build the index from a parsed config.
    pub fn build(config: &AccessConfig) -> Self {
        let mut by_user: HashMap<String, Vec<usize>> = HashMap::new();
        let mut all_users = Vec::new();
        for (i, e) in config.entries.iter().enumerate() {
            match &e.users {
                UserPattern::All => all_users.push(i),
                UserPattern::Named(names) => {
                    for n in names {
                        by_user.entry(n.clone()).or_default().push(i);
                    }
                }
            }
        }
        AccessIndex {
            by_user,
            all_users,
            entries: config.entries.clone(),
        }
    }

    /// Decision equivalent to [`AccessConfig::decide`].
    pub fn decide(&self, user: &str, ip: Ipv4Addr, now: u64) -> AccessDecision {
        let user_rules = self.by_user.get(user).map(Vec::as_slice).unwrap_or(&[]);
        // Merge the two sorted index lists, testing in global order.
        let (mut a, mut b) = (0usize, 0usize);
        loop {
            let next = match (user_rules.get(a), self.all_users.get(b)) {
                (Some(&x), Some(&y)) => {
                    if x < y {
                        a += 1;
                        x
                    } else {
                        b += 1;
                        y
                    }
                }
                (Some(&x), None) => {
                    a += 1;
                    x
                }
                (None, Some(&y)) => {
                    b += 1;
                    y
                }
                (None, None) => return AccessDecision::NotExempt,
            };
            let e = &self.entries[next];
            if e.matches(user, ip, now) {
                return if e.grant {
                    AccessDecision::Exempt
                } else {
                    AccessDecision::NotExempt
                };
            }
        }
    }
}

/// A hot-reloadable config handle: "changes take effect immediately upon
/// write to disk" (§3.4). The PAM exemption module holds one of these; the
/// sysadmin (or a test) calls [`WatchedAccessConfig::reload`].
#[derive(Clone, Default)]
pub struct WatchedAccessConfig {
    inner: Arc<RwLock<AccessConfig>>,
}

impl WatchedAccessConfig {
    /// Start with `config`.
    pub fn new(config: AccessConfig) -> Self {
        WatchedAccessConfig {
            inner: Arc::new(RwLock::new(config)),
        }
    }

    /// Replace the active rules (the write-to-disk moment).
    pub fn reload(&self, config: AccessConfig) {
        *self.inner.write() = config;
    }

    /// Parse and replace; on parse error the old rules stay active.
    pub fn reload_from_text(&self, text: &str) -> Result<(), AccessParseError> {
        let parsed = AccessConfig::parse(text)?;
        self.reload(parsed);
        Ok(())
    }

    /// Current decision.
    pub fn decide(&self, user: &str, ip: Ipv4Addr, now: u64) -> AccessDecision {
        self.inner.read().decide(user, ip, now)
    }

    /// Current rule count.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether no rules are loaded.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    const SEP_2016: u64 = 1_473_120_000; // 2016-09-06 00:00 UTC

    #[test]
    fn cidr_parsing_and_matching() {
        let net = Cidr::parse("129.114.0.0/16").unwrap();
        assert!(net.contains(ip("129.114.5.6")));
        assert!(!net.contains(ip("129.115.5.6")));
        let host = Cidr::parse("10.1.2.3").unwrap();
        assert_eq!(host.prefix, 32);
        assert!(host.contains(ip("10.1.2.3")));
        assert!(!host.contains(ip("10.1.2.4")));
        let any = Cidr::parse("0.0.0.0/0").unwrap();
        assert!(any.contains(ip("255.255.255.255")));
        assert!(Cidr::parse("10.0.0.0/33").is_none());
        assert!(Cidr::parse("300.0.0.1").is_none());
        assert!(Cidr::parse("not-an-ip").is_none());
    }

    #[test]
    fn default_is_not_exempt() {
        let cfg = AccessConfig::empty();
        assert_eq!(
            cfg.decide("anyone", ip("1.2.3.4"), SEP_2016),
            AccessDecision::NotExempt
        );
    }

    #[test]
    fn user_exemption() {
        let cfg = AccessConfig::parse("+ : gateway1 : ALL : ALL\n").unwrap();
        assert_eq!(
            cfg.decide("gateway1", ip("1.2.3.4"), SEP_2016),
            AccessDecision::Exempt
        );
        assert_eq!(
            cfg.decide("alice", ip("1.2.3.4"), SEP_2016),
            AccessDecision::NotExempt
        );
    }

    #[test]
    fn internal_network_exemption() {
        // The per-system rule that lets traffic flow freely inside (§3.4).
        let cfg = AccessConfig::parse("+ : ALL : 129.114.0.0/16 : ALL\n").unwrap();
        assert_eq!(
            cfg.decide("anyone", ip("129.114.40.1"), SEP_2016),
            AccessDecision::Exempt
        );
        assert_eq!(
            cfg.decide("anyone", ip("8.8.8.8"), SEP_2016),
            AccessDecision::NotExempt
        );
    }

    #[test]
    fn temporary_variance_expires() {
        let cfg = AccessConfig::parse("+ : slowpoke : ALL : 2016-10-18\n").unwrap();
        let before = Date::new(2016, 10, 18).unix_midnight() + 3600;
        let after = Date::new(2016, 10, 19).unix_midnight() + 1;
        assert_eq!(
            cfg.decide("slowpoke", ip("1.2.3.4"), before),
            AccessDecision::Exempt
        );
        assert_eq!(
            cfg.decide("slowpoke", ip("1.2.3.4"), after),
            AccessDecision::NotExempt
        );
    }

    #[test]
    fn first_match_wins_with_explicit_deny() {
        let cfg = AccessConfig::parse(
            "- : mallory : ALL : ALL\n\
             + : ALL : 10.0.0.0/8 : ALL\n",
        )
        .unwrap();
        assert_eq!(
            cfg.decide("mallory", ip("10.1.1.1"), SEP_2016),
            AccessDecision::NotExempt
        );
        assert_eq!(
            cfg.decide("alice", ip("10.1.1.1"), SEP_2016),
            AccessDecision::Exempt
        );
    }

    #[test]
    fn combined_user_and_ip_rule() {
        let cfg = AccessConfig::parse("+ : pi_smith : 198.51.100.7 : ALL\n").unwrap();
        assert_eq!(
            cfg.decide("pi_smith", ip("198.51.100.7"), SEP_2016),
            AccessDecision::Exempt
        );
        assert_eq!(
            cfg.decide("pi_smith", ip("198.51.100.8"), SEP_2016),
            AccessDecision::NotExempt
        );
        assert_eq!(
            cfg.decide("other", ip("198.51.100.7"), SEP_2016),
            AccessDecision::NotExempt
        );
    }

    #[test]
    fn lists_and_comments() {
        let cfg = AccessConfig::parse(
            "# gateways\n\
             + : gw1 gw2, gw3 : ALL : ALL  # trailing comment\n\
             \n\
             + : ALL : 10.0.0.1, 10.0.0.2 : ALL\n",
        )
        .unwrap();
        assert_eq!(cfg.len(), 2);
        for u in ["gw1", "gw2", "gw3"] {
            assert_eq!(cfg.decide(u, ip("8.8.8.8"), 0), AccessDecision::Exempt);
        }
        assert_eq!(cfg.decide("x", ip("10.0.0.2"), 0), AccessDecision::Exempt);
        assert_eq!(
            cfg.decide("x", ip("10.0.0.3"), 0),
            AccessDecision::NotExempt
        );
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = AccessConfig::parse("+ : a : ALL\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = AccessConfig::parse("# ok\n* : a : ALL : ALL\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(AccessConfig::parse("+ : a : 999.1.1.1 : ALL\n").is_err());
        assert!(AccessConfig::parse("+ : a : ALL : 2016-13-01\n").is_err());
        assert!(AccessConfig::parse("+ :  : ALL : ALL\n").is_err());
        assert!(AccessConfig::parse("+ : a :  : ALL\n").is_err());
    }

    #[test]
    fn index_matches_linear_semantics() {
        let cfg = AccessConfig::parse(
            "- : u5 : ALL : ALL\n\
             + : u1 u2 u3 : 10.0.0.0/8 : ALL\n\
             + : ALL : 129.114.0.0/16 : ALL\n\
             + : u5 u6 : ALL : 2016-10-18\n",
        )
        .unwrap();
        let index = AccessIndex::build(&cfg);
        let ips = ["10.1.2.3", "129.114.9.9", "8.8.8.8"];
        let users = ["u1", "u2", "u3", "u4", "u5", "u6", "nobody"];
        for u in users {
            for i in ips {
                for t in [0u64, SEP_2016, 2_000_000_000] {
                    assert_eq!(
                        cfg.decide(u, ip(i), t),
                        index.decide(u, ip(i), t),
                        "user={u} ip={i} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn watched_config_hot_reload() {
        let watched = WatchedAccessConfig::new(AccessConfig::empty());
        assert_eq!(
            watched.decide("gw", ip("1.1.1.1"), 0),
            AccessDecision::NotExempt
        );
        watched.reload_from_text("+ : gw : ALL : ALL\n").unwrap();
        assert_eq!(
            watched.decide("gw", ip("1.1.1.1"), 0),
            AccessDecision::Exempt
        );
        // Bad reload leaves old rules active.
        assert!(watched.reload_from_text("junk line\n").is_err());
        assert_eq!(
            watched.decide("gw", ip("1.1.1.1"), 0),
            AccessDecision::Exempt
        );
    }

    #[test]
    fn blanket_all_all_all() {
        // The "drop everything back to single factor" escape hatch.
        let cfg = AccessConfig::parse("+ : ALL : ALL : ALL\n").unwrap();
        assert_eq!(
            cfg.decide("anyone", ip("8.8.8.8"), 0),
            AccessDecision::Exempt
        );
    }
}
