//! The durability acceptance scenario (§3.2's LinOTP database, made
//! crash-safe): a seeded login stream interrupted by N OTP-server
//! crash/recover cycles must complete exactly like the crash-free run,
//! with **zero replay acceptances** and **zero lockout resets** — the two
//! security invariants a lossy restart would break.
//!
//! Two configurations are on trial:
//!
//! 1. A healthy backend — every acknowledged mutation survives the crash,
//!    so the interrupted stream grants the same logins as the control.
//! 2. A backend with failing fsyncs — some appends never become durable,
//!    leaving torn WAL tails at crash time. The server already refused to
//!    acknowledge those operations (fail-safe deny), so recovery still
//!    never resurrects an accepted code or unlocks a locked account.

use securing_hpc::core::center::{Center, CenterConfig};
use securing_hpc::core::Clock as _;
use securing_hpc::otpserver::{MemoryBackend, StorageBackend, ValidationOutcome};
use securing_hpc::pam::modules::token::EnforcementMode;
use securing_hpc::ssh::client::{ClientProfile, TokenSource};
use std::net::Ipv4Addr;
use std::sync::Arc;

const OUTSIDE: Ipv4Addr = Ipv4Addr::new(70, 112, 33, 44);
const USERS: usize = 4;
const LOGINS: usize = 48;

#[derive(Debug, Default)]
struct StreamResult {
    granted: usize,
    crashes: usize,
    replay_acceptances: usize,
    lockout_resets: usize,
}

/// Drive a seeded login stream against a durable center, crashing the OTP
/// server every `crash_every` logins (`None` = the crash-free control).
/// After every crash the immediately-preceding accepted code is replayed
/// and the locked sentinel account is probed. `fsync_fail_every` dials in
/// fsync faults once setup is done (0 = a healthy backend throughout).
fn run_stream(
    backend: Arc<MemoryBackend>,
    crash_every: Option<usize>,
    fsync_fail_every: u64,
) -> StreamResult {
    let c = Center::new(CenterConfig {
        otp_storage: Some(Arc::clone(&backend) as Arc<dyn StorageBackend>),
        otp_snapshot_every: 16,
        seed: 0xd00d,
        ..CenterConfig::default()
    });
    c.set_enforcement(EnforcementMode::Full);

    let mut devices = Vec::new();
    for i in 0..USERS {
        let name = format!("user{i:02}");
        c.create_user(&name, &format!("{name}@utexas.edu"), &format!("{name}-pw"));
        let device = c.pair_soft(&name);
        devices.push((name, device));
    }

    // Sentinel 1: an account the lockout policy deactivated. A crash must
    // never bring it back.
    c.create_user("locked", "locked@utexas.edu", "locked-pw");
    c.pair_soft("locked");
    for _ in 0..securing_hpc::otpserver::LOCKOUT_THRESHOLD {
        c.clock.advance(3);
        c.linotp.validate("locked", "000000", c.clock.now());
    }
    assert!(!c.linotp.status("locked", c.clock.now()).unwrap().active);

    // Sentinel 2: a locked account staff explicitly cleared. A crash must
    // never re-lock it (the reset was acknowledged, so it is durable).
    c.create_user("cleared", "cleared@utexas.edu", "cleared-pw");
    c.pair_soft("cleared");
    for _ in 0..securing_hpc::otpserver::LOCKOUT_THRESHOLD {
        c.clock.advance(3);
        c.linotp.validate("cleared", "000000", c.clock.now());
    }
    c.linotp.reset_failcount("cleared", c.clock.now());
    assert!(c.linotp.status("cleared", c.clock.now()).unwrap().active);

    if fsync_fail_every > 0 {
        backend.plan().set_fsync_fail_every(fsync_fail_every);
    }

    let mut res = StreamResult::default();
    let mut last_accept: Option<(String, String)> = None;
    for login in 0..LOGINS {
        c.clock.advance(30);
        let (name, device) = &devices[login % USERS];
        let code = device.displayed_code(c.clock.now());
        let profile = ClientProfile::interactive_user(name, OUTSIDE, &format!("{name}-pw"))
            .with_token(TokenSource::Fixed(code.clone()));
        if c.ssh(0, &profile).granted {
            res.granted += 1;
            last_accept = Some((name.clone(), code));
        }
        let crash_now = crash_every.is_some_and(|every| (login + 1) % every == 0);
        if crash_now {
            c.crash_otp_server()
                .expect("OTP server recovers from durable state");
            res.crashes += 1;
            // The code accepted just before the crash must still be
            // nullified on the recovered server (its TOTP step is still
            // inside the validation window at this point).
            if let Some((user, code)) = &last_accept {
                if c.linotp.validate(user, code, c.clock.now()) == ValidationOutcome::Success {
                    res.replay_acceptances += 1;
                }
            }
            if c.linotp.status("locked", c.clock.now()).unwrap().active {
                res.lockout_resets += 1;
            }
            assert!(
                c.linotp.status("cleared", c.clock.now()).unwrap().active,
                "an acknowledged staff reset was lost by crash #{}",
                res.crashes
            );
        }
    }
    res
}

#[test]
fn crash_interrupted_stream_matches_crash_free_run() {
    let control = run_stream(MemoryBackend::healthy(), None, 0);
    let crashed = run_stream(MemoryBackend::healthy(), Some(8), 0);

    assert_eq!(crashed.crashes, LOGINS / 8);
    assert_eq!(control.crashes, 0);

    // The invariants under trial: nothing a crash did re-accepted a spent
    // code or reactivated a locked account.
    assert_eq!(crashed.replay_acceptances, 0, "{crashed:?}");
    assert_eq!(crashed.lockout_resets, 0, "{crashed:?}");

    // And the interrupted stream completed exactly like the control:
    // every acknowledged mutation survived, so no login was lost.
    assert_eq!(control.granted, LOGINS, "{control:?}");
    assert_eq!(
        crashed.granted, control.granted,
        "{crashed:?} vs {control:?}"
    );
}

#[test]
fn torn_tail_crashes_never_weaken_the_invariants() {
    // Fail every third fsync: acknowledged operations are still synced
    // (the server denies when they are not), but the WAL accumulates
    // un-synced bytes that each crash tears mid-record.
    let crashed = run_stream(MemoryBackend::healthy(), Some(6), 3);

    assert_eq!(crashed.crashes, LOGINS / 6);
    assert_eq!(crashed.replay_acceptances, 0, "{crashed:?}");
    assert_eq!(crashed.lockout_resets, 0, "{crashed:?}");
    // Fail-safe denials may cost logins, but recovery never panics and
    // the stream keeps flowing between crashes.
    assert!(crashed.granted > 0, "{crashed:?}");
}
