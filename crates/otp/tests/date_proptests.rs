//! Property-based tests for civil-date arithmetic (exemption expiries and
//! the rollout calendar depend on it being exactly right).

use hpcmfa_otp::date::{Date, SECS_PER_DAY};
use proptest::prelude::*;

proptest! {
    /// days_from_epoch and from_days are inverse bijections.
    #[test]
    fn days_round_trip(days in -200_000i64..200_000) {
        let d = Date::from_days(days);
        prop_assert_eq!(d.days_from_epoch(), days);
    }

    /// Unix-time round trip at any second of the day.
    #[test]
    fn unix_round_trip(days in 0i64..40_000, secs in 0u64..SECS_PER_DAY) {
        let d = Date::from_days(days);
        prop_assert_eq!(Date::from_unix(d.unix_midnight() + secs), d);
    }

    /// Successor is strictly increasing by exactly one day and is the
    /// inverse of plus_days(-1).
    #[test]
    fn succ_properties(days in -100_000i64..100_000) {
        let d = Date::from_days(days);
        let n = d.succ();
        prop_assert_eq!(d.days_until(n), 1);
        prop_assert!(n > d);
        prop_assert_eq!(n.plus_days(-1), d);
    }

    /// Weekdays cycle with period 7 and are always in 0..=6.
    #[test]
    fn weekday_cycles(days in -100_000i64..100_000) {
        let d = Date::from_days(days);
        prop_assert!(d.weekday() <= 6);
        prop_assert_eq!(d.plus_days(7).weekday(), d.weekday());
        prop_assert_eq!(d.succ().weekday(), (d.weekday() + 1) % 7);
    }

    /// Parse/display round trip for any valid construction.
    #[test]
    fn display_parse_round_trip(days in 0i64..60_000) {
        let d = Date::from_days(days);
        prop_assert_eq!(Date::parse(&d.to_string()).unwrap(), d);
    }

    /// Date ordering matches day-number ordering.
    #[test]
    fn ordering_consistent(a in -50_000i64..50_000, b in -50_000i64..50_000) {
        let da = Date::from_days(a);
        let db = Date::from_days(b);
        prop_assert_eq!(da.cmp(&db), a.cmp(&b));
    }
}
