//! Client-side behaviours.
//!
//! §5 catalogues the client landscape the rollout had to absorb:
//! interactive terminal users, GUI clients with keyboard-interactive
//! support (PuTTY, Bitvise, WinSCP, FileZilla, Cyberduck), and scripted
//! clients (cron jobs, SFTP/SCP/rsync movers) that cannot answer a token
//! prompt at all. A [`ClientProfile`] bundles credentials with a response
//! policy and acts as the PAM conversation when the daemon runs the stack.

use crate::keys::KeyPair;
use hpcmfa_pam::conv::{ConvError, Prompt};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// How a client obtains a token code when prompted.
pub enum TokenSource {
    /// No way to answer (scripted/batch clients).
    None,
    /// Ask the device: a closure from Unix time to the displayed code
    /// (wraps a SoftToken/HardToken or an SMS inbox read).
    Device(Arc<dyn Fn(u64) -> Option<String> + Send + Sync>),
    /// A fixed code (training accounts, or a user typing from paper).
    Fixed(String),
}

impl TokenSource {
    /// Wrap a device closure.
    pub fn device(f: impl Fn(u64) -> Option<String> + Send + Sync + 'static) -> Self {
        TokenSource::Device(Arc::new(f))
    }
}

/// A connecting client: identity, credentials, and conversation policy.
pub struct ClientProfile {
    /// Login name.
    pub username: String,
    /// Source address.
    pub source_ip: Ipv4Addr,
    /// Key offered to sshd, if any.
    pub key: Option<KeyPair>,
    /// Password typed when prompted, if any.
    pub password: Option<String>,
    /// Token-code source for MFA prompts.
    pub token: TokenSource,
    /// Whether keyboard-interactive is supported at all. The §4.1 audit
    /// found "the far majority of these log in events were not invoked
    /// with a TTY" — those clients set this false.
    pub interactive: bool,
    /// Whether a TTY would be allocated (interactive shell vs scp/sftp).
    pub wants_tty: bool,
}

impl ClientProfile {
    /// An interactive terminal user with password + device.
    pub fn interactive_user(username: &str, ip: Ipv4Addr, password: &str) -> Self {
        ClientProfile {
            username: username.to_string(),
            source_ip: ip,
            key: None,
            password: Some(password.to_string()),
            token: TokenSource::None,
            interactive: true,
            wants_tty: true,
        }
    }

    /// A scripted batch client using a public key, no conversation support.
    pub fn batch_client(username: &str, ip: Ipv4Addr, key: KeyPair) -> Self {
        ClientProfile {
            username: username.to_string(),
            source_ip: ip,
            key: Some(key),
            password: None,
            token: TokenSource::None,
            interactive: false,
            wants_tty: false,
        }
    }

    /// Attach a key.
    pub fn with_key(mut self, key: KeyPair) -> Self {
        self.key = Some(key);
        self
    }

    /// Attach a token source.
    pub fn with_token(mut self, token: TokenSource) -> Self {
        self.token = token;
        self
    }
}

/// The connection parameters sshd sees before PAM runs.
#[derive(Debug, Clone)]
pub struct ConnectionRequest {
    /// Login name.
    pub username: String,
    /// Peer address.
    pub source_ip: Ipv4Addr,
    /// Fingerprint of the key offered, if any.
    pub offered_key_fingerprint: Option<String>,
    /// TTY requested.
    pub wants_tty: bool,
}

/// Answers PAM prompts on behalf of a client profile. The daemon adapts
/// this into the PAM conversation.
pub trait CredentialResponder: Send {
    /// Respond to one prompt at time `now`.
    fn respond(&mut self, prompt: &Prompt, now: u64) -> Result<String, ConvError>;
}

/// The standard responder: passwords for password prompts, token codes for
/// token prompts, empty acknowledgements for info prompts.
pub struct ProfileResponder<'a> {
    profile: &'a ClientProfile,
}

impl<'a> ProfileResponder<'a> {
    /// Respond using `profile`'s credentials.
    pub fn new(profile: &'a ClientProfile) -> Self {
        ProfileResponder { profile }
    }
}

impl CredentialResponder for ProfileResponder<'_> {
    fn respond(&mut self, prompt: &Prompt, now: u64) -> Result<String, ConvError> {
        if !self.profile.interactive && prompt.wants_input() {
            return Err(ConvError::Unsupported);
        }
        if !prompt.wants_input() {
            return Ok(String::new());
        }
        let text = prompt.text().to_ascii_lowercase();
        if text.contains("password") {
            return self.profile.password.clone().ok_or(ConvError::Aborted);
        }
        if text.contains("token") {
            return match &self.profile.token {
                TokenSource::None => Err(ConvError::Aborted),
                TokenSource::Fixed(code) => Ok(code.clone()),
                TokenSource::Device(f) => f(now).ok_or(ConvError::Aborted),
            };
        }
        // Acknowledgement prompts ("press return"), or anything unknown.
        Ok(String::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt_pw() -> Prompt {
        Prompt::EchoOff("Password: ".into())
    }

    fn prompt_token() -> Prompt {
        Prompt::EchoOff("TACC Token:".into())
    }

    #[test]
    fn interactive_user_answers_password() {
        let p = ClientProfile::interactive_user("alice", Ipv4Addr::LOCALHOST, "hunter2");
        let mut r = ProfileResponder::new(&p);
        assert_eq!(r.respond(&prompt_pw(), 0).unwrap(), "hunter2");
    }

    #[test]
    fn device_token_source_uses_time() {
        let p = ClientProfile::interactive_user("alice", Ipv4Addr::LOCALHOST, "pw").with_token(
            TokenSource::device(|now| Some(format!("{:06}", now % 1_000_000))),
        );
        let mut r = ProfileResponder::new(&p);
        assert_eq!(r.respond(&prompt_token(), 123456).unwrap(), "123456");
    }

    #[test]
    fn fixed_token_source() {
        let p = ClientProfile::interactive_user("t", Ipv4Addr::LOCALHOST, "pw")
            .with_token(TokenSource::Fixed("424242".into()));
        let mut r = ProfileResponder::new(&p);
        assert_eq!(r.respond(&prompt_token(), 0).unwrap(), "424242");
    }

    #[test]
    fn missing_credentials_abort() {
        let p = ClientProfile::interactive_user("alice", Ipv4Addr::LOCALHOST, "pw");
        let mut r = ProfileResponder::new(&p);
        assert_eq!(r.respond(&prompt_token(), 0), Err(ConvError::Aborted));
        let mut no_pw = ClientProfile::interactive_user("alice", Ipv4Addr::LOCALHOST, "x");
        no_pw.password = None;
        let mut r2 = ProfileResponder::new(&no_pw);
        assert_eq!(r2.respond(&prompt_pw(), 0), Err(ConvError::Aborted));
    }

    #[test]
    fn batch_client_refuses_prompts() {
        let key = KeyPair::generate("svc@remote");
        let p = ClientProfile::batch_client("svc", Ipv4Addr::LOCALHOST, key);
        let mut r = ProfileResponder::new(&p);
        assert_eq!(r.respond(&prompt_pw(), 0), Err(ConvError::Unsupported));
        // Info prompts are fine even for batch clients (no input needed).
        assert_eq!(r.respond(&Prompt::Info("banner".into()), 0).unwrap(), "");
    }

    #[test]
    fn acknowledgement_prompt_answered_with_empty() {
        let p = ClientProfile::interactive_user("alice", Ipv4Addr::LOCALHOST, "pw");
        let mut r = ProfileResponder::new(&p);
        assert_eq!(
            r.respond(&Prompt::EchoOn("Press return to acknowledge: ".into()), 0)
                .unwrap(),
            ""
        );
    }
}
