//! Hexadecimal encoding helpers. HTTP Digest authentication exchanges all of
//! its hashes as lower-case hex, and audit logs render secrets' fingerprints
//! the same way.

/// Errors from [`from_hex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HexError {
    /// Character not in `[0-9a-fA-F]`.
    InvalidChar(char),
    /// Odd number of hex digits.
    OddLength,
}

impl std::fmt::Display for HexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HexError::InvalidChar(c) => write!(f, "invalid hex character {c:?}"),
            HexError::OddLength => write!(f, "odd-length hex string"),
        }
    }
}

impl std::error::Error for HexError {}

/// Encode bytes as lower-case hex.
pub fn to_hex(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push(char::from_digit((b >> 4) as u32, 16).unwrap());
        out.push(char::from_digit((b & 0xf) as u32, 16).unwrap());
    }
    out
}

/// Decode hex (either case) into bytes.
pub fn from_hex(s: &str) -> Result<Vec<u8>, HexError> {
    if !s.len().is_multiple_of(2) {
        return Err(HexError::OddLength);
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let mut chars = s.chars();
    while let (Some(hi), Some(lo)) = (chars.next(), chars.next()) {
        let h = hi.to_digit(16).ok_or(HexError::InvalidChar(hi))?;
        let l = lo.to_digit(16).ok_or(HexError::InvalidChar(lo))?;
        out.push(((h << 4) | l) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(from_hex(&to_hex(&data)).unwrap(), data);
    }

    #[test]
    fn upper_case_accepted() {
        assert_eq!(from_hex("DEADBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn errors() {
        assert_eq!(from_hex("abc"), Err(HexError::OddLength));
        assert_eq!(from_hex("zz"), Err(HexError::InvalidChar('z')));
    }

    #[test]
    fn empty() {
        assert_eq!(to_hex(&[]), "");
        assert_eq!(from_hex("").unwrap(), Vec::<u8>::new());
    }
}
