//! Dynamic risk assessment (§6 growth feature).
//!
//! A per-account behavioural engine scoring every login attempt from its
//! history: first-seen countries and networks, impossible travel
//! (country-to-country faster than a plane), and failure velocity. Scores
//! map to [`RiskDecision`]s; the PAM gate turns *step-up* into "no
//! exemption bypass for this login" and *deny* into an outright refusal.

use crate::geo::{CountryCode, GeoDb};
use hpcmfa_pam::context::PamContext;
use hpcmfa_pam::stack::{PamModule, PamResult};
use hpcmfa_telemetry::{
    Counter, Gauge, MetricsRegistry, SecurityEventKind, SpanCtx, SpanStatus, TraceClock, TraceId,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sentinel for "no tracked history, nothing to purge" (mirrors the
/// token store's `sms_expiry_floor` watermark).
const NO_FLOOR: u64 = u64::MAX;

/// Scoring weights and thresholds.
#[derive(Debug, Clone)]
pub struct RiskWeights {
    /// First login ever seen from this country.
    pub new_country: u32,
    /// First login from this /16 network.
    pub new_network: u32,
    /// Country differs from the previous login's and the gap is under
    /// [`RiskWeights::travel_window_secs`].
    pub impossible_travel: u32,
    /// More than [`RiskWeights::velocity_max`] attempts inside
    /// [`RiskWeights::velocity_window_secs`].
    pub high_velocity: u32,
    /// Recent failed attempts (each, capped at 5 counted).
    pub recent_failure: u32,
    /// Minimum plausible country-switch time.
    pub travel_window_secs: u64,
    /// Attempt-velocity window.
    pub velocity_window_secs: u64,
    /// Attempts allowed inside the velocity window.
    pub velocity_max: usize,
    /// Score at or above which step-up is demanded.
    pub step_up_at: u32,
    /// Score at or above which the login is denied.
    pub deny_at: u32,
    /// Per-user history entries idle for longer than this are purged
    /// (watermark sweep); a purged user's next login re-baselines.
    pub history_retention_secs: u64,
}

impl Default for RiskWeights {
    fn default() -> Self {
        RiskWeights {
            new_country: 40,
            new_network: 15,
            impossible_travel: 45,
            high_velocity: 25,
            recent_failure: 10,
            travel_window_secs: 4 * 3600,
            velocity_window_secs: 60,
            velocity_max: 6,
            step_up_at: 40,
            deny_at: 90,
            history_retention_secs: 90 * 86_400,
        }
    }
}

/// The verdict for one attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RiskDecision {
    /// Business as usual.
    Allow,
    /// Allow, but the second factor may not be bypassed.
    StepUp,
    /// Refuse outright.
    Deny,
}

impl RiskDecision {
    /// The label used for `hpcmfa_risk_decisions_total{decision=…}`.
    pub fn label(self) -> &'static str {
        match self {
            RiskDecision::Allow => "allow",
            RiskDecision::StepUp => "step_up",
            RiskDecision::Deny => "deny",
        }
    }
}

#[derive(Default)]
struct UserHistory {
    countries: Vec<CountryCode>,
    networks: Vec<u32>, // /16 prefixes seen
    last_country: Option<(CountryCode, u64)>,
    attempts: Vec<u64>,
    recent_failures: Vec<u64>,
    last_seen: u64,
}

/// Counter/gauge handles the engine bumps once attached to a registry.
struct RiskMetrics {
    registry: Arc<MetricsRegistry>,
    allow: Arc<Counter>,
    step_up: Arc<Counter>,
    deny: Arc<Counter>,
    purged: Arc<Counter>,
    tracked: Arc<Gauge>,
}

/// The engine: shared, thread-safe, bounded history per user.
pub struct RiskEngine {
    geodb: Arc<GeoDb>,
    weights: RiskWeights,
    history: Mutex<HashMap<String, UserHistory>>,
    /// Earliest instant any tracked user's history expires. Only ever
    /// lowered outside a sweep (`fetch_min`), recomputed exactly during
    /// one — the same discipline as the store's `sms_expiry_floor`.
    purge_floor: AtomicU64,
    metrics: Mutex<Option<RiskMetrics>>,
}

impl RiskEngine {
    /// Build over `geodb` with `weights`.
    pub fn new(geodb: Arc<GeoDb>, weights: RiskWeights) -> Arc<Self> {
        Arc::new(RiskEngine {
            geodb,
            weights,
            history: Mutex::new(HashMap::new()),
            purge_floor: AtomicU64::new(NO_FLOOR),
            metrics: Mutex::new(None),
        })
    }

    /// Attach a metrics registry: decisions bump
    /// `hpcmfa_risk_decisions_total{decision=…}`, step-up/deny emit
    /// typed security events, purges and tracked-user count are
    /// observable. Pre-registers every series so `/system/metrics`
    /// renders them at zero.
    pub fn attach_metrics(&self, registry: Arc<MetricsRegistry>) {
        let m = RiskMetrics {
            allow: registry.counter("hpcmfa_risk_decisions_total", &[("decision", "allow")]),
            step_up: registry.counter("hpcmfa_risk_decisions_total", &[("decision", "step_up")]),
            deny: registry.counter("hpcmfa_risk_decisions_total", &[("decision", "deny")]),
            purged: registry.counter("hpcmfa_risk_history_purged_total", &[]),
            tracked: registry.gauge("hpcmfa_risk_tracked_users", &[]),
            registry,
        };
        *self.metrics.lock() = Some(m);
    }

    fn net16(ip: Ipv4Addr) -> u32 {
        u32::from(ip) >> 16
    }

    /// Watermark sweep: drop every user idle past the retention window.
    /// Cheap in the common case — a single atomic load says "nothing can
    /// have expired yet". Returns how many entries were purged.
    fn purge_due(&self, history: &mut HashMap<String, UserHistory>, now: u64) -> u64 {
        if now < self.purge_floor.load(Ordering::SeqCst) {
            return 0;
        }
        let retention = self.weights.history_retention_secs;
        let before = history.len();
        history.retain(|_, h| h.last_seen.saturating_add(retention) > now);
        let mut floor = NO_FLOOR;
        for h in history.values() {
            floor = floor.min(h.last_seen.saturating_add(retention));
        }
        self.purge_floor.store(floor, Ordering::SeqCst);
        (before - history.len()) as u64
    }

    /// Score an attempt and update history. Call once per login attempt.
    pub fn assess(&self, user: &str, ip: Ipv4Addr, now: u64) -> (u32, RiskDecision) {
        self.assess_traced(user, ip, now, None)
    }

    /// [`RiskEngine::assess`] with the in-flight request's trace id, so
    /// emitted step-up/deny events link back to the login's spans. The
    /// span roots at virtual second `now`; callers already holding a
    /// propagated context use [`RiskEngine::assess_spanned`].
    pub fn assess_traced(
        &self,
        user: &str,
        ip: Ipv4Addr,
        now: u64,
        trace: Option<TraceId>,
    ) -> (u32, RiskDecision) {
        let ctx = trace.map(|t| SpanCtx::root(t, TraceClock::at(now.saturating_mul(1_000_000))));
        self.assess_spanned(user, ip, now, ctx.as_ref())
    }

    /// [`RiskEngine::assess`] under a propagated span context: the scoring
    /// pass is recorded as a timed `risk`/`assess` span (when a registry is
    /// attached) and step-up/deny events are stamped with its id.
    pub fn assess_spanned(
        &self,
        user: &str,
        ip: Ipv4Addr,
        now: u64,
        ctx: Option<&SpanCtx>,
    ) -> (u32, RiskDecision) {
        let trace = ctx.map(|c| c.trace);
        let w = &self.weights;
        let country = self.geodb.country_of(ip);
        let net = Self::net16(ip);

        let mut history = self.history.lock();
        let purged = self.purge_due(&mut history, now);
        let h = history.entry(user.to_string()).or_default();
        let mut score = 0u32;

        if let Some(cc) = country {
            if !h.countries.contains(&cc) {
                // A brand-new account's very first location is baseline,
                // not anomaly.
                if !h.countries.is_empty() {
                    score += w.new_country;
                }
                h.countries.push(cc);
            }
            if let Some((prev, at)) = h.last_country {
                if prev != cc && now.saturating_sub(at) < w.travel_window_secs {
                    score += w.impossible_travel;
                }
            }
            h.last_country = Some((cc, now));
        }
        if !h.networks.contains(&net) {
            if !h.networks.is_empty() {
                score += w.new_network;
            }
            h.networks.push(net);
        }

        h.attempts.push(now);
        h.attempts
            .retain(|&t| now.saturating_sub(t) <= w.velocity_window_secs);
        if h.attempts.len() > w.velocity_max {
            score += w.high_velocity;
        }

        h.recent_failures.retain(|&t| now.saturating_sub(t) <= 3600);
        score += w.recent_failure * (h.recent_failures.len().min(5) as u32);

        h.last_seen = now;
        let tracked = history.len();
        drop(history);
        self.purge_floor.fetch_min(
            now.saturating_add(w.history_retention_secs),
            Ordering::SeqCst,
        );

        let decision = if score >= w.deny_at {
            RiskDecision::Deny
        } else if score >= w.step_up_at {
            RiskDecision::StepUp
        } else {
            RiskDecision::Allow
        };
        if let Some(m) = self.metrics.lock().as_ref() {
            let mut span = ctx.map(|c| m.registry.tracer().start(c, "risk", "assess"));
            if let Some(g) = span.as_mut() {
                g.attr_u64("score", u64::from(score));
                g.set_detail(match decision {
                    RiskDecision::Allow => "allow",
                    RiskDecision::StepUp => "step_up",
                    RiskDecision::Deny => "deny",
                });
                if decision == RiskDecision::Deny {
                    g.set_status(SpanStatus::Error);
                }
            }
            match decision {
                RiskDecision::Allow => m.allow.inc(),
                RiskDecision::StepUp => m.step_up.inc(),
                RiskDecision::Deny => m.deny.inc(),
            }
            if purged > 0 {
                m.purged.add(purged);
            }
            m.tracked.set(tracked as i64);
            let kind = match decision {
                RiskDecision::StepUp => Some(SecurityEventKind::RiskStepUp),
                RiskDecision::Deny => Some(SecurityEventKind::RiskDeny),
                RiskDecision::Allow => None,
            };
            if let Some(kind) = kind {
                m.registry.emit_event_spanned(
                    kind,
                    trace,
                    span.as_ref().map(|g| g.id()),
                    now,
                    format!("user={user} ip={ip} score={score}"),
                );
            }
        }
        (score, decision)
    }

    /// Report the outcome of the attempt (feeds the failure signal).
    pub fn record_outcome(&self, user: &str, now: u64, granted: bool) {
        if !granted {
            let mut history = self.history.lock();
            let h = history.entry(user.to_string()).or_default();
            h.recent_failures.push(now);
            h.last_seen = now;
            drop(history);
            self.purge_floor.fetch_min(
                now.saturating_add(self.weights.history_retention_secs),
                Ordering::SeqCst,
            );
        }
    }

    /// How many users the engine currently tracks (post-purge size).
    pub fn tracked_users(&self) -> usize {
        self.history.lock().len()
    }

    /// Forget a user's history (account reset).
    pub fn reset(&self, user: &str) {
        self.history.lock().remove(user);
    }
}

/// The PAM gate: place `requisite` early in the stack.
pub struct RiskGateModule {
    engine: Arc<RiskEngine>,
}

impl RiskGateModule {
    /// Gate on `engine`.
    pub fn new(engine: Arc<RiskEngine>) -> Arc<Self> {
        Arc::new(RiskGateModule { engine })
    }
}

impl PamModule for RiskGateModule {
    fn name(&self) -> &'static str {
        "pam_tacc_risk"
    }

    fn authenticate(&self, ctx: &mut PamContext<'_>) -> PamResult {
        let span_ctx = ctx.span_ctx();
        let (_score, decision) =
            self.engine
                .assess_spanned(&ctx.username, ctx.rhost, ctx.now(), Some(&span_ctx));
        match decision {
            RiskDecision::Allow => PamResult::Ignore,
            RiskDecision::StepUp => {
                ctx.risk_step_up = true;
                PamResult::Ignore
            }
            RiskDecision::Deny => PamResult::AuthErr,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::GeoDb;

    fn engine() -> Arc<RiskEngine> {
        let db = GeoDb::parse(
            "70.0.0.0/8    US\n\
             141.30.0.0/16 DE\n\
             1.2.0.0/16    CN\n",
        )
        .unwrap();
        RiskEngine::new(Arc::new(db), RiskWeights::default())
    }

    const DAY: u64 = 86_400;

    #[test]
    fn first_login_is_baseline() {
        let e = engine();
        let (score, d) = e.assess("alice", "70.1.1.1".parse().unwrap(), 0);
        assert_eq!(score, 0);
        assert_eq!(d, RiskDecision::Allow);
    }

    #[test]
    fn habitual_location_stays_quiet() {
        let e = engine();
        for day in 0..30 {
            let (score, d) = e.assess("alice", "70.1.1.1".parse().unwrap(), day * DAY);
            assert_eq!(score, 0, "day {day}");
            assert_eq!(d, RiskDecision::Allow);
        }
    }

    #[test]
    fn new_country_triggers_step_up() {
        let e = engine();
        e.assess("alice", "70.1.1.1".parse().unwrap(), 0);
        // Weeks later from Germany: new country + new network.
        let (score, d) = e.assess("alice", "141.30.1.1".parse().unwrap(), 30 * DAY);
        assert_eq!(score, 40 + 15);
        assert_eq!(d, RiskDecision::StepUp);
        // The next German login is familiar again.
        let (score, d) = e.assess("alice", "141.30.1.1".parse().unwrap(), 31 * DAY);
        assert_eq!(score, 0);
        assert_eq!(d, RiskDecision::Allow);
    }

    #[test]
    fn impossible_travel_denies() {
        let e = engine();
        e.assess("alice", "70.1.1.1".parse().unwrap(), 0);
        e.assess("alice", "141.30.1.1".parse().unwrap(), 30 * DAY); // step-up (trip)
                                                                    // 20 minutes after a German login, a Chinese one: new country +
                                                                    // new network + impossible travel ≥ deny threshold.
        let (score, d) = e.assess("alice", "1.2.3.4".parse().unwrap(), 30 * DAY + 1200);
        assert!(score >= 90, "score {score}");
        assert_eq!(d, RiskDecision::Deny);
    }

    #[test]
    fn velocity_scores() {
        let e = engine();
        // Warm up location.
        e.assess("bot", "70.1.1.1".parse().unwrap(), 0);
        let mut last = (0, RiskDecision::Allow);
        for i in 0..10 {
            last = e.assess("bot", "70.1.1.1".parse().unwrap(), 1000 + i);
        }
        assert!(last.0 >= 25, "velocity scored: {}", last.0);
    }

    #[test]
    fn failures_accumulate_risk() {
        let e = engine();
        e.assess("alice", "70.1.1.1".parse().unwrap(), 0);
        for i in 0..5 {
            e.record_outcome("alice", 1000 + i, false);
        }
        let (score, d) = e.assess("alice", "70.1.1.1".parse().unwrap(), 2000);
        assert_eq!(score, 50);
        assert_eq!(d, RiskDecision::StepUp);
        // An hour later the failures age out.
        let (score, _) = e.assess("alice", "70.1.1.1".parse().unwrap(), 2000 + 3700);
        assert_eq!(score, 0);
    }

    #[test]
    fn reset_clears_history() {
        let e = engine();
        e.assess("alice", "70.1.1.1".parse().unwrap(), 0);
        e.reset("alice");
        // Post-reset the first login is baseline again (no new-country hit).
        let (score, _) = e.assess("alice", "141.30.1.1".parse().unwrap(), DAY);
        assert_eq!(score, 0);
    }

    #[test]
    fn pam_gate_maps_decisions() {
        use hpcmfa_otp::clock::SimClock;
        use hpcmfa_pam::conv::ScriptedConversation;

        let e = engine();
        let gate = RiskGateModule::new(Arc::clone(&e));
        let run = |user: &str, ip: &str, now: u64| {
            let mut conv = ScriptedConversation::with_answers(Vec::<String>::new());
            let mut ctx = PamContext::new(
                user,
                ip.parse().unwrap(),
                Arc::new(SimClock::at(now)),
                &mut conv,
            );
            let r = gate.authenticate(&mut ctx);
            (r, ctx.risk_step_up)
        };
        assert_eq!(run("carol", "70.1.1.1", 0), (PamResult::Ignore, false));
        // New country weeks later: step-up flag set, stack continues.
        assert_eq!(
            run("carol", "141.30.1.1", 30 * DAY),
            (PamResult::Ignore, true)
        );
        // Impossible travel right after: denied.
        assert_eq!(
            run("carol", "1.2.3.4", 30 * DAY + 600),
            (PamResult::AuthErr, false)
        );
    }

    #[test]
    fn zero_width_velocity_window_counts_only_same_second() {
        let e = RiskEngine::new(
            Arc::new(GeoDb::parse("70.0.0.0/8 US\n").unwrap()),
            RiskWeights {
                velocity_window_secs: 0,
                velocity_max: 2,
                ..RiskWeights::default()
            },
        );
        // Attempts on distinct seconds never accumulate.
        for i in 0..10 {
            let (score, _) = e.assess("bot", "70.1.1.1".parse().unwrap(), 100 + i);
            assert_eq!(score, 0, "attempt {i}");
        }
        // Three attempts inside the same second trip the zero-width window.
        e.assess("bot", "70.1.1.1".parse().unwrap(), 500);
        e.assess("bot", "70.1.1.1".parse().unwrap(), 500);
        let (score, _) = e.assess("bot", "70.1.1.1".parse().unwrap(), 500);
        assert_eq!(score, 25);
    }

    #[test]
    fn travel_window_boundary_is_exclusive() {
        let w = RiskWeights::default();
        // Gap exactly == travel_window_secs: plausible, no travel score.
        let e = engine();
        e.assess("alice", "70.1.1.1".parse().unwrap(), 0);
        e.assess("alice", "141.30.1.1".parse().unwrap(), 30 * DAY);
        let (score, _) = e.assess(
            "alice",
            "1.2.3.4".parse().unwrap(),
            30 * DAY + w.travel_window_secs,
        );
        assert_eq!(score, 40 + 15, "boundary gap is only new country+network");
        // One second inside the window: impossible travel fires.
        let e = engine();
        e.assess("bob", "70.1.1.1".parse().unwrap(), 0);
        e.assess("bob", "141.30.1.1".parse().unwrap(), 30 * DAY);
        let (score, d) = e.assess(
            "bob",
            "1.2.3.4".parse().unwrap(),
            30 * DAY + w.travel_window_secs - 1,
        );
        assert_eq!(score, 40 + 15 + 45);
        assert_eq!(d, RiskDecision::Deny);
    }

    #[test]
    fn failure_score_saturates_at_five() {
        let e = engine();
        e.assess("alice", "70.1.1.1".parse().unwrap(), 0);
        for i in 0..50 {
            e.record_outcome("alice", 1000 + i, false);
        }
        // 50 fresh failures score exactly like 5: the cap keeps repeated
        // failures alone below the deny threshold.
        let (score, d) = e.assess("alice", "70.1.1.1".parse().unwrap(), 1100);
        assert_eq!(score, 50);
        assert_eq!(d, RiskDecision::StepUp);
    }

    #[test]
    fn idle_history_is_purged_at_the_watermark() {
        let e = RiskEngine::new(
            Arc::new(GeoDb::parse("70.0.0.0/8 US\n141.30.0.0/16 DE\n").unwrap()),
            RiskWeights {
                history_retention_secs: 1000,
                ..RiskWeights::default()
            },
        );
        e.assess("idle", "70.1.1.1".parse().unwrap(), 0);
        e.assess("fresh", "70.2.2.2".parse().unwrap(), 900);
        assert_eq!(e.tracked_users(), 2);
        // Sweeps only run once the earliest expiry passes; `idle` expires
        // at t=1000, `fresh` at t=1900.
        let (_, _) = e.assess("fresh", "70.2.2.2".parse().unwrap(), 1200);
        assert_eq!(e.tracked_users(), 1, "idle swept at the watermark");
        // A purged user re-baselines: a new country scores zero.
        let (score, d) = e.assess("idle", "141.30.9.9".parse().unwrap(), 1300);
        assert_eq!(score, 0);
        assert_eq!(d, RiskDecision::Allow);
    }

    #[test]
    fn metrics_and_events_track_decisions() {
        use hpcmfa_telemetry::MetricsRegistry;

        let reg = Arc::new(MetricsRegistry::new());
        let e = engine();
        e.attach_metrics(Arc::clone(&reg));
        e.assess("alice", "70.1.1.1".parse().unwrap(), 0); // allow (baseline)
        e.assess("alice", "141.30.1.1".parse().unwrap(), 30 * DAY); // step-up
        e.assess("alice", "1.2.3.4".parse().unwrap(), 30 * DAY + 600); // deny
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter("hpcmfa_risk_decisions_total{decision=\"allow\"}"),
            1
        );
        assert_eq!(
            snap.counter("hpcmfa_risk_decisions_total{decision=\"step_up\"}"),
            1
        );
        assert_eq!(
            snap.counter("hpcmfa_risk_decisions_total{decision=\"deny\"}"),
            1
        );
        let events = reg.security_events().all();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, SecurityEventKind::RiskStepUp);
        assert_eq!(events[1].kind, SecurityEventKind::RiskDeny);
        assert!(events[1].detail.contains("user=alice"));
    }
}
