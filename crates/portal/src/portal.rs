//! The portlet application: pairing, unpairing, and the interstitial
//! splash (§3.5).
//!
//! Every back-end mutation travels through the LinOTP admin REST interface
//! with a fresh HTTP-digest handshake — the portal holds a service
//! credential, never token secrets. After each successful (un)pairing the
//! identity back end and the LDAP `mfaPairing` attribute are updated,
//! which is what the PAM token module later reads.

use crate::session::{PairingSession, SessionState};
use crate::signedurl::{SignedUrl, UrlSigner, DEFAULT_VALIDITY_SECS};
use hpcmfa_crypto::digestauth::answer_challenge;
use hpcmfa_directory::identity::{IdentityDb, PairingMethod};
use hpcmfa_directory::ldap::{Directory, Entry};
use hpcmfa_directory::MFA_PAIRING_ATTR;
use hpcmfa_otp::clock::Clock;
use hpcmfa_otp::qr::QrCode;
use hpcmfa_otp::secret::Secret;
use hpcmfa_otpserver::admin::{AdminApi, HttpRequest, HttpResponse};
use hpcmfa_otpserver::json::Json;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What the user sees after portal login.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoginPage {
    /// Whether the interstitial "set up MFA" splash is shown.
    pub splash: bool,
}

/// Portal operation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortalError {
    /// Account not found in the identity database.
    UnknownAccount,
    /// No pairing session in a confirmable state (refresh, back button,
    /// resubmission, or double confirmation).
    NoActiveSession,
    /// The confirmation code did not validate.
    WrongCode,
    /// Phone number rejected.
    BadPhone(String),
    /// Serial not present in the vendor seed file (or already claimed).
    UnknownSerial,
    /// Hard tokens are unpaired via the support ticket system, not the
    /// portal (§3.5).
    HardTokenRequiresTicket,
    /// The user has no pairing to remove.
    NotPaired,
    /// Signed-URL verification failed.
    BadUnpairLink,
    /// The back end admin API refused (auth failure or internal error).
    Backend(String),
}

impl std::fmt::Display for PortalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortalError::UnknownAccount => write!(f, "unknown account"),
            PortalError::NoActiveSession => write!(f, "no active pairing session"),
            PortalError::WrongCode => write!(f, "token code validation failed"),
            PortalError::BadPhone(p) => write!(f, "invalid phone number: {p}"),
            PortalError::UnknownSerial => write!(f, "unknown hard token serial"),
            PortalError::HardTokenRequiresTicket => {
                write!(
                    f,
                    "hard tokens are unpaired through the support ticket system"
                )
            }
            PortalError::NotPaired => write!(f, "no MFA pairing on file"),
            PortalError::BadUnpairLink => write!(f, "invalid or expired unpairing link"),
            PortalError::Backend(m) => write!(f, "back end error: {m}"),
        }
    }
}

impl std::error::Error for PortalError {}

/// The portal application.
pub struct Portal {
    admin: Arc<AdminApi>,
    admin_user: String,
    admin_pass: String,
    identity: IdentityDb,
    directory: Directory,
    people_base: String,
    signer: UrlSigner,
    clock: Arc<dyn Clock>,
    sessions: Mutex<HashMap<String, PairingSession>>,
    /// Vendor seed file: serial → secret, consumed as fobs are claimed.
    hard_seeds: Mutex<HashMap<String, Secret>>,
    cnonce: AtomicU64,
}

impl Portal {
    /// Assemble the portal.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        admin: Arc<AdminApi>,
        admin_user: &str,
        admin_pass: &str,
        identity: IdentityDb,
        directory: Directory,
        people_base: &str,
        url_key: &[u8],
        clock: Arc<dyn Clock>,
    ) -> Arc<Self> {
        Arc::new(Portal {
            admin,
            admin_user: admin_user.to_string(),
            admin_pass: admin_pass.to_string(),
            identity,
            directory,
            people_base: people_base.to_string(),
            signer: UrlSigner::new(
                url_key.to_vec(),
                "https://portal.tacc.utexas.edu/mfa/unpair",
            ),
            clock,
            sessions: Mutex::new(HashMap::new()),
            hard_seeds: Mutex::new(HashMap::new()),
            cnonce: AtomicU64::new(0),
        })
    }

    /// Import the vendor seed file for a hard-token batch (staff action at
    /// batch receipt).
    pub fn import_hard_token_batch(&self, seeds: impl IntoIterator<Item = (String, Secret)>) {
        self.hard_seeds.lock().extend(seeds);
    }

    /// One digest-authenticated admin call: challenge, answer, dispatch.
    fn admin_call(
        &self,
        method: &str,
        path: &str,
        body: Json,
    ) -> Result<HttpResponse, PortalError> {
        let now = self.clock.now();
        let challenge = self.admin.issue_challenge();
        let cn = self.cnonce.fetch_add(1, Ordering::Relaxed);
        let auth = answer_challenge(
            &challenge,
            &self.admin_user,
            &self.admin_pass,
            method,
            path,
            &format!("cnonce-{cn}"),
            1,
        );
        let resp = self
            .admin
            .handle(&HttpRequest::new(method, path, body).with_auth(auth), now);
        if resp.status == 401 {
            return Err(PortalError::Backend("admin authentication failed".into()));
        }
        Ok(resp)
    }

    fn validate_code(&self, user: &str, code: &str) -> Result<bool, PortalError> {
        let resp = self.admin.handle(
            &HttpRequest::new(
                "POST",
                "/validate/check",
                Json::obj([("user", Json::str(user)), ("pass", Json::str(code))]),
            ),
            self.clock.now(),
        );
        Ok(resp.value().and_then(Json::as_bool).unwrap_or(false))
    }

    // ------------------------------------------------------------------
    // Login & splash
    // ------------------------------------------------------------------

    /// Portal login: unpaired users see the interstitial splash, "re-
    /// prompted upon each log in" until they pair.
    pub fn login(&self, user: &str) -> Result<LoginPage, PortalError> {
        let rec = self.identity.get(user).ok_or(PortalError::UnknownAccount)?;
        Ok(LoginPage {
            splash: rec.pairing.is_none(),
        })
    }

    // ------------------------------------------------------------------
    // Pairing flows
    // ------------------------------------------------------------------

    /// Begin a soft-token pairing: returns the QR code to scan. Supersedes
    /// (aborts) any session already in flight.
    pub fn begin_soft_pairing(&self, user: &str) -> Result<QrCode, PortalError> {
        self.identity.get(user).ok_or(PortalError::UnknownAccount)?;
        let resp = self.admin_call(
            "POST",
            "/admin/init",
            Json::obj([("user", Json::str(user)), ("type", Json::str("soft"))]),
        )?;
        let uri = resp
            .value()
            .and_then(|v| v.get("otpauth"))
            .and_then(Json::as_str)
            .ok_or_else(|| PortalError::Backend("init returned no otpauth URI".into()))?;
        let now = self.clock.now();
        self.open_session(PairingSession::start(user, PairingMethod::Soft, now));
        Ok(QrCode::encode(uri))
    }

    /// Begin an SMS pairing with a phone number; LinOTP texts the
    /// confirmation code immediately.
    pub fn begin_sms_pairing(&self, user: &str, phone: &str) -> Result<(), PortalError> {
        self.identity.get(user).ok_or(PortalError::UnknownAccount)?;
        let resp = self.admin_call(
            "POST",
            "/admin/init",
            Json::obj([
                ("user", Json::str(user)),
                ("type", Json::str("sms")),
                ("phone", Json::str(phone)),
            ]),
        )?;
        if !resp.is_ok() {
            return Err(PortalError::BadPhone(phone.to_string()));
        }
        let trig = self.admin_call(
            "POST",
            "/admin/smschallenge",
            Json::obj([("user", Json::str(user))]),
        )?;
        if !trig.is_ok() {
            return Err(PortalError::Backend("SMS trigger failed".into()));
        }
        let now = self.clock.now();
        self.open_session(PairingSession::start(user, PairingMethod::Sms, now));
        Ok(())
    }

    /// Begin a hard-token pairing from the serial on the fob's back.
    pub fn begin_hard_pairing(&self, user: &str, serial: &str) -> Result<(), PortalError> {
        self.identity.get(user).ok_or(PortalError::UnknownAccount)?;
        let secret = {
            let seeds = self.hard_seeds.lock();
            seeds
                .get(serial)
                .cloned()
                .ok_or(PortalError::UnknownSerial)?
        };
        let resp = self.admin_call(
            "POST",
            "/admin/init",
            Json::obj([
                ("user", Json::str(user)),
                ("type", Json::str("hard")),
                ("serial", Json::str(serial)),
                ("otpkey", Json::str(secret.to_hex())),
            ]),
        )?;
        if !resp.is_ok() {
            return Err(PortalError::Backend("hard init failed".into()));
        }
        let now = self.clock.now();
        let mut session = PairingSession::start(user, PairingMethod::Hard, now);
        session.serial = Some(serial.to_string());
        self.open_session(session);
        Ok(())
    }

    fn open_session(&self, session: PairingSession) {
        let mut sessions = self.sessions.lock();
        if let Some(old) = sessions.get_mut(&session.user) {
            old.abort();
        }
        sessions.insert(session.user.clone(), session);
    }

    /// A page refresh or back-button navigation mid-flow: abort.
    pub fn page_refresh(&self, user: &str) {
        if let Some(s) = self.sessions.lock().get_mut(user) {
            s.abort();
        }
    }

    /// The state of a user's session, if any.
    pub fn session_state(&self, user: &str) -> Option<SessionState> {
        self.sessions.lock().get(user).map(|s| s.state)
    }

    /// Confirm the pairing with the code from the new device. On success
    /// the identity back end and LDAP are notified.
    pub fn confirm_pairing(&self, user: &str, code: &str) -> Result<PairingMethod, PortalError> {
        let method = {
            let sessions = self.sessions.lock();
            let session = sessions.get(user).ok_or(PortalError::NoActiveSession)?;
            if !session.can_confirm() {
                return Err(PortalError::NoActiveSession);
            }
            session.method
        };
        if !self.validate_code(user, code)? {
            // Wrong code: the session stays open for a retry.
            return Err(PortalError::WrongCode);
        }
        let now = self.clock.now();
        // Consume the serial for hard tokens so a fob pairs only once.
        {
            let mut sessions = self.sessions.lock();
            let session = sessions.get_mut(user).ok_or(PortalError::NoActiveSession)?;
            if !session.can_confirm() {
                return Err(PortalError::NoActiveSession);
            }
            if let Some(serial) = &session.serial {
                self.hard_seeds.lock().remove(serial);
            }
            session.complete();
        }
        self.identity
            .set_pairing(user, method, now)
            .map_err(|_| PortalError::UnknownAccount)?;
        self.write_ldap_pairing(user, Some(method));
        Ok(method)
    }

    // ------------------------------------------------------------------
    // Unpairing flows
    // ------------------------------------------------------------------

    /// For SMS users about to unpair: text them a fresh code to prove
    /// possession.
    pub fn request_unpair_code(&self, user: &str) -> Result<(), PortalError> {
        let resp = self.admin_call(
            "POST",
            "/admin/smschallenge",
            Json::obj([("user", Json::str(user))]),
        )?;
        if resp.is_ok() {
            Ok(())
        } else {
            Err(PortalError::Backend("SMS trigger failed".into()))
        }
    }

    /// Remove the current pairing, proving possession with the current
    /// token code. Hard tokens must go through the ticket system.
    pub fn remove_pairing(&self, user: &str, current_code: &str) -> Result<(), PortalError> {
        let rec = self.identity.get(user).ok_or(PortalError::UnknownAccount)?;
        let method = rec.pairing.ok_or(PortalError::NotPaired)?;
        if method == PairingMethod::Hard {
            return Err(PortalError::HardTokenRequiresTicket);
        }
        if !self.validate_code(user, current_code)? {
            return Err(PortalError::WrongCode);
        }
        self.finish_unpair(user)
    }

    /// Email an out-of-band unpairing link (lost/broken device). Returns
    /// the link as it would appear in the email body.
    pub fn request_email_unpair(&self, user: &str) -> Result<SignedUrl, PortalError> {
        let rec = self.identity.get(user).ok_or(PortalError::UnknownAccount)?;
        let method = rec.pairing.ok_or(PortalError::NotPaired)?;
        if method == PairingMethod::Hard {
            return Err(PortalError::HardTokenRequiresTicket);
        }
        Ok(self
            .signer
            .issue(user, self.clock.now(), DEFAULT_VALIDITY_SECS))
    }

    /// Follow an emailed unpairing link.
    pub fn complete_email_unpair(&self, url: &str) -> Result<String, PortalError> {
        let user = self
            .signer
            .verify(url, self.clock.now())
            .map_err(|_| PortalError::BadUnpairLink)?;
        self.finish_unpair(&user)?;
        Ok(user)
    }

    fn finish_unpair(&self, user: &str) -> Result<(), PortalError> {
        let resp = self.admin_call(
            "POST",
            "/admin/remove",
            Json::obj([("user", Json::str(user))]),
        )?;
        if !resp.is_ok() {
            return Err(PortalError::Backend("remove failed".into()));
        }
        self.identity
            .clear_pairing(user, self.clock.now())
            .map_err(|_| PortalError::UnknownAccount)?;
        self.write_ldap_pairing(user, None);
        Ok(())
    }

    fn write_ldap_pairing(&self, user: &str, method: Option<PairingMethod>) {
        let dn = format!("uid={user},{}", self.people_base);
        if self.directory.get(&dn).is_none() {
            let _ = self
                .directory
                .add(Entry::new(dn.clone()).with_attr("uid", user));
        }
        let _ = self.directory.modify(&dn, |e| match method {
            Some(m) => e.set_attr(MFA_PAIRING_ATTR, vec![m.label().to_string()]),
            None => {
                e.remove_attr(MFA_PAIRING_ATTR);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmfa_directory::ldap::Filter;
    use hpcmfa_otp::clock::SimClock;
    use hpcmfa_otp::device::{HardTokenBatch, SoftToken};
    use hpcmfa_otpserver::server::LinotpServer;
    use hpcmfa_otpserver::sms::{PhoneNumber, SmsProvider, TwilioSim};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NOW: u64 = 1_470_787_200; // 2016-08-10

    struct Rig {
        portal: Arc<Portal>,
        linotp: Arc<LinotpServer>,
        twilio: Arc<TwilioSim>,
        identity: IdentityDb,
        directory: Directory,
        clock: SimClock,
    }

    fn rig() -> Rig {
        let twilio = TwilioSim::new(4);
        let linotp = LinotpServer::new(Arc::clone(&twilio) as Arc<dyn SmsProvider>, 31);
        let admin = AdminApi::new(Arc::clone(&linotp), "LinOTP admin area", 17);
        admin.add_admin("portal-svc", "portal-secret");
        let identity = IdentityDb::new();
        let directory = Directory::new();
        let clock = SimClock::at(NOW);
        let portal = Portal::new(
            admin,
            "portal-svc",
            "portal-secret",
            identity.clone(),
            directory.clone(),
            "ou=people,dc=tacc",
            b"url-signing-key",
            Arc::new(clock.clone()),
        );
        identity
            .create_account("alice", "alice@utexas.edu")
            .unwrap();
        identity.create_account("bob", "bob@utexas.edu").unwrap();
        Rig {
            portal,
            linotp,
            twilio,
            identity,
            directory,
            clock,
        }
    }

    fn ldap_pairing(rig: &Rig, user: &str) -> Option<String> {
        rig.directory
            .search("dc=tacc", &Filter::eq("uid", user))
            .first()
            .and_then(|e| e.get_one(MFA_PAIRING_ATTR).map(str::to_string))
    }

    #[test]
    fn splash_until_paired() {
        let r = rig();
        assert!(r.portal.login("alice").unwrap().splash);
        // Pair, then no splash.
        let qr = r.portal.begin_soft_pairing("alice").unwrap();
        let device = SoftToken::from_uri(qr.payload()).unwrap();
        let code = device.displayed_code(r.clock.now());
        r.portal.confirm_pairing("alice", &code).unwrap();
        assert!(!r.portal.login("alice").unwrap().splash);
        assert_eq!(
            r.portal.login("ghost").unwrap_err(),
            PortalError::UnknownAccount
        );
    }

    #[test]
    fn soft_pairing_end_to_end() {
        let r = rig();
        let qr = r.portal.begin_soft_pairing("alice").unwrap();
        // The QR payload is a scannable otpauth URI.
        let device = SoftToken::from_uri(qr.payload()).unwrap();
        let code = device.displayed_code(r.clock.now());
        let method = r.portal.confirm_pairing("alice", &code).unwrap();
        assert_eq!(method, PairingMethod::Soft);
        // Identity and LDAP both updated.
        assert_eq!(
            r.identity.get("alice").unwrap().pairing,
            Some(PairingMethod::Soft)
        );
        assert_eq!(ldap_pairing(&r, "alice").as_deref(), Some("soft"));
        // And the device now logs in through the validation engine.
        let next = device.displayed_code(r.clock.now() + 30);
        assert!(r
            .linotp
            .validate("alice", &next, r.clock.now() + 30)
            .is_success());
    }

    #[test]
    fn wrong_confirmation_code_allows_retry() {
        let r = rig();
        let qr = r.portal.begin_soft_pairing("alice").unwrap();
        assert_eq!(
            r.portal.confirm_pairing("alice", "000000").unwrap_err(),
            PortalError::WrongCode
        );
        // Session still open; correct code completes.
        let device = SoftToken::from_uri(qr.payload()).unwrap();
        let code = device.displayed_code(r.clock.now());
        assert!(r.portal.confirm_pairing("alice", &code).is_ok());
    }

    #[test]
    fn refresh_aborts_session() {
        let r = rig();
        let qr = r.portal.begin_soft_pairing("alice").unwrap();
        r.portal.page_refresh("alice");
        assert_eq!(r.portal.session_state("alice"), Some(SessionState::Aborted));
        let device = SoftToken::from_uri(qr.payload()).unwrap();
        let code = device.displayed_code(r.clock.now());
        assert_eq!(
            r.portal.confirm_pairing("alice", &code).unwrap_err(),
            PortalError::NoActiveSession
        );
        // Identity untouched.
        assert_eq!(r.identity.get("alice").unwrap().pairing, None);
    }

    #[test]
    fn double_confirmation_rejected() {
        let r = rig();
        let qr = r.portal.begin_soft_pairing("alice").unwrap();
        let device = SoftToken::from_uri(qr.payload()).unwrap();
        let code = device.displayed_code(r.clock.now());
        r.portal.confirm_pairing("alice", &code).unwrap();
        // Back button + resubmit: the spent session refuses.
        let code2 = device.displayed_code(r.clock.now() + 30);
        assert_eq!(
            r.portal.confirm_pairing("alice", &code2).unwrap_err(),
            PortalError::NoActiveSession
        );
    }

    #[test]
    fn sms_pairing_end_to_end() {
        let r = rig();
        r.portal.begin_sms_pairing("bob", "5125551234").unwrap();
        assert_eq!(r.twilio.sent_count(), 1);
        // Wait for carrier delivery, read the code off the phone.
        r.clock.advance(15);
        let phone = PhoneNumber::parse("5125551234").unwrap();
        let inbox = r.twilio.inbox(&phone, r.clock.now());
        let code = inbox[0].body.rsplit(' ').next().unwrap();
        assert_eq!(
            r.portal.confirm_pairing("bob", code).unwrap(),
            PairingMethod::Sms
        );
        assert_eq!(ldap_pairing(&r, "bob").as_deref(), Some("sms"));
    }

    #[test]
    fn sms_pairing_rejects_bad_phone() {
        let r = rig();
        assert!(matches!(
            r.portal.begin_sms_pairing("bob", "12345").unwrap_err(),
            PortalError::BadPhone(_)
        ));
    }

    #[test]
    fn hard_pairing_consumes_serial() {
        let r = rig();
        let mut rng = StdRng::seed_from_u64(77);
        let batch = HardTokenBatch::manufacture("TACC", 3, &mut rng);
        r.portal.import_hard_token_batch(batch.seed_file());

        r.portal.begin_hard_pairing("alice", "TACC-0002").unwrap();
        let fob = batch.by_serial("TACC-0002").unwrap();
        let code = fob.press_button(r.clock.now()).unwrap();
        assert_eq!(
            r.portal.confirm_pairing("alice", &code).unwrap(),
            PairingMethod::Hard
        );
        assert_eq!(ldap_pairing(&r, "alice").as_deref(), Some("hard"));
        // The same serial cannot be claimed again.
        assert_eq!(
            r.portal.begin_hard_pairing("bob", "TACC-0002").unwrap_err(),
            PortalError::UnknownSerial
        );
        // Unknown serials rejected outright.
        assert_eq!(
            r.portal.begin_hard_pairing("bob", "TACC-9999").unwrap_err(),
            PortalError::UnknownSerial
        );
    }

    #[test]
    fn unpair_with_possession_proof() {
        let r = rig();
        let qr = r.portal.begin_soft_pairing("alice").unwrap();
        let device = SoftToken::from_uri(qr.payload()).unwrap();
        let code = device.displayed_code(r.clock.now());
        r.portal.confirm_pairing("alice", &code).unwrap();

        // Wrong current code refused.
        assert_eq!(
            r.portal.remove_pairing("alice", "000000").unwrap_err(),
            PortalError::WrongCode
        );
        // Current code accepted.
        r.clock.advance(30);
        let current = device.displayed_code(r.clock.now());
        r.portal.remove_pairing("alice", &current).unwrap();
        assert_eq!(r.identity.get("alice").unwrap().pairing, None);
        assert_eq!(ldap_pairing(&r, "alice"), None);
        // Splash returns.
        assert!(r.portal.login("alice").unwrap().splash);
    }

    #[test]
    fn unpair_without_pairing_fails() {
        let r = rig();
        assert_eq!(
            r.portal.remove_pairing("alice", "123456").unwrap_err(),
            PortalError::NotPaired
        );
    }

    #[test]
    fn hard_token_unpair_requires_ticket() {
        let r = rig();
        let mut rng = StdRng::seed_from_u64(78);
        let batch = HardTokenBatch::manufacture("TACC", 1, &mut rng);
        r.portal.import_hard_token_batch(batch.seed_file());
        r.portal.begin_hard_pairing("alice", "TACC-0001").unwrap();
        let code = batch.fobs[0].press_button(r.clock.now()).unwrap();
        r.portal.confirm_pairing("alice", &code).unwrap();

        assert_eq!(
            r.portal.remove_pairing("alice", &code).unwrap_err(),
            PortalError::HardTokenRequiresTicket
        );
        assert_eq!(
            r.portal.request_email_unpair("alice").unwrap_err(),
            PortalError::HardTokenRequiresTicket
        );
    }

    #[test]
    fn email_unpair_flow() {
        let r = rig();
        let qr = r.portal.begin_soft_pairing("alice").unwrap();
        let device = SoftToken::from_uri(qr.payload()).unwrap();
        let code = device.displayed_code(r.clock.now());
        r.portal.confirm_pairing("alice", &code).unwrap();

        // Phone broke: user requests the email link.
        let link = r.portal.request_email_unpair("alice").unwrap();
        r.clock.advance(600);
        assert_eq!(r.portal.complete_email_unpair(&link.url).unwrap(), "alice");
        assert_eq!(r.identity.get("alice").unwrap().pairing, None);

        // The link is bound to its signature: tampering fails.
        assert_eq!(
            r.portal
                .complete_email_unpair("https://portal.tacc.utexas.edu/mfa/unpair?token=x.1.y")
                .unwrap_err(),
            PortalError::BadUnpairLink
        );
    }

    #[test]
    fn expired_email_link_rejected() {
        let r = rig();
        let qr = r.portal.begin_soft_pairing("alice").unwrap();
        let device = SoftToken::from_uri(qr.payload()).unwrap();
        let code = device.displayed_code(r.clock.now());
        r.portal.confirm_pairing("alice", &code).unwrap();
        let link = r.portal.request_email_unpair("alice").unwrap();
        r.clock.advance(DEFAULT_VALIDITY_SECS + 1);
        assert_eq!(
            r.portal.complete_email_unpair(&link.url).unwrap_err(),
            PortalError::BadUnpairLink
        );
    }

    #[test]
    fn new_pairing_supersedes_old_session() {
        let r = rig();
        let qr1 = r.portal.begin_soft_pairing("alice").unwrap();
        // User changes their mind, starts SMS pairing instead.
        r.portal.begin_sms_pairing("alice", "5125559999").unwrap();
        // Old QR's device can no longer confirm (secret was replaced too).
        let old_device = SoftToken::from_uri(qr1.payload()).unwrap();
        let stale = old_device.displayed_code(r.clock.now());
        assert!(r.portal.confirm_pairing("alice", &stale).is_err());
    }

    #[test]
    fn pairing_events_recorded_for_fig6() {
        let r = rig();
        let qr = r.portal.begin_soft_pairing("alice").unwrap();
        let device = SoftToken::from_uri(qr.payload()).unwrap();
        let code = device.displayed_code(r.clock.now());
        r.portal.confirm_pairing("alice", &code).unwrap();
        r.clock.advance(3600);
        let current = device.displayed_code(r.clock.now());
        r.portal.remove_pairing("alice", &current).unwrap();
        let log = r.identity.pairing_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].method, Some(PairingMethod::Soft));
        assert_eq!(log[1].method, None);
    }
}
