//! Per-server circuit breaker for the RADIUS client pool.
//!
//! FreeRADIUS guards its home-server pools with `zombie_period` (stop
//! sending to a server that stopped answering) and `revive_interval`
//! (periodically probe it again). This module reproduces that shape as an
//! explicit three-state breaker:
//!
//! * **Closed** — healthy; every request may go to the server.
//! * **Open** — the server accumulated [`BreakerConfig::failure_threshold`]
//!   consecutive transport failures; requests are skipped until
//!   [`BreakerConfig::cooldown_us`] of virtual time has passed.
//! * **Half-open** — the cooldown elapsed; exactly one revival probe is let
//!   through. Success closes the breaker, failure re-opens it for another
//!   cooldown.
//!
//! Time is the client's *virtual* clock (microseconds), so simulations stay
//! deterministic and never sleep. Callers pass `now_us` explicitly.

use parking_lot::Mutex;

/// Breaker tuning, mirroring FreeRADIUS `zombie_period`/`revive_interval`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive transport failures before the breaker opens.
    pub failure_threshold: u32,
    /// Virtual microseconds an open breaker waits before allowing a
    /// half-open revival probe.
    pub cooldown_us: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_us: 5_000_000, // 5 s of virtual time
        }
    }
}

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: requests flow.
    Closed,
    /// Tripped: requests are skipped until the cooldown elapses.
    Open,
    /// Cooldown elapsed: one probe in flight decides open vs closed.
    HalfOpen,
}

#[derive(Debug)]
struct Core {
    state: BreakerState,
    /// Consecutive transport failures since the last success.
    streak: u32,
    /// When an Open breaker next allows a probe.
    open_until_us: u64,
    /// How many times the breaker has transitioned Closed/HalfOpen → Open.
    opened_count: u64,
}

/// A three-state (closed/open/half-open) circuit breaker over virtual time.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    core: Mutex<Core>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            core: Mutex::new(Core {
                state: BreakerState::Closed,
                streak: 0,
                open_until_us: 0,
                opened_count: 0,
            }),
        }
    }

    /// The tuning this breaker runs with.
    pub fn config(&self) -> BreakerConfig {
        self.config
    }

    /// Current state (an Open breaker whose cooldown has passed still
    /// reports Open until a request asks to go through).
    pub fn state(&self) -> BreakerState {
        self.core.lock().state
    }

    /// How many times this breaker has opened.
    pub fn opened_count(&self) -> u64 {
        self.core.lock().opened_count
    }

    /// When an Open breaker will next allow a probe, if it is open.
    pub fn open_until_us(&self) -> Option<u64> {
        let core = self.core.lock();
        (core.state == BreakerState::Open).then_some(core.open_until_us)
    }

    /// May a request be sent to this server at virtual time `now_us`?
    /// An Open breaker whose cooldown has elapsed transitions to HalfOpen
    /// and admits the caller as the revival probe.
    pub fn allow(&self, now_us: u64) -> bool {
        let mut core = self.core.lock();
        match core.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_us >= core.open_until_us {
                    core.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// The server answered: close the breaker and clear the streak.
    pub fn record_success(&self) {
        let mut core = self.core.lock();
        core.state = BreakerState::Closed;
        core.streak = 0;
    }

    /// A transport-level failure at virtual time `now_us`: extend the
    /// streak; trip the breaker when the threshold is reached, and re-open
    /// immediately when a half-open probe fails.
    pub fn record_failure(&self, now_us: u64) {
        self.record_failure_opened(now_us);
    }

    /// Like [`CircuitBreaker::record_failure`], but reports whether *this*
    /// failure tripped the breaker open — the edge a caller reacts to
    /// exactly once (the OTP replication layer schedules a failover on it).
    pub fn record_failure_opened(&self, now_us: u64) -> bool {
        let mut core = self.core.lock();
        core.streak = core.streak.saturating_add(1);
        let trip = match core.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => core.streak >= self.config.failure_threshold,
            BreakerState::Open => false,
        };
        if trip {
            core.state = BreakerState::Open;
            core.open_until_us = now_us + self.config.cooldown_us;
            core.opened_count += 1;
        }
        trip
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_us: 1_000,
        }
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(cfg());
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(10);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opened_count(), 1);
        assert_eq!(b.open_until_us(), Some(1_010));
    }

    #[test]
    fn success_resets_the_streak() {
        let b = CircuitBreaker::new(cfg());
        b.record_failure(0);
        b.record_failure(0);
        b.record_success();
        b.record_failure(0);
        b.record_failure(0);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_blocks_until_cooldown_then_half_opens() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(100);
        }
        assert!(!b.allow(500));
        assert!(!b.allow(1_099));
        assert!(b.allow(1_100)); // cooldown elapsed → revival probe
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn failed_probe_reopens_successful_probe_closes() {
        let b = CircuitBreaker::new(cfg());
        for _ in 0..3 {
            b.record_failure(0);
        }
        assert!(b.allow(2_000));
        b.record_failure(2_000); // probe failed → straight back to Open
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.open_until_us(), Some(3_000));
        assert_eq!(b.opened_count(), 2);

        assert!(b.allow(3_000));
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow(3_001));
    }
}
