//! Crash-point sweep: run a scripted admin + login sequence against a
//! durable server, then simulate a crash after **every individual WAL
//! append** (every frame boundary) and at **every byte offset** (torn
//! tails), and assert the recovery invariants at each point:
//!
//! - a TOTP code the server accepted before the crash point never
//!   validates again on the recovered server (replay nullification
//!   cannot regress);
//! - an account the lockout policy deactivated before the crash point is
//!   still inactive after recovery, and an account staff explicitly
//!   reactivated is still active (lockout state cannot regress in either
//!   direction);
//! - recovery never panics, and a torn tail recovers by truncation so a
//!   second recovery sees a clean WAL.
//!
//! The same WAL bytes are swept through both the fault-injecting memory
//! backend and the real file backend, so the two implementations are held
//! to the identical contract.

use hpcmfa_otp::device::SoftToken;
use hpcmfa_otp::totp::TotpParams;
use hpcmfa_otpserver::durability::wal::FRAME_HEADER_LEN;
use hpcmfa_otpserver::server::{LinotpServer, ServerConfig};
use hpcmfa_otpserver::sms::{PhoneNumber, TwilioSim};
use hpcmfa_otpserver::{recover, FileBackend, MemoryBackend, StorageBackend, ValidationOutcome};
use std::sync::Arc;

/// Facts the script establishes, each stamped with the durable WAL length
/// at acknowledgement time. A crash at byte `cut >= wal_len` must
/// preserve the fact; earlier crashes may legitimately predate it.
struct Facts {
    /// (user, code, validation time, wal_len): codes the server accepted.
    accepted: Vec<(String, String, u64, usize)>,
    /// (user, wal_len): accounts the lockout policy deactivated.
    locked: Vec<(String, usize)>,
    /// (user, wal_len): locked accounts staff reactivated.
    reset: Vec<(String, usize)>,
    /// Time after the last scripted operation.
    end_time: u64,
}

fn durable_server(backend: Arc<dyn StorageBackend>) -> Arc<LinotpServer> {
    LinotpServer::with_storage(
        TwilioSim::new(9),
        41,
        ServerConfig {
            // Snapshots off: the sweep wants every mutation in the WAL.
            snapshot_every_appends: u64::MAX,
            ..ServerConfig::default()
        },
        backend,
    )
    .expect("durable server recovers at startup")
}

/// The scripted sequence: enrollments of every pairing kind, a removal,
/// successful and failing logins, an SMS trigger, a lockout, an admin
/// resync, and a staff reset.
fn run_script(backend: &Arc<MemoryBackend>) -> Facts {
    let srv = durable_server(Arc::clone(backend) as Arc<dyn StorageBackend>);
    let wal_len = || backend.durable_wal().len();
    let mut t = 1_480_000_000u64;
    let mut facts = Facts {
        accepted: Vec::new(),
        locked: Vec::new(),
        reset: Vec::new(),
        end_time: 0,
    };

    let alice = SoftToken::new(srv.enroll_soft("alice", t), TotpParams::default());
    srv.enroll_soft("bob", t);
    srv.enroll_sms("carol", PhoneNumber::parse("5125550000").unwrap(), t);
    srv.enroll_static("trainee", t);
    srv.enroll_soft("mallory", t);
    srv.remove_pairing("mallory", t);

    // Good logins for alice interleaved with bad codes for bob.
    for _ in 0..6 {
        t += 30;
        let code = alice.displayed_code(t);
        assert_eq!(srv.validate("alice", &code, t), ValidationOutcome::Success);
        facts.accepted.push(("alice".into(), code, t, wal_len()));
        srv.validate("bob", "000000", t);
    }

    // An SMS code left outstanding (SmsIssue lands in the WAL).
    srv.trigger_sms("carol", t);

    // Hammer bob until the lockout policy deactivates him.
    while srv.status("bob", t).expect("bob exists").active {
        t += 3;
        srv.validate("bob", "000000", t);
    }
    facts.locked.push(("bob".into(), wal_len()));

    // Admin resync burns two consecutive alice codes.
    t += 30;
    let c1 = alice.displayed_code(t);
    let c2 = alice.displayed_code(t + 30);
    assert!(srv.resync("alice", &c1, &c2, t), "resync succeeds");
    facts.accepted.push(("alice".into(), c1, t, wal_len()));
    facts.accepted.push(("alice".into(), c2, t + 30, wal_len()));

    // Lock carol, then staff clear her: the reset must survive crashes.
    while srv.status("carol", t).expect("carol exists").active {
        t += 3;
        srv.validate("carol", "999999", t);
    }
    assert!(srv.reset_failcount("carol", t));
    facts.reset.push(("carol".into(), wal_len()));

    // A few more good logins after the reset.
    for _ in 0..3 {
        t += 30;
        let code = alice.displayed_code(t);
        assert_eq!(srv.validate("alice", &code, t), ValidationOutcome::Success);
        facts.accepted.push(("alice".into(), code, t, wal_len()));
    }

    facts.end_time = t + 30;
    facts
}

/// Byte offsets of every frame boundary in a clean WAL (crash points
/// "after every individual append").
fn frame_boundaries(wal: &[u8]) -> Vec<usize> {
    let mut out = vec![0usize];
    let mut pos = 0usize;
    while pos + FRAME_HEADER_LEN <= wal.len() {
        let len = u32::from_le_bytes(wal[pos..pos + 4].try_into().unwrap()) as usize;
        pos += FRAME_HEADER_LEN + len;
        out.push(pos);
    }
    assert_eq!(*out.last().unwrap(), wal.len(), "WAL ends on a boundary");
    out
}

/// Assert the security invariants on a server recovered from the first
/// `cut` WAL bytes.
fn assert_invariants(srv: &LinotpServer, facts: &Facts, cut: usize) {
    for (user, code, at, acked) in &facts.accepted {
        if *acked <= cut {
            assert_ne!(
                srv.validate(user, code, *at),
                ValidationOutcome::Success,
                "code accepted for {user} before WAL byte {acked} replayed \
                 after a crash at byte {cut}"
            );
        }
    }
    for (user, acked) in &facts.locked {
        if *acked <= cut {
            assert!(
                !srv.status(user, facts.end_time)
                    .expect("user exists")
                    .active,
                "{user} was locked before WAL byte {acked} but is active \
                 after a crash at byte {cut}"
            );
        }
    }
    for (user, acked) in &facts.reset {
        if *acked <= cut {
            assert!(
                srv.status(user, facts.end_time)
                    .expect("user exists")
                    .active,
                "staff reset for {user} at WAL byte {acked} was lost by a \
                 crash at byte {cut}"
            );
        }
    }
}

#[test]
fn memory_backend_crash_after_every_append_preserves_invariants() {
    let backend = MemoryBackend::healthy();
    let facts = run_script(&backend);
    let wal = backend.durable_wal();
    assert!(!facts.accepted.is_empty() && !wal.is_empty());

    for &cut in &frame_boundaries(&wal) {
        let crashed = MemoryBackend::with_contents(wal[..cut].to_vec(), None);
        let srv = durable_server(crashed as Arc<dyn StorageBackend>);
        assert_invariants(&srv, &facts, cut);
    }
}

#[test]
fn file_backend_crash_after_every_append_preserves_invariants() {
    let backend = MemoryBackend::healthy();
    let facts = run_script(&backend);
    let wal = backend.durable_wal();

    let dir = std::env::temp_dir().join(format!("hpcmfa-crash-sweep-{}", std::process::id()));
    for &cut in &frame_boundaries(&wal) {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal.log"), &wal[..cut]).unwrap();
        let file_backend = FileBackend::open(&dir).unwrap();
        let srv = durable_server(file_backend as Arc<dyn StorageBackend>);
        assert_invariants(&srv, &facts, cut);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_at_every_byte_recovers_by_truncation() {
    let backend = MemoryBackend::healthy();
    let facts = run_script(&backend);
    let wal = backend.durable_wal();
    let boundaries = frame_boundaries(&wal);

    for cut in 0..=wal.len() {
        let crashed: Arc<dyn StorageBackend> =
            MemoryBackend::with_contents(wal[..cut].to_vec(), None);
        let state = recover(&crashed).expect("torn tails recover by truncation, not error");

        // The valid prefix is the last frame boundary at or before the cut.
        let floor = *boundaries.iter().filter(|&&b| b <= cut).max().unwrap();
        assert_eq!(
            crashed.wal_len(),
            floor as u64,
            "recovery truncated the backend to the valid prefix (cut {cut})"
        );
        assert_eq!(state.report.truncated_bytes as usize, cut - floor);

        // A second recovery sees a clean WAL.
        let again = recover(&crashed).expect("second recovery");
        assert!(again.report.tail_was_clean, "tail clean after truncation");
        assert_eq!(again.report.wal_records, state.report.wal_records);
    }
    // A byte cut recovers to exactly its floor boundary (asserted above),
    // and every boundary's invariants are covered by the frame-level
    // sweeps — so no per-byte server rebuild is needed here.
    let _ = facts;
}

#[test]
fn segmented_file_backend_crash_after_every_append_preserves_invariants() {
    let backend = MemoryBackend::healthy();
    let facts = run_script(&backend);
    let wal = backend.durable_wal();

    let dir = std::env::temp_dir().join(format!("hpcmfa-crash-sweep-seg-{}", std::process::id()));
    for &cut in &frame_boundaries(&wal) {
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // The same bytes, but spread across sealed segments plus an
        // active tail, as a rotating writer would have left them —
        // frames may straddle segment files; replay order must hold.
        let bytes = &wal[..cut];
        let chunk = 700usize;
        let mut seq = 0usize;
        let mut pos = 0usize;
        loop {
            let end = (pos + chunk).min(bytes.len());
            let name = if seq == 0 {
                "wal.log".to_string()
            } else {
                format!("wal.{seq}.log")
            };
            std::fs::write(dir.join(name), &bytes[pos..end]).unwrap();
            pos = end;
            seq += 1;
            if pos >= bytes.len() {
                break;
            }
        }
        let file_backend = FileBackend::open_with_rotation(&dir, chunk as u64).unwrap();
        let srv = durable_server(file_backend as Arc<dyn StorageBackend>);
        assert_invariants(&srv, &facts, cut);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The snapshot rename window: a crash after the tmp file was fully
/// written but before the rename (or before the directory entry was
/// fsynced) must leave the previous durable snapshot + WAL in force,
/// and reopening sweeps the orphaned tmp.
#[test]
fn snapshot_rename_window_is_swept_on_reopen() {
    let dir = std::env::temp_dir().join(format!("hpcmfa-crash-sweep-tmp-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // A compacting server: snapshots replace the WAL every few appends.
    let backend = FileBackend::open(&dir).unwrap();
    let srv = LinotpServer::with_storage(
        TwilioSim::new(9),
        41,
        ServerConfig {
            snapshot_every_appends: 8,
            ..ServerConfig::default()
        },
        backend as Arc<dyn StorageBackend>,
    )
    .expect("durable server recovers at startup");
    let mut t = 1_480_000_000u64;
    let alice = SoftToken::new(srv.enroll_soft("alice", t), TotpParams::default());
    let mut last = (String::new(), 0u64);
    for _ in 0..12 {
        t += 30;
        let code = alice.displayed_code(t);
        assert_eq!(srv.validate("alice", &code, t), ValidationOutcome::Success);
        last = (code, t);
    }
    assert!(
        dir.join("snapshot.bin").exists(),
        "compaction produced a durable snapshot"
    );
    drop(srv);

    // Crash inside the rename window: the next snapshot reached the tmp
    // name but never replaced the durable one.
    std::fs::write(dir.join("snapshot.bin.tmp"), b"half-written snapshot").unwrap();
    let backend = FileBackend::open(&dir).unwrap();
    assert!(
        !dir.join("snapshot.bin.tmp").exists(),
        "reopen sweeps the orphaned tmp"
    );
    let srv = durable_server(backend as Arc<dyn StorageBackend>);
    let (code, at) = last;
    assert_ne!(
        srv.validate("alice", &code, at),
        ValidationOutcome::Success,
        "replay nullification survives the rename-window crash"
    );
    let fresh = alice.displayed_code(at + 300);
    assert_eq!(
        srv.validate("alice", &fresh, at + 300),
        ValidationOutcome::Success,
        "the recovered server keeps serving"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
