//! The administrative REST-style interface.
//!
//! "The portlet application communicates with the LinOTP back end via an
//! administrative interface, which is available as a Representational State
//! Transfer (REST) interface. The portal back end authenticates to the
//! admin API using HTTP Digest Authentication over a TLS-secured
//! connection." (§3.5)
//!
//! This module models that interface as typed request/response values (the
//! TLS channel itself adds nothing to the semantics being reproduced):
//! digest-authenticated admin routes for enrollment, removal, resync,
//! failure-counter reset, status, and audit search, plus the open
//! `/validate/check` route RADIUS-side components use. Response bodies
//! follow the LinOTP convention `{"result": {"status": ..., "value": ...}}`.

use crate::json::Json;
use crate::server::{LinotpServer, ValidationOutcome};
use crate::sms::PhoneNumber;
use hpcmfa_crypto::digestauth::{DigestAuthorization, DigestChallenge, DigestVerifier};
use hpcmfa_otp::secret::Secret;
use hpcmfa_otp::totp::TotpParams;
use hpcmfa_otp::uri::OtpauthUri;
use hpcmfa_telemetry::{AlertEngine, TraceCollector, TraceTree};
use parking_lot::Mutex;
use std::sync::Arc;

/// A request to the admin API.
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// HTTP method (`GET`/`POST`).
    pub method: String,
    /// Route, e.g. `/admin/init`.
    pub path: String,
    /// JSON body (`Json::Null` for none).
    pub body: Json,
    /// Digest authorization header, if presented.
    pub authorization: Option<DigestAuthorization>,
}

impl HttpRequest {
    /// Build a request.
    pub fn new(method: &str, path: &str, body: Json) -> Self {
        HttpRequest {
            method: method.to_string(),
            path: path.to_string(),
            body,
            authorization: None,
        }
    }

    /// Attach a digest authorization.
    pub fn with_auth(mut self, auth: DigestAuthorization) -> Self {
        self.authorization = Some(auth);
        self
    }
}

/// A response from the admin API.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// JSON body.
    pub body: Json,
    /// On 401, the digest challenge to answer.
    pub challenge: Option<DigestChallenge>,
}

impl HttpResponse {
    fn ok(value: Json) -> Self {
        HttpResponse {
            status: 200,
            body: Json::obj([(
                "result",
                Json::obj([("status", Json::Bool(true)), ("value", value)]),
            )]),
            challenge: None,
        }
    }

    fn error(status: u16, message: &str) -> Self {
        HttpResponse {
            status,
            body: Json::obj([(
                "result",
                Json::obj([
                    ("status", Json::Bool(false)),
                    ("error", Json::obj([("message", Json::str(message))])),
                ]),
            )]),
            challenge: None,
        }
    }

    /// The `result.value` field, if present.
    pub fn value(&self) -> Option<&Json> {
        self.body.get("result")?.get("value")
    }

    /// Whether `result.status` is true.
    pub fn is_ok(&self) -> bool {
        self.body
            .get("result")
            .and_then(|r| r.get("status"))
            .and_then(Json::as_bool)
            .unwrap_or(false)
    }
}

/// The admin API endpoint.
pub struct AdminApi {
    server: Arc<LinotpServer>,
    verifier: Mutex<DigestVerifier>,
    /// Alert engine behind `GET /system/alerts`, attached by whoever wires
    /// the computing center together (the engine spans more components than
    /// this server, so it cannot be constructed here).
    alerts: Mutex<Option<Arc<AlertEngine>>>,
    /// Trace collector behind `GET /system/traces`, attached alongside the
    /// alert engine; it may aggregate several sites' registries.
    traces: Mutex<Option<Arc<TraceCollector>>>,
}

impl AdminApi {
    /// Wrap `server`; digest realm and nonce seed as given.
    pub fn new(server: Arc<LinotpServer>, realm: &str, seed: u64) -> Arc<Self> {
        Arc::new(AdminApi {
            server,
            verifier: Mutex::new(DigestVerifier::new(realm, seed)),
            alerts: Mutex::new(None),
            traces: Mutex::new(None),
        })
    }

    /// Register an API credential (e.g. the portal service account).
    pub fn add_admin(&self, username: &str, password: &str) {
        self.verifier.lock().add_user(username, password);
    }

    /// Attach the center-wide alert engine served by `/system/alerts`.
    pub fn attach_alerts(&self, engine: Arc<AlertEngine>) {
        *self.alerts.lock() = Some(engine);
    }

    /// Attach the trace collector served by `/system/traces`.
    pub fn attach_traces(&self, collector: Arc<TraceCollector>) {
        *self.traces.lock() = Some(collector);
    }

    /// Issue a digest challenge (the 401 `WWW-Authenticate` payload).
    pub fn issue_challenge(&self) -> DigestChallenge {
        self.verifier.lock().challenge()
    }

    /// Dispatch a request at time `now`.
    pub fn handle(&self, req: &HttpRequest, now: u64) -> HttpResponse {
        // /validate/check is the only route open without digest auth — it is
        // reachable solely from the trusted RADIUS hosts by firewall rule
        // (§3.1).
        if req.path != "/validate/check" {
            match &req.authorization {
                None => return self.unauthorized("missing credentials"),
                Some(auth) => {
                    let verdict = self.verifier.lock().verify(auth, &req.method, &req.path);
                    if let Err(e) = verdict {
                        return self.unauthorized(&e.to_string());
                    }
                }
            }
        }

        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/validate/check") => self.validate_check(req, now),
            ("POST", "/admin/init") => self.admin_init(req, now),
            ("POST", "/admin/remove") => self.admin_remove(req, now),
            ("POST", "/admin/resync") => self.admin_resync(req, now),
            ("POST", "/admin/reset") => self.admin_reset(req, now),
            ("POST", "/admin/smschallenge") => self.admin_smschallenge(req, now),
            ("GET", "/admin/show") => self.admin_show(req, now),
            ("GET", "/audit/search") => self.audit_search(req),
            ("GET", "/system/durability") => self.system_durability(),
            ("GET", "/system/metrics") => self.system_metrics(now),
            ("GET", "/system/alerts") => self.system_alerts(now),
            ("GET", "/system/traces") => self.system_traces(),
            _ => HttpResponse::error(404, "no such route"),
        }
    }

    fn unauthorized(&self, message: &str) -> HttpResponse {
        let mut resp = HttpResponse::error(401, message);
        resp.challenge = Some(self.issue_challenge());
        resp
    }

    fn str_field<'a>(body: &'a Json, key: &str) -> Option<&'a str> {
        body.get(key).and_then(Json::as_str)
    }

    fn validate_check(&self, req: &HttpRequest, now: u64) -> HttpResponse {
        let (Some(user), Some(pass)) = (
            Self::str_field(&req.body, "user"),
            Self::str_field(&req.body, "pass"),
        ) else {
            return HttpResponse::error(400, "user and pass required");
        };
        let outcome = self.server.validate(user, pass, now);
        HttpResponse::ok(Json::Bool(outcome == ValidationOutcome::Success))
    }

    fn admin_init(&self, req: &HttpRequest, now: u64) -> HttpResponse {
        let Some(user) = Self::str_field(&req.body, "user") else {
            return HttpResponse::error(400, "user required");
        };
        match Self::str_field(&req.body, "type").unwrap_or("soft") {
            "soft" => {
                let secret = self.server.enroll_soft(user, now);
                let uri = OtpauthUri::new("TACC", user, secret.clone(), TotpParams::default());
                HttpResponse::ok(Json::obj([
                    ("secret", Json::str(secret.to_base32())),
                    ("otpauth", Json::str(uri.render())),
                ]))
            }
            "hard" => {
                let (Some(serial), Some(otpkey)) = (
                    Self::str_field(&req.body, "serial"),
                    Self::str_field(&req.body, "otpkey"),
                ) else {
                    return HttpResponse::error(400, "serial and otpkey required for hard tokens");
                };
                let Ok(secret) = Secret::from_hex(otpkey) else {
                    return HttpResponse::error(400, "otpkey must be hex");
                };
                self.server.enroll_hard(user, serial, secret, now);
                HttpResponse::ok(Json::obj([("serial", Json::str(serial))]))
            }
            "sms" => {
                let Some(phone) = Self::str_field(&req.body, "phone") else {
                    return HttpResponse::error(400, "phone required for sms tokens");
                };
                match PhoneNumber::parse(phone) {
                    Ok(p) => {
                        self.server.enroll_sms(user, p, now);
                        HttpResponse::ok(Json::Bool(true))
                    }
                    Err(e) => HttpResponse::error(400, &e.to_string()),
                }
            }
            "static" => {
                let code = self.server.enroll_static(user, now);
                HttpResponse::ok(Json::obj([("code", Json::str(code))]))
            }
            other => HttpResponse::error(400, &format!("unknown token type {other}")),
        }
    }

    fn admin_remove(&self, req: &HttpRequest, now: u64) -> HttpResponse {
        let Some(user) = Self::str_field(&req.body, "user") else {
            return HttpResponse::error(400, "user required");
        };
        if self.server.remove_pairing(user, now) {
            HttpResponse::ok(Json::Bool(true))
        } else {
            HttpResponse::error(404, "no pairing for user")
        }
    }

    fn admin_resync(&self, req: &HttpRequest, now: u64) -> HttpResponse {
        let (Some(user), Some(otp1), Some(otp2)) = (
            Self::str_field(&req.body, "user"),
            Self::str_field(&req.body, "otp1"),
            Self::str_field(&req.body, "otp2"),
        ) else {
            return HttpResponse::error(400, "user, otp1, otp2 required");
        };
        HttpResponse::ok(Json::Bool(self.server.resync(user, otp1, otp2, now)))
    }

    fn admin_reset(&self, req: &HttpRequest, now: u64) -> HttpResponse {
        let Some(user) = Self::str_field(&req.body, "user") else {
            return HttpResponse::error(400, "user required");
        };
        HttpResponse::ok(Json::Bool(self.server.reset_failcount(user, now)))
    }

    /// Trigger an SMS code outside the RADIUS path — the portal uses this
    /// during SMS pairing to text the confirmation code (§3.5: "the portal
    /// then triggers the LinOTP server to send a token code to the user via
    /// SMS text message").
    fn admin_smschallenge(&self, req: &HttpRequest, now: u64) -> HttpResponse {
        let Some(user) = Self::str_field(&req.body, "user") else {
            return HttpResponse::error(400, "user required");
        };
        use crate::server::SmsTrigger;
        match self.server.trigger_sms(user, now) {
            SmsTrigger::Sent(_) => HttpResponse::ok(Json::str("sent")),
            SmsTrigger::AlreadyActive => HttpResponse::ok(Json::str("already_active")),
            SmsTrigger::NotSmsUser => HttpResponse::error(400, "user has no SMS pairing"),
            SmsTrigger::NoToken => HttpResponse::error(404, "no pairing for user"),
            SmsTrigger::Locked => HttpResponse::error(403, "account locked"),
            SmsTrigger::Unavailable => HttpResponse::error(503, "durable storage unavailable"),
        }
    }

    fn admin_show(&self, req: &HttpRequest, now: u64) -> HttpResponse {
        let Some(user) = Self::str_field(&req.body, "user") else {
            return HttpResponse::error(400, "user required");
        };
        match self.server.status(user, now) {
            Some(st) => HttpResponse::ok(Json::obj([
                ("kind", Json::str(st.kind)),
                ("failcount", Json::Num(st.fail_count as f64)),
                ("active", Json::Bool(st.active)),
                ("serial", st.serial.map(Json::Str).unwrap_or(Json::Null)),
                ("sms_pending", Json::Bool(st.sms_pending)),
            ])),
            None => HttpResponse::error(404, "no pairing for user"),
        }
    }

    /// Recovery/fsync counters for the operations dashboard. 404s when the
    /// server runs without a storage backend.
    fn system_durability(&self) -> HttpResponse {
        match self.server.durability_counters() {
            Some(c) => HttpResponse::ok(Json::obj([
                ("appends", Json::Num(c.appends as f64)),
                ("append_failures", Json::Num(c.append_failures as f64)),
                ("fsyncs", Json::Num(c.fsyncs as f64)),
                ("fsync_failures", Json::Num(c.fsync_failures as f64)),
                ("snapshots", Json::Num(c.snapshots as f64)),
                ("snapshot_failures", Json::Num(c.snapshot_failures as f64)),
                ("recoveries", Json::Num(c.recoveries as f64)),
                ("records_replayed", Json::Num(c.records_replayed as f64)),
                ("tail_truncations", Json::Num(c.tail_truncations as f64)),
                ("truncated_bytes", Json::Num(c.truncated_bytes as f64)),
                (
                    "audit_dropped",
                    Json::Num(self.server.audit().dropped() as f64),
                ),
            ])),
            None => HttpResponse::error(404, "no storage backend configured"),
        }
    }

    /// Prometheus text exposition of the server's telemetry registry. The
    /// scrape body rides in `result.value` (this typed model has no raw
    /// text/plain responses); it is valid `text/format` verbatim. Gauges
    /// are refreshed from the token store first — the same census
    /// `/system/alerts` reads.
    fn system_metrics(&self, now: u64) -> HttpResponse {
        self.server.refresh_gauges(now);
        HttpResponse::ok(Json::str(self.server.metrics().render_prometheus()))
    }

    /// Alerting surface: active and recently resolved alerts from the
    /// attached engine, the tail of the security-event ring, and the
    /// security-posture gauges — all read from the same registry pass as
    /// `/system/metrics` so the two routes cannot disagree.
    fn system_alerts(&self, now: u64) -> HttpResponse {
        self.server.refresh_gauges(now);
        let snap = self.server.metrics().snapshot();
        let status_json = |s: &hpcmfa_telemetry::AlertStatus| {
            Json::obj([
                ("rule", Json::str(s.rule.clone())),
                ("state", Json::str(s.state.label())),
                ("since", Json::Num(s.since as f64)),
            ])
        };
        let (active, recent_resolved) = match &*self.alerts.lock() {
            Some(engine) => (
                Json::Arr(engine.active().iter().map(status_json).collect()),
                Json::Arr(engine.recent_resolved().iter().map(status_json).collect()),
            ),
            None => (Json::Arr(Vec::new()), Json::Arr(Vec::new())),
        };
        let events: Vec<Json> = self
            .server
            .metrics()
            .security_events()
            .tail(64)
            .into_iter()
            .map(|e| {
                Json::obj([
                    ("kind", Json::str(e.kind.label())),
                    ("at", Json::Num(e.at as f64)),
                    (
                        "trace",
                        e.trace
                            .map(|t| Json::str(t.to_string()))
                            .unwrap_or(Json::Null),
                    ),
                    (
                        "span",
                        e.span.map(|s| Json::str(s.to_hex())).unwrap_or(Json::Null),
                    ),
                    ("detail", Json::str(e.detail)),
                ])
            })
            .collect();
        HttpResponse::ok(Json::obj([
            ("active", active),
            ("recent_resolved", recent_resolved),
            ("events", Json::Arr(events)),
            (
                "gauges",
                Json::obj([
                    (
                        "locked_users",
                        Json::Num(snap.gauge("hpcmfa_otp_locked_users") as f64),
                    ),
                    (
                        "sms_pending",
                        Json::Num(snap.gauge("hpcmfa_otp_sms_pending") as f64),
                    ),
                ]),
            ),
        ]))
    }

    /// Cross-site trace assembly: the most recent traces, the slowest
    /// traces with their critical paths, and the per-component self-time
    /// breakdown — everything the attached collector can assemble from its
    /// registered span sources. 404s when no collector is attached.
    fn system_traces(&self) -> HttpResponse {
        let Some(collector) = self.traces.lock().clone() else {
            return HttpResponse::error(404, "no trace collector attached");
        };
        let tree_json = |tree: &TraceTree| {
            let root = tree.root();
            Json::obj([
                ("trace", Json::str(tree.trace.to_string())),
                (
                    "root",
                    Json::str(format!("{}/{}", root.component, root.label)),
                ),
                ("duration_us", Json::Num(tree.duration_us() as f64)),
                ("spans", Json::Num(tree.spans.len() as f64)),
                (
                    "critical_path",
                    Json::Arr(
                        tree.critical_path()
                            .iter()
                            .map(|hop| {
                                Json::obj([
                                    ("span", Json::str(hop.span.to_hex())),
                                    ("op", Json::str(format!("{}/{}", hop.component, hop.label))),
                                    ("duration_us", Json::Num(hop.duration_us as f64)),
                                    ("self_time_us", Json::Num(hop.self_time_us as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let recent: Vec<Json> = collector.recent(8).iter().map(tree_json).collect();
        let slowest: Vec<Json> = collector.slowest(5).iter().map(tree_json).collect();
        HttpResponse::ok(Json::obj([
            ("traces", Json::Num(collector.trace_ids().len() as f64)),
            ("recent", Json::Arr(recent)),
            ("slowest", Json::Arr(slowest)),
            (
                "self_time_by_component",
                Json::Obj(
                    collector
                        .self_time_by_component()
                        .into_iter()
                        .map(|(component, us)| (component, Json::Num(us as f64)))
                        .collect(),
                ),
            ),
        ]))
    }

    fn audit_search(&self, req: &HttpRequest) -> HttpResponse {
        let Some(user) = Self::str_field(&req.body, "user") else {
            return HttpResponse::error(400, "user required");
        };
        let entries: Vec<Json> = self
            .server
            .audit()
            .for_user(user)
            .into_iter()
            .map(|e| {
                Json::obj([
                    ("at", Json::Num(e.at as f64)),
                    ("action", Json::str(e.action.label())),
                    ("success", Json::Bool(e.success)),
                    ("detail", Json::str(e.detail)),
                ])
            })
            .collect();
        HttpResponse::ok(Json::Arr(entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sms::TwilioSim;
    use hpcmfa_crypto::digestauth::answer_challenge;
    use hpcmfa_otp::device::SoftToken;

    const NOW: u64 = 1_475_000_000;

    fn api() -> Arc<AdminApi> {
        let server = LinotpServer::new(TwilioSim::new(1), 13);
        let api = AdminApi::new(server, "LinOTP admin area", 7);
        api.add_admin("portal", "portal-pass");
        api
    }

    /// Sign a request like the portal's HTTP client does.
    fn signed(api: &AdminApi, method: &str, path: &str, body: Json) -> HttpRequest {
        let chal = api.issue_challenge();
        let auth = answer_challenge(&chal, "portal", "portal-pass", method, path, "cn", 1);
        HttpRequest::new(method, path, body).with_auth(auth)
    }

    #[test]
    fn unauthenticated_admin_calls_get_401_with_challenge() {
        let api = api();
        let resp = api.handle(
            &HttpRequest::new("POST", "/admin/init", Json::obj([("user", Json::str("a"))])),
            NOW,
        );
        assert_eq!(resp.status, 401);
        assert!(resp.challenge.is_some());
        assert!(!resp.is_ok());
    }

    #[test]
    fn wrong_password_rejected() {
        let api = api();
        let chal = api.issue_challenge();
        let auth = answer_challenge(&chal, "portal", "wrong", "POST", "/admin/init", "cn", 1);
        let req = HttpRequest::new("POST", "/admin/init", Json::obj([("user", Json::str("a"))]))
            .with_auth(auth);
        assert_eq!(api.handle(&req, NOW).status, 401);
    }

    #[test]
    fn replayed_authorization_rejected() {
        let api = api();
        let chal = api.issue_challenge();
        let auth = answer_challenge(
            &chal,
            "portal",
            "portal-pass",
            "GET",
            "/admin/show",
            "cn",
            1,
        );
        let req = HttpRequest::new("GET", "/admin/show", Json::obj([("user", Json::str("a"))]))
            .with_auth(auth);
        let first = api.handle(&req, NOW);
        assert_ne!(first.status, 401); // 404: no pairing, but auth passed
        let replay = api.handle(&req, NOW);
        assert_eq!(replay.status, 401);
    }

    #[test]
    fn soft_init_returns_scannable_uri() {
        let api = api();
        let resp = api.handle(
            &signed(
                &api,
                "POST",
                "/admin/init",
                Json::obj([("user", Json::str("alice")), ("type", Json::str("soft"))]),
            ),
            NOW,
        );
        assert!(resp.is_ok());
        let uri = resp
            .value()
            .unwrap()
            .get("otpauth")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        // The URI must be importable and generate codes the server accepts.
        let device = SoftToken::from_uri(&uri).unwrap();
        let code = device.displayed_code(NOW + 60);
        let check = api.handle(
            &HttpRequest::new(
                "POST",
                "/validate/check",
                Json::obj([("user", Json::str("alice")), ("pass", Json::str(code))]),
            ),
            NOW + 60,
        );
        assert_eq!(check.value().unwrap().as_bool(), Some(true));
    }

    #[test]
    fn validate_check_open_and_correct() {
        let api = api();
        let resp = api.handle(
            &HttpRequest::new(
                "POST",
                "/validate/check",
                Json::obj([("user", Json::str("ghost")), ("pass", Json::str("123456"))]),
            ),
            NOW,
        );
        assert_eq!(resp.status, 200);
        assert_eq!(resp.value().unwrap().as_bool(), Some(false));
    }

    #[test]
    fn hard_init_requires_serial_and_key() {
        let api = api();
        let missing = api.handle(
            &signed(
                &api,
                "POST",
                "/admin/init",
                Json::obj([("user", Json::str("c")), ("type", Json::str("hard"))]),
            ),
            NOW,
        );
        assert_eq!(missing.status, 400);
        let ok = api.handle(
            &signed(
                &api,
                "POST",
                "/admin/init",
                Json::obj([
                    ("user", Json::str("c")),
                    ("type", Json::str("hard")),
                    ("serial", Json::str("TACC-0009")),
                    (
                        "otpkey",
                        Json::str("3132333435363738393031323334353637383930"),
                    ),
                ]),
            ),
            NOW,
        );
        assert!(ok.is_ok());
        let show = api.handle(
            &signed(
                &api,
                "GET",
                "/admin/show",
                Json::obj([("user", Json::str("c"))]),
            ),
            NOW,
        );
        assert_eq!(
            show.value().unwrap().get("serial").unwrap().as_str(),
            Some("TACC-0009")
        );
        assert_eq!(
            show.value().unwrap().get("kind").unwrap().as_str(),
            Some("hard")
        );
    }

    #[test]
    fn sms_init_validates_phone() {
        let api = api();
        let bad = api.handle(
            &signed(
                &api,
                "POST",
                "/admin/init",
                Json::obj([
                    ("user", Json::str("b")),
                    ("type", Json::str("sms")),
                    ("phone", Json::str("not-a-phone")),
                ]),
            ),
            NOW,
        );
        assert_eq!(bad.status, 400);
        let ok = api.handle(
            &signed(
                &api,
                "POST",
                "/admin/init",
                Json::obj([
                    ("user", Json::str("b")),
                    ("type", Json::str("sms")),
                    ("phone", Json::str("5125551234")),
                ]),
            ),
            NOW,
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn static_init_returns_code() {
        let api = api();
        let resp = api.handle(
            &signed(
                &api,
                "POST",
                "/admin/init",
                Json::obj([
                    ("user", Json::str("train01")),
                    ("type", Json::str("static")),
                ]),
            ),
            NOW,
        );
        let code = resp
            .value()
            .unwrap()
            .get("code")
            .unwrap()
            .as_str()
            .unwrap()
            .to_string();
        assert_eq!(code.len(), 6);
        let check = api.handle(
            &HttpRequest::new(
                "POST",
                "/validate/check",
                Json::obj([("user", Json::str("train01")), ("pass", Json::str(code))]),
            ),
            NOW,
        );
        assert_eq!(check.value().unwrap().as_bool(), Some(true));
    }

    #[test]
    fn remove_and_reset_routes() {
        let api = api();
        api.handle(
            &signed(
                &api,
                "POST",
                "/admin/init",
                Json::obj([("user", Json::str("a"))]),
            ),
            NOW,
        );
        let rm = api.handle(
            &signed(
                &api,
                "POST",
                "/admin/remove",
                Json::obj([("user", Json::str("a"))]),
            ),
            NOW,
        );
        assert!(rm.is_ok());
        let rm2 = api.handle(
            &signed(
                &api,
                "POST",
                "/admin/remove",
                Json::obj([("user", Json::str("a"))]),
            ),
            NOW,
        );
        assert_eq!(rm2.status, 404);
        let reset = api.handle(
            &signed(
                &api,
                "POST",
                "/admin/reset",
                Json::obj([("user", Json::str("a"))]),
            ),
            NOW,
        );
        assert_eq!(reset.value().unwrap().as_bool(), Some(false));
    }

    #[test]
    fn audit_route_lists_events() {
        let api = api();
        api.handle(
            &signed(
                &api,
                "POST",
                "/admin/init",
                Json::obj([("user", Json::str("a"))]),
            ),
            NOW,
        );
        api.handle(
            &HttpRequest::new(
                "POST",
                "/validate/check",
                Json::obj([("user", Json::str("a")), ("pass", Json::str("000000"))]),
            ),
            NOW + 1,
        );
        let audit = api.handle(
            &signed(
                &api,
                "GET",
                "/audit/search",
                Json::obj([("user", Json::str("a"))]),
            ),
            NOW + 2,
        );
        let entries = audit.value().unwrap().as_arr().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get("action").unwrap().as_str(), Some("enroll"));
        assert_eq!(entries[1].get("action").unwrap().as_str(), Some("validate"));
        assert_eq!(entries[1].get("success").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn metrics_route_serves_prometheus_text_to_authed_admins_only() {
        let api = api();
        // Produce some traffic so families exist.
        api.handle(
            &HttpRequest::new(
                "POST",
                "/validate/check",
                Json::obj([("user", Json::str("x")), ("pass", Json::str("y"))]),
            ),
            NOW,
        );
        let noauth = api.handle(&HttpRequest::new("GET", "/system/metrics", Json::Null), NOW);
        assert_eq!(noauth.status, 401);
        let resp = api.handle(&signed(&api, "GET", "/system/metrics", Json::Null), NOW);
        assert!(resp.is_ok());
        let text = resp.value().unwrap().as_str().unwrap();
        assert!(text.contains("# TYPE hpcmfa_otp_validations_total counter"));
        assert!(text.contains("hpcmfa_otp_validations_total{outcome=\"no_token\"} 1"));
        assert!(text.contains("hpcmfa_otp_validate_wall_us_count 1"));
    }

    #[test]
    fn metrics_route_renders_shed_and_risk_counters() {
        use crate::overload::OverloadConfig;
        use crate::server::ServerConfig;

        // Overload protection pre-registers every shed reason, so the
        // exposition shows them at zero before any storm.
        let server = LinotpServer::with_config(
            TwilioSim::new(1),
            13,
            ServerConfig {
                overload: Some(OverloadConfig::default()),
                ..ServerConfig::default()
            },
        );
        // Risk decisions land in the same shared registry in
        // Center-driven runs; simulate that by pre-registering here.
        for d in ["allow", "step_up", "deny"] {
            server
                .metrics()
                .counter("hpcmfa_risk_decisions_total", &[("decision", d)]);
        }
        let api = AdminApi::new(server, "LinOTP admin area", 7);
        api.add_admin("portal", "portal-pass");
        let resp = api.handle(&signed(&api, "GET", "/system/metrics", Json::Null), NOW);
        assert!(resp.is_ok());
        let text = resp.value().unwrap().as_str().unwrap();
        assert!(text.contains("# TYPE hpcmfa_shed_total counter"));
        assert!(text.contains("hpcmfa_shed_total{reason=\"rate_limited\"} 0"));
        assert!(text.contains("hpcmfa_shed_total{reason=\"unauth_flood\"} 0"));
        assert!(text.contains("hpcmfa_shed_total{reason=\"queue_full\"} 0"));
        assert!(text.contains("# TYPE hpcmfa_risk_decisions_total counter"));
        assert!(text.contains("hpcmfa_risk_decisions_total{decision=\"deny\"} 0"));
        assert!(text.contains("hpcmfa_otp_validate_vtime_us_count{lane=\"trusted\"} 0"));
    }

    #[test]
    fn alerts_route_serves_events_and_gauges() {
        let api = api();
        api.handle(
            &signed(
                &api,
                "POST",
                "/admin/init",
                Json::obj([
                    ("user", Json::str("b")),
                    ("type", Json::str("sms")),
                    ("phone", Json::str("5125551234")),
                ]),
            ),
            NOW,
        );
        // First trigger sends; the immediate re-trigger is suppressed and
        // emits an sms_abuse security event.
        for _ in 0..2 {
            api.handle(
                &signed(
                    &api,
                    "POST",
                    "/admin/smschallenge",
                    Json::obj([("user", Json::str("b"))]),
                ),
                NOW,
            );
        }
        let noauth = api.handle(&HttpRequest::new("GET", "/system/alerts", Json::Null), NOW);
        assert_eq!(noauth.status, 401);
        let resp = api.handle(&signed(&api, "GET", "/system/alerts", Json::Null), NOW + 1);
        assert!(resp.is_ok());
        let value = resp.value().unwrap();
        // No engine attached: alert lists are present but empty.
        assert!(value.get("active").unwrap().as_arr().unwrap().is_empty());
        let events = value.get("events").unwrap().as_arr().unwrap();
        assert!(events
            .iter()
            .any(|e| e.get("kind").unwrap().as_str() == Some("sms_abuse")));
        // One outstanding SMS code, nobody locked.
        let gauges = value.get("gauges").unwrap();
        assert_eq!(gauges.get("sms_pending").unwrap().as_f64(), Some(1.0));
        assert_eq!(gauges.get("locked_users").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn unknown_route_404() {
        let api = api();
        let resp = api.handle(&signed(&api, "GET", "/admin/nope", Json::Null), NOW);
        // Route is unknown but auth for that path verified fine.
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn response_body_serializes_as_json() {
        let api = api();
        let resp = api.handle(
            &HttpRequest::new(
                "POST",
                "/validate/check",
                Json::obj([("user", Json::str("x")), ("pass", Json::str("y"))]),
            ),
            NOW,
        );
        let text = resp.body.to_string();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, resp.body);
    }
}
