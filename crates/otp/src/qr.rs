//! QR-code payload model.
//!
//! The production portal renders the provisioning URI as a QR image; the
//! smartphone app reads it with the camera (§3.3: the apps were "outfitted
//! with the ability to read a quick response (QR) code"). Reproducing an
//! image pipeline adds nothing to the authentication semantics, so this
//! module models a QR code as its payload plus a deterministic module matrix
//! that behaves like a scannable artifact: rendering is injective in the
//! payload (two different URIs never produce the same matrix) and "scanning"
//! returns the exact payload or a detectable failure.

use hpcmfa_crypto::sha256::sha256;

/// A displayed QR code: payload plus a synthetic module matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QrCode {
    payload: String,
    /// Side length of the square module matrix.
    size: usize,
    /// Row-major module bits.
    modules: Vec<bool>,
}

/// Result of a simulated scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanOutcome {
    /// Clean decode of the payload.
    Decoded(String),
    /// The camera failed to lock on (simulated damage/occlusion).
    Unreadable,
}

impl QrCode {
    /// Encode `payload` into a synthetic QR code.
    ///
    /// The matrix is derived from a SHA-256 sponge over the payload so that
    /// visual output is deterministic and collision-resistant, with finder-
    /// pattern-like corner blocks for plausibility in terminal rendering.
    pub fn encode(payload: &str) -> Self {
        // Matrix grows with payload, like real QR versions do.
        let size = 21 + 2 * (payload.len() / 32).min(10);
        let mut modules = vec![false; size * size];
        let mut block = [0u8; 36];
        block[..32].copy_from_slice(&sha256(payload.as_bytes()));
        let mut counter: u32 = 0;
        let mut bit_idx = 0usize;
        let mut bits = sha256(&block);
        for m in modules.iter_mut() {
            if bit_idx == 256 {
                counter += 1;
                block[32..36].copy_from_slice(&counter.to_be_bytes());
                bits = sha256(&block);
                bit_idx = 0;
            }
            *m = (bits[bit_idx / 8] >> (bit_idx % 8)) & 1 == 1;
            bit_idx += 1;
        }
        // Finder patterns: solid 5x5 blocks in three corners.
        let mut qr = QrCode {
            payload: payload.to_string(),
            size,
            modules,
        };
        for (cy, cx) in [(0, 0), (0, size - 5), (size - 5, 0)] {
            for dy in 0..5 {
                for dx in 0..5 {
                    qr.set(cy + dy, cx + dx, true);
                }
            }
        }
        qr
    }

    fn set(&mut self, y: usize, x: usize, v: bool) {
        self.modules[y * self.size + x] = v;
    }

    /// Module at `(y, x)`.
    pub fn module(&self, y: usize, x: usize) -> bool {
        self.modules[y * self.size + x]
    }

    /// Matrix side length.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The encoded payload (what a perfect scan recovers).
    pub fn payload(&self) -> &str {
        &self.payload
    }

    /// Simulate a camera scan. `reliability` in `[0,1]` is the probability
    /// of a clean decode; `roll` in `[0,1)` is the caller-supplied random
    /// draw (kept external so simulations stay deterministic).
    pub fn scan(&self, reliability: f64, roll: f64) -> ScanOutcome {
        if roll < reliability {
            ScanOutcome::Decoded(self.payload.clone())
        } else {
            ScanOutcome::Unreadable
        }
    }

    /// Render as terminal art (two modules per character cell).
    pub fn to_ascii(&self) -> String {
        let mut out = String::with_capacity((self.size + 1) * self.size);
        for y in 0..self.size {
            for x in 0..self.size {
                out.push_str(if self.module(y, x) { "##" } else { "  " });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = QrCode::encode("otpauth://totp/x?secret=MZXW6YTB");
        let b = QrCode::encode("otpauth://totp/x?secret=MZXW6YTB");
        assert_eq!(a, b);
    }

    #[test]
    fn distinct_payloads_distinct_matrices() {
        let a = QrCode::encode("payload-a");
        let b = QrCode::encode("payload-b");
        assert_ne!(a.modules, b.modules);
    }

    #[test]
    fn perfect_scan_recovers_payload() {
        let qr = QrCode::encode("hello");
        assert_eq!(qr.scan(1.0, 0.0), ScanOutcome::Decoded("hello".into()));
    }

    #[test]
    fn unreliable_scan_can_fail() {
        let qr = QrCode::encode("hello");
        assert_eq!(qr.scan(0.5, 0.9), ScanOutcome::Unreadable);
        assert_eq!(qr.scan(0.5, 0.1), ScanOutcome::Decoded("hello".into()));
    }

    #[test]
    fn size_grows_with_payload() {
        let small = QrCode::encode("x");
        let large = QrCode::encode(&"x".repeat(200));
        assert!(large.size() > small.size());
        assert_eq!(small.size(), 21);
    }

    #[test]
    fn finder_patterns_present() {
        let qr = QrCode::encode("anything");
        let n = qr.size();
        assert!(qr.module(0, 0) && qr.module(4, 4));
        assert!(qr.module(0, n - 1) && qr.module(4, n - 5));
        assert!(qr.module(n - 1, 0) && qr.module(n - 5, 4));
    }

    #[test]
    fn ascii_render_dimensions() {
        let qr = QrCode::encode("x");
        let art = qr.to_ascii();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), qr.size());
        assert!(lines.iter().all(|l| l.chars().count() == qr.size() * 2));
    }
}
