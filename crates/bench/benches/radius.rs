//! RADIUS costs: codec, password hiding, full round trips, and the
//! round-robin failover ablation (DESIGN.md #2) — latency (in attempts and
//! work) as servers drop out of the pool.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcmfa_radius::attribute::{Attribute, AttributeType};
use hpcmfa_radius::auth::{fixture_authenticator, hide_password};
use hpcmfa_radius::client::{ClientConfig, RadiusClient};
use hpcmfa_radius::packet::{Code, Packet};
use hpcmfa_radius::server::{Handler, RadiusServer, ServerDecision};
use hpcmfa_radius::transport::{FaultPlan, InMemoryTransport, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use std::sync::Arc;

const SECRET: &[u8] = b"bench-secret";

fn sample_packet() -> Packet {
    let ra = fixture_authenticator("bench");
    Packet::new(Code::AccessRequest, 1, ra)
        .with_attribute(Attribute::text(AttributeType::UserName, "alice"))
        .with_attribute(Attribute::new(
            AttributeType::UserPassword,
            hide_password(b"123456", &ra, SECRET),
        ))
        .with_attribute(Attribute::text(AttributeType::NasIdentifier, "login1"))
        .with_attribute(Attribute::text(AttributeType::CallingStationId, "70.1.2.3"))
}

fn bench_codec(c: &mut Criterion) {
    let packet = sample_packet();
    let wire = packet.encode();
    c.bench_function("radius_encode", |b| b.iter(|| black_box(&packet).encode()));
    c.bench_function("radius_decode", |b| {
        b.iter(|| Packet::decode(black_box(&wire)).unwrap())
    });
    let ra = fixture_authenticator("bench");
    c.bench_function("radius_hide_password", |b| {
        b.iter(|| hide_password(black_box(b"123456"), &ra, SECRET))
    });
}

fn accept_all() -> Arc<dyn Handler> {
    Arc::new(|_: &Packet, _: Option<&[u8]>| ServerDecision::Accept(vec![]))
}

fn pool(n: usize) -> (RadiusClient, Vec<Arc<FaultPlan>>) {
    let mut transports: Vec<Arc<dyn Transport>> = Vec::new();
    let mut plans = Vec::new();
    for i in 0..n {
        let server = Arc::new(RadiusServer::new(SECRET, accept_all()));
        let plan = FaultPlan::healthy();
        plans.push(Arc::clone(&plan));
        transports.push(Arc::new(InMemoryTransport::new(
            &format!("r{i}"),
            server,
            plan,
        )));
    }
    (
        RadiusClient::new(ClientConfig::new(SECRET, "login1"), transports),
        plans,
    )
}

fn bench_round_trip(c: &mut Criterion) {
    let (client, _) = pool(3);
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("radius_round_trip_healthy", |b| {
        b.iter(|| {
            client
                .authenticate(&mut rng, "alice", b"123456", "70.1.2.3")
                .unwrap()
        })
    });
}

fn bench_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("radius_failover");
    for down in [0usize, 1, 2] {
        let (client, plans) = pool(3);
        for p in plans.iter().take(down) {
            p.set_down(true);
        }
        let mut rng = StdRng::seed_from_u64(2);
        group.bench_with_input(BenchmarkId::new("3_servers_down", down), &down, |b, _| {
            b.iter(|| {
                client
                    .authenticate(&mut rng, "alice", b"123456", "70.1.2.3")
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec, bench_round_trip, bench_failover);
criterion_main!(benches);
