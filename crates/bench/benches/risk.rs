//! Costs of the §6 growth features: GeoIP lookups at database scale and
//! risk-engine assessment throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcmfa_pam::access::Cidr;
use hpcmfa_risk::engine::{RiskEngine, RiskWeights};
use hpcmfa_risk::geo::{CountryCode, GeoDb};
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::Arc;

fn synthetic_geodb(entries: usize) -> GeoDb {
    let mut db = GeoDb::new();
    let countries = ["US", "DE", "CN", "GB", "FR", "ES", "CH", "JP"];
    for i in 0..entries {
        let net = Cidr::parse(&format!("{}.{}.0.0/16", 1 + (i / 250) % 200, i % 250)).unwrap();
        let cc = CountryCode::parse(countries[i % countries.len()]).unwrap();
        db.add(net, cc);
    }
    db
}

fn bench_geo_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("geo_lookup");
    for n in [100usize, 10_000, 50_000] {
        let db = synthetic_geodb(n);
        let hit: Ipv4Addr = "1.7.3.4".parse().unwrap();
        let miss: Ipv4Addr = "250.1.2.3".parse().unwrap();
        group.bench_with_input(BenchmarkId::new("hit", n), &n, |b, _| {
            b.iter(|| db.country_of(black_box(hit)))
        });
        group.bench_with_input(BenchmarkId::new("miss", n), &n, |b, _| {
            b.iter(|| db.country_of(black_box(miss)))
        });
    }
    group.finish();
}

fn bench_risk_assess(c: &mut Criterion) {
    let engine = RiskEngine::new(Arc::new(synthetic_geodb(1_000)), RiskWeights::default());
    // Warm history for a habitual user.
    let home: Ipv4Addr = "1.7.3.4".parse().unwrap();
    engine.assess("habitual", home, 0);
    let mut t = 0u64;
    c.bench_function("risk_assess_habitual", |b| {
        b.iter(|| {
            t += 3600;
            engine.assess(black_box("habitual"), home, t)
        })
    });
    c.bench_function("risk_assess_fresh_users", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            engine.assess(&format!("user{i}"), home, i * 60)
        })
    });
}

criterion_group!(benches, bench_geo_lookup, bench_risk_assess);
criterion_main!(benches);
