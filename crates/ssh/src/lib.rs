//! SSH entry into the HPC systems.
//!
//! "Entry into TACC's HPC systems occurs predominately in two forms, both
//! of which utilize the SSH network protocol" (§2). This crate models the
//! slice of SSH that the MFA deployment touches:
//!
//! * [`keys`] — public keys, fingerprints, `authorized_keys` checks.
//! * [`authlog`] — the secure system entry log. It backs two things from
//!   the paper: the in-house PAM module that "searches recent local secure
//!   system entry logs" for pubkey success (§3.4), and the §4.1
//!   information-gathering audit of login events and TTY usage.
//! * [`daemon`] — the sshd authentication state machine: authorized-key
//!   check, hand-off to the PAM stack, password retry ("up to a maximum of
//!   two more times before SSH disconnect", §3.4), banner, and session
//!   reporting.
//! * [`client`] — client-side behaviours: interactive users,
//!   keyboard-interactive capable GUI clients, and the scripted batch
//!   clients whose workflows the transition disrupted.
//! * [`multiplex`] — SSH connection multiplexing, "perhaps most popular of
//!   all" the §5 mitigation strategies: one MFA login, many channels.
//! * [`survey`] — the §4.1 login-event analysis used to target automated
//!   workflows for outreach.

pub mod authlog;
pub mod client;
pub mod daemon;
pub mod keys;
pub mod multiplex;
pub mod survey;

pub use authlog::{AuthLog, AuthMethod, LogEntry};
pub use client::{ClientProfile, ConnectionRequest, CredentialResponder};
pub use daemon::{SessionReport, SshDaemon};
pub use keys::{KeyPair, PublicKey};
pub use multiplex::MultiplexedConnection;
