//! The token store — the MariaDB-backed LinOTP user repository (§3.1).
//!
//! One record per user: the pairing (which kind of token and its secret
//! material), replay-prevention state, the consecutive-failure counter, and
//! the active flag the lockout policy clears.

use crate::sms::PhoneNumber;
use hpcmfa_otp::totp::Totp;
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Which physical token a TOTP pairing corresponds to (identical math,
/// different provenance and reporting label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TotpProvenance {
    /// Secret minted by the portal and imported via QR (smartphone app).
    Soft,
    /// Factory-seeded fob identified by serial number.
    Hard,
}

/// An SMS code awaiting use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingSmsCode {
    /// The six-digit code that was texted.
    pub code: String,
    /// When it was generated.
    pub sent_at: u64,
    /// When it stops being accepted.
    pub expires_at: u64,
}

impl PendingSmsCode {
    /// Whether the code is still usable at `now`.
    pub fn active(&self, now: u64) -> bool {
        now < self.expires_at
    }
}

/// A user's pairing record.
#[derive(Debug, Clone)]
pub enum TokenPairing {
    /// Soft or hard TOTP token.
    Totp {
        /// Generator bound to the shared secret.
        totp: Totp,
        /// Soft or hard.
        provenance: TotpProvenance,
        /// Hard-token serial, if any.
        serial: Option<String>,
        /// Highest accepted time step — used codes are nullified (§3.2) by
        /// refusing any step at or below this.
        last_step: Option<u64>,
        /// Resync adjustment in whole time steps (admin "re-synchronize
        /// tokens", §3.1).
        drift_steps: i64,
    },
    /// SMS token: the server texts a fresh code on demand.
    Sms {
        /// Destination number.
        phone: PhoneNumber,
        /// The outstanding code, if one is active.
        pending: Option<PendingSmsCode>,
    },
    /// Static training-account code (§3.3, fourth token type).
    Static {
        /// The fixed six-digit code.
        code: String,
    },
}

impl TokenPairing {
    /// The reporting label (Table 1 rows).
    pub fn kind_label(&self) -> &'static str {
        match self {
            TokenPairing::Totp {
                provenance: TotpProvenance::Soft,
                ..
            } => "soft",
            TokenPairing::Totp {
                provenance: TotpProvenance::Hard,
                ..
            } => "hard",
            TokenPairing::Sms { .. } => "sms",
            TokenPairing::Static { .. } => "training",
        }
    }
}

/// Per-user record in the store.
#[derive(Debug, Clone)]
pub struct UserTokenRecord {
    /// The pairing.
    pub pairing: TokenPairing,
    /// Consecutive validation failures since the last success/reset.
    pub fail_count: u32,
    /// Cleared by the lockout policy; admins re-activate.
    pub active: bool,
}

/// Status summary exposed to admins and the internal staff website (§3.1:
/// deactivation info "is available to staff via an internal website").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserTokenStatus {
    /// Pairing kind label.
    pub kind: String,
    /// Current consecutive failures.
    pub fail_count: u32,
    /// Whether validation is currently allowed.
    pub active: bool,
    /// Hard-token serial if applicable.
    pub serial: Option<String>,
    /// Whether an unexpired SMS code is outstanding (always `false` for
    /// non-SMS pairings).
    pub sms_pending: bool,
}

/// Thread-safe token store. Clone shares state.
#[derive(Clone, Default)]
pub struct TokenStore {
    users: Arc<RwLock<BTreeMap<String, UserTokenRecord>>>,
}

impl TokenStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enroll (or replace) a pairing for `username`. Re-enrolling resets
    /// failure state, matching LinOTP's behaviour on token re-init.
    pub fn enroll(&self, username: &str, pairing: TokenPairing) {
        self.users.write().insert(
            username.to_string(),
            UserTokenRecord {
                pairing,
                fail_count: 0,
                active: true,
            },
        );
    }

    /// Remove a user's pairing. Returns whether one existed.
    pub fn remove(&self, username: &str) -> bool {
        self.users.write().remove(username).is_some()
    }

    /// Whether the user has any pairing.
    pub fn has_pairing(&self, username: &str) -> bool {
        self.users.read().contains_key(username)
    }

    /// Snapshot a user's record.
    pub fn get(&self, username: &str) -> Option<UserTokenRecord> {
        self.users.read().get(username).cloned()
    }

    /// Status summary for staff tooling. Takes the current time so an
    /// expired pending SMS code is purged on read rather than lingering in
    /// snapshots and status output.
    pub fn status(&self, username: &str, now: u64) -> Option<UserTokenStatus> {
        let mut users = self.users.write();
        users.get_mut(username).map(|r| {
            if let TokenPairing::Sms { pending, .. } = &mut r.pairing {
                if pending.as_ref().is_some_and(|p| !p.active(now)) {
                    *pending = None;
                }
            }
            UserTokenStatus {
                kind: r.pairing.kind_label().to_string(),
                fail_count: r.fail_count,
                active: r.active,
                serial: match &r.pairing {
                    TokenPairing::Totp { serial, .. } => serial.clone(),
                    _ => None,
                },
                sms_pending: matches!(
                    &r.pairing,
                    TokenPairing::Sms { pending: Some(p), .. } if p.active(now)
                ),
            }
        })
    }

    /// Drop every expired pending SMS code in the store. Returns how many
    /// were purged. Called before snapshotting so stale codes never land
    /// in durable state.
    pub fn purge_expired_sms(&self, now: u64) -> usize {
        let mut purged = 0;
        for rec in self.users.write().values_mut() {
            if let TokenPairing::Sms { pending, .. } = &mut rec.pairing {
                if pending.as_ref().is_some_and(|p| !p.active(now)) {
                    *pending = None;
                    purged += 1;
                }
            }
        }
        purged
    }

    /// One-pass security-posture census under a single write lock: purge
    /// expired pending SMS codes, then count locked-out users and users
    /// with an unexpired SMS code outstanding. Both `/system/metrics` and
    /// `/system/alerts` refresh their gauges from this one read so the two
    /// surfaces can never disagree about the same instant.
    pub fn gauge_counts(&self, now: u64) -> (u64, u64) {
        let mut locked = 0u64;
        let mut sms_pending = 0u64;
        for rec in self.users.write().values_mut() {
            if let TokenPairing::Sms { pending, .. } = &mut rec.pairing {
                if pending.as_ref().is_some_and(|p| !p.active(now)) {
                    *pending = None;
                }
                if pending.is_some() {
                    sms_pending += 1;
                }
            }
            if !rec.active {
                locked += 1;
            }
        }
        (locked, sms_pending)
    }

    /// Mutate a user's record under the write lock. Returns `None` if the
    /// user has no pairing, else the closure's result.
    pub fn with_record<T>(
        &self,
        username: &str,
        f: impl FnOnce(&mut UserTokenRecord) -> T,
    ) -> Option<T> {
        self.users.write().get_mut(username).map(f)
    }

    /// Number of enrolled users.
    pub fn len(&self) -> usize {
        self.users.read().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.users.read().is_empty()
    }

    /// Clone the full user map (snapshot encoding and tests).
    pub fn export_all(&self) -> BTreeMap<String, UserTokenRecord> {
        self.users.read().clone()
    }

    /// Replace the full user map (crash recovery).
    pub fn load_all(&self, users: BTreeMap<String, UserTokenRecord>) {
        *self.users.write() = users;
    }

    /// Drop every record (simulated crash wipes the in-memory image).
    pub fn clear(&self) {
        self.users.write().clear();
    }

    /// Count pairings by kind label — the Table 1 numerator.
    pub fn breakdown(&self) -> BTreeMap<&'static str, usize> {
        let mut out = BTreeMap::new();
        for rec in self.users.read().values() {
            *out.entry(rec.pairing.kind_label()).or_insert(0) += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcmfa_otp::secret::Secret;

    fn totp_pairing(provenance: TotpProvenance) -> TokenPairing {
        TokenPairing::Totp {
            totp: Totp::new(Secret::from_bytes(*b"12345678901234567890")),
            provenance,
            serial: match provenance {
                TotpProvenance::Hard => Some("TACC-0001".into()),
                TotpProvenance::Soft => None,
            },
            last_step: None,
            drift_steps: 0,
        }
    }

    #[test]
    fn enroll_get_remove() {
        let store = TokenStore::new();
        assert!(!store.has_pairing("alice"));
        store.enroll("alice", totp_pairing(TotpProvenance::Soft));
        assert!(store.has_pairing("alice"));
        assert_eq!(store.len(), 1);
        assert!(store.remove("alice"));
        assert!(!store.remove("alice"));
        assert!(store.is_empty());
    }

    #[test]
    fn reenroll_resets_failures() {
        let store = TokenStore::new();
        store.enroll("alice", totp_pairing(TotpProvenance::Soft));
        store.with_record("alice", |r| {
            r.fail_count = 19;
            r.active = false;
        });
        store.enroll("alice", totp_pairing(TotpProvenance::Soft));
        let rec = store.get("alice").unwrap();
        assert_eq!(rec.fail_count, 0);
        assert!(rec.active);
    }

    #[test]
    fn status_reports_kind_and_serial() {
        let store = TokenStore::new();
        store.enroll("h", totp_pairing(TotpProvenance::Hard));
        store.enroll(
            "s",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551234").unwrap(),
                pending: None,
            },
        );
        store.enroll(
            "t",
            TokenPairing::Static {
                code: "123456".into(),
            },
        );
        assert_eq!(store.status("h", 0).unwrap().kind, "hard");
        assert_eq!(
            store.status("h", 0).unwrap().serial.as_deref(),
            Some("TACC-0001")
        );
        assert_eq!(store.status("s", 0).unwrap().kind, "sms");
        assert_eq!(store.status("t", 0).unwrap().kind, "training");
        assert_eq!(store.status("missing", 0), None);
    }

    #[test]
    fn status_purges_expired_sms_and_reports_pending() {
        let store = TokenStore::new();
        store.enroll(
            "s",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551234").unwrap(),
                pending: Some(PendingSmsCode {
                    code: "111111".into(),
                    sent_at: 100,
                    expires_at: 400,
                }),
            },
        );
        assert!(store.status("s", 200).unwrap().sms_pending);
        // After expiry the status read itself purges the stale code.
        assert!(!store.status("s", 400).unwrap().sms_pending);
        let rec = store.get("s").unwrap();
        assert!(matches!(
            rec.pairing,
            TokenPairing::Sms { pending: None, .. }
        ));
    }

    #[test]
    fn purge_expired_sms_sweeps_store() {
        let store = TokenStore::new();
        for (name, expires_at) in [("a", 400u64), ("b", 900)] {
            store.enroll(
                name,
                TokenPairing::Sms {
                    phone: PhoneNumber::parse("5125551234").unwrap(),
                    pending: Some(PendingSmsCode {
                        code: "222222".into(),
                        sent_at: 100,
                        expires_at,
                    }),
                },
            );
        }
        assert_eq!(store.purge_expired_sms(500), 1);
        assert!(matches!(
            store.get("a").unwrap().pairing,
            TokenPairing::Sms { pending: None, .. }
        ));
        assert!(matches!(
            store.get("b").unwrap().pairing,
            TokenPairing::Sms {
                pending: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn gauge_counts_purge_and_census_in_one_pass() {
        let store = TokenStore::new();
        store.enroll("locked", totp_pairing(TotpProvenance::Soft));
        store.with_record("locked", |r| r.active = false);
        store.enroll(
            "fresh",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551234").unwrap(),
                pending: Some(PendingSmsCode {
                    code: "111111".into(),
                    sent_at: 100,
                    expires_at: 900,
                }),
            },
        );
        store.enroll(
            "stale",
            TokenPairing::Sms {
                phone: PhoneNumber::parse("5125551235").unwrap(),
                pending: Some(PendingSmsCode {
                    code: "222222".into(),
                    sent_at: 100,
                    expires_at: 400,
                }),
            },
        );
        assert_eq!(store.gauge_counts(500), (1, 1));
        // The census purged the stale code durably in memory.
        assert!(matches!(
            store.get("stale").unwrap().pairing,
            TokenPairing::Sms { pending: None, .. }
        ));
    }

    #[test]
    fn export_load_round_trip() {
        let store = TokenStore::new();
        store.enroll("alice", totp_pairing(TotpProvenance::Soft));
        let image = store.export_all();
        store.clear();
        assert!(store.is_empty());
        store.load_all(image);
        assert!(store.has_pairing("alice"));
    }

    #[test]
    fn breakdown_counts() {
        let store = TokenStore::new();
        store.enroll("a", totp_pairing(TotpProvenance::Soft));
        store.enroll("b", totp_pairing(TotpProvenance::Soft));
        store.enroll("c", totp_pairing(TotpProvenance::Hard));
        let b = store.breakdown();
        assert_eq!(b.get("soft"), Some(&2));
        assert_eq!(b.get("hard"), Some(&1));
        assert_eq!(b.get("sms"), None);
    }

    #[test]
    fn pending_sms_activity_window() {
        let p = PendingSmsCode {
            code: "111111".into(),
            sent_at: 100,
            expires_at: 400,
        };
        assert!(p.active(100));
        assert!(p.active(399));
        assert!(!p.active(400));
    }
}
