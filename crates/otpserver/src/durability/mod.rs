//! Durable OTP-server state: write-ahead log, snapshots, crash recovery.
//!
//! The paper's validation server keeps pairing, replay-nullification and
//! failure-counter state in a MariaDB-backed LinOTP database (§3.1–§3.2);
//! losing that state across a restart silently re-opens the TOTP replay
//! window and forgets lockouts. This module gives the in-process
//! [`LinotpServer`](crate::server::LinotpServer) the same durability
//! posture:
//!
//! * [`wal`] — a checksummed, length-prefixed record codec. Every store or
//!   audit mutation appends one record *before* the operation is
//!   acknowledged.
//! * [`backend`] — the [`StorageBackend`] trait with two implementations: a
//!   real file-backed backend and a deterministic in-memory backend whose
//!   [`StorageFaultPlan`](backend::StorageFaultPlan) injects short writes,
//!   fsync failures, read corruption and torn crash tails.
//! * [`snapshot`] — periodic compaction (snapshot + WAL reset) and the
//!   [`recover`](snapshot::recover) path that replays snapshot + WAL,
//!   truncating at the first torn or corrupt tail record.
//!
//! The recovery invariants the test suite pins down: **replay
//! nullification and lockout state never regress across a crash** — a code
//! accepted before the crash is rejected after recovery, and a locked
//! account stays locked until an admin acts.

pub mod backend;
pub mod snapshot;
pub mod wal;

pub use backend::{FileBackend, MemoryBackend, StorageFaultPlan};
pub use snapshot::{recover, RecoverError, RecoveredState, RecoveryReport};
pub use wal::{decode_stream, PairingImage, WalRecord, WalTail};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors a storage backend can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// OS-level I/O failure.
    Io(String),
    /// An append persisted only a prefix of the frame.
    ShortWrite {
        /// Bytes actually written.
        wrote: usize,
        /// Bytes requested.
        of: usize,
    },
    /// fsync reported failure; durability of buffered data is unknown.
    FsyncFailed,
    /// The backend is in a simulated-crash state.
    Crashed,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::ShortWrite { wrote, of } => {
                write!(f, "short write: {wrote} of {of} bytes")
            }
            StorageError::FsyncFailed => write!(f, "fsync failed"),
            StorageError::Crashed => write!(f, "backend crashed"),
        }
    }
}

impl std::error::Error for StorageError {}

/// The storage substrate the durability layer writes through. One WAL
/// byte stream plus one snapshot blob; both opaque to the backend.
pub trait StorageBackend: Send + Sync {
    /// Append one encoded frame to the WAL. On error the backend should
    /// already have discarded (or the caller will roll back) any partial
    /// bytes via [`StorageBackend::rollback_inflight`].
    fn append_wal(&self, frame: &[u8]) -> Result<(), StorageError>;

    /// Make every appended byte durable.
    fn sync_wal(&self) -> Result<(), StorageError>;

    /// Read the entire durable WAL.
    fn read_wal(&self) -> Result<Vec<u8>, StorageError>;

    /// Cut the durable WAL down to `len` bytes (recovery truncates torn
    /// tails through this).
    fn truncate_wal(&self, len: u64) -> Result<(), StorageError>;

    /// Empty the WAL (after a successful snapshot).
    fn reset_wal(&self) -> Result<(), StorageError> {
        self.truncate_wal(0)
    }

    /// Durable WAL length in bytes.
    fn wal_len(&self) -> u64;

    /// Atomically replace the snapshot blob.
    fn write_snapshot(&self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Read the current snapshot blob, if one exists.
    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StorageError>;

    /// Discard bytes appended but not yet synced (called after a failed
    /// append so a detected short write cannot poison the stream).
    fn rollback_inflight(&self) {}

    /// Simulate a process crash: un-synced bytes are lost, possibly
    /// leaving a torn prefix of the in-flight frame behind. No-op for
    /// backends whose crash model is "the process dies" (files survive).
    fn simulate_crash(&self) {}

    /// Diagnostic name.
    fn name(&self) -> &'static str;
}

/// Monotonic durability counters, exposed to admins via
/// `GET /system/durability` and asserted on by the chaos scenarios.
#[derive(Default)]
pub struct DurabilityStats {
    /// WAL records appended and synced.
    pub appends: AtomicU64,
    /// Appends the backend rejected (short write / crashed / I/O).
    pub append_failures: AtomicU64,
    /// Successful fsyncs.
    pub fsyncs: AtomicU64,
    /// Failed fsyncs.
    pub fsync_failures: AtomicU64,
    /// Snapshots written (compactions).
    pub snapshots: AtomicU64,
    /// Snapshot attempts that failed.
    pub snapshot_failures: AtomicU64,
    /// Recoveries performed.
    pub recoveries: AtomicU64,
    /// WAL records replayed across all recoveries.
    pub records_replayed: AtomicU64,
    /// Recoveries that truncated a torn or corrupt tail.
    pub tail_truncations: AtomicU64,
    /// Bytes dropped by tail truncation across all recoveries.
    pub truncated_bytes: AtomicU64,
}

/// A plain-value copy of [`DurabilityStats`] for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityCounters {
    /// WAL records appended and synced.
    pub appends: u64,
    /// Appends the backend rejected.
    pub append_failures: u64,
    /// Successful fsyncs.
    pub fsyncs: u64,
    /// Failed fsyncs.
    pub fsync_failures: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Snapshot attempts that failed.
    pub snapshot_failures: u64,
    /// Recoveries performed.
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub records_replayed: u64,
    /// Recoveries that truncated a torn or corrupt tail.
    pub tail_truncations: u64,
    /// Bytes dropped by tail truncation.
    pub truncated_bytes: u64,
}

impl DurabilityStats {
    /// Snapshot the counters.
    pub fn counters(&self) -> DurabilityCounters {
        DurabilityCounters {
            appends: self.appends.load(Ordering::Relaxed),
            append_failures: self.append_failures.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            fsync_failures: self.fsync_failures.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            snapshot_failures: self.snapshot_failures.load(Ordering::Relaxed),
            recoveries: self.recoveries.load(Ordering::Relaxed),
            records_replayed: self.records_replayed.load(Ordering::Relaxed),
            tail_truncations: self.tail_truncations.load(Ordering::Relaxed),
            truncated_bytes: self.truncated_bytes.load(Ordering::Relaxed),
        }
    }
}

/// The durability pump: encodes records, appends + fsyncs them through a
/// backend, counts everything, and tracks when a compaction is due.
pub struct Persistence {
    backend: Arc<dyn StorageBackend>,
    stats: DurabilityStats,
    /// Appends between snapshots; 0 disables compaction.
    snapshot_every: u64,
    appends_since_snapshot: AtomicU64,
}

impl Persistence {
    /// Pump through `backend`, compacting every `snapshot_every` appends
    /// (0 = never).
    pub fn new(backend: Arc<dyn StorageBackend>, snapshot_every: u64) -> Self {
        Persistence {
            backend,
            stats: DurabilityStats::default(),
            snapshot_every,
            appends_since_snapshot: AtomicU64::new(0),
        }
    }

    /// The backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The counters.
    pub fn stats(&self) -> &DurabilityStats {
        &self.stats
    }

    /// Append one record and make it durable. The operation that produced
    /// the record must not be acknowledged until this returns `Ok`.
    pub fn append(&self, record: &WalRecord) -> Result<(), StorageError> {
        let frame = record.encode_frame();
        if let Err(e) = self.backend.append_wal(&frame) {
            self.backend.rollback_inflight();
            self.stats.append_failures.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        match self.backend.sync_wal() {
            Ok(()) => {
                self.stats.appends.fetch_add(1, Ordering::Relaxed);
                self.stats.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.appends_since_snapshot.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.stats.fsync_failures.fetch_add(1, Ordering::Relaxed);
                self.stats.append_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Whether enough appends have accumulated for a compaction. Callers
    /// check this *outside* any store lock (compaction re-locks).
    pub fn wants_snapshot(&self) -> bool {
        self.snapshot_every > 0
            && self.appends_since_snapshot.load(Ordering::Relaxed) >= self.snapshot_every
    }

    /// Install `bytes` as the new snapshot and reset the WAL. The WAL is
    /// only reset after the snapshot write succeeds, so a failed
    /// compaction never loses records.
    pub fn install_snapshot(&self, bytes: &[u8]) -> Result<(), StorageError> {
        if let Err(e) = self.backend.write_snapshot(bytes) {
            self.stats.snapshot_failures.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        if let Err(e) = self.backend.reset_wal() {
            self.stats.snapshot_failures.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        self.stats.snapshots.fetch_add(1, Ordering::Relaxed);
        self.appends_since_snapshot.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Record a completed recovery in the counters.
    pub fn note_recovery(&self, report: &RecoveryReport) {
        self.stats.recoveries.fetch_add(1, Ordering::Relaxed);
        self.stats
            .records_replayed
            .fetch_add(report.wal_records as u64, Ordering::Relaxed);
        if report.truncated_bytes > 0 {
            self.stats.tail_truncations.fetch_add(1, Ordering::Relaxed);
            self.stats
                .truncated_bytes
                .fetch_add(report.truncated_bytes as u64, Ordering::Relaxed);
        }
        self.appends_since_snapshot.store(0, Ordering::Relaxed);
    }
}
