#!/usr/bin/env bash
# CI gate: hermetic build, full test suite, lint wall.
#
# Everything runs --offline: dependencies resolve to the path shims under
# shims/, so this must pass on a machine with no crate-registry access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> durability acceptance + crash-point sweep"
cargo test -q --offline --test durability
cargo test -q --offline -p hpcmfa-otpserver --test crash_sweep
cargo test -q --offline -p hpcmfa-otpserver --test wal_proptests

echo "==> telemetry: histogram properties, tracing, metrics scrape"
cargo test -q --offline -p hpcmfa-telemetry
cargo test -q --offline -p hpcmfa-telemetry --test histogram_props
cargo test -q --offline -p hpcmfa-telemetry --test trace_props
cargo test -q --offline --test tracing
cargo test -q --offline --test telemetry

echo "==> cross-site trace join (one trace id, three sites, x5 identical)"
cargo test -q --offline --test tracing federation_transit_trace_joins_spans_from_all_three_sites
cargo test -q --offline --test tracing transit_critical_path

echo "==> alerting: rule engine, event stream, deterministic timelines"
cargo test -q --offline --test alerting
cargo test -q --offline -p hpcmfa-radius --test tracewire_props

echo "==> hot path: midstate/store equivalence props, concurrency smoke"
cargo test -q --offline -p hpcmfa-crypto --test hmac_midstate_props
cargo test -q --offline -p hpcmfa-otpserver --test store_proptests
cargo test -q --offline -p hpcmfa-otpserver --test concurrency_smoke

echo "==> replication: codec/fence proptests + failover acceptance suite"
cargo test -q --offline -p hpcmfa-otpserver --test replication_proptests
cargo test -q --offline --test failover

echo "==> recovery smoke (WAL replay vs population) + BENCH_recovery.json schema"
cargo build --release --offline -q -p hpcmfa-bench --bin recovery
./target/release/recovery --users 32,128 --logins 2 \
    --out target/BENCH_recovery_smoke.json --check >/dev/null
for key in '"bench":"recovery"' '"runs":' '"wal_records":' \
    '"recovered_users":' '"replay_secs":'; do
    grep -q "$key" target/BENCH_recovery_smoke.json \
        || { echo "BENCH_recovery_smoke.json missing $key"; exit 1; }
done

echo "==> adversarial harness: attack acceptance suite"
cargo test -q --offline --test attacks

echo "==> stuffing-storm smoke (sheds fire, zero benign lockouts, p99 SLO)"
timeout 30 cargo test -q --offline --test attacks stuffing_storm_smoke

echo "==> federation: realm routing + resumption acceptance suite"
cargo test -q --offline --test federation
cargo test -q --offline -p hpcmfa-federation --test token_proptests
cargo test -q --offline -p hpcmfa-otpserver --test resume_proptests

echo "==> resume-bench smoke (O(1), single-use, >=5x) + BENCH_resume.json schema"
cargo build --release --offline -q -p hpcmfa-bench --bin resume
./target/release/resume --users 64 --logins 4 \
    --out target/BENCH_resume_smoke.json --check >/dev/null
for key in '"bench":"resume"' '"full":' '"resume":' \
    '"window_scans":' '"resume_speedup_vs_full":'; do
    grep -q "$key" target/BENCH_resume_smoke.json \
        || { echo "BENCH_resume_smoke.json missing $key"; exit 1; }
done

echo "==> throughput smoke (threads=2) + BENCH_throughput.json schema"
cargo build --release --offline -q -p hpcmfa-bench --bin throughput
./target/release/throughput --threads 1,2 --users 64 --logins 8 \
    --out target/BENCH_throughput_smoke.json --check >/dev/null
for key in '"bench":"throughput"' '"runs":' '"logins_per_sec":' \
    '"virtual_elapsed_us":' '"max_speedup_vs_1":'; do
    grep -q "$key" target/BENCH_throughput_smoke.json \
        || { echo "BENCH_throughput_smoke.json missing $key"; exit 1; }
done

echo "==> trace-overhead smoke (recording vs no-op tracer) + BENCH_trace.json schema"
cargo build --release --offline -q -p hpcmfa-bench --bin trace_overhead
./target/release/trace_overhead --users 64 --logins 8 --reps 5 \
    --out target/BENCH_trace_smoke.json >/dev/null
for key in '"bench":"trace_overhead"' '"noop":' '"instrumented":' \
    '"spans_recorded":' '"overhead_pct":'; do
    grep -q "$key" target/BENCH_trace_smoke.json \
        || { echo "BENCH_trace_smoke.json missing $key"; exit 1; }
done

echo "==> zero-copy decode parity props + batched ingest acceptance"
cargo test -q --offline -p hpcmfa-radius --test view_props
cargo test -q --offline -p hpcmfa-radius --test udp udp_batch_fairness_flood_does_not_starve_trusted
cargo test -q --offline --test udp_ingest

echo "==> udp-bench smoke (>=3x vs thread-per-request, zero-alloc decode) + BENCH_udp.json schema"
cargo build --release --offline -q -p hpcmfa-bench --bin udp
./target/release/udp --datagrams 4000 \
    --out target/BENCH_udp_smoke.json --check >/dev/null
for key in '"bench":"udp"' '"thread_per_request":' '"batched":' \
    '"view_allocs_total":0' '"speedup_vs_thread_per_request":'; do
    grep -q "$key" target/BENCH_udp_smoke.json \
        || { echo "BENCH_udp_smoke.json missing $key"; exit 1; }
done

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI green."
