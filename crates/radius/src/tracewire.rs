//! Trace-context propagation over the RADIUS wire.
//!
//! The telemetry [`TraceId`] rides requests as a Vendor-Specific attribute
//! (IANA type 26, RFC 2865 §5.26): a 4-byte vendor id, a 1-byte
//! vendor-type, a 1-byte vendor-length, then the big-endian payload.
//! The vendor id is 32473 — the enterprise number RFC 5612 reserves for
//! documentation/example use, which is exactly what a reproduction
//! deployment should squat on. Real RADIUS tooling ignores unknown VSAs,
//! so the attribute is transparent to interoperating servers; our proxy
//! copies it upstream so the home server's audit rows carry the same id
//! the login node minted.
//!
//! Two payload versions coexist under vendor-type 1, distinguished by
//! the vendor-length byte:
//!
//! * **v1** (`vendor-length 10`, 8-byte payload): the bare trace id —
//!   what pre-hierarchical senders emitted; still decoded.
//! * **v2** (`vendor-length 26`, 24-byte payload): trace id, parent
//!   [`SpanId`] (0 = none), and the sender's [`TraceClock`] value in µs —
//!   everything a downstream hop needs to open a correctly parented,
//!   correctly timed child span.
//!
//! Responses carry a second sub-attribute (vendor-type 2, 8-byte
//! payload): the responder's clock after its processing costs, so the
//! caller fast-forwards its trace clock and the assembled cross-site
//! tree keeps one monotone time basis.
//!
//! [`TraceClock`]: hpcmfa_telemetry::TraceClock

use crate::attribute::{Attribute, AttributeType};
use crate::packet::{Packet, PacketView};
use hpcmfa_telemetry::{SpanId, TraceId};

/// RFC 5612 documentation enterprise number, used as our vendor id.
pub const TRACE_VENDOR_ID: u32 = 32473;

/// Vendor-type of the trace-context sub-attribute within our vendor
/// space (requests).
pub const TRACE_VENDOR_TYPE: u8 = 1;

/// Vendor-type of the response-clock sub-attribute (responses).
pub const CLOCK_VENDOR_TYPE: u8 = 2;

/// The decoded request-side trace context.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireTraceCtx {
    /// The request's trace id.
    pub trace: TraceId,
    /// The sender's open span, to parent the receiver's spans under
    /// (`None` from a v1 sender or a root).
    pub parent: Option<SpanId>,
    /// The sender's trace-clock value at send time, µs (0 from v1).
    pub clock_us: u64,
}

/// Encode `trace` alone as a v1 Vendor-Specific attribute (bare id; no
/// parent span or clock).
pub fn trace_attribute(trace: TraceId) -> Attribute {
    let mut value = Vec::with_capacity(14);
    value.extend_from_slice(&TRACE_VENDOR_ID.to_be_bytes());
    value.push(TRACE_VENDOR_TYPE);
    value.push(10); // vendor-length: type + len + 8-byte id
    value.extend_from_slice(&trace.as_u64().to_be_bytes());
    Attribute::new(AttributeType::VendorSpecific, value)
}

/// Encode the full v2 trace context: trace id, parent span (0 encodes
/// `None`), and the sender's clock in µs.
pub fn trace_ctx_attribute(trace: TraceId, parent: Option<SpanId>, clock_us: u64) -> Attribute {
    let mut value = Vec::with_capacity(30);
    value.extend_from_slice(&TRACE_VENDOR_ID.to_be_bytes());
    value.push(TRACE_VENDOR_TYPE);
    value.push(26); // vendor-length: type + len + 3 × 8-byte fields
    value.extend_from_slice(&trace.as_u64().to_be_bytes());
    value.extend_from_slice(&parent.map(SpanId::as_u64).unwrap_or(0).to_be_bytes());
    value.extend_from_slice(&clock_us.to_be_bytes());
    Attribute::new(AttributeType::VendorSpecific, value)
}

/// Decode the trace id from one Vendor-Specific attribute, if it is ours
/// (either payload version).
pub fn decode_trace(attr: &Attribute) -> Option<TraceId> {
    decode_trace_ctx(attr).map(|c| c.trace)
}

/// Decode the full trace context from one Vendor-Specific attribute, if
/// it is ours. v1 payloads decode with no parent and clock 0.
pub fn decode_trace_ctx(attr: &Attribute) -> Option<WireTraceCtx> {
    if attr.ty != AttributeType::VendorSpecific {
        return None;
    }
    decode_trace_ctx_bytes(&attr.value)
}

/// [`decode_trace_ctx`] on the raw Vendor-Specific value bytes — the
/// borrowed-slice form the zero-copy ingest path uses (no owned
/// [`Attribute`] ever exists there). Parity with the owned path is
/// property tested.
pub fn decode_trace_ctx_bytes(v: &[u8]) -> Option<WireTraceCtx> {
    if v.len() != 14 && v.len() != 30 {
        return None;
    }
    let vendor = u32::from_be_bytes(v[0..4].try_into().ok()?);
    if vendor != TRACE_VENDOR_ID || v[4] != TRACE_VENDOR_TYPE {
        return None;
    }
    let expected_len = (v.len() - 4) as u8;
    if v[5] != expected_len {
        return None;
    }
    let trace = TraceId::from_u64(u64::from_be_bytes(v[6..14].try_into().ok()?));
    if v.len() == 14 {
        return Some(WireTraceCtx {
            trace,
            parent: None,
            clock_us: 0,
        });
    }
    let parent_raw = u64::from_be_bytes(v[14..22].try_into().ok()?);
    let clock_us = u64::from_be_bytes(v[22..30].try_into().ok()?);
    let parent = if parent_raw == 0 {
        None
    } else {
        Some(SpanId::from_u64(parent_raw))
    };
    Some(WireTraceCtx {
        trace,
        parent,
        clock_us,
    })
}

/// The trace id carried by `packet`, if any (first matching VSA wins).
pub fn trace_id_of(packet: &Packet) -> Option<TraceId> {
    trace_ctx_of(packet).map(|c| c.trace)
}

/// The full trace context carried by `packet`, if any (first matching
/// VSA wins).
pub fn trace_ctx_of(packet: &Packet) -> Option<WireTraceCtx> {
    packet
        .attributes_of(AttributeType::VendorSpecific)
        .into_iter()
        .find_map(decode_trace_ctx)
}

/// The full trace context carried by a borrowed packet view, if any
/// (first matching VSA wins). Zero-copy: value bytes are read in place.
pub fn trace_ctx_of_view(view: &PacketView<'_>) -> Option<WireTraceCtx> {
    view.attributes_of(AttributeType::VendorSpecific)
        .find_map(|a| decode_trace_ctx_bytes(a.value))
}

/// Encode a responder's clock (µs after its processing costs) as the
/// response-side sub-attribute.
pub fn clock_attribute(clock_us: u64) -> Attribute {
    let mut value = Vec::with_capacity(14);
    value.extend_from_slice(&TRACE_VENDOR_ID.to_be_bytes());
    value.push(CLOCK_VENDOR_TYPE);
    value.push(10); // vendor-length: type + len + 8-byte clock
    value.extend_from_slice(&clock_us.to_be_bytes());
    Attribute::new(AttributeType::VendorSpecific, value)
}

/// Decode the responder clock from one Vendor-Specific attribute.
pub fn decode_clock(attr: &Attribute) -> Option<u64> {
    if attr.ty != AttributeType::VendorSpecific {
        return None;
    }
    decode_clock_bytes(&attr.value)
}

/// [`decode_clock`] on the raw Vendor-Specific value bytes (borrowed
/// form, see [`decode_trace_ctx_bytes`]).
pub fn decode_clock_bytes(v: &[u8]) -> Option<u64> {
    if v.len() != 14 {
        return None;
    }
    let vendor = u32::from_be_bytes(v[0..4].try_into().ok()?);
    if vendor != TRACE_VENDOR_ID || v[4] != CLOCK_VENDOR_TYPE || v[5] != 10 {
        return None;
    }
    Some(u64::from_be_bytes(v[6..14].try_into().ok()?))
}

/// The responder clock carried by `packet`, if any.
pub fn clock_of(packet: &Packet) -> Option<u64> {
    packet
        .attributes_of(AttributeType::VendorSpecific)
        .into_iter()
        .find_map(decode_clock)
}

/// The responder clock carried by a borrowed packet view, if any.
pub fn clock_of_view(view: &PacketView<'_>) -> Option<u64> {
    view.attributes_of(AttributeType::VendorSpecific)
        .find_map(|a| decode_clock_bytes(a.value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::Code;

    #[test]
    fn v1_round_trip_through_attribute() {
        let id = TraceId::from_u64(0x0123_4567_89ab_cdef);
        let attr = trace_attribute(id);
        assert_eq!(attr.ty, AttributeType::VendorSpecific);
        assert_eq!(attr.value.len(), 14);
        assert_eq!(decode_trace(&attr), Some(id));
        // v1 decodes as a context with no parent and clock 0.
        assert_eq!(
            decode_trace_ctx(&attr),
            Some(WireTraceCtx {
                trace: id,
                parent: None,
                clock_us: 0
            })
        );
    }

    #[test]
    fn v2_round_trips_parent_and_clock() {
        let trace = TraceId::from_u64(42);
        let parent = SpanId::from_u64(0xdead_beef);
        let attr = trace_ctx_attribute(trace, Some(parent), 1_234_567);
        assert_eq!(attr.value.len(), 30);
        let ctx = decode_trace_ctx(&attr).unwrap();
        assert_eq!(ctx.trace, trace);
        assert_eq!(ctx.parent, Some(parent));
        assert_eq!(ctx.clock_us, 1_234_567);
        // No parent encodes as zero and decodes back to None.
        let root = trace_ctx_attribute(trace, None, 7);
        assert_eq!(decode_trace_ctx(&root).unwrap().parent, None);
        // The bare-id view still works on a v2 payload.
        assert_eq!(decode_trace(&attr), Some(trace));
    }

    #[test]
    fn round_trip_through_packet_encoding() {
        let id = TraceId::from_u64(42);
        let span = SpanId::from_u64(9);
        let pkt = Packet::new(Code::AccessRequest, 7, [0u8; 16])
            .with_attribute(trace_ctx_attribute(id, Some(span), 500));
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(trace_id_of(&decoded), Some(id));
        let ctx = trace_ctx_of(&decoded).unwrap();
        assert_eq!(ctx.parent, Some(span));
        assert_eq!(ctx.clock_us, 500);
    }

    #[test]
    fn response_clock_round_trips() {
        let attr = clock_attribute(987_654);
        assert_eq!(decode_clock(&attr), Some(987_654));
        // The clock sub-attribute is not a trace context and vice versa.
        assert_eq!(decode_trace_ctx(&attr), None);
        assert_eq!(decode_clock(&trace_attribute(TraceId::from_u64(1))), None);
        let pkt = Packet::new(Code::AccessAccept, 1, [0u8; 16]).with_attribute(clock_attribute(55));
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        assert_eq!(clock_of(&decoded), Some(55));
        assert_eq!(trace_id_of(&decoded), None);
    }

    #[test]
    fn foreign_vsas_are_ignored() {
        // Wrong vendor id.
        let mut value = 9u32.to_be_bytes().to_vec();
        value.push(TRACE_VENDOR_TYPE);
        value.push(10);
        value.extend_from_slice(&7u64.to_be_bytes());
        let foreign = Attribute::new(AttributeType::VendorSpecific, value);
        assert_eq!(decode_trace(&foreign), None);
        // Truncated payload.
        let short = Attribute::new(AttributeType::VendorSpecific, vec![1, 2, 3]);
        assert_eq!(decode_trace(&short), None);
        // Wrong vendor-length byte for the payload size.
        let mut bad_len = trace_ctx_attribute(TraceId::from_u64(3), None, 0).value;
        bad_len[5] = 10;
        assert_eq!(
            decode_trace(&Attribute::new(AttributeType::VendorSpecific, bad_len)),
            None
        );
        // A packet with only foreign VSAs carries no trace.
        let pkt = Packet::new(Code::AccessRequest, 1, [0u8; 16]).with_attribute(foreign);
        assert_eq!(trace_id_of(&pkt), None);
        // But ours is still found after a foreign one.
        let id = TraceId::from_u64(5);
        let pkt = pkt.with_attribute(trace_attribute(id));
        assert_eq!(trace_id_of(&pkt), Some(id));
    }
}
