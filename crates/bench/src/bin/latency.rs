//! Auth-path latency: p50/p90/p99 of the RADIUS request duration over a
//! clean login stream, printed as ONE machine-readable JSON line so CI
//! and scripts can diff runs (`cargo run --bin latency | jq .p99_us`).
//!
//! Durations come from the client's deterministic virtual clock (each
//! attempt is charged its modeled cost: ~2 ms per healthy round trip,
//! 1 s per timeout), so the same seed prints the same line every run.

use hpcmfa_workload::chaos::{ChaosParams, ChaosRunner, FaultScript};

fn main() {
    let mut params = ChaosParams {
        logins: 200,
        ..ChaosParams::default()
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--logins" => {
                params.logins = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--logins needs an integer");
                i += 2;
            }
            "--seed" => {
                params.seed = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
                i += 2;
            }
            other => panic!("unknown argument {other:?} (expected --logins/--seed)"),
        }
    }
    eprintln!(
        "driving {} logins through the full sshd → PAM → RADIUS → OTP path (seed {}) ...",
        params.logins, params.seed
    );
    let seed = params.seed;
    let logins = params.logins;
    let report = ChaosRunner::new(params).run(&FaultScript::new());
    let hist = report
        .metrics
        .histogram_family("hpcmfa_radius_request_duration_us");
    let line = format!(
        "{{\"metric\":\"hpcmfa_radius_request_duration_us\",\"logins\":{logins},\"seed\":{seed},\
\"count\":{},\"p50_us\":{},\"p90_us\":{},\"p99_us\":{},\"p999_us\":{},\"max_us\":{},\"mean_us\":{:.1}}}",
        hist.count(),
        hist.p50(),
        hist.quantile(0.90),
        hist.quantile(0.99),
        hist.quantile(0.999),
        hist.max(),
        hist.mean(),
    );
    println!("{line}");
    // Also persist the line so CI can diff runs without re-capturing stdout.
    if let Err(e) = std::fs::write("BENCH_latency.json", format!("{line}\n")) {
        eprintln!("warning: could not write BENCH_latency.json: {e}");
    }
}
