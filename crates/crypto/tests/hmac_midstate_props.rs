//! Equivalence properties for HMAC midstate caching: a precomputed
//! [`HmacKey`] must produce the same MAC as the one-shot [`hmac`] — and
//! both must match a spec-direct RFC 2104 reference implementation built
//! from nothing but `Digest::digest` — for arbitrary keys and messages,
//! including keys longer than the block size and the empty-key/empty-
//! message corners. The reference shares no code with the midstate path
//! (no `Hmac`, no `HmacKey`, no incremental state), so a bug in the
//! caching cannot cancel out of both sides.

use hpcmfa_crypto::hmac::{hmac, Hmac, HmacKey, MAX_OUTPUT_LEN};
use hpcmfa_crypto::{md5::Md5, sha1::Sha1, sha256::Sha256, sha512::Sha512, Digest, HashAlg};
use proptest::prelude::*;

/// RFC 2104 §2, computed literally: H((K' ^ opad) || H((K' ^ ipad) || m))
/// with K' the key zero-padded (hashed first if longer than one block).
fn reference_hmac<D: Digest>(key: &[u8], msg: &[u8]) -> Vec<u8> {
    let key = if key.len() > D::BLOCK_LEN {
        D::digest(key)
    } else {
        key.to_vec()
    };
    let mut padded = vec![0u8; D::BLOCK_LEN];
    padded[..key.len()].copy_from_slice(&key);
    let inner: Vec<u8> = padded
        .iter()
        .map(|b| b ^ 0x36)
        .chain(msg.iter().copied())
        .collect();
    let inner_digest = D::digest(&inner);
    let outer: Vec<u8> = padded
        .iter()
        .map(|b| b ^ 0x5c)
        .chain(inner_digest.iter().copied())
        .collect();
    D::digest(&outer)
}

fn arb_key() -> BoxedStrategy<Vec<u8>> {
    // Cover every interesting length class: empty, short, exactly one
    // SHA-1/SHA-256 block (64), exactly one SHA-512 block (128), longer.
    prop_oneof![
        Just(Vec::new()),
        prop::collection::vec(any::<u8>(), 1..64),
        prop::collection::vec(any::<u8>(), 64..65),
        prop::collection::vec(any::<u8>(), 65..128),
        prop::collection::vec(any::<u8>(), 128..129),
        prop::collection::vec(any::<u8>(), 129..300),
    ]
    .boxed()
}

fn arb_msg() -> BoxedStrategy<Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..200).boxed()
}

proptest! {
    #[test]
    fn cached_equals_oneshot_equals_reference(key in arb_key(), msg in arb_msg()) {
        macro_rules! check {
            ($d:ty) => {{
                let want = reference_hmac::<$d>(&key, &msg);
                prop_assert_eq!(&hmac::<$d>(&key, &msg), &want);
                prop_assert_eq!(&HmacKey::<$d>::new(&key).mac(&msg), &want);
            }};
        }
        check!(Md5);
        check!(Sha1);
        check!(Sha256);
        check!(Sha512);
    }

    #[test]
    fn one_key_many_messages(key in arb_key(), msgs in prop::collection::vec(arb_msg(), 1..8)) {
        // The whole point of the cache: one preparation, many MACs, each
        // equal to an independent from-scratch computation.
        let cached = HmacKey::<Sha1>::new(&key);
        for msg in &msgs {
            prop_assert_eq!(cached.mac(msg), reference_hmac::<Sha1>(&key, msg));
        }
    }

    #[test]
    fn mac_into_equals_mac(key in arb_key(), msg in arb_msg()) {
        let cached = HmacKey::<Sha256>::new(&key);
        let mut buf = [0u8; MAX_OUTPUT_LEN];
        let n = cached.mac_into(&msg, &mut buf);
        prop_assert_eq!(&buf[..n], cached.mac(&msg).as_slice());
    }

    #[test]
    fn incremental_chunking_is_invisible(key in arb_key(), msg in arb_msg(), chunk in 1usize..33) {
        let mut mac = Hmac::<Sha512>::new(&key);
        for c in msg.chunks(chunk) {
            mac.update(c);
        }
        prop_assert_eq!(mac.finalize(), reference_hmac::<Sha512>(&key, &msg));
    }

    #[test]
    fn prepared_dispatch_equals_alg_hmac(key in arb_key(), msg in arb_msg()) {
        // The enum the hot path actually uses must agree with the
        // generic-dispatch entry point for every algorithm.
        for alg in [HashAlg::Sha1, HashAlg::Sha256, HashAlg::Sha512] {
            let prepared = alg.prepare_key(&key);
            prop_assert_eq!(prepared.mac(&msg), alg.hmac(&key, &msg));
            let mut buf = [0u8; MAX_OUTPUT_LEN];
            let n = prepared.mac_into(&msg, &mut buf);
            prop_assert_eq!(n, prepared.output_len());
            prop_assert_eq!(&buf[..n], alg.hmac(&key, &msg).as_slice());
        }
    }
}
