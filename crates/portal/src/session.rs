//! Stateful pairing sessions.
//!
//! "The pairing process itself is a stateful operation between the browser
//! client and the portal back end. ... If a user refreshes in the middle
//! of the process, e.g. after requesting a token but before confirming it,
//! the process is aborted and the user will have to restart from the
//! beginning. This also protects against using the browser's back button
//! to go back to the pairing setup page after a successful pairing." (§3.5)

use hpcmfa_directory::identity::PairingMethod;

/// Where a pairing session stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// A token was requested; the portal waits for the confirmation code.
    AwaitingConfirmation,
    /// Confirmed and recorded; the session is spent.
    Completed,
    /// Refreshed/navigated away mid-flow; must restart.
    Aborted,
}

/// One user's in-flight pairing attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairingSession {
    /// The account pairing.
    pub user: String,
    /// Device kind being paired.
    pub method: PairingMethod,
    /// Current state.
    pub state: SessionState,
    /// Unix time the session started.
    pub started_at: u64,
    /// Hard-token serial being claimed, if any.
    pub serial: Option<String>,
}

impl PairingSession {
    /// Open a session awaiting confirmation.
    pub fn start(user: &str, method: PairingMethod, now: u64) -> Self {
        PairingSession {
            user: user.to_string(),
            method,
            state: SessionState::AwaitingConfirmation,
            started_at: now,
            serial: None,
        }
    }

    /// Whether a confirmation may be accepted.
    pub fn can_confirm(&self) -> bool {
        self.state == SessionState::AwaitingConfirmation
    }

    /// Mark spent (successful confirmation).
    pub fn complete(&mut self) {
        self.state = SessionState::Completed;
    }

    /// Mark aborted (refresh / back button / new session supersedes).
    pub fn abort(&mut self) {
        if self.state == SessionState::AwaitingConfirmation {
            self.state = SessionState::Aborted;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle() {
        let mut s = PairingSession::start("alice", PairingMethod::Soft, 100);
        assert!(s.can_confirm());
        s.complete();
        assert!(!s.can_confirm());
        assert_eq!(s.state, SessionState::Completed);
    }

    #[test]
    fn abort_only_from_awaiting() {
        let mut s = PairingSession::start("alice", PairingMethod::Sms, 100);
        s.complete();
        s.abort();
        // A completed session is spent, not aborted: the back button must
        // not resurrect or cancel it.
        assert_eq!(s.state, SessionState::Completed);

        let mut s2 = PairingSession::start("bob", PairingMethod::Soft, 100);
        s2.abort();
        assert_eq!(s2.state, SessionState::Aborted);
        assert!(!s2.can_confirm());
    }
}
