//! Property tests for hierarchical timed spans and trace assembly.
//!
//! Three contracts are pinned:
//!
//! 1. **Partition** — for any nesting of spans on one virtual clock, the
//!    per-span self-times sum exactly to the root's end-to-end duration
//!    (nothing double-counted, nothing lost), and the critical path is a
//!    real root-to-leaf chain with non-increasing hop durations.
//! 2. **Whole-trace eviction** — the tracer ring never retains a
//!    truncated tree: past the cap, the oldest trace's spans are evicted
//!    *together*, and `dropped()` accounts for every evicted span.
//! 3. **Documented orders** — `trace_ids()` (ascending numeric) and
//!    `components_for()` (ascending lexicographic) are sorted contracts,
//!    not storage accidents.

use hpcmfa_telemetry::{MetricsRegistry, SpanCtx, TraceClock, TraceCollector, TraceId, Tracer};
use proptest::prelude::*;
use std::sync::Arc;

/// A randomly shaped span tree: virtual-clock advances before and after
/// the children, up to depth 4 and fan-out 4.
#[derive(Debug, Clone)]
struct Node {
    pre_us: u16,
    tail_us: u16,
    children: Vec<Node>,
}

fn arb_node() -> impl Strategy<Value = Node> {
    let leaf = (0u16..500, 0u16..500).prop_map(|(pre_us, tail_us)| Node {
        pre_us,
        tail_us,
        children: Vec::new(),
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (0u16..500, 0u16..500, prop::collection::vec(inner, 0..4)).prop_map(
            |(pre_us, tail_us, children)| Node {
                pre_us,
                tail_us,
                children,
            },
        )
    })
}

/// Record `node` as a span under `ctx`, recursing into its children on
/// the child context (so they parent under this span on the same clock).
fn build(tracer: &Tracer, ctx: &SpanCtx, node: &Node) {
    let guard = tracer.start(ctx, "node", "op");
    let child_ctx = guard.child_ctx();
    child_ctx.clock.advance_us(u64::from(node.pre_us));
    for child in &node.children {
        build(tracer, &child_ctx, child);
    }
    child_ctx.clock.advance_us(u64::from(node.tail_us));
    guard.finish();
}

proptest! {
    /// For ANY tree shape, self-times partition the root duration and the
    /// critical path is a real, non-increasing root-to-leaf chain.
    fn self_times_partition_root_duration(root in arb_node()) {
        let reg = Arc::new(MetricsRegistry::new());
        let trace = TraceId::from_u64(0x9999);
        let ctx = SpanCtx::root(trace, TraceClock::at(1_000));
        build(reg.tracer(), &ctx, &root);

        let collector = TraceCollector::new();
        collector.add_source(Arc::clone(&reg));
        let tree = collector.assemble(trace).expect("one trace assembles");

        let total: u64 = tree.self_time_by_component().iter().map(|&(_, us)| us).sum();
        prop_assert_eq!(total, tree.duration_us(), "self-times must partition the total");

        let path = tree.critical_path();
        prop_assert!(!path.is_empty());
        prop_assert_eq!(path[0].duration_us, tree.duration_us());
        prop_assert!(
            path.windows(2).all(|w| w[1].duration_us <= w[0].duration_us),
            "hop durations must be non-increasing: {:?}", path
        );
        for hop in &path {
            prop_assert!(
                tree.spans.iter().any(|s| s.id == hop.span),
                "critical-path hop {:?} is not a span of the tree", hop
            );
        }
    }

    /// Ring eviction is whole-trace: retained traces are always complete,
    /// `len() + dropped()` accounts for every recorded span, and the
    /// survivors are exactly the most recently started traces.
    fn ring_eviction_drops_whole_oldest_traces(
        cap in 1usize..40,
        per in 1usize..6,
        n in 1usize..20,
    ) {
        let tracer = Tracer::with_cap(cap);
        let clock = TraceClock::at(0);
        for i in 0..n {
            let ctx = SpanCtx::root(TraceId::from_u64(1 + i as u64), clock.clone());
            for _ in 0..per {
                clock.advance_us(5);
                tracer.start(&ctx, "t", "op").finish();
            }
        }
        let recorded = (n * per) as u64;
        prop_assert_eq!(tracer.len() as u64 + tracer.dropped(), recorded);
        for t in tracer.trace_ids() {
            prop_assert_eq!(
                tracer.spans_for(t).len(), per,
                "retained trace {} is truncated", t
            );
        }
        // Survivors are a contiguous suffix of the insertion order: the
        // oldest trace is always the next victim.
        let ids: Vec<u64> = tracer.trace_ids().iter().map(|t| t.as_u64()).collect();
        if let Some(&min) = ids.first() {
            let expect: Vec<u64> = (min..=n as u64).collect();
            prop_assert_eq!(ids, expect);
        }
    }

    /// `trace_ids()` is ascending numeric and `components_for()` is
    /// ascending lexicographic, regardless of recording order.
    fn listing_orders_are_sorted(seeds in prop::collection::vec(0u64..1_000, 1..20)) {
        let tracer = Tracer::new();
        let comps: [&str; 4] = ["delta", "alpha", "charlie", "bravo"];
        for (i, &s) in seeds.iter().enumerate() {
            tracer.span(TraceId::from_u64(s), comps[i % comps.len()], "op", "");
        }
        let ids = tracer.trace_ids();
        prop_assert!(ids.windows(2).all(|w| w[0] < w[1]), "trace_ids not sorted: {:?}", ids);
        for t in ids {
            let cs = tracer.components_for(t);
            prop_assert!(
                cs.windows(2).all(|w| w[0] < w[1]),
                "components_for not sorted: {:?}", cs
            );
        }
    }
}
