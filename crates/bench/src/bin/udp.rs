//! UDP ingest bench: batched event-loop vs thread-per-request (DESIGN.md §16).
//!
//! Regenerates `BENCH_udp.json`. Two claims are pinned:
//!
//! 1. **Packet rate.** A batched receive loop (drain the socket up to
//!    `batch_max` datagrams per wakeup, hand off to a bounded worker pool,
//!    reuse per-worker encode buffers) beats the naive thread-per-request
//!    server by ≥3× on the deterministic cost model below.
//! 2. **Zero-copy decode.** The hot decode loop — `PacketView::parse` plus a
//!    full attribute walk and the text reads the OTP handler performs — does
//!    **zero** heap allocations per datagram, measured by a counting global
//!    allocator, where the owned `Packet::decode` path allocates per
//!    attribute.
//!
//! Like the other benches, wall-clock time is reported but *not* asserted:
//! `--check` only inspects deterministic quantities (the virtual cost model
//! and real allocation counts), so CI stays reproducible on noisy runners.
//!
//! Cost model (microseconds, commented where each figure comes from):
//!
//! - `RECV_SYSCALL_US = 2` — blocking `recvfrom` wakeup path.
//! - `NB_RECV_US = 1` — nonblocking recv of an already-queued datagram
//!   (no scheduler round trip; this is what batching amortises into).
//! - `THREAD_SPAWN_US = 30` — `pthread_create` + stack setup, paid per
//!   datagram by the thread-per-request server and serialised on its
//!   accept loop.
//! - `DISPATCH_US = 1` — bounded-queue mutex handoff per datagram.
//! - `PROCESS_US = 10` — decode + MD5 password recovery + handler +
//!   encode + response seal (both servers pay this; the batched pool
//!   overlaps it across `workers`).
//!
//! Both pipelines really run: every datagram goes through
//! `RadiusServer::process_datagram` (baseline, fresh buffers per call) or
//! `RadiusServer::process_into` (batched, per-worker reused buffers), and
//! the allocation columns are measured, not modelled.

use hpcmfa_radius::attribute::{Attribute, AttributeType};
use hpcmfa_radius::auth::hide_password;
use hpcmfa_radius::packet::{Code, Packet, PacketView};
use hpcmfa_radius::server::{Handler, RadiusServer, ServerDecision};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Counts every heap allocation so the zero-copy claim is measured, not
/// asserted by inspection. Deallocation is free to stay out of the way.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::SeqCst)
}

const RECV_SYSCALL_US: u64 = 2;
const NB_RECV_US: u64 = 1;
const THREAD_SPAWN_US: u64 = 30;
const DISPATCH_US: u64 = 1;
const PROCESS_US: u64 = 10;

const SECRET: &[u8] = b"bench-udp-secret";

/// Allocation-free accept-all handler: implements `handle_view` natively so
/// the batched path never round-trips through an owned `Packet`, and returns
/// an empty attribute list (`Vec::new()` does not allocate).
struct AcceptAll;

impl Handler for AcceptAll {
    fn handle(&self, _request: &Packet, _password: Option<&[u8]>) -> ServerDecision {
        ServerDecision::Accept(Vec::new())
    }

    fn handle_view(&self, _request: &PacketView<'_>, _password: Option<&[u8]>) -> ServerDecision {
        ServerDecision::Accept(Vec::new())
    }
}

/// A realistic Access-Request: username, hidden password, NAS identifier and
/// calling station — the attribute shape the OTP front end actually sees.
fn make_wire(rng: &mut StdRng, id: u8) -> Vec<u8> {
    let mut auth = [0u8; 16];
    rng.fill_bytes(&mut auth);
    let mut password = [0u8; 8];
    rng.fill_bytes(&mut password);
    let mut p = Packet::new(Code::AccessRequest, id, auth);
    p.attributes.push(Attribute::new(
        AttributeType::UserName,
        format!("user{:03}", id).into_bytes(),
    ));
    p.attributes.push(Attribute::new(
        AttributeType::UserPassword,
        hide_password(&password, &auth, SECRET),
    ));
    p.attributes.push(Attribute::new(
        AttributeType::NasIdentifier,
        b"login01".to_vec(),
    ));
    p.attributes.push(Attribute::new(
        AttributeType::CallingStationId,
        b"198.51.100.77".to_vec(),
    ));
    p.encode()
}

struct RunResult {
    replied: u64,
    elapsed_us: u64,
    pps: f64,
    allocs_per_datagram: f64,
    wall_ms: f64,
}

/// Thread-per-request model: the accept loop pays a blocking recv plus a
/// thread spawn per datagram, fully serialised; processing overlaps on the
/// spawned threads so only the last datagram's processing lands on the
/// critical path. Buffers are fresh per call, as a per-request thread's
/// would be.
fn run_baseline(server: &RadiusServer, corpus: &[Vec<u8>], datagrams: u64) -> RunResult {
    let before = allocs();
    let start = Instant::now();
    let mut replied = 0u64;
    for i in 0..datagrams {
        let wire = &corpus[(i as usize) % corpus.len()];
        if server.process_datagram(wire).is_some() {
            replied += 1;
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let measured_allocs = allocs() - before;
    let elapsed_us = datagrams * (RECV_SYSCALL_US + THREAD_SPAWN_US) + PROCESS_US;
    RunResult {
        replied,
        elapsed_us,
        pps: datagrams as f64 / (elapsed_us as f64 / 1e6),
        allocs_per_datagram: measured_allocs as f64 / datagrams as f64,
        wall_ms,
    }
}

/// Batched model: the receiver pays one blocking syscall per batch and a
/// cheap nonblocking recv per queued datagram, workers overlap processing
/// across the pool, and the bounded-queue handoff is the serial term —
/// `elapsed = max(receiver, slowest worker) + datagrams × DISPATCH_US`.
fn run_batched(
    server: &RadiusServer,
    corpus: &[Vec<u8>],
    datagrams: u64,
    workers: u64,
    batch_max: u64,
) -> RunResult {
    let before = allocs();
    let start = Instant::now();
    let replied = AtomicU64::new(0);
    std::thread::scope(|s| {
        for w in 0..workers {
            let replied = &replied;
            let ops = datagrams / workers + u64::from(w < datagrams % workers);
            s.spawn(move || {
                let mut reply = Vec::with_capacity(hpcmfa_radius::MAX_PACKET_LEN);
                let mut pw_scratch = Vec::new();
                for i in 0..ops {
                    let wire = &corpus[((w + i * workers) as usize) % corpus.len()];
                    if server.process_into(wire, &mut reply, &mut pw_scratch) {
                        replied.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let measured_allocs = allocs() - before;
    let batches = datagrams.div_ceil(batch_max);
    let receiver_us = batches * RECV_SYSCALL_US + datagrams * NB_RECV_US;
    let worker_us = datagrams.div_ceil(workers) * PROCESS_US;
    let elapsed_us = receiver_us.max(worker_us) + datagrams * DISPATCH_US;
    RunResult {
        replied: replied.load(Ordering::SeqCst),
        elapsed_us,
        pps: datagrams as f64 / (elapsed_us as f64 / 1e6),
        allocs_per_datagram: measured_allocs as f64 / datagrams as f64,
        wall_ms,
    }
}

fn run_json(r: &RunResult, datagrams: u64) -> String {
    format!(
        "{{\"replied\":{},\"datagrams\":{},\"elapsed_us\":{},\"pps\":{:.0},\"allocs_per_datagram\":{:.3},\"wall_ms\":{:.1}}}",
        r.replied, datagrams, r.elapsed_us, r.pps, r.allocs_per_datagram, r.wall_ms
    )
}

fn main() {
    let mut seed = 20u64;
    let mut datagrams = 20_000u64;
    let mut workers = 4u64;
    let mut batch_max = 64u64;
    let mut out = String::from("BENCH_udp.json");
    let mut check = false;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                seed = argv[i + 1].parse().expect("--seed u64");
                i += 2;
            }
            "--datagrams" => {
                datagrams = argv[i + 1].parse().expect("--datagrams u64");
                i += 2;
            }
            "--workers" => {
                workers = argv[i + 1].parse().expect("--workers u64");
                i += 2;
            }
            "--batch-max" => {
                batch_max = argv[i + 1].parse().expect("--batch-max u64");
                i += 2;
            }
            "--out" => {
                out = argv[i + 1].clone();
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            other => panic!("unknown argument {other}"),
        }
    }
    assert!(workers > 0 && batch_max > 0 && datagrams > 0);

    let mut rng = StdRng::seed_from_u64(seed);
    let corpus: Vec<Vec<u8>> = (0..=255u8).map(|id| make_wire(&mut rng, id)).collect();
    let attrs_per_packet = Packet::decode(&corpus[0])
        .expect("corpus wire")
        .attributes
        .len();

    // Claim 2 first: the hot decode loop — parse, walk every attribute,
    // read the text fields the OTP handler reads — over the whole corpus,
    // many times, with the allocator watching.
    let decode_iters = 10_000u64;
    let mut sink = 0usize;
    let before = allocs();
    for i in 0..decode_iters {
        let wire = &corpus[(i as usize) % corpus.len()];
        let view = PacketView::parse(wire).expect("corpus is well-formed");
        for attr in view.attributes() {
            sink = sink.wrapping_add(attr.value.len());
        }
        sink = sink.wrapping_add(view.text(AttributeType::UserName).map_or(0, str::len));
        sink = sink.wrapping_add(
            view.text(AttributeType::CallingStationId)
                .map_or(0, str::len),
        );
    }
    let view_allocs = allocs() - before;
    std::hint::black_box(sink);

    let before = allocs();
    for i in 0..decode_iters {
        let wire = &corpus[(i as usize) % corpus.len()];
        std::hint::black_box(Packet::decode(wire).expect("corpus is well-formed"));
    }
    let owned_allocs_per_packet = (allocs() - before) as f64 / decode_iters as f64;

    eprintln!(
        "decode: view {view_allocs} allocs / {decode_iters} packets, owned {owned_allocs_per_packet:.1} allocs/packet ({attrs_per_packet} attrs)"
    );

    // Claim 1: same server, same corpus, both ingest disciplines.
    let server = RadiusServer::new(SECRET, Arc::new(AcceptAll));
    let baseline = run_baseline(&server, &corpus, datagrams);
    eprintln!(
        "thread-per-request: {:.0} pps ({:.3} allocs/datagram, wall {:.1} ms)",
        baseline.pps, baseline.allocs_per_datagram, baseline.wall_ms
    );
    let batched = run_batched(&server, &corpus, datagrams, workers, batch_max);
    eprintln!(
        "batched x{workers}: {:.0} pps ({:.3} allocs/datagram, wall {:.1} ms)",
        batched.pps, batched.allocs_per_datagram, batched.wall_ms
    );
    let speedup = batched.pps / baseline.pps;
    eprintln!("speedup vs thread-per-request: {speedup:.2}x");

    let json = format!(
        "{{\"bench\":\"udp\",\"seed\":{seed},\"datagrams\":{datagrams},\"workers\":{workers},\"batch_max\":{batch_max},\
\"model\":{{\"recv_syscall_us\":{RECV_SYSCALL_US},\"nb_recv_us\":{NB_RECV_US},\"thread_spawn_us\":{THREAD_SPAWN_US},\
\"dispatch_us\":{DISPATCH_US},\"process_us\":{PROCESS_US}}},\
\"decode\":{{\"iters\":{decode_iters},\"attrs_per_packet\":{attrs_per_packet},\"view_allocs_total\":{view_allocs},\
\"owned_allocs_per_packet\":{owned_allocs_per_packet:.1}}},\
\"thread_per_request\":{},\"batched\":{},\"speedup_vs_thread_per_request\":{speedup:.2}}}\n",
        run_json(&baseline, datagrams),
        run_json(&batched, datagrams),
    );
    std::fs::write(&out, &json).expect("write bench output");
    eprintln!("wrote {out}");

    if check {
        // Deterministic floors only: the virtual cost model and real
        // allocation counts. Wall time never gates CI.
        assert_eq!(
            view_allocs, 0,
            "hot decode loop must be allocation-free (got {view_allocs} over {decode_iters} packets)"
        );
        assert!(
            owned_allocs_per_packet >= attrs_per_packet as f64,
            "owned decode should allocate per attribute; the contrast collapsed"
        );
        assert_eq!(baseline.replied, datagrams, "baseline dropped datagrams");
        assert_eq!(batched.replied, datagrams, "batched path dropped datagrams");
        assert!(
            speedup >= 3.0,
            "batched ingest must clear 3x over thread-per-request, got {speedup:.2}x"
        );
        eprintln!("check OK: zero-alloc decode, {speedup:.2}x >= 3x");
    }
}
