//! Equivalence properties for the sharded token store: under arbitrary
//! operation sequences the sharded store must behave exactly like a plain
//! single `BTreeMap` reference model — same record state, same status
//! output, same purge counts, and (the part sharding actually changed)
//! same gauge readings from its incremental atomic counters as the model
//! computes by brute-force census.

use hpcmfa_otp::secret::Secret;
use hpcmfa_otp::totp::Totp;
use hpcmfa_otpserver::sms::PhoneNumber;
use hpcmfa_otpserver::store::{
    shard_of_name, PendingSmsCode, TokenPairing, TokenStore, TotpProvenance, SHARD_COUNT,
};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// A store record the model and the sharded store both apply.
#[derive(Debug, Clone)]
enum Op {
    EnrollTotp {
        user: String,
        hard: bool,
    },
    EnrollSms {
        user: String,
        pending: Option<(u64, u64)>,
    },
    Remove {
        user: String,
    },
    SetActive {
        user: String,
        active: bool,
    },
    BumpFail {
        user: String,
    },
    SetPending {
        user: String,
        pending: Option<(u64, u64)>,
    },
    Status {
        user: String,
        now: u64,
    },
    Purge {
        now: u64,
    },
    Gauges {
        now: u64,
    },
}

fn mk_totp(hard: bool) -> TokenPairing {
    TokenPairing::Totp {
        totp: Totp::new(Secret::from_bytes(*b"12345678901234567890")),
        provenance: if hard {
            TotpProvenance::Hard
        } else {
            TotpProvenance::Soft
        },
        serial: hard.then(|| "TACC-0001".to_string()),
        last_step: None,
        drift_steps: 0,
    }
}

fn mk_sms(pending: Option<(u64, u64)>) -> TokenPairing {
    TokenPairing::Sms {
        phone: PhoneNumber::parse("5125551234").unwrap(),
        pending: pending.map(|(sent_at, expires_at)| PendingSmsCode {
            code: "123456".into(),
            sent_at,
            expires_at,
        }),
    }
}

/// Reference model: the old single-map store semantics, written as plainly
/// as possible.
#[derive(Default)]
struct Model {
    users: BTreeMap<String, hpcmfa_otpserver::store::UserTokenRecord>,
}

impl Model {
    fn purge(&mut self, now: u64) -> usize {
        let mut purged = 0;
        for rec in self.users.values_mut() {
            if let TokenPairing::Sms { pending, .. } = &mut rec.pairing {
                if pending.as_ref().is_some_and(|p| !p.active(now)) {
                    *pending = None;
                    purged += 1;
                }
            }
        }
        purged
    }

    /// Brute-force census — what `gauge_counts` used to compute under one
    /// big write lock.
    fn gauges(&mut self, now: u64) -> (u64, u64) {
        self.purge(now);
        let locked = self.users.values().filter(|r| !r.active).count() as u64;
        let pending = self
            .users
            .values()
            .filter(|r| {
                matches!(
                    &r.pairing,
                    TokenPairing::Sms { pending: Some(p), .. } if p.active(now)
                )
            })
            .count() as u64;
        (locked, pending)
    }
}

fn arb_user() -> BoxedStrategy<String> {
    // A small closed set of names so operations actually collide on users.
    prop_oneof![
        "[a-f]",
        "user[0-9]",
        Just("zoe".to_string()),
        Just("".to_string()),
    ]
    .boxed()
}

fn arb_pending() -> BoxedStrategy<Option<(u64, u64)>> {
    prop_oneof![
        Just(None),
        (0u64..500, 1u64..1_000).prop_map(|(s, e)| Some((s, s + e))),
    ]
    .boxed()
}

fn arb_op() -> BoxedStrategy<Op> {
    prop_oneof![
        (arb_user(), any::<bool>()).prop_map(|(user, hard)| Op::EnrollTotp { user, hard }),
        (arb_user(), arb_pending()).prop_map(|(user, pending)| Op::EnrollSms { user, pending }),
        arb_user().prop_map(|user| Op::Remove { user }),
        (arb_user(), any::<bool>()).prop_map(|(user, active)| Op::SetActive { user, active }),
        arb_user().prop_map(|user| Op::BumpFail { user }),
        (arb_user(), arb_pending()).prop_map(|(user, pending)| Op::SetPending { user, pending }),
        (arb_user(), 0u64..2_000).prop_map(|(user, now)| Op::Status { user, now }),
        (0u64..2_000).prop_map(|now| Op::Purge { now }),
        (0u64..2_000).prop_map(|now| Op::Gauges { now }),
    ]
    .boxed()
}

proptest! {
    #[test]
    fn sharded_store_equals_reference_model(ops in prop::collection::vec(arb_op(), 0..60)) {
        let store = TokenStore::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::EnrollTotp { user, hard } => {
                    store.enroll(&user, mk_totp(hard));
                    model.users.insert(
                        user,
                        hpcmfa_otpserver::store::UserTokenRecord {
                            pairing: mk_totp(hard),
                            fail_count: 0,
                            active: true,
                        },
                    );
                }
                Op::EnrollSms { user, pending } => {
                    store.enroll(&user, mk_sms(pending));
                    model.users.insert(
                        user,
                        hpcmfa_otpserver::store::UserTokenRecord {
                            pairing: mk_sms(pending),
                            fail_count: 0,
                            active: true,
                        },
                    );
                }
                Op::Remove { user } => {
                    prop_assert_eq!(store.remove(&user), model.users.remove(&user).is_some());
                }
                Op::SetActive { user, active } => {
                    let got = store.with_record(&user, |r| r.active = active);
                    let want = model.users.get_mut(&user).map(|r| r.active = active);
                    prop_assert_eq!(got.is_some(), want.is_some());
                }
                Op::BumpFail { user } => {
                    let got = store.with_record(&user, |r| {
                        r.fail_count += 1;
                        r.fail_count
                    });
                    let want = model.users.get_mut(&user).map(|r| {
                        r.fail_count += 1;
                        r.fail_count
                    });
                    prop_assert_eq!(got, want);
                }
                Op::SetPending { user, pending } => {
                    let set = |r: &mut hpcmfa_otpserver::store::UserTokenRecord| {
                        if let TokenPairing::Sms { pending: p, .. } = &mut r.pairing {
                            *p = pending.map(|(sent_at, expires_at)| PendingSmsCode {
                                code: "123456".into(),
                                sent_at,
                                expires_at,
                            });
                            true
                        } else {
                            false
                        }
                    };
                    let got = store.with_record(&user, set);
                    let want = model.users.get_mut(&user).map(set);
                    prop_assert_eq!(got, want);
                }
                Op::Status { user, now } => {
                    // status() purges that user's expired pending code as a
                    // side effect; mirror it on the model record.
                    let got = store.status(&user, now);
                    let want = model.users.get_mut(&user).map(|r| {
                        if let TokenPairing::Sms { pending, .. } = &mut r.pairing {
                            if pending.as_ref().is_some_and(|p| !p.active(now)) {
                                *pending = None;
                            }
                        }
                        hpcmfa_otpserver::store::UserTokenStatus {
                            kind: r.pairing.kind_label().to_string(),
                            fail_count: r.fail_count,
                            active: r.active,
                            serial: match &r.pairing {
                                TokenPairing::Totp { serial, .. } => serial.clone(),
                                _ => None,
                            },
                            sms_pending: matches!(
                                &r.pairing,
                                TokenPairing::Sms { pending: Some(p), .. } if p.active(now)
                            ),
                        }
                    });
                    prop_assert_eq!(got, want);
                }
                Op::Purge { now } => {
                    prop_assert_eq!(store.purge_expired_sms(now), model.purge(now));
                }
                Op::Gauges { now } => {
                    prop_assert_eq!(store.gauge_counts(now), model.gauges(now));
                }
            }
            // Full-state equivalence after every step, not just at the end:
            // export merges shards in sorted order, so it must equal the
            // reference map exactly.
            prop_assert_eq!(store.export_all(), model.users.clone());
            prop_assert_eq!(store.len(), model.users.len());
        }
        // Final gauge read agrees with a from-scratch census.
        prop_assert_eq!(store.gauge_counts(1_000), model.gauges(1_000));
    }

    #[test]
    fn export_load_round_trip_preserves_state_and_gauges(ops in prop::collection::vec(arb_op(), 0..40)) {
        let store = TokenStore::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                Op::EnrollTotp { user, hard } => {
                    store.enroll(&user, mk_totp(hard));
                    model.users.insert(user, hpcmfa_otpserver::store::UserTokenRecord {
                        pairing: mk_totp(hard), fail_count: 0, active: true,
                    });
                }
                Op::EnrollSms { user, pending } => {
                    store.enroll(&user, mk_sms(pending));
                    model.users.insert(user, hpcmfa_otpserver::store::UserTokenRecord {
                        pairing: mk_sms(pending), fail_count: 0, active: true,
                    });
                }
                Op::SetActive { user, active } => {
                    store.with_record(&user, |r| r.active = active);
                    if let Some(r) = model.users.get_mut(&user) { r.active = active; }
                }
                _ => {}
            }
        }
        // Crash-recovery shape: export, wipe, reload. State and gauges must
        // both survive (gauges are rebuilt from scratch in load_all).
        let image = store.export_all();
        let gauges_before = store.gauge_counts(0);
        store.clear();
        prop_assert_eq!(store.gauge_counts(0), (0, 0));
        store.load_all(image.clone());
        prop_assert_eq!(store.export_all(), image);
        prop_assert_eq!(store.gauge_counts(0), gauges_before);
        prop_assert_eq!(store.gauge_counts(0), model.gauges(0));
    }

    #[test]
    fn shard_partition_is_total_and_stable(users in prop::collection::vec("[a-z0-9._-]{0,16}", 0..50)) {
        for u in &users {
            let s = shard_of_name(u);
            prop_assert!(s < SHARD_COUNT);
            prop_assert_eq!(s, shard_of_name(u));
        }
    }
}
