//! The identity-management database.
//!
//! This is the account-of-record system the portal talks to: it stores each
//! account's state and "the current state pertaining to user's MFA pairing
//! status" (§4.2). It deliberately does **not** hold token secrets — those
//! live only in the OTP server's token store, preserving the paper's
//! "information firewall between different pieces of the multi-factor
//! authentication process" (§3.5).

use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The pairing method recorded by the identity back end. Mirrors the token
/// kinds of `hpcmfa-otp` without depending on it (the identity plant
/// predates MFA and knows only labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PairingMethod {
    /// Smartphone app.
    Soft,
    /// SMS delivery.
    Sms,
    /// Key fob.
    Hard,
    /// Training static code.
    Training,
}

impl PairingMethod {
    /// Stable lower-case label stored in the LDAP `mfaPairing` attribute.
    pub fn label(self) -> &'static str {
        match self {
            PairingMethod::Soft => "soft",
            PairingMethod::Sms => "sms",
            PairingMethod::Hard => "hard",
            PairingMethod::Training => "training",
        }
    }

    /// Parse a stored label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "soft" => Some(PairingMethod::Soft),
            "sms" => Some(PairingMethod::Sms),
            "hard" => Some(PairingMethod::Hard),
            "training" => Some(PairingMethod::Training),
            _ => None,
        }
    }
}

/// Administrative account state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccountState {
    /// Normal, usable account.
    #[default]
    Active,
    /// Disabled by staff.
    Suspended,
}

/// One account record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountRecord {
    /// Login name.
    pub username: String,
    /// Unique numeric user ID shared with the token database (§3.1).
    pub uid_number: u64,
    /// Contact email (target of signed unpairing URLs).
    pub email: String,
    /// Administrative state.
    pub state: AccountState,
    /// Current MFA pairing, if any.
    pub pairing: Option<PairingMethod>,
    /// Unix time of the last pairing change, for reporting.
    pub pairing_changed_at: Option<u64>,
}

/// A change to a pairing, kept for audit and for Figure 6 (new pairings per
/// day).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairingEvent {
    /// Account affected.
    pub username: String,
    /// `Some(method)` for a pairing, `None` for an unpairing.
    pub method: Option<PairingMethod>,
    /// Unix time of the change.
    pub at: u64,
}

/// Identity DB errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdentityError {
    /// Account name already taken.
    DuplicateUsername(String),
    /// Unknown account.
    NoSuchAccount(String),
}

impl std::fmt::Display for IdentityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdentityError::DuplicateUsername(u) => write!(f, "duplicate username: {u}"),
            IdentityError::NoSuchAccount(u) => write!(f, "no such account: {u}"),
        }
    }
}

impl std::error::Error for IdentityError {}

#[derive(Default)]
struct Inner {
    accounts: BTreeMap<String, AccountRecord>,
    next_uid: u64,
    pairing_log: Vec<PairingEvent>,
}

/// The identity-management database. Clone shares state.
#[derive(Clone, Default)]
pub struct IdentityDb {
    inner: Arc<RwLock<Inner>>,
}

impl IdentityDb {
    /// Create an empty database. UID numbers start at 10000, like a typical
    /// HPC site's people range.
    pub fn new() -> Self {
        let db = IdentityDb::default();
        db.inner.write().next_uid = 10_000;
        db
    }

    /// Register a new account; allocates the shared unique user ID.
    pub fn create_account(
        &self,
        username: &str,
        email: &str,
    ) -> Result<AccountRecord, IdentityError> {
        let mut inner = self.inner.write();
        if inner.accounts.contains_key(username) {
            return Err(IdentityError::DuplicateUsername(username.to_string()));
        }
        let uid_number = inner.next_uid;
        inner.next_uid += 1;
        let rec = AccountRecord {
            username: username.to_string(),
            uid_number,
            email: email.to_string(),
            state: AccountState::Active,
            pairing: None,
            pairing_changed_at: None,
        };
        inner.accounts.insert(username.to_string(), rec.clone());
        Ok(rec)
    }

    /// Fetch an account.
    pub fn get(&self, username: &str) -> Option<AccountRecord> {
        self.inner.read().accounts.get(username).cloned()
    }

    /// Record that `username` paired with `method` at time `at` — the
    /// portal's §3.5 notification.
    pub fn set_pairing(
        &self,
        username: &str,
        method: PairingMethod,
        at: u64,
    ) -> Result<(), IdentityError> {
        let mut inner = self.inner.write();
        let rec = inner
            .accounts
            .get_mut(username)
            .ok_or_else(|| IdentityError::NoSuchAccount(username.to_string()))?;
        rec.pairing = Some(method);
        rec.pairing_changed_at = Some(at);
        inner.pairing_log.push(PairingEvent {
            username: username.to_string(),
            method: Some(method),
            at,
        });
        Ok(())
    }

    /// Record that `username` unpaired at time `at`.
    pub fn clear_pairing(&self, username: &str, at: u64) -> Result<(), IdentityError> {
        let mut inner = self.inner.write();
        let rec = inner
            .accounts
            .get_mut(username)
            .ok_or_else(|| IdentityError::NoSuchAccount(username.to_string()))?;
        rec.pairing = None;
        rec.pairing_changed_at = Some(at);
        inner.pairing_log.push(PairingEvent {
            username: username.to_string(),
            method: None,
            at,
        });
        Ok(())
    }

    /// Set administrative state.
    pub fn set_state(&self, username: &str, state: AccountState) -> Result<(), IdentityError> {
        let mut inner = self.inner.write();
        let rec = inner
            .accounts
            .get_mut(username)
            .ok_or_else(|| IdentityError::NoSuchAccount(username.to_string()))?;
        rec.state = state;
        Ok(())
    }

    /// All pairing events so far (Figure 6's raw series).
    pub fn pairing_log(&self) -> Vec<PairingEvent> {
        self.inner.read().pairing_log.clone()
    }

    /// Current pairing-type breakdown over paired accounts, as fractions in
    /// Table 1 order: soft, sms, hard, training. Returns `None` when no
    /// account is paired.
    pub fn pairing_breakdown(&self) -> Option<[f64; 4]> {
        let inner = self.inner.read();
        let mut counts = [0usize; 4];
        for rec in inner.accounts.values() {
            if let Some(p) = rec.pairing {
                let idx = match p {
                    PairingMethod::Soft => 0,
                    PairingMethod::Sms => 1,
                    PairingMethod::Hard => 2,
                    PairingMethod::Training => 3,
                };
                counts[idx] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        if total == 0 {
            return None;
        }
        Some(counts.map(|c| c as f64 / total as f64))
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.inner.read().accounts.len()
    }

    /// Whether the database has no accounts.
    pub fn is_empty(&self) -> bool {
        self.inner.read().accounts.is_empty()
    }

    /// Number of accounts with an active pairing.
    pub fn paired_count(&self) -> usize {
        self.inner
            .read()
            .accounts
            .values()
            .filter(|r| r.pairing.is_some())
            .count()
    }

    /// Iterate usernames (snapshot).
    pub fn usernames(&self) -> Vec<String> {
        self.inner.read().accounts.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_allocates_unique_uids() {
        let db = IdentityDb::new();
        let a = db.create_account("alice", "alice@utexas.edu").unwrap();
        let b = db.create_account("bob", "bob@utexas.edu").unwrap();
        assert_eq!(a.uid_number, 10_000);
        assert_eq!(b.uid_number, 10_001);
        assert_eq!(
            db.create_account("alice", "dup@x.org"),
            Err(IdentityError::DuplicateUsername("alice".into()))
        );
    }

    #[test]
    fn pairing_lifecycle_and_log() {
        let db = IdentityDb::new();
        db.create_account("alice", "a@x.org").unwrap();
        db.set_pairing("alice", PairingMethod::Soft, 100).unwrap();
        assert_eq!(db.get("alice").unwrap().pairing, Some(PairingMethod::Soft));
        db.clear_pairing("alice", 200).unwrap();
        assert_eq!(db.get("alice").unwrap().pairing, None);
        let log = db.pairing_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].method, Some(PairingMethod::Soft));
        assert_eq!(log[1].method, None);
        assert_eq!(log[1].at, 200);
    }

    #[test]
    fn unknown_account_errors() {
        let db = IdentityDb::new();
        assert!(db.set_pairing("ghost", PairingMethod::Sms, 0).is_err());
        assert!(db.clear_pairing("ghost", 0).is_err());
        assert!(db.set_state("ghost", AccountState::Suspended).is_err());
    }

    #[test]
    fn breakdown_fractions() {
        let db = IdentityDb::new();
        for (i, m) in [
            PairingMethod::Soft,
            PairingMethod::Soft,
            PairingMethod::Sms,
            PairingMethod::Hard,
        ]
        .iter()
        .enumerate()
        {
            let name = format!("u{i}");
            db.create_account(&name, "x@x.org").unwrap();
            db.set_pairing(&name, *m, 0).unwrap();
        }
        // One unpaired account must not affect the denominator.
        db.create_account("unpaired", "y@y.org").unwrap();
        let b = db.pairing_breakdown().unwrap();
        assert_eq!(b, [0.5, 0.25, 0.25, 0.0]);
        assert_eq!(db.paired_count(), 4);
    }

    #[test]
    fn breakdown_empty_is_none() {
        let db = IdentityDb::new();
        assert_eq!(db.pairing_breakdown(), None);
        db.create_account("u", "e@x.org").unwrap();
        assert_eq!(db.pairing_breakdown(), None);
    }

    #[test]
    fn labels_round_trip() {
        for m in [
            PairingMethod::Soft,
            PairingMethod::Sms,
            PairingMethod::Hard,
            PairingMethod::Training,
        ] {
            assert_eq!(PairingMethod::parse(m.label()), Some(m));
        }
        assert_eq!(PairingMethod::parse("carrier-pigeon"), None);
    }

    #[test]
    fn suspend_account() {
        let db = IdentityDb::new();
        db.create_account("alice", "a@x.org").unwrap();
        db.set_state("alice", AccountState::Suspended).unwrap();
        assert_eq!(db.get("alice").unwrap().state, AccountState::Suspended);
    }
}
