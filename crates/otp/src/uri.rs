//! `otpauth://` provisioning URIs (the Google Authenticator key-URI format).
//!
//! "During a soft token pairing, the user is shown a QR code which contains
//! the user's secret key encoded as an image that can be scanned by the
//! mobile application for import" (§3.5). The QR payload is exactly one of
//! these URIs.

use crate::secret::Secret;
use crate::totp::TotpParams;
use hpcmfa_crypto::HashAlg;

/// A parsed or to-be-rendered provisioning URI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OtpauthUri {
    /// Issuer, e.g. `TACC`.
    pub issuer: String,
    /// Account label, e.g. the username.
    pub account: String,
    /// The shared secret.
    pub secret: Secret,
    /// TOTP parameters carried in the query string.
    pub params: TotpParams,
}

/// Errors from [`OtpauthUri::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UriError {
    /// Not an `otpauth://totp/` URI.
    BadScheme,
    /// Label missing or malformed.
    BadLabel,
    /// `secret` parameter missing or not valid base32.
    BadSecret,
    /// Unparseable numeric parameter.
    BadNumber(String),
    /// Unknown `algorithm` value.
    BadAlgorithm(String),
}

impl std::fmt::Display for UriError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UriError::BadScheme => write!(f, "not an otpauth://totp/ URI"),
            UriError::BadLabel => write!(f, "missing or malformed label"),
            UriError::BadSecret => write!(f, "missing or invalid secret parameter"),
            UriError::BadNumber(p) => write!(f, "invalid numeric parameter {p}"),
            UriError::BadAlgorithm(a) => write!(f, "unknown algorithm {a}"),
        }
    }
}

impl std::error::Error for UriError {}

/// Percent-encode the small reserved set that can appear in labels.
fn pct_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

fn pct_decode(s: &str) -> Option<String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hi = (*bytes.get(i + 1)? as char).to_digit(16)?;
            let lo = (*bytes.get(i + 2)? as char).to_digit(16)?;
            out.push(((hi << 4) | lo) as u8);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

impl OtpauthUri {
    /// Build a URI for a new soft-token pairing.
    pub fn new(issuer: &str, account: &str, secret: Secret, params: TotpParams) -> Self {
        OtpauthUri {
            issuer: issuer.to_string(),
            account: account.to_string(),
            secret,
            params,
        }
    }

    /// Render the canonical URI string.
    pub fn render(&self) -> String {
        format!(
            "otpauth://totp/{}:{}?secret={}&issuer={}&algorithm={}&digits={}&period={}",
            pct_encode(&self.issuer),
            pct_encode(&self.account),
            self.secret.to_base32(),
            pct_encode(&self.issuer),
            self.params.alg.name(),
            self.params.digits,
            self.params.step_secs,
        )
    }

    /// Parse a provisioning URI (as a scanning app would).
    pub fn parse(uri: &str) -> Result<Self, UriError> {
        let rest = uri
            .strip_prefix("otpauth://totp/")
            .ok_or(UriError::BadScheme)?;
        let (label, query) = rest.split_once('?').ok_or(UriError::BadSecret)?;
        let label = pct_decode(label).ok_or(UriError::BadLabel)?;
        let (label_issuer, account) = match label.split_once(':') {
            Some((i, a)) => (i.to_string(), a.to_string()),
            None => (String::new(), label),
        };
        if account.is_empty() {
            return Err(UriError::BadLabel);
        }

        let mut secret = None;
        let mut issuer = label_issuer.clone();
        let mut params = TotpParams::default();
        for pair in query.split('&') {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            match k {
                "secret" => secret = Some(Secret::from_base32(v).map_err(|_| UriError::BadSecret)?),
                "issuer" => issuer = pct_decode(v).ok_or(UriError::BadLabel)?,
                "digits" => {
                    params.digits = v
                        .parse()
                        .map_err(|_| UriError::BadNumber("digits".into()))?
                }
                "period" => {
                    params.step_secs = v
                        .parse()
                        .map_err(|_| UriError::BadNumber("period".into()))?
                }
                "algorithm" => {
                    params.alg =
                        HashAlg::parse(v).ok_or_else(|| UriError::BadAlgorithm(v.to_string()))?
                }
                _ => {} // ignore unknown parameters, as scanners do
            }
        }
        let secret = secret.ok_or(UriError::BadSecret)?;
        if secret.is_empty() {
            return Err(UriError::BadSecret);
        }
        Ok(OtpauthUri {
            issuer,
            account,
            secret,
            params,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OtpauthUri {
        OtpauthUri::new(
            "TACC",
            "cproctor",
            Secret::from_bytes(*b"12345678901234567890"),
            TotpParams::default(),
        )
    }

    #[test]
    fn render_and_parse_round_trip() {
        let uri = sample();
        let rendered = uri.render();
        assert!(rendered.starts_with("otpauth://totp/TACC:cproctor?"));
        let parsed = OtpauthUri::parse(&rendered).unwrap();
        assert_eq!(parsed, uri);
    }

    #[test]
    fn renders_expected_fields() {
        let rendered = sample().render();
        assert!(rendered.contains("secret=GEZDGNBVGY3TQOJQGEZDGNBVGY3TQOJQ"));
        assert!(rendered.contains("issuer=TACC"));
        assert!(rendered.contains("digits=6"));
        assert!(rendered.contains("period=30"));
        assert!(rendered.contains("algorithm=SHA1"));
    }

    #[test]
    fn label_with_spaces_percent_encoded() {
        let uri = OtpauthUri::new(
            "Texas Advanced Computing Center",
            "user name",
            Secret::from_bytes(*b"12345678901234567890"),
            TotpParams::default(),
        );
        let rendered = uri.render();
        assert!(rendered.contains("Texas%20Advanced%20Computing%20Center"));
        let parsed = OtpauthUri::parse(&rendered).unwrap();
        assert_eq!(parsed.account, "user name");
        assert_eq!(parsed.issuer, "Texas Advanced Computing Center");
    }

    #[test]
    fn parse_without_issuer_prefix() {
        let uri = "otpauth://totp/alice?secret=GEZDGNBVGY3TQOJQGEZDGNBVGY3TQOJQ";
        let parsed = OtpauthUri::parse(uri).unwrap();
        assert_eq!(parsed.account, "alice");
        assert_eq!(parsed.issuer, "");
        assert_eq!(parsed.params, TotpParams::default());
    }

    #[test]
    fn parse_errors() {
        assert_eq!(
            OtpauthUri::parse("otpauth://hotp/x?secret=MZXW6YTB"),
            Err(UriError::BadScheme)
        );
        assert_eq!(
            OtpauthUri::parse("otpauth://totp/a:b?digits=6"),
            Err(UriError::BadSecret)
        );
        assert_eq!(
            OtpauthUri::parse("otpauth://totp/a:b?secret=1NVALID0"),
            Err(UriError::BadSecret)
        );
        assert_eq!(
            OtpauthUri::parse("otpauth://totp/a:b?secret=MZXW6YTB&digits=six"),
            Err(UriError::BadNumber("digits".into()))
        );
        assert_eq!(
            OtpauthUri::parse("otpauth://totp/a:b?secret=MZXW6YTB&algorithm=MD5"),
            Err(UriError::BadAlgorithm("MD5".into()))
        );
        assert_eq!(
            OtpauthUri::parse("otpauth://totp/?secret=MZXW6YTB"),
            Err(UriError::BadLabel)
        );
    }

    #[test]
    fn unknown_parameters_ignored() {
        let uri = "otpauth://totp/a:b?secret=MZXW6YTB&image=https%3A%2F%2Fx&counter=9";
        assert!(OtpauthUri::parse(uri).is_ok());
    }

    #[test]
    fn parsed_secret_generates_same_codes() {
        // End-to-end: the app that scans the QR must produce the same codes
        // as the server that generated the secret.
        let uri = sample();
        let parsed = OtpauthUri::parse(&uri.render()).unwrap();
        let server = crate::Totp::with_params(uri.secret.clone(), uri.params);
        let app = crate::Totp::with_params(parsed.secret, parsed.params);
        for t in [0u64, 59, 1_475_000_000] {
            assert_eq!(server.code_at(t), app.code_at(t));
        }
    }
}
