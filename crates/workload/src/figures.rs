//! Series extraction and terminal rendering for the paper's figures.

use crate::rollout::SimOutput;
use hpcmfa_otp::date::Date;

/// Figure 3 series: (date, unique MFA users).
pub fn fig3_series(out: &SimOutput) -> Vec<(Date, u64)> {
    out.days
        .iter()
        .map(|d| (d.date, d.unique_mfa_users as u64))
        .collect()
}

/// Figure 4 series: (date, external MFA, external total, all traffic) —
/// the blue, red, and black bars.
pub fn fig4_series(out: &SimOutput) -> Vec<(Date, u64, u64, u64)> {
    out.days
        .iter()
        .map(|d| (d.date, d.ext_mfa_logins, d.ext_total_logins, d.total_logins))
        .collect()
}

/// Figure 5 series: (date, MFA tickets, all tickets).
pub fn fig5_series(out: &SimOutput) -> Vec<(Date, u64, u64)> {
    out.days
        .iter()
        .map(|d| (d.date, d.tickets_mfa, d.tickets_mfa + d.tickets_other))
        .collect()
}

/// Figure 6 series: (date, new pairings).
pub fn fig6_series(out: &SimOutput) -> Vec<(Date, u64)> {
    out.days.iter().map(|d| (d.date, d.new_pairings)).collect()
}

/// Days ranked by new pairings, descending (the paper's "ranks first" /
/// "ranks fourth" observations).
pub fn pairing_rank(out: &SimOutput) -> Vec<(Date, u64)> {
    let mut ranked: Vec<(Date, u64)> = out.days.iter().map(|d| (d.date, d.new_pairings)).collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

/// Table 1: pairing-type percentage breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Percentages in the paper's row order: Soft, SMS, Training, Hard.
    pub rows: [(&'static str, f64); 4],
}

impl Table1 {
    /// Build from a simulation output. `None` if nothing paired.
    pub fn from_output(out: &SimOutput) -> Option<Table1> {
        // identity breakdown order: [soft, sms, hard, training]
        let b = out.table1?;
        Some(Table1 {
            rows: [
                ("Soft", b[0] * 100.0),
                ("SMS", b[1] * 100.0),
                ("Training", b[3] * 100.0),
                ("Hard", b[2] * 100.0),
            ],
        })
    }

    /// The paper's reported values, for side-by-side printing.
    pub fn paper() -> Table1 {
        Table1 {
            rows: [
                ("Soft", 55.38),
                ("SMS", 40.22),
                ("Training", 2.97),
                ("Hard", 1.43),
            ],
        }
    }

    /// Render both columns.
    pub fn render_against_paper(&self) -> String {
        let paper = Self::paper();
        let mut s = String::new();
        s.push_str("Token Device Pairing Type | Paper (%) | Measured (%)\n");
        s.push_str("--------------------------+-----------+-------------\n");
        for ((name, measured), (_, reported)) in self.rows.iter().zip(paper.rows.iter()) {
            s.push_str(&format!("{name:<26}| {reported:>9.2} | {measured:>11.2}\n"));
        }
        s
    }
}

/// Export the full per-day table as CSV (header + one row per day) — the
/// raw data behind all four figures, for external plotting.
pub fn to_csv(out: &SimOutput) -> String {
    let mut s = String::from(
        "date,phase,unique_mfa_users,ext_mfa_logins,ext_total_logins,total_logins,\
         new_pairings,failed_logins,tickets_mfa,tickets_other\n",
    );
    for d in &out.days {
        s.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            d.date,
            d.phase,
            d.unique_mfa_users,
            d.ext_mfa_logins,
            d.ext_total_logins,
            d.total_logins,
            d.new_pairings,
            d.failed_logins,
            d.tickets_mfa,
            d.tickets_other
        ));
    }
    s
}

/// Render a day series as a horizontal ASCII bar chart (one row per day,
/// weekly tick labels), scaled to `width` columns.
pub fn render_bar_chart(title: &str, series: &[(Date, u64)], width: usize) -> String {
    let max = series.iter().map(|(_, v)| *v).max().unwrap_or(0).max(1);
    let mut s = format!("{title} (peak {max})\n");
    for (date, value) in series {
        let bar_len = (*value as usize * width) / max as usize;
        let label = if date.day == 1 || date.weekday() == 1 {
            format!("{date}")
        } else {
            " ".repeat(10)
        };
        s.push_str(&format!("{label} |{} {value}\n", "#".repeat(bar_len)));
    }
    s
}

/// Render a grouped series (e.g. Figure 4's three bar groups) as columns.
pub fn render_multi_series(title: &str, header: &[&str], rows: &[(Date, Vec<u64>)]) -> String {
    let mut s = format!("{title}\n{:<12}", "date");
    for h in header {
        s.push_str(&format!("{h:>12}"));
    }
    s.push('\n');
    for (date, values) in rows {
        s.push_str(&format!("{:<12}", date.to_string()));
        for v in values {
            s.push_str(&format!("{v:>12}"));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rollout::DayRecord;

    fn fake_output() -> SimOutput {
        let mk = |y, m, d, pairings, mfa_users| DayRecord {
            date: Date::new(y, m, d),
            phase: 1,
            unique_mfa_users: mfa_users,
            ext_mfa_logins: 10,
            ext_total_logins: 20,
            total_logins: 50,
            new_pairings: pairings,
            failed_logins: 1,
            tickets_mfa: 2,
            tickets_other: 48,
        };
        SimOutput {
            days: vec![
                mk(2016, 9, 6, 5, 10),
                mk(2016, 9, 7, 42, 30),
                mk(2016, 9, 8, 20, 35),
            ],
            table1: Some([0.55, 0.40, 0.015, 0.035]),
            total_successful_logins: 1000,
            sms_sent: 10,
            sms_cost_micros: 1_075_000,
            failures_by_cohort: Default::default(),
            metrics: Default::default(),
            alerts: Vec::new(),
            security_events: Vec::new(),
        }
    }

    #[test]
    fn series_extraction() {
        let out = fake_output();
        assert_eq!(fig3_series(&out)[1], (Date::new(2016, 9, 7), 30));
        assert_eq!(fig4_series(&out)[0].3, 50);
        assert_eq!(fig5_series(&out)[0].2, 50);
        assert_eq!(fig6_series(&out)[2], (Date::new(2016, 9, 8), 20));
    }

    #[test]
    fn pairing_rank_orders_descending() {
        let out = fake_output();
        let ranked = pairing_rank(&out);
        assert_eq!(ranked[0].0, Date::new(2016, 9, 7));
        assert_eq!(ranked[0].1, 42);
        assert_eq!(ranked[2].1, 5);
    }

    #[test]
    fn table1_row_order_matches_paper() {
        let out = fake_output();
        let t = Table1::from_output(&out).unwrap();
        assert_eq!(t.rows[0].0, "Soft");
        assert!((t.rows[0].1 - 55.0).abs() < 1e-9);
        assert_eq!(t.rows[2].0, "Training");
        assert!((t.rows[2].1 - 3.5).abs() < 1e-9);
        assert_eq!(t.rows[3].0, "Hard");
        let rendered = t.render_against_paper();
        assert!(rendered.contains("55.38"));
        assert!(rendered.contains("Soft"));
    }

    #[test]
    fn chart_rendering_scales() {
        let series = vec![
            (Date::new(2016, 9, 5), 0u64),
            (Date::new(2016, 9, 6), 50),
            (Date::new(2016, 9, 7), 100),
        ];
        let chart = render_bar_chart("pairings", &series, 40);
        assert!(chart.contains("peak 100"));
        let lines: Vec<&str> = chart.lines().collect();
        // The peak bar is twice the mid bar.
        let count = |l: &str| l.matches('#').count();
        assert_eq!(count(lines[3]), 40);
        assert_eq!(count(lines[2]), 20);
        assert_eq!(count(lines[1]), 0);
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let out = fake_output();
        let csv = to_csv(&out);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4); // header + 3 days
        assert!(lines[0].starts_with("date,phase,unique_mfa_users"));
        assert!(lines[2].starts_with("2016-09-07,1,30,10,20,50,42,1,2,48"));
        // Every row has the same column count.
        let cols = lines[0].split(',').count();
        assert!(lines.iter().all(|l| l.split(',').count() == cols));
    }

    #[test]
    fn multi_series_renders_header_and_rows() {
        let rows = vec![(Date::new(2016, 10, 4), vec![1, 2, 3])];
        let s = render_multi_series("fig4", &["mfa", "ext", "all"], &rows);
        assert!(s.contains("mfa"));
        assert!(s.contains("2016-10-04"));
    }
}
