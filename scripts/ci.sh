#!/usr/bin/env bash
# CI gate: hermetic build, full test suite, lint wall.
#
# Everything runs --offline: dependencies resolve to the path shims under
# shims/, so this must pass on a machine with no crate-registry access.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q"
cargo test -q --offline --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --offline --workspace -- -D warnings

echo "CI green."
