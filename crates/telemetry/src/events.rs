//! The structured security-event stream.
//!
//! Counters tell an operator *how much*; security events tell them *what
//! happened*. Components on the auth path emit typed
//! [`SecurityEvent`]s — a replayed OTP, a lockout, a circuit breaker
//! tripping, a WAL fsync failing — into a bounded, thread-safe ring owned
//! by the [`MetricsRegistry`], each stamped with the request's
//! [`TraceId`] so an alert links straight to the spans and audit rows
//! behind it. Emission also bumps the
//! `hpcmfa_security_events_total{kind=…}` counter family, which is what
//! the [`alert`](crate::alert) rule engine watches.
//!
//! Timestamps are *virtual*: each emitter stamps its own deterministic
//! clock (the simulation's unix seconds for the OTP server and PAM, the
//! RADIUS client's microsecond vclock), never the wall clock, so seeded
//! runs render byte-identical event feeds.
//!
//! [`MetricsRegistry`]: crate::MetricsRegistry

use crate::trace::{SpanId, TraceId};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Mutex;

/// Events retained by a [`SecurityEvents`] ring before eviction.
pub const DEFAULT_EVENTS_CAP: usize = 4_096;

/// The taxonomy of security-relevant conditions the stack can raise.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SecurityEventKind {
    /// A streak of consecutive authentication failures (PAM stack).
    AuthFailureBurst,
    /// A user account crossed the OTP failure-lockout threshold.
    LockoutStorm,
    /// An already-consumed OTP step was presented again.
    ReplayAttempt,
    /// An SMS fallback code was requested while one was still pending.
    SmsAbuse,
    /// A RADIUS circuit breaker tripped open (or a proxy lost its
    /// upstream pool).
    BreakerFlap,
    /// A WAL append/fsync failed and a request was denied fail-safe.
    WalFsyncDegraded,
    /// The risk engine demanded step-up for a login (exemption bypass
    /// revoked; the token module must run).
    RiskStepUp,
    /// The risk engine denied a login outright (score ≥ deny threshold,
    /// e.g. impossible travel).
    RiskDeny,
    /// The OTP-server admission controller shed a request under
    /// overload (rate limit, unauthenticated flood, or full queue).
    OverloadShed,
    /// An OTP standby was promoted to primary (replication failover):
    /// the epoch advanced and the deposed node is fenced.
    Failover,
    /// A session-resumption token was replayed: its single-use nonce was
    /// already consumed, or it was presented from outside its bound /16
    /// (RFC 9000 §8.1.4's stolen-token shape).
    ResumeReplay,
    /// A federated realm's entire upstream pool became unreachable (the
    /// realm router could not deliver a login to the peer).
    RealmUnreachable,
}

impl SecurityEventKind {
    /// The snake_case label used for the
    /// `hpcmfa_security_events_total{kind=…}` series and in rendered
    /// feeds.
    pub fn label(self) -> &'static str {
        match self {
            SecurityEventKind::AuthFailureBurst => "auth_failure_burst",
            SecurityEventKind::LockoutStorm => "lockout_storm",
            SecurityEventKind::ReplayAttempt => "replay_attempt",
            SecurityEventKind::SmsAbuse => "sms_abuse",
            SecurityEventKind::BreakerFlap => "breaker_flap",
            SecurityEventKind::WalFsyncDegraded => "wal_fsync_degraded",
            SecurityEventKind::RiskStepUp => "risk_step_up",
            SecurityEventKind::RiskDeny => "risk_deny",
            SecurityEventKind::OverloadShed => "overload_shed",
            SecurityEventKind::Failover => "failover",
            SecurityEventKind::ResumeReplay => "resume_replay",
            SecurityEventKind::RealmUnreachable => "realm_unreachable",
        }
    }

    /// Every kind, in declaration order (for exhaustive reports).
    pub fn all() -> [SecurityEventKind; 12] {
        [
            SecurityEventKind::AuthFailureBurst,
            SecurityEventKind::LockoutStorm,
            SecurityEventKind::ReplayAttempt,
            SecurityEventKind::SmsAbuse,
            SecurityEventKind::BreakerFlap,
            SecurityEventKind::WalFsyncDegraded,
            SecurityEventKind::RiskStepUp,
            SecurityEventKind::RiskDeny,
            SecurityEventKind::OverloadShed,
            SecurityEventKind::Failover,
            SecurityEventKind::ResumeReplay,
            SecurityEventKind::RealmUnreachable,
        ]
    }
}

impl fmt::Display for SecurityEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One security event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SecurityEvent {
    /// What happened.
    pub kind: SecurityEventKind,
    /// The request that triggered it, when one was in flight. Every
    /// emitter on the simulated auth path has a trace in scope, so in
    /// `Center`-driven runs this is always `Some`.
    pub trace: Option<TraceId>,
    /// The span that was open when the event was emitted, so an
    /// alert → event → span → parent-chain walk needs no grep. Emitters
    /// off the request path (e.g. background failover) stamp the span
    /// they opened for the operation itself.
    pub span: Option<SpanId>,
    /// The emitter's virtual-clock timestamp (unix seconds for the OTP
    /// server / PAM, microseconds for the RADIUS client vclock).
    pub at: u64,
    /// Free-form detail (user, server, streak length; never secrets).
    pub detail: String,
}

impl fmt::Display for SecurityEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} trace=", self.at, self.kind)?;
        match self.trace {
            Some(t) => write!(f, "{t}")?,
            None => write!(f, "-")?,
        }
        write!(f, " span=")?;
        match self.span {
            Some(s) => write!(f, "{s}")?,
            None => write!(f, "-")?,
        }
        write!(f, " {}", self.detail)
    }
}

struct EventsInner {
    ring: VecDeque<SecurityEvent>,
    cap: usize,
    dropped: u64,
}

/// A bounded, thread-safe ring of [`SecurityEvent`]s (one per
/// [`MetricsRegistry`], like the span [`Tracer`]).
///
/// [`MetricsRegistry`]: crate::MetricsRegistry
/// [`Tracer`]: crate::Tracer
pub struct SecurityEvents {
    inner: Mutex<EventsInner>,
}

impl Default for SecurityEvents {
    fn default() -> Self {
        Self::with_cap(DEFAULT_EVENTS_CAP)
    }
}

impl SecurityEvents {
    /// New ring with the default retention cap.
    pub fn new() -> Self {
        Self::default()
    }

    /// New ring retaining at most `cap` events.
    pub fn with_cap(cap: usize) -> Self {
        SecurityEvents {
            inner: Mutex::new(EventsInner {
                ring: VecDeque::new(),
                cap,
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, EventsInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append one event, evicting the oldest past the cap.
    pub fn push(&self, event: SecurityEvent) {
        let mut inner = self.lock();
        if inner.cap == 0 {
            inner.dropped += 1;
            return;
        }
        while inner.ring.len() >= inner.cap {
            inner.ring.pop_front();
            inner.dropped += 1;
        }
        inner.ring.push_back(event);
    }

    /// The newest `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<SecurityEvent> {
        let inner = self.lock();
        let skip = inner.ring.len().saturating_sub(n);
        inner.ring.iter().skip(skip).cloned().collect()
    }

    /// Every retained event, oldest first.
    pub fn all(&self) -> Vec<SecurityEvent> {
        self.lock().ring.iter().cloned().collect()
    }

    /// Retained events of one kind, oldest first.
    pub fn of_kind(&self, kind: SecurityEventKind) -> Vec<SecurityEvent> {
        self.lock()
            .ring
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.lock().ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.lock().ring.is_empty()
    }

    /// Events evicted by the ring cap since creation.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SecurityEventKind, at: u64) -> SecurityEvent {
        SecurityEvent {
            kind,
            trace: Some(TraceId::from_u64(at)),
            span: Some(SpanId::from_u64(at)),
            at,
            detail: format!("n={at}"),
        }
    }

    #[test]
    fn push_and_tail_preserve_order() {
        let ring = SecurityEvents::new();
        for i in 0..5 {
            ring.push(ev(SecurityEventKind::ReplayAttempt, i));
        }
        assert_eq!(ring.len(), 5);
        let tail = ring.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].at, 3);
        assert_eq!(tail[1].at, 4);
        assert_eq!(ring.tail(100).len(), 5);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn cap_evicts_oldest_and_counts_drops() {
        let ring = SecurityEvents::with_cap(3);
        for i in 0..7 {
            ring.push(ev(SecurityEventKind::BreakerFlap, i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 4);
        assert_eq!(ring.all()[0].at, 4);
    }

    #[test]
    fn of_kind_filters() {
        let ring = SecurityEvents::new();
        ring.push(ev(SecurityEventKind::LockoutStorm, 1));
        ring.push(ev(SecurityEventKind::SmsAbuse, 2));
        ring.push(ev(SecurityEventKind::LockoutStorm, 3));
        assert_eq!(ring.of_kind(SecurityEventKind::LockoutStorm).len(), 2);
        assert_eq!(ring.of_kind(SecurityEventKind::WalFsyncDegraded).len(), 0);
    }

    #[test]
    fn display_renders_trace_span_and_detail() {
        let e = ev(SecurityEventKind::WalFsyncDegraded, 9);
        let line = e.to_string();
        assert!(line.starts_with("9 wal_fsync_degraded trace=0000000000000009"));
        assert!(line.contains(" span=0000000000000009 "));
        assert!(line.ends_with("n=9"));
        let anon = SecurityEvent {
            trace: None,
            span: None,
            ..e
        };
        assert!(anon.to_string().contains("trace=- span=-"));
    }

    #[test]
    fn labels_are_stable_and_distinct() {
        let labels: std::collections::BTreeSet<_> =
            SecurityEventKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 12);
        assert_eq!(SecurityEventKind::ReplayAttempt.label(), "replay_attempt");
        assert_eq!(SecurityEventKind::RiskDeny.label(), "risk_deny");
        assert_eq!(SecurityEventKind::OverloadShed.label(), "overload_shed");
        assert_eq!(SecurityEventKind::Failover.label(), "failover");
        assert_eq!(SecurityEventKind::ResumeReplay.label(), "resume_replay");
        assert_eq!(
            SecurityEventKind::RealmUnreachable.label(),
            "realm_unreachable"
        );
    }
}
