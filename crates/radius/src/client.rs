//! The RADIUS client embedded in the PAM token module.
//!
//! "These API calls communicate with RADIUS servers in a round-robin fashion
//! to provide load balancing and resiliency if specific RADIUS servers are
//! unavailable" (§3.4). The client owns a list of transports; each request
//! starts at the next rotor position and fails over through the remaining
//! servers on timeout or unreachability. Response authenticators are
//! verified before a reply is trusted.

use crate::attribute::{Attribute, AttributeType};
use crate::auth::{hide_password, request_authenticator, verify_response};
use crate::packet::{Code, Packet};
use crate::transport::{Transport, TransportError};
use rand::RngCore;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Client configuration.
#[derive(Clone)]
pub struct ClientConfig {
    /// Shared secret with all servers in the pool.
    pub secret: Vec<u8>,
    /// NAS identifier sent with every request (the login node's name).
    pub nas_identifier: String,
    /// How many times to walk the full server list before giving up.
    pub max_rounds: u32,
}

impl ClientConfig {
    /// Config with one walk of the server list.
    pub fn new(secret: impl Into<Vec<u8>>, nas_identifier: &str) -> Self {
        ClientConfig {
            secret: secret.into(),
            nas_identifier: nas_identifier.to_string(),
            max_rounds: 1,
        }
    }
}

/// Errors surfaced to the PAM module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Every server in the pool failed.
    AllServersFailed {
        /// Number of exchange attempts made.
        attempts: u32,
    },
    /// A reply arrived but its authenticator did not verify — treated as an
    /// attack or misconfiguration, never as a success.
    BadAuthenticator,
    /// A reply arrived with the wrong identifier.
    IdentifierMismatch {
        /// What we sent.
        expected: u8,
        /// What came back.
        got: u8,
    },
    /// No transports configured.
    NoServers,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::AllServersFailed { attempts } => {
                write!(f, "all RADIUS servers failed after {attempts} attempts")
            }
            ClientError::BadAuthenticator => write!(f, "response authenticator mismatch"),
            ClientError::IdentifierMismatch { expected, got } => {
                write!(f, "identifier mismatch: sent {expected}, got {got}")
            }
            ClientError::NoServers => write!(f, "no RADIUS servers configured"),
        }
    }
}

impl std::error::Error for ClientError {}

/// The verified outcome of one authentication exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Access-Accept.
    Accept {
        /// Optional message for the user.
        message: Option<String>,
    },
    /// Access-Reject.
    Reject {
        /// Optional message for the user.
        message: Option<String>,
    },
    /// Access-Challenge: present `message` and reply with `state` echoed.
    Challenge {
        /// Opaque state to echo in the follow-up request.
        state: Vec<u8>,
        /// Prompt to present (e.g. `TACC Token:` or "SMS already sent").
        message: Option<String>,
    },
}

/// Failover counters for the resiliency benches.
#[derive(Default)]
pub struct ClientStats {
    /// Total requests issued by callers.
    pub requests: AtomicU64,
    /// Individual exchange attempts (≥ requests).
    pub attempts: AtomicU64,
    /// Attempts that failed over to another server.
    pub failovers: AtomicU64,
}

/// A round-robin, failover RADIUS client.
pub struct RadiusClient {
    config: ClientConfig,
    transports: Vec<Arc<dyn Transport>>,
    rotor: AtomicUsize,
    identifier: AtomicUsize,
    /// Exchange counters.
    pub stats: ClientStats,
}

impl RadiusClient {
    /// Build a client over `transports`.
    pub fn new(config: ClientConfig, transports: Vec<Arc<dyn Transport>>) -> Self {
        RadiusClient {
            config,
            transports,
            rotor: AtomicUsize::new(0),
            identifier: AtomicUsize::new(0),
            stats: ClientStats::default(),
        }
    }

    fn next_identifier(&self) -> u8 {
        (self.identifier.fetch_add(1, Ordering::Relaxed) & 0xff) as u8
    }

    /// Start an authentication: `password` may be empty (null request) to
    /// open a challenge round / trigger an SMS.
    pub fn authenticate<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        username: &str,
        password: &[u8],
        calling_station: &str,
    ) -> Result<Outcome, ClientError> {
        self.request(rng, username, password, calling_station, None)
    }

    /// Continue a challenge with the user's answer and the echoed state.
    pub fn respond_to_challenge<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        username: &str,
        answer: &[u8],
        calling_station: &str,
        state: &[u8],
    ) -> Result<Outcome, ClientError> {
        self.request(rng, username, answer, calling_station, Some(state))
    }

    fn request<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        username: &str,
        password: &[u8],
        calling_station: &str,
        state: Option<&[u8]>,
    ) -> Result<Outcome, ClientError> {
        if self.transports.is_empty() {
            return Err(ClientError::NoServers);
        }
        self.stats.requests.fetch_add(1, Ordering::Relaxed);

        let ra = request_authenticator(rng);
        let id = self.next_identifier();
        let mut packet = Packet::new(Code::AccessRequest, id, ra)
            .with_attribute(Attribute::text(AttributeType::UserName, username))
            .with_attribute(Attribute::new(
                AttributeType::UserPassword,
                hide_password(password, &ra, &self.config.secret),
            ))
            .with_attribute(Attribute::text(
                AttributeType::NasIdentifier,
                &self.config.nas_identifier,
            ))
            .with_attribute(Attribute::text(
                AttributeType::CallingStationId,
                calling_station,
            ));
        if let Some(s) = state {
            packet = packet.with_attribute(Attribute::new(AttributeType::State, s.to_vec()));
        }
        let wire = packet.encode();

        // Round-robin with failover: start at the rotor, try every server,
        // repeat up to max_rounds walks.
        let n = self.transports.len();
        let start = self.rotor.fetch_add(1, Ordering::Relaxed);
        let mut attempts = 0u32;
        for round in 0..self.config.max_rounds {
            for k in 0..n {
                let idx = (start + k) % n;
                attempts += 1;
                self.stats.attempts.fetch_add(1, Ordering::Relaxed);
                if round > 0 || k > 0 {
                    self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                }
                match self.transports[idx].exchange(&wire) {
                    Ok(reply) => return self.interpret(&reply, id, &ra),
                    Err(TransportError::Timeout) | Err(TransportError::Unreachable) => continue,
                    Err(TransportError::Io(_)) | Err(TransportError::GarbledReply) => continue,
                }
            }
        }
        Err(ClientError::AllServersFailed { attempts })
    }

    fn interpret(
        &self,
        reply: &[u8],
        expected_id: u8,
        request_auth: &[u8; 16],
    ) -> Result<Outcome, ClientError> {
        let resp = Packet::decode(reply).map_err(|_| ClientError::BadAuthenticator)?;
        if resp.identifier != expected_id {
            return Err(ClientError::IdentifierMismatch {
                expected: expected_id,
                got: resp.identifier,
            });
        }
        if !verify_response(&resp, request_auth, &self.config.secret) {
            return Err(ClientError::BadAuthenticator);
        }
        let message = resp
            .text(AttributeType::ReplyMessage)
            .map(|s| s.to_string());
        match resp.code {
            Code::AccessAccept => Ok(Outcome::Accept { message }),
            Code::AccessReject => Ok(Outcome::Reject { message }),
            Code::AccessChallenge => {
                let state = resp
                    .attribute(AttributeType::State)
                    .map(|a| a.value.clone())
                    .unwrap_or_default();
                Ok(Outcome::Challenge { state, message })
            }
            Code::AccessRequest => Err(ClientError::BadAuthenticator),
        }
    }

    /// Number of configured servers.
    pub fn server_count(&self) -> usize {
        self.transports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Handler, RadiusServer, ServerDecision};
    use crate::transport::{FaultPlan, InMemoryTransport};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const SECRET: &[u8] = b"pool-secret";

    /// A handler that accepts password "123456", challenges empty
    /// passwords, rejects the rest.
    fn token_handler() -> Arc<dyn Handler> {
        Arc::new(|_req: &Packet, pw: Option<&[u8]>| match pw {
            Some(b"") => ServerDecision::Challenge(vec![
                Attribute::new(AttributeType::State, b"chal-1".to_vec()),
                Attribute::text(AttributeType::ReplyMessage, "TACC Token:"),
            ]),
            Some(b"123456") => ServerDecision::Accept(vec![]),
            _ => ServerDecision::Reject(vec![Attribute::text(
                AttributeType::ReplyMessage,
                "Authentication error",
            )]),
        })
    }

    fn pool(n: usize) -> (RadiusClient, Vec<Arc<FaultPlan>>) {
        let mut transports: Vec<Arc<dyn Transport>> = Vec::new();
        let mut plans = Vec::new();
        for i in 0..n {
            let server = Arc::new(RadiusServer::new(SECRET, token_handler()));
            let plan = FaultPlan::healthy();
            plans.push(Arc::clone(&plan));
            transports.push(Arc::new(InMemoryTransport::new(
                &format!("radius{i}"),
                server,
                plan,
            )));
        }
        let client = RadiusClient::new(ClientConfig::new(SECRET, "login1"), transports);
        (client, plans)
    }

    #[test]
    fn accept_and_reject() {
        let (client, _) = pool(3);
        let mut rng = StdRng::seed_from_u64(1);
        let ok = client
            .authenticate(&mut rng, "alice", b"123456", "10.0.0.1")
            .unwrap();
        assert!(matches!(ok, Outcome::Accept { .. }));
        let bad = client
            .authenticate(&mut rng, "alice", b"999999", "10.0.0.1")
            .unwrap();
        assert!(matches!(bad, Outcome::Reject { message: Some(m) } if m == "Authentication error"));
    }

    #[test]
    fn challenge_round_trip() {
        let (client, _) = pool(2);
        let mut rng = StdRng::seed_from_u64(2);
        let outcome = client
            .authenticate(&mut rng, "alice", b"", "10.0.0.1")
            .unwrap();
        let (state, message) = match outcome {
            Outcome::Challenge { state, message } => (state, message),
            other => panic!("expected challenge, got {other:?}"),
        };
        assert_eq!(message.as_deref(), Some("TACC Token:"));
        let final_outcome = client
            .respond_to_challenge(&mut rng, "alice", b"123456", "10.0.0.1", &state)
            .unwrap();
        assert!(matches!(final_outcome, Outcome::Accept { .. }));
    }

    #[test]
    fn round_robin_spreads_load() {
        let (client, _) = pool(3);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..9 {
            client
                .authenticate(&mut rng, "alice", b"123456", "10.0.0.1")
                .unwrap();
        }
        // With a healthy pool each request is exactly one attempt.
        assert_eq!(client.stats.attempts.load(Ordering::SeqCst), 9);
        assert_eq!(client.stats.failovers.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn failover_on_down_server() {
        let (client, plans) = pool(3);
        let mut rng = StdRng::seed_from_u64(4);
        plans[0].set_down(true);
        plans[1].set_down(true);
        for _ in 0..6 {
            let out = client
                .authenticate(&mut rng, "alice", b"123456", "10.0.0.1")
                .unwrap();
            assert!(matches!(out, Outcome::Accept { .. }));
        }
        assert!(client.stats.failovers.load(Ordering::SeqCst) > 0);
    }

    #[test]
    fn all_down_reports_failure() {
        let (client, plans) = pool(2);
        let mut rng = StdRng::seed_from_u64(5);
        for p in &plans {
            p.set_down(true);
        }
        let err = client
            .authenticate(&mut rng, "alice", b"123456", "10.0.0.1")
            .unwrap_err();
        assert_eq!(err, ClientError::AllServersFailed { attempts: 2 });
    }

    #[test]
    fn recovery_after_outage() {
        let (client, plans) = pool(2);
        let mut rng = StdRng::seed_from_u64(6);
        plans[0].set_down(true);
        plans[1].set_down(true);
        assert!(client
            .authenticate(&mut rng, "alice", b"123456", "10.0.0.1")
            .is_err());
        plans[1].set_down(false);
        assert!(client
            .authenticate(&mut rng, "alice", b"123456", "10.0.0.1")
            .is_ok());
    }

    #[test]
    fn dropped_datagrams_retry_next_server() {
        let (client, plans) = pool(2);
        let mut rng = StdRng::seed_from_u64(7);
        // Drop every datagram on server 0.
        plans[0].drop_every.store(1, Ordering::SeqCst);
        for _ in 0..4 {
            assert!(client
                .authenticate(&mut rng, "alice", b"123456", "10.0.0.1")
                .is_ok());
        }
    }

    #[test]
    fn wrong_pool_secret_rejected_as_bad_authenticator() {
        let server = Arc::new(RadiusServer::new(b"other-secret".to_vec(), token_handler()));
        let transport: Arc<dyn Transport> = Arc::new(InMemoryTransport::new(
            "radius0",
            server,
            FaultPlan::healthy(),
        ));
        let client = RadiusClient::new(ClientConfig::new(SECRET, "login1"), vec![transport]);
        let mut rng = StdRng::seed_from_u64(8);
        // Password garbles under the wrong secret, so the server rejects —
        // but the response seal also fails verification, which must win.
        let err = client
            .authenticate(&mut rng, "alice", b"123456", "10.0.0.1")
            .unwrap_err();
        assert_eq!(err, ClientError::BadAuthenticator);
    }

    #[test]
    fn no_servers_error() {
        let client = RadiusClient::new(ClientConfig::new(SECRET, "login1"), vec![]);
        let mut rng = StdRng::seed_from_u64(9);
        assert_eq!(
            client.authenticate(&mut rng, "a", b"x", "ip").unwrap_err(),
            ClientError::NoServers
        );
    }

    #[test]
    fn identifiers_cycle() {
        let (client, _) = pool(1);
        let first = client.next_identifier();
        for _ in 0..255 {
            client.next_identifier();
        }
        assert_eq!(client.next_identifier(), first);
    }
}
