//! The evaluation engine: a deterministic replay of the paper's §5 rollout.
//!
//! The paper's evaluation is observational — five months of production
//! telemetry across a ~10,000-account population. This crate substitutes a
//! seeded synthetic population with the cohort structure the paper
//! describes (interactive researchers, the "minority of users responsible
//! for the majority of entries" running automated workflows, trusted
//! gateway/community accounts, staff, training accounts) and replays the
//! calendar 2016-07-01 → 2017-03-31 against a real [`Center`]: every
//! simulated SSH login runs the full PAM → RADIUS → OTP-server code path;
//! every pairing runs the real portal flows.
//!
//! * [`population`] — cohorts, device-choice model (Table 1), adoption-day
//!   model (Figures 3/6 spikes), activity rates.
//! * [`rollout`] — the day-by-day simulator: phase transitions on
//!   2016-08-10 / 09-06 / 10-04, login traffic, automated-workflow
//!   disruption and migration, ticket generation, daily aggregation.
//! * [`figures`] — series extraction for Figures 3–6 and Table 1, plus
//!   terminal rendering for the regeneration binaries.
//! * [`chaos`] — scripted fault-injection scenarios (outages, rolling
//!   restarts, packet loss, garble storms) replayed against a center under
//!   a live login stream, reporting availability and breaker behaviour.
//! * [`attack`] — seeded adversarial scenarios (credential stuffing,
//!   password spraying, token phishing, SMS floods, slow-and-low probing)
//!   replayed against the full defense stack, reporting detection
//!   precision/recall, shed rates, and benign collateral.
//!
//! [`Center`]: hpcmfa_core::Center

pub mod attack;
pub mod chaos;
pub mod federation;
pub mod figures;
pub mod population;
pub mod rollout;

pub use attack::{AttackKind, AttackParams, AttackReport, AttackRunner, AttackScenario};
pub use chaos::{ChaosParams, ChaosReport, ChaosRunner, FaultAction, FaultEvent, FaultScript};
pub use federation::{FedSite, FederationReport, FederationSim};
pub use figures::{render_bar_chart, Table1};
pub use population::{Cohort, DevicePreference, Population, PopulationParams, UserSpec};
pub use rollout::{DayRecord, Milestones, RolloutParams, RolloutSim, SimOutput};
