//! Property-based tests for the trace-id VSA codec (`tracewire`).
//!
//! The decoder sits on the untrusted side of the wire: every login node
//! and proxy runs it against attacker-controllable attribute bytes, so it
//! must reject truncated, oversized, and garbled VSAs without panicking
//! and never confuse a foreign vendor's attribute for ours.

use hpcmfa_radius::attribute::{Attribute, AttributeType};
use hpcmfa_radius::packet::{Code, Packet};
use hpcmfa_radius::tracewire::{
    decode_trace, trace_attribute, trace_id_of, TRACE_VENDOR_ID, TRACE_VENDOR_TYPE,
};
use hpcmfa_telemetry::TraceId;
use proptest::prelude::*;

proptest! {
    /// Every 64-bit id survives encode → decode exactly.
    #[test]
    fn trace_attribute_round_trips(id in any::<u64>()) {
        let trace = TraceId::from_u64(id);
        let attr = trace_attribute(trace);
        prop_assert_eq!(decode_trace(&attr), Some(trace));
    }

    /// The id also survives a full packet encode → decode cycle alongside
    /// arbitrary other attributes.
    #[test]
    fn trace_id_survives_packet_round_trip(
        id in any::<u64>(),
        pkt_id in any::<u8>(),
        auth in any::<[u8; 16]>(),
        extra in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..4),
    ) {
        let trace = TraceId::from_u64(id);
        let mut pkt = Packet::new(Code::AccessRequest, pkt_id, auth);
        for value in extra {
            pkt = pkt.with_attribute(Attribute::new(AttributeType::ReplyMessage, value));
        }
        let pkt = pkt.with_attribute(trace_attribute(trace));
        let decoded = Packet::decode(&pkt.encode()).unwrap();
        prop_assert_eq!(trace_id_of(&decoded), Some(trace));
    }

    /// Arbitrary VSA payloads never panic the decoder, and only a payload
    /// that is byte-for-byte well-formed (our vendor id, our vendor-type,
    /// correct vendor-length, exactly 14 bytes) decodes to Some.
    #[test]
    fn garbled_vsa_never_panics_and_only_wellformed_decodes(
        value in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let attr = Attribute::new(AttributeType::VendorSpecific, value.clone());
        let decoded = decode_trace(&attr);
        let wellformed = value.len() == 14
            && value[0..4] == TRACE_VENDOR_ID.to_be_bytes()
            && value[4] == TRACE_VENDOR_TYPE
            && value[5] == 10;
        prop_assert_eq!(decoded.is_some(), wellformed);
    }

    /// Truncating a valid attribute's payload at any point kills the
    /// decode — a short read can never yield a (wrong) id.
    #[test]
    fn truncated_vsa_is_rejected(id in any::<u64>(), keep in 0usize..14) {
        let full = trace_attribute(TraceId::from_u64(id));
        let short = Attribute::new(AttributeType::VendorSpecific, full.value[..keep].to_vec());
        prop_assert_eq!(decode_trace(&short), None);
    }

    /// Flipping any single byte of a valid payload either breaks the
    /// envelope (→ None) or lands inside the 8 id bytes, in which case it
    /// must decode to a *different* id — never silently the original.
    #[test]
    fn bitflipped_vsa_never_decodes_to_original(
        id in any::<u64>(),
        at in 0usize..14,
        flip in 1u8..=255,
    ) {
        let trace = TraceId::from_u64(id);
        let mut value = trace_attribute(trace).value;
        value[at] ^= flip;
        let mutated = Attribute::new(AttributeType::VendorSpecific, value);
        match decode_trace(&mutated) {
            None => prop_assert!(at < 6, "envelope bytes live in [0,6)"),
            Some(other) => {
                prop_assert!(at >= 6, "id bytes live in [6,14)");
                prop_assert_ne!(other, trace);
            }
        }
    }

    /// A non-VSA attribute carrying our exact payload bytes still decodes
    /// to nothing: the attribute type gates the parse.
    #[test]
    fn non_vsa_attribute_is_ignored(id in any::<u64>()) {
        let payload = trace_attribute(TraceId::from_u64(id)).value;
        let not_vsa = Attribute::new(AttributeType::ReplyMessage, payload);
        prop_assert_eq!(decode_trace(&not_vsa), None);
    }
}
