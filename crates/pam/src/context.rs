//! The per-authentication PAM context: who is logging in, from where, and
//! through which conversation.

use crate::conv::Conversation;
use hpcmfa_otp::clock::Clock;
use hpcmfa_telemetry::TraceId;
use std::net::Ipv4Addr;
use std::sync::Arc;

/// Context threaded through every module in a stack run.
pub struct PamContext<'a> {
    /// The authenticating login name (`PAM_USER`).
    pub username: String,
    /// The remote host address (`PAM_RHOST`).
    pub rhost: Ipv4Addr,
    /// Service name (`sshd`).
    pub service: String,
    /// Time source.
    pub clock: Arc<dyn Clock>,
    /// The application conversation.
    pub conv: &'a mut dyn Conversation,
    /// Set by the pubkey module when first-factor public key authentication
    /// has already succeeded (its "success" signal to the rest of the
    /// stack).
    pub pubkey_succeeded: bool,
    /// Set by a risk-assessment module (see `hpcmfa-risk`) to demand
    /// step-up authentication: exemption modules honour it by declining to
    /// bypass the second factor for this login.
    pub risk_step_up: bool,
    /// Telemetry id for this login attempt, propagated through RADIUS to
    /// the OTP server's audit log. Defaults to a freshly minted global id;
    /// the SSH daemon overwrites it with a deterministically derived one
    /// so simulations stay reproducible.
    pub trace_id: TraceId,
    /// A session-resumption token issued by the OTP server on a full-MFA
    /// success (the `resume=` `Reply-Message`). The application layer
    /// hands it back to the client, which may present it in place of a
    /// code on its next login from the same /16.
    pub issued_resume_token: Option<String>,
}

impl<'a> PamContext<'a> {
    /// Build a context for `username` from `rhost`.
    pub fn new(
        username: &str,
        rhost: Ipv4Addr,
        clock: Arc<dyn Clock>,
        conv: &'a mut dyn Conversation,
    ) -> Self {
        PamContext {
            username: username.to_string(),
            rhost,
            service: "sshd".to_string(),
            clock,
            conv,
            pubkey_succeeded: false,
            risk_step_up: false,
            trace_id: TraceId::mint(),
            issued_resume_token: None,
        }
    }

    /// Current Unix time.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conv::ScriptedConversation;
    use hpcmfa_otp::clock::SimClock;

    #[test]
    fn context_carries_identity_and_time() {
        let clock = SimClock::at(1000);
        let mut conv = ScriptedConversation::with_answers(Vec::<String>::new());
        let ctx = PamContext::new(
            "alice",
            Ipv4Addr::new(10, 0, 0, 1),
            Arc::new(clock.clone()),
            &mut conv,
        );
        assert_eq!(ctx.username, "alice");
        assert_eq!(ctx.rhost, Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(ctx.service, "sshd");
        assert_eq!(ctx.now(), 1000);
        assert!(!ctx.pubkey_succeeded);
        clock.advance(30);
        assert_eq!(ctx.now(), 1030);
    }
}
