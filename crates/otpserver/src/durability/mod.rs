//! Durable OTP-server state: write-ahead log, snapshots, crash recovery.
//!
//! The paper's validation server keeps pairing, replay-nullification and
//! failure-counter state in a MariaDB-backed LinOTP database (§3.1–§3.2);
//! losing that state across a restart silently re-opens the TOTP replay
//! window and forgets lockouts. This module gives the in-process
//! [`LinotpServer`](crate::server::LinotpServer) the same durability
//! posture:
//!
//! * [`wal`] — a checksummed, length-prefixed record codec. Every store or
//!   audit mutation appends one record *before* the operation is
//!   acknowledged.
//! * [`backend`] — the [`StorageBackend`] trait with two implementations: a
//!   real file-backed backend and a deterministic in-memory backend whose
//!   [`StorageFaultPlan`](backend::StorageFaultPlan) injects short writes,
//!   fsync failures, read corruption and torn crash tails.
//! * [`snapshot`] — periodic compaction (snapshot + WAL reset) and the
//!   [`recover`](snapshot::recover) path that replays snapshot + WAL,
//!   truncating at the first torn or corrupt tail record.
//!
//! The recovery invariants the test suite pins down: **replay
//! nullification and lockout state never regress across a crash** — a code
//! accepted before the crash is rejected after recovery, and a locked
//! account stays locked until an admin acts.

pub mod backend;
pub mod replication;
pub mod snapshot;
pub mod wal;

pub use backend::{FileBackend, MemoryBackend, StorageFaultPlan};
pub use replication::{
    ApplyResult, ClusterBackend, LinkFaultPlan, MemoryLink, OtpCluster, ReplEnvelope, ReplFrame,
    ReplicationLink, ReplicationMode, StandbyNode,
};
pub use snapshot::{recover, RecoverError, RecoveredState, RecoveryReport};
pub use wal::{decode_stream, PairingImage, WalRecord, WalTail};

use hpcmfa_telemetry::{Counter, Histogram, MetricsRegistry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors a storage backend can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// OS-level I/O failure.
    Io(String),
    /// An append persisted only a prefix of the frame.
    ShortWrite {
        /// Bytes actually written.
        wrote: usize,
        /// Bytes requested.
        of: usize,
    },
    /// fsync reported failure; durability of buffered data is unknown.
    FsyncFailed,
    /// The backend is in a simulated-crash state.
    Crashed,
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::ShortWrite { wrote, of } => {
                write!(f, "short write: {wrote} of {of} bytes")
            }
            StorageError::FsyncFailed => write!(f, "fsync failed"),
            StorageError::Crashed => write!(f, "backend crashed"),
        }
    }
}

impl std::error::Error for StorageError {}

/// The storage substrate the durability layer writes through. One WAL
/// byte stream plus one snapshot blob; both opaque to the backend.
pub trait StorageBackend: Send + Sync {
    /// Append one encoded frame to the WAL. On error the backend should
    /// already have discarded (or the caller will roll back) any partial
    /// bytes via [`StorageBackend::rollback_inflight`].
    fn append_wal(&self, frame: &[u8]) -> Result<(), StorageError>;

    /// Make every appended byte durable.
    fn sync_wal(&self) -> Result<(), StorageError>;

    /// Read the entire durable WAL.
    fn read_wal(&self) -> Result<Vec<u8>, StorageError>;

    /// Cut the durable WAL down to `len` bytes (recovery truncates torn
    /// tails through this).
    fn truncate_wal(&self, len: u64) -> Result<(), StorageError>;

    /// Empty the WAL (after a successful snapshot).
    fn reset_wal(&self) -> Result<(), StorageError> {
        self.truncate_wal(0)
    }

    /// Durable WAL length in bytes.
    fn wal_len(&self) -> u64;

    /// Atomically replace the snapshot blob.
    fn write_snapshot(&self, bytes: &[u8]) -> Result<(), StorageError>;

    /// Read the current snapshot blob, if one exists.
    fn read_snapshot(&self) -> Result<Option<Vec<u8>>, StorageError>;

    /// Remove the snapshot blob entirely (a replication resync wipes the
    /// standby before replaying the primary's state). Absence is not an
    /// error.
    fn clear_snapshot(&self) -> Result<(), StorageError> {
        Ok(())
    }

    /// Discard bytes appended but not yet synced (called after a failed
    /// append so a detected short write cannot poison the stream).
    fn rollback_inflight(&self) {}

    /// Simulate a process crash: un-synced bytes are lost, possibly
    /// leaving a torn prefix of the in-flight frame behind. No-op for
    /// backends whose crash model is "the process dies" (files survive).
    fn simulate_crash(&self) {}

    /// Diagnostic name.
    fn name(&self) -> &'static str;
}

/// Monotonic durability counters, exposed to admins via
/// `GET /system/durability` and asserted on by the chaos scenarios.
///
/// Each field is a telemetry [`Counter`]; built through
/// [`DurabilityStats::registered`] the same instruments also surface in the
/// shared registry's `GET /system/metrics` output under `hpcmfa_otp_wal_*`
/// names, so the legacy JSON route and the Prometheus scrape always agree.
#[derive(Default)]
pub struct DurabilityStats {
    /// WAL records appended and synced.
    pub appends: Arc<Counter>,
    /// Appends the backend rejected (short write / crashed / I/O).
    pub append_failures: Arc<Counter>,
    /// Successful fsyncs.
    pub fsyncs: Arc<Counter>,
    /// Failed fsyncs.
    pub fsync_failures: Arc<Counter>,
    /// Snapshots written (compactions).
    pub snapshots: Arc<Counter>,
    /// Snapshot attempts that failed.
    pub snapshot_failures: Arc<Counter>,
    /// Recoveries performed.
    pub recoveries: Arc<Counter>,
    /// WAL records replayed across all recoveries.
    pub records_replayed: Arc<Counter>,
    /// Recoveries that truncated a torn or corrupt tail.
    pub tail_truncations: Arc<Counter>,
    /// Bytes dropped by tail truncation across all recoveries.
    pub truncated_bytes: Arc<Counter>,
}

/// A plain-value copy of [`DurabilityStats`] for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DurabilityCounters {
    /// WAL records appended and synced.
    pub appends: u64,
    /// Appends the backend rejected.
    pub append_failures: u64,
    /// Successful fsyncs.
    pub fsyncs: u64,
    /// Failed fsyncs.
    pub fsync_failures: u64,
    /// Snapshots written.
    pub snapshots: u64,
    /// Snapshot attempts that failed.
    pub snapshot_failures: u64,
    /// Recoveries performed.
    pub recoveries: u64,
    /// WAL records replayed across all recoveries.
    pub records_replayed: u64,
    /// Recoveries that truncated a torn or corrupt tail.
    pub tail_truncations: u64,
    /// Bytes dropped by tail truncation.
    pub truncated_bytes: u64,
}

impl DurabilityStats {
    /// Stats whose counters live in `metrics`, so every increment is
    /// visible to Prometheus scrapes as well as to [`Self::counters`].
    pub fn registered(metrics: &MetricsRegistry) -> Self {
        DurabilityStats {
            appends: metrics.counter("hpcmfa_otp_wal_appends_total", &[]),
            append_failures: metrics.counter("hpcmfa_otp_wal_append_failures_total", &[]),
            fsyncs: metrics.counter("hpcmfa_otp_wal_fsyncs_total", &[]),
            fsync_failures: metrics.counter("hpcmfa_otp_wal_fsync_failures_total", &[]),
            snapshots: metrics.counter("hpcmfa_otp_snapshot_writes_total", &[]),
            snapshot_failures: metrics.counter("hpcmfa_otp_snapshot_failures_total", &[]),
            recoveries: metrics.counter("hpcmfa_otp_recoveries_total", &[]),
            records_replayed: metrics.counter("hpcmfa_otp_wal_records_replayed_total", &[]),
            tail_truncations: metrics.counter("hpcmfa_otp_wal_tail_truncations_total", &[]),
            truncated_bytes: metrics.counter("hpcmfa_otp_wal_truncated_bytes_total", &[]),
        }
    }

    /// Snapshot the counters.
    pub fn counters(&self) -> DurabilityCounters {
        DurabilityCounters {
            appends: self.appends.get(),
            append_failures: self.append_failures.get(),
            fsyncs: self.fsyncs.get(),
            fsync_failures: self.fsync_failures.get(),
            snapshots: self.snapshots.get(),
            snapshot_failures: self.snapshot_failures.get(),
            recoveries: self.recoveries.get(),
            records_replayed: self.records_replayed.get(),
            tail_truncations: self.tail_truncations.get(),
            truncated_bytes: self.truncated_bytes.get(),
        }
    }
}

/// The durability pump: encodes records, appends + fsyncs them through a
/// backend, counts everything, and tracks when a compaction is due.
pub struct Persistence {
    backend: Arc<dyn StorageBackend>,
    stats: DurabilityStats,
    /// Wall-clock latency of a full durable append (encode + write + sync).
    append_us: Arc<Histogram>,
    /// Wall-clock latency of the fsync alone.
    fsync_us: Arc<Histogram>,
    /// Appends between snapshots; 0 disables compaction.
    snapshot_every: u64,
    appends_since_snapshot: AtomicU64,
}

impl Persistence {
    /// Pump through `backend`, compacting every `snapshot_every` appends
    /// (0 = never). Counters and latency histograms stay private to this
    /// pump; use [`Persistence::with_metrics`] to surface them in a
    /// registry.
    pub fn new(backend: Arc<dyn StorageBackend>, snapshot_every: u64) -> Self {
        Persistence {
            backend,
            stats: DurabilityStats::default(),
            append_us: Arc::new(Histogram::new()),
            fsync_us: Arc::new(Histogram::new()),
            snapshot_every,
            appends_since_snapshot: AtomicU64::new(0),
        }
    }

    /// Like [`Persistence::new`], but counters and latency histograms are
    /// registered in `metrics` (`hpcmfa_otp_wal_*`).
    pub fn with_metrics(
        backend: Arc<dyn StorageBackend>,
        snapshot_every: u64,
        metrics: &MetricsRegistry,
    ) -> Self {
        Persistence {
            backend,
            stats: DurabilityStats::registered(metrics),
            append_us: metrics.histogram("hpcmfa_otp_wal_append_us", &[]),
            fsync_us: metrics.histogram("hpcmfa_otp_wal_fsync_us", &[]),
            snapshot_every,
            appends_since_snapshot: AtomicU64::new(0),
        }
    }

    /// The backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// The counters.
    pub fn stats(&self) -> &DurabilityStats {
        &self.stats
    }

    /// Append one record and make it durable. The operation that produced
    /// the record must not be acknowledged until this returns `Ok`.
    pub fn append(&self, record: &WalRecord) -> Result<(), StorageError> {
        let started = std::time::Instant::now();
        let frame = record.encode_frame();
        if let Err(e) = self.backend.append_wal(&frame) {
            self.backend.rollback_inflight();
            self.stats.append_failures.inc();
            return Err(e);
        }
        let sync_started = std::time::Instant::now();
        match self.backend.sync_wal() {
            Ok(()) => {
                self.fsync_us.record_elapsed_us(sync_started);
                self.append_us.record_elapsed_us(started);
                self.stats.appends.inc();
                self.stats.fsyncs.inc();
                self.appends_since_snapshot.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.stats.fsync_failures.inc();
                self.stats.append_failures.inc();
                Err(e)
            }
        }
    }

    /// Whether enough appends have accumulated for a compaction. Callers
    /// check this *outside* any store lock (compaction re-locks).
    pub fn wants_snapshot(&self) -> bool {
        self.snapshot_every > 0
            && self.appends_since_snapshot.load(Ordering::Relaxed) >= self.snapshot_every
    }

    /// Install `bytes` as the new snapshot and reset the WAL. The WAL is
    /// only reset after the snapshot write succeeds, so a failed
    /// compaction never loses records.
    pub fn install_snapshot(&self, bytes: &[u8]) -> Result<(), StorageError> {
        if let Err(e) = self.backend.write_snapshot(bytes) {
            self.stats.snapshot_failures.inc();
            return Err(e);
        }
        if let Err(e) = self.backend.reset_wal() {
            self.stats.snapshot_failures.inc();
            return Err(e);
        }
        self.stats.snapshots.inc();
        self.appends_since_snapshot.store(0, Ordering::Relaxed);
        Ok(())
    }

    /// Record a completed recovery in the counters.
    pub fn note_recovery(&self, report: &RecoveryReport) {
        self.stats.recoveries.inc();
        self.stats.records_replayed.add(report.wal_records as u64);
        if report.truncated_bytes > 0 {
            self.stats.tail_truncations.inc();
            self.stats
                .truncated_bytes
                .add(report.truncated_bytes as u64);
        }
        self.appends_since_snapshot.store(0, Ordering::Relaxed);
    }
}
