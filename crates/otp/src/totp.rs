//! TOTP: time-based one-time password algorithm (RFC 6238).
//!
//! "A code is generated every 30 seconds using the combination of the
//! current time and a secret key" (§3.3). The validation server accepts
//! codes from a window of adjacent time steps to absorb client clock drift —
//! the paper tolerates up to 300 seconds (±10 steps of 30 s).

use crate::hotp::{hotp, hotp_prepared, hotp_value};
use crate::secret::Secret;
use hpcmfa_crypto::HashAlg;

/// TOTP parameters, separate from the secret so stores can share them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TotpParams {
    /// Decimal digits in the code (the paper: 6).
    pub digits: u32,
    /// Time step in seconds (the paper: 30).
    pub step_secs: u64,
    /// Unix time at which counting starts (RFC 6238 `T0`, normally 0).
    pub t0: u64,
    /// HMAC hash algorithm.
    pub alg: HashAlg,
}

impl Default for TotpParams {
    fn default() -> Self {
        TotpParams {
            digits: crate::DEFAULT_DIGITS,
            step_secs: crate::DEFAULT_STEP_SECS,
            t0: 0,
            alg: HashAlg::Sha1,
        }
    }
}

impl TotpParams {
    /// The RFC 6238 time-step counter `T = (now - T0) / X` for `unix_time`.
    pub fn time_step(&self, unix_time: u64) -> u64 {
        unix_time.saturating_sub(self.t0) / self.step_secs
    }

    /// Seconds until the code for `unix_time` rotates.
    pub fn secs_remaining(&self, unix_time: u64) -> u64 {
        self.step_secs - (unix_time.saturating_sub(self.t0) % self.step_secs)
    }
}

/// A TOTP generator/validator bound to one secret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Totp {
    /// Shared secret key.
    pub secret: Secret,
    /// Algorithm parameters.
    pub params: TotpParams,
}

impl Totp {
    /// Standard paper-configuration TOTP (6 digits, 30 s, SHA-1).
    pub fn new(secret: Secret) -> Self {
        Totp {
            secret,
            params: TotpParams::default(),
        }
    }

    /// TOTP with explicit parameters.
    pub fn with_params(secret: Secret, params: TotpParams) -> Self {
        Totp { secret, params }
    }

    /// The token code at `unix_time`.
    pub fn code_at(&self, unix_time: u64) -> String {
        let step = self.params.time_step(unix_time);
        hotp(&self.secret, step, self.params.digits, self.params.alg)
    }

    /// Raw (untruncated-to-digits) 31-bit value at `unix_time`.
    pub fn value_at(&self, unix_time: u64) -> u32 {
        let step = self.params.time_step(unix_time);
        hotp_value(&self.secret, step, self.params.alg)
    }

    /// Validate `candidate` at `unix_time`, accepting ±`window` time steps.
    ///
    /// Returns the matching absolute time step on success so callers can
    /// enforce one-time semantics ("the provided token code is nullified",
    /// §3.2) by refusing steps at or below the last accepted one.
    pub fn verify(&self, candidate: &str, unix_time: u64, window: u64) -> Option<u64> {
        if candidate.len() != self.params.digits as usize
            || !candidate.bytes().all(|b| b.is_ascii_digit())
        {
            return None;
        }
        let center = self.params.time_step(unix_time);
        let lo = center.saturating_sub(window);
        let hi = center.saturating_add(window);
        // Precompute the HMAC midstates once: each window step then costs
        // two block compressions instead of a full key schedule.
        let key = self.params.alg.prepare_key(self.secret.bytes());
        // Scan the full window unconditionally; per-step comparison is
        // constant-time so total work leaks only the (public) window size.
        // Among matches, report the step closest to the present: six-digit
        // codes collide across steps about once per million pairs, and
        // attributing a fresh code to a stale colliding step would make
        // replay tracking reject a legitimate login.
        let mut matched: Option<u64> = None;
        for step in lo..=hi {
            let code = hotp_prepared(&key, step, self.params.digits);
            if hpcmfa_crypto::ct::ct_eq_str(&code, candidate) {
                let better = match matched {
                    None => true,
                    Some(prev) => step.abs_diff(center) < prev.abs_diff(center),
                };
                if better {
                    matched = Some(step);
                }
            }
        }
        matched
    }

    /// Window size (in steps, one side) equivalent to a drift tolerance of
    /// `drift_secs` seconds.
    pub fn window_for_drift(&self, drift_secs: u64) -> u64 {
        drift_secs / self.params.step_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 6238 Appendix B reference vectors (8 digits).
    ///
    /// Note the RFC uses algorithm-specific seeds: the ASCII digits repeated
    /// to 20/32/64 bytes for SHA-1/SHA-256/SHA-512 respectively.
    #[test]
    fn rfc6238_vectors() {
        let seed20 = Secret::from_bytes(*b"12345678901234567890");
        let seed32 = Secret::from_bytes(*b"12345678901234567890123456789012");
        let seed64 = Secret::from_bytes(
            *b"1234567890123456789012345678901234567890123456789012345678901234",
        );
        let times: [u64; 6] = [
            59,
            1111111109,
            1111111111,
            1234567890,
            2000000000,
            20000000000,
        ];
        let sha1_codes = [
            "94287082", "07081804", "14050471", "89005924", "69279037", "65353130",
        ];
        let sha256_codes = [
            "46119246", "68084774", "67062674", "91819424", "90698825", "77737706",
        ];
        let sha512_codes = [
            "90693936", "25091201", "99943326", "93441116", "38618901", "47863826",
        ];

        let mk = |secret: Secret, alg| {
            Totp::with_params(
                secret,
                TotpParams {
                    digits: 8,
                    step_secs: 30,
                    t0: 0,
                    alg,
                },
            )
        };
        let t1 = mk(seed20, HashAlg::Sha1);
        let t256 = mk(seed32, HashAlg::Sha256);
        let t512 = mk(seed64, HashAlg::Sha512);
        for (i, &t) in times.iter().enumerate() {
            assert_eq!(t1.code_at(t), sha1_codes[i], "sha1 t={t}");
            assert_eq!(t256.code_at(t), sha256_codes[i], "sha256 t={t}");
            assert_eq!(t512.code_at(t), sha512_codes[i], "sha512 t={t}");
        }
    }

    fn paper_totp() -> Totp {
        Totp::new(Secret::from_bytes(*b"12345678901234567890"))
    }

    #[test]
    fn code_stable_within_step() {
        let t = paper_totp();
        assert_eq!(t.code_at(60), t.code_at(89));
        assert_ne!(t.code_at(60), t.code_at(90));
    }

    #[test]
    fn verify_exact_time() {
        let t = paper_totp();
        let now = 1_475_000_000; // around the paper's Sept 2016 rollout
        let code = t.code_at(now);
        assert_eq!(t.verify(&code, now, 0), Some(t.params.time_step(now)));
    }

    #[test]
    fn verify_within_drift_window() {
        let t = paper_totp();
        let now = 1_475_000_000;
        let window = t.window_for_drift(crate::MAX_DRIFT_SECS);
        assert_eq!(window, 10);
        // Client 5 minutes slow: code from 300 s ago is still accepted.
        let old_code = t.code_at(now - 300);
        assert!(t.verify(&old_code, now, window).is_some());
        // Client 5 minutes fast likewise.
        let future_code = t.code_at(now + 300);
        assert!(t.verify(&future_code, now, window).is_some());
        // Beyond the tolerance: rejected.
        let too_old = t.code_at(now - 330);
        assert_eq!(t.verify(&too_old, now, window), None);
    }

    #[test]
    fn verify_rejects_malformed_codes() {
        let t = paper_totp();
        assert_eq!(t.verify("12345", 1000, 10), None); // too short
        assert_eq!(t.verify("1234567", 1000, 10), None); // too long
        assert_eq!(t.verify("12a456", 1000, 10), None); // non-digit
        assert_eq!(t.verify("", 1000, 10), None);
    }

    #[test]
    fn verify_returns_matched_step_for_replay_tracking() {
        let t = paper_totp();
        let now = 1_475_000_000;
        let code = t.code_at(now - 30);
        let matched = t.verify(&code, now, 10).unwrap();
        assert_eq!(matched, t.params.time_step(now) - 1);
    }

    #[test]
    fn secs_remaining() {
        let p = TotpParams::default();
        assert_eq!(p.secs_remaining(0), 30);
        assert_eq!(p.secs_remaining(29), 1);
        assert_eq!(p.secs_remaining(30), 30);
        assert_eq!(p.secs_remaining(45), 15);
    }

    #[test]
    fn nonzero_t0_shifts_steps() {
        let params = TotpParams {
            t0: 1_000_000,
            ..TotpParams::default()
        };
        let t = Totp::with_params(Secret::from_bytes(*b"12345678901234567890"), params);
        let base = Totp::new(Secret::from_bytes(*b"12345678901234567890"));
        assert_eq!(t.code_at(1_000_000 + 59), base.code_at(59));
    }

    #[test]
    fn colliding_code_attributed_to_nearest_step() {
        // Six-digit codes collide across time steps ~1e-6 per pair. Find a
        // real collision between the current step and an earlier in-window
        // step, then check verify() reports the *current* step — otherwise
        // replay tracking would reject a legitimate fresh code.
        let t = paper_totp();
        let mut found = None;
        'outer: for step in 0u64..2_000_000 {
            let code = t.code_at(step * 30);
            for back in 1..=10u64 {
                if step >= back && t.code_at((step - back) * 30) == code {
                    found = Some((step, back));
                    break 'outer;
                }
            }
        }
        let (step, _back) = found.expect("a collision exists in 2M steps");
        let now = step * 30;
        let code = t.code_at(now);
        assert_eq!(t.verify(&code, now, 10), Some(step), "nearest step wins");
    }

    #[test]
    fn window_scan_near_epoch_no_underflow() {
        let t = paper_totp();
        // center step 0 with window 10 must not underflow.
        let code = t.code_at(0);
        assert!(t.verify(&code, 0, 10).is_some());
    }
}
