//! Wall-clock cost of the figure-regeneration simulations themselves
//! (Figures 3–6 / Table 1 all come from this one engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpcmfa_otp::date::Date;
use hpcmfa_workload::rollout::{RolloutParams, RolloutSim};

fn bench_rollout(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollout_sim");
    group.sample_size(10);
    for scale in [0.01f64, 0.02, 0.05] {
        group.bench_with_input(
            BenchmarkId::new("aug_only_scale", format!("{scale}")),
            &scale,
            |b, &s| {
                b.iter(|| {
                    RolloutSim::new(RolloutParams {
                        population_scale: s,
                        from: Date::new(2016, 8, 1),
                        to: Date::new(2016, 8, 31),
                        seed: 5,
                        ..RolloutParams::default()
                    })
                    .run()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_rollout);
criterion_main!(benches);
