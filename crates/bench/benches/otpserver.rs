//! OTP-server validation engine costs: single-user validation, lockout
//! bookkeeping, SMS triggering, and multi-threaded validation scaling
//! (DESIGN.md ablation #3: contention on the token store).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpcmfa_otp::device::SoftToken;
use hpcmfa_otp::totp::TotpParams;
use hpcmfa_otpserver::server::LinotpServer;
use hpcmfa_otpserver::sms::{PhoneNumber, TwilioSim};
use std::sync::Arc;

const NOW: u64 = 1_475_000_000;

fn bench_validate(c: &mut Criterion) {
    let srv = LinotpServer::new(TwilioSim::new(1), 9);
    let secret = srv.enroll_soft("alice", NOW);
    let device = SoftToken::new(secret, TotpParams::default());

    let mut t = NOW;
    c.bench_function("otpserver_validate_success", |b| {
        b.iter(|| {
            t += 30; // fresh step every iteration: never a replay
            let code = device.displayed_code(t);
            assert!(srv.validate("alice", &code, t).is_success());
        })
    });
    c.bench_function("otpserver_validate_wrong_code", |b| {
        b.iter(|| {
            let out = srv.validate("alice", "000000", NOW);
            // Periodically reset so the account doesn't stay locked.
            if out == hpcmfa_otpserver::ValidationOutcome::Locked {
                srv.reset_failcount("alice", NOW);
            }
        })
    });
}

fn bench_sms_trigger(c: &mut Criterion) {
    let srv = LinotpServer::new(TwilioSim::new(2), 10);
    srv.enroll_sms("bob", PhoneNumber::parse("5125551234").unwrap(), NOW);
    let mut t = NOW;
    c.bench_function("otpserver_sms_trigger", |b| {
        b.iter(|| {
            t += 400; // past validity so every trigger sends
            srv.trigger_sms("bob", t)
        })
    });
}

fn bench_concurrent_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("otpserver_scaling");
    group.sample_size(10);
    const USERS: usize = 64;
    const OPS_PER_THREAD: usize = 500;

    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::new("validate_threads", threads),
            &threads,
            |b, &nt| {
                let srv = LinotpServer::new(TwilioSim::new(3), 11);
                let devices: Vec<SoftToken> = (0..USERS)
                    .map(|u| {
                        let secret = srv.enroll_soft(&format!("user{u}"), NOW);
                        SoftToken::new(secret, TotpParams::default())
                    })
                    .collect();
                let devices = Arc::new(devices);
                b.iter(|| {
                    std::thread::scope(|s| {
                        for tid in 0..nt {
                            let srv = Arc::clone(&srv);
                            let devices = Arc::clone(&devices);
                            s.spawn(move || {
                                // Each thread owns a disjoint user slice so
                                // successes don't fight over replay state.
                                let per = USERS / nt;
                                for i in 0..OPS_PER_THREAD {
                                    let u = tid * per + (i % per);
                                    let t = NOW + (i as u64 + 1) * 30;
                                    let code = devices[u].displayed_code(t);
                                    srv.validate(&format!("user{u}"), &code, t);
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_validate,
    bench_sms_trigger,
    bench_concurrent_scaling
);
criterion_main!(benches);
