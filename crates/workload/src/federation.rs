//! Seeded multi-center federation scenario: three sites, pairwise trust,
//! roaming logins, and stateless session resumption.
//!
//! [`FederationSim`] stands up three federated centers — `tacc`, `psc`,
//! `sdsc` — each with its own RADIUS fleet, OTP back end, resumption key,
//! and one home user, then wires every ordered pair of realm routers with
//! [`Center::connect_peer_realm`]. [`FederationSim::run`] replays a
//! scripted cross-site login sequence on the shared virtual timeline:
//!
//! 1. local warmup logins at every site,
//! 2. a roaming `bob@psc` login at `tacc`, proxied to the home realm,
//!    which mints an address-bound resumption token at `psc`,
//! 3. a repeat login presenting that token — validated in O(1) with
//!    *zero* OTP window scans (pinned by the `hpcmfa_otp_window_scans_total`
//!    delta),
//! 4. a thief replaying the already-burned token from a foreign /16
//!    (denied, `resume_replay` security event),
//! 5. the same replay from *inside* the bound /16 (denied by the
//!    single-use nonce ledger),
//! 6. a login naming a realm outside the trust ACL (rejected),
//! 7. a *transit* login: `bob@psc` roams at `sdsc`, whose realm table
//!    routes `psc` **via tacc** (RADIUS secrets are per-hop, so sdsc's
//!    peer entry for `psc` carries tacc's secret). The request crosses
//!    three sites — sdsc → tacc → psc — and its single [`TraceId`]
//!    joins spans recorded in all three registries.
//!
//! Every site's `TraceCollector` is wired with both peers'
//! registries ([`Center::add_trace_source`]), so any site's
//! `GET /system/traces` assembles the full cross-site tree. The run
//! assembles the transit login's tree and appends its deterministic
//! critical-path summary to the report.
//!
//! Everything is seeded and virtual-time, so the [`FederationReport`]'s
//! `Display` output — per-step outcomes, proxy counters, resume
//! validation outcomes, critical path, and the sites' security-event
//! feeds — is byte-identical across runs. The acceptance suite replays
//! it five times and compares the strings.

use hpcmfa_core::center::{Center, CenterConfig, FederationParams};
use hpcmfa_federation::{RealmPeer, TrustConfig};
use hpcmfa_otp::device::SoftToken;
use hpcmfa_pam::modules::token::EnforcementMode;
use hpcmfa_ssh::client::{ClientProfile, TokenSource};
use hpcmfa_ssh::daemon::SessionReport;
use hpcmfa_telemetry::{critical_path_summary, TraceId};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// The three federated sites, in fixed order.
pub const SITES: [&str; 3] = ["tacc", "psc", "sdsc"];

/// One site in the federation: a full center plus its home user's
/// paired soft token.
pub struct FedSite {
    /// Realm name (`tacc`, `psc`, `sdsc`).
    pub name: &'static str,
    /// The site's center.
    pub center: Arc<Center>,
    /// The home user's account name (`alice`, `bob`, `carol`).
    pub home_user: &'static str,
    /// The home user's soft token, paired at this site.
    pub token: SoftToken,
}

impl FedSite {
    /// Current value of a counter in this site's registry (0 if never
    /// touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.center.metrics_snapshot().counter(key)
    }
}

/// What the scripted run produced. `Display` is the byte-identical
/// artifact: step lines, counters, and event feeds, nothing wall-clock.
#[derive(Debug, Clone, Default)]
pub struct FederationReport {
    /// One line per scripted step: site, principal, source, outcome.
    pub steps: Vec<String>,
    /// Roaming logins granted (full-MFA logins proxied to a home realm).
    pub roamed_granted: usize,
    /// Transit logins granted (proxied through an intermediate realm).
    pub transit_granted: usize,
    /// The transit login's trace id — one trace joining spans recorded
    /// at all three sites.
    pub transit_trace: Option<TraceId>,
    /// Deterministic critical-path summary of the transit login's
    /// cross-site trace tree, one line per entry.
    pub critical_path: Vec<String>,
    /// Resumption logins granted.
    pub resumed_granted: usize,
    /// Replay attempts denied (foreign /16 or burned nonce).
    pub replays_denied: usize,
    /// OTP window scans the home realm spent on resumption logins
    /// (must be 0: resumption is one HMAC verify, never a window walk).
    pub resume_window_scans: u64,
    /// Selected deterministic counters, pre-formatted `key = value`.
    pub counters: Vec<String>,
    /// Security-event feeds, one `site: event` line each.
    pub security_events: Vec<String>,
}

impl std::fmt::Display for FederationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "federation: {} roamed, {} transit, {} resumed ({} window scans), {} replays denied",
            self.roamed_granted,
            self.transit_granted,
            self.resumed_granted,
            self.resume_window_scans,
            self.replays_denied,
        )?;
        for line in &self.steps {
            writeln!(f, "  step: {line}")?;
        }
        for line in &self.counters {
            writeln!(f, "  counter: {line}")?;
        }
        for line in &self.critical_path {
            writeln!(f, "  path: {line}")?;
        }
        for line in &self.security_events {
            writeln!(f, "  event: {line}")?;
        }
        Ok(())
    }
}

/// Three federated centers on one virtual timeline.
pub struct FederationSim {
    /// The sites, index-aligned with [`SITES`].
    pub sites: Vec<FedSite>,
}

/// The home /16 each user logs in from (distinct per site, all US space
/// in the attack-fixture sense, though this sim runs without a risk
/// engine).
fn home_ip(site_idx: usize) -> Ipv4Addr {
    Ipv4Addr::new(70, 10 + 10 * site_idx as u8, 50, 3)
}

impl FederationSim {
    /// Stand up the three sites and wire every ordered pair. Each site's
    /// inbound proxy secret is its own `radius_secret`, so a peer entry
    /// for realm `r` carries `r`'s secret — pairwise explicit trust, no
    /// transitive hops.
    pub fn new(seed: u64) -> Self {
        let mut sites = Vec::new();
        let home_users = ["alice", "bob", "carol"];
        for (i, name) in SITES.iter().enumerate() {
            let peers = SITES
                .iter()
                .filter(|p| *p != name)
                .map(|p| {
                    // RADIUS secrets are per-hop, not per-realm: sdsc
                    // reaches psc *via tacc*, so its peer entry for
                    // realm `psc` carries tacc's fleet secret.
                    let hop = if *name == "sdsc" && *p == "psc" {
                        "tacc"
                    } else {
                        p
                    };
                    RealmPeer::new(p, format!("{hop}-radius-secret").into_bytes())
                })
                .collect();
            let trust = TrustConfig {
                home_realm: name.to_string(),
                peers,
            };
            let center = Center::new(CenterConfig {
                radius_secret: format!("{name}-radius-secret").into_bytes(),
                login_nodes: vec![format!("{name}-login1")],
                enforcement: EnforcementMode::Full,
                seed: seed ^ (i as u64) << 16,
                federation: Some(FederationParams::new(
                    trust,
                    format!("{name}-resume-key").as_bytes(),
                    20,
                )),
                ..CenterConfig::default()
            });
            let user = home_users[i];
            center.create_user(user, &format!("{user}@{name}.edu"), &format!("{user}-pw"));
            let token = center.pair_soft(user);
            sites.push(FedSite {
                name,
                center,
                home_user: user,
                token,
            });
        }
        // Guest password entries: a roaming `user@home` principal still
        // needs a first-factor record at the visited site (the OTP leg is
        // what federates). Same password as at home — the user only has
        // one.
        for site in &sites {
            for peer in &sites {
                if peer.name != site.name {
                    let principal = format!("{}@{}", peer.home_user, peer.name);
                    site.center.create_user(
                        &principal,
                        &format!("{}@{}.edu", peer.home_user, peer.name),
                        &format!("{}-pw", peer.home_user),
                    );
                }
            }
        }
        // Pairwise upstream pools, both directions — except sdsc's
        // route for `psc`, which points at tacc: tacc's own router sees
        // the still-foreign realm and forwards a second hop to psc, so
        // a `bob@psc` login at sdsc transits all three sites.
        for a in &sites {
            for b in &sites {
                if a.name != b.name {
                    let via = if a.name == "sdsc" && b.name == "psc" {
                        &sites[0]
                    } else {
                        b
                    };
                    a.center.connect_peer_realm(b.name, &via.center);
                }
            }
        }
        // Every site's trace collector sees both peers' registries:
        // a federated login's spans — recorded wherever each hop ran —
        // assemble into one tree at any site's `GET /system/traces`.
        for a in &sites {
            for b in &sites {
                if a.name != b.name {
                    a.center.add_trace_source(Arc::clone(b.center.metrics()));
                }
            }
        }
        FederationSim { sites }
    }

    /// Advance every site's clock together: the federation shares one
    /// virtual timeline (sites' TOTP windows must agree for proxied
    /// validations to land).
    pub fn advance(&self, secs: u64) {
        for site in &self.sites {
            site.center.clock.advance(secs);
        }
    }

    /// One SSH attempt. The first-factor password is the sim-wide
    /// `{bare user}-pw` convention (guest entries share the home
    /// password — the user only has one).
    fn dial(
        &self,
        report: &mut FederationReport,
        site_idx: usize,
        principal: &str,
        ip: Ipv4Addr,
        token: TokenSource,
        what: &str,
    ) -> SessionReport {
        let site = &self.sites[site_idx];
        let bare = principal.split('@').next().unwrap_or(principal);
        let password = format!("{bare}-pw");
        let profile = ClientProfile::interactive_user(principal, ip, &password).with_token(token);
        let session = site.center.ssh(0, &profile);
        report.steps.push(format!(
            "{what}: {principal} at {} from {ip} -> {}{}",
            site.name,
            if session.granted { "granted" } else { "denied" },
            if session.issued_resume_token.is_some() {
                " (resume token issued)"
            } else {
                ""
            },
        ));
        session
    }

    /// Replay the scripted sequence and report. Takes `&self` so callers
    /// can keep inspecting the sites (trace collectors, registries)
    /// after the run.
    pub fn run(&self) -> FederationReport {
        let mut report = FederationReport::default();
        let tacc = 0usize;
        let psc = 1usize;

        // 1. Local warmup: every home user logs in at their own site.
        for (i, site) in self.sites.iter().enumerate() {
            self.advance(30);
            let device = site.token.clone();
            let granted = self
                .dial(
                    &mut report,
                    i,
                    site.home_user,
                    home_ip(i),
                    TokenSource::Device(Arc::new(move |now| Some(device.displayed_code(now)))),
                    "local",
                )
                .granted;
            assert!(granted, "warmup local login at {} failed", site.name);
        }

        // 2. Roaming: bob (homed at psc) logs into tacc as bob@psc. The
        // visited site proxies the OTP leg to psc, which runs full MFA
        // and mints a resumption token bound to bob's /16.
        self.advance(30);
        let bob_ip = home_ip(psc);
        let device = self.sites[psc].token.clone();
        let session = self.dial(
            &mut report,
            tacc,
            "bob@psc",
            bob_ip,
            TokenSource::Device(Arc::new(move |now| Some(device.displayed_code(now)))),
            "roam",
        );
        if session.granted {
            report.roamed_granted += 1;
        }
        let resume_token = session
            .issued_resume_token
            .expect("full-MFA roaming login mints a resumption token");

        // 3. Resumption: the repeat login presents the token in place of
        // a code. One HMAC verify at psc; the TOTP window is never
        // scanned (pinned by the counter delta).
        self.advance(30);
        let scans_key = "hpcmfa_otp_window_scans_total";
        let scans_before = self.sites[psc].counter(scans_key);
        let granted = self
            .dial(
                &mut report,
                tacc,
                "bob@psc",
                bob_ip,
                TokenSource::Fixed(resume_token.clone()),
                "resume",
            )
            .granted;
        if granted {
            report.resumed_granted += 1;
        }
        report.resume_window_scans = self.sites[psc].counter(scans_key) - scans_before;

        // 4. Theft: the token was exfiltrated; a thief replays it from a
        // network it was never issued to. The MAC verifies — which is
        // exactly why this is flagged as a typed `resume_replay` event —
        // but the /16 binding refuses entry.
        self.advance(30);
        let granted = self
            .dial(
                &mut report,
                tacc,
                "bob@psc",
                Ipv4Addr::new(198, 51, 7, 7),
                TokenSource::Fixed(resume_token.clone()),
                "theft",
            )
            .granted;
        if !granted {
            report.replays_denied += 1;
        }

        // 5. Replay from inside the bound /16: the address binding holds,
        // but the nonce was burned in step 3 — the WAL-backed single-use
        // ledger refuses the second spend.
        self.advance(30);
        let granted = self
            .dial(
                &mut report,
                tacc,
                "bob@psc",
                Ipv4Addr::new(bob_ip.octets()[0], bob_ip.octets()[1], 200, 9),
                TokenSource::Fixed(resume_token),
                "replay",
            )
            .granted;
        if !granted {
            report.replays_denied += 1;
        }

        // 6. A realm outside the trust ACL is rejected at the router.
        self.advance(30);
        let site = &self.sites[tacc];
        site.center
            .create_user("mallory@ncsa", "mallory@ncsa.edu", "mallory-pw");
        let granted = self
            .dial(
                &mut report,
                tacc,
                "mallory@ncsa",
                Ipv4Addr::new(70, 77, 1, 1),
                TokenSource::Fixed("000000".into()),
                "acl",
            )
            .granted;
        assert!(!granted, "realm outside the trust ACL must be rejected");

        // 7. Transit: bob roams at sdsc, whose realm table routes `psc`
        // via tacc. The OTP leg crosses sdsc → tacc → psc; every hop
        // records spans into its own registry under bob's one trace id,
        // and any site's collector reassembles the full tree.
        self.advance(30);
        let sdsc = 2usize;
        let device = self.sites[psc].token.clone();
        let transit = self.dial(
            &mut report,
            sdsc,
            "bob@psc",
            bob_ip,
            TokenSource::Device(Arc::new(move |now| Some(device.displayed_code(now)))),
            "transit",
        );
        assert!(transit.granted, "transit login via tacc must succeed");
        report.transit_granted += 1;
        report.transit_trace = transit.trace_ids.last().copied();

        // Assemble the transit login's cross-site tree at the visited
        // site and pin its critical path in the report.
        let trace = report.transit_trace.expect("transit login has a trace");
        let tree = self.sites[sdsc]
            .center
            .traces
            .assemble(trace)
            .expect("transit trace assembles across the three sites");
        report.critical_path = critical_path_summary(&tree)
            .lines()
            .map(str::to_string)
            .collect();

        // Deterministic counters worth pinning.
        for key in [
            "hpcmfa_radius_proxy_forwards_total{outcome=\"accept\",realm=\"psc\"}",
            "hpcmfa_radius_proxy_forwards_total{outcome=\"reject\",realm=\"psc\"}",
            "hpcmfa_radius_proxy_forwards_total{outcome=\"denied_acl\",realm=\"ncsa\"}",
        ] {
            report
                .counters
                .push(format!("tacc {key} = {}", self.sites[tacc].counter(key)));
        }
        let transit_key = "hpcmfa_radius_proxy_forwards_total{outcome=\"accept\",realm=\"psc\"}";
        report.counters.push(format!(
            "sdsc {transit_key} = {}",
            self.sites[sdsc].counter(transit_key)
        ));
        for key in [
            "hpcmfa_otp_resume_validations_total{outcome=\"ok\"}",
            "hpcmfa_otp_resume_validations_total{outcome=\"wrong_address\"}",
            "hpcmfa_otp_resume_validations_total{outcome=\"replayed\"}",
            "hpcmfa_otp_window_scans_total",
        ] {
            report
                .counters
                .push(format!("psc {key} = {}", self.sites[psc].counter(key)));
        }
        for site in &self.sites {
            for event in site.center.metrics().security_events().all() {
                report
                    .security_events
                    .push(format!("{}: {event}", site.name));
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_run_hits_every_outcome() {
        let report = FederationSim::new(0xfed).run();
        assert_eq!(report.roamed_granted, 1, "{report}");
        assert_eq!(report.transit_granted, 1, "{report}");
        assert_eq!(report.resumed_granted, 1, "{report}");
        assert_eq!(report.replays_denied, 2, "{report}");
        assert_eq!(report.resume_window_scans, 0, "{report}");
        assert!(
            report
                .security_events
                .iter()
                .any(|e| e.starts_with("psc:") && e.contains("resume_replay")),
            "{report}"
        );
        assert!(
            report
                .critical_path
                .iter()
                .any(|l| l.starts_with("critical path:")),
            "{report}"
        );
    }

    #[test]
    fn transit_trace_joins_spans_from_all_three_sites() {
        let sim = FederationSim::new(0xfed);
        let report = sim.run();
        let trace = report.transit_trace.expect("transit trace id");
        // Each site's own tracer holds the hop spans it recorded; the
        // transit login must have left spans at all three.
        for site in &sim.sites {
            let spans = site.center.metrics().tracer().spans_for(trace);
            assert!(
                !spans.is_empty(),
                "site {} recorded no spans for the transit trace\n{report}",
                site.name
            );
        }
    }

    #[test]
    fn report_is_byte_identical_across_runs() {
        let a = FederationSim::new(0xfed).run().to_string();
        let b = FederationSim::new(0xfed).run().to_string();
        assert_eq!(a, b);
    }
}
