//! An SMS user's journey (§3.3, §3.5): pairing by phone number, login with
//! a texted code, the "SMS already sent" suppression, a carrier-delayed
//! code arriving expired, the 20-failure lockout, and the staff reset via
//! the admin REST API.
//!
//! ```text
//! cargo run --example sms_journey
//! ```

use securing_hpc::core::center::{Center, CenterConfig};
use securing_hpc::core::Clock as _;
use securing_hpc::crypto::digestauth::answer_challenge;
use securing_hpc::otpserver::admin::HttpRequest;
use securing_hpc::otpserver::json::Json;
use securing_hpc::otpserver::sms::SmsProvider;
use securing_hpc::pam::modules::token::EnforcementMode;
use securing_hpc::ssh::client::{ClientProfile, TokenSource};
use std::net::Ipv4Addr;
use std::sync::Arc;

const HOME_IP: Ipv4Addr = Ipv4Addr::new(70, 113, 20, 5);

fn main() {
    let center = Center::new(CenterConfig::default());
    center.set_enforcement(EnforcementMode::Full);
    center.create_user("bob", "bob@utexas.edu", "bob-pw");

    // Pair via the portal with a ten-digit US number (§3.5).
    let phone = center.pair_sms("bob", "5125557788");
    println!("bob paired an SMS token for {}", phone.as_str());

    // A login: the null RADIUS request triggers the text; bob waits for
    // the carrier, reads the code, types it.
    let twilio = Arc::clone(&center.twilio);
    let clock = center.clock.clone();
    let ph = phone.clone();
    let profile = ClientProfile::interactive_user("bob", HOME_IP, "bob-pw").with_token(
        TokenSource::device(move |_now| {
            clock.advance(10);
            twilio
                .inbox(&ph, clock.now())
                .last()
                .map(|m| m.body.rsplit(' ').next().unwrap().to_string())
        }),
    );
    let report = center.ssh(0, &profile);
    println!(
        "login prompts: {:?}\ngranted: {}",
        report.prompts, report.granted
    );

    // Immediately retrying shows the suppression message (§3.3): the old
    // code was consumed, a new one is texted only after expiry.
    center.clock.advance(30);
    let report = center.ssh(0, &profile);
    println!(
        "\nsecond login prompt: {:?} (fresh SMS, previous code was consumed)",
        report.prompts.first()
    );

    // Cost accounting (§3.3 rates).
    println!(
        "\nSMS messages so far: {}, provider charges: ${:.4} + $1/month",
        center.twilio.sent_count(),
        center.twilio.sent_count() as f64 * 0.0075
    );

    // A storm of wrong codes locks the account after 20 consecutive
    // failures (§3.1)...
    let vandal = ClientProfile::interactive_user("bob", HOME_IP, "bob-pw")
        .with_token(TokenSource::Fixed("000000".into()));
    let mut denied = 0;
    for _ in 0..22 {
        center.clock.advance(5);
        if !center.ssh(0, &vandal).granted {
            denied += 1;
        }
    }
    let status = center.linotp.status("bob", center.clock.now()).unwrap();
    println!(
        "\nafter {denied} wrong-code attempts: fail_count={}, active={}",
        status.fail_count, status.active
    );

    // ...and staff clear it through the digest-authenticated admin API.
    let chal = center.admin.issue_challenge();
    let auth = answer_challenge(
        &chal,
        "portal-svc",
        "portal-svc-password",
        "POST",
        "/admin/reset",
        "staff-cnonce",
        1,
    );
    let resp = center.admin.handle(
        &HttpRequest::new(
            "POST",
            "/admin/reset",
            Json::obj([("user", Json::str("bob"))]),
        )
        .with_auth(auth),
        center.clock.now(),
    );
    println!(
        "staff POST /admin/reset -> HTTP {} body {}",
        resp.status, resp.body
    );
    let status = center.linotp.status("bob", center.clock.now()).unwrap();
    println!("bob active again: {}", status.active);

    center.clock.advance(400); // let the consumed/pending state expire
    let report = center.ssh(0, &profile);
    println!("bob logs in after the reset: granted = {}", report.granted);
}
