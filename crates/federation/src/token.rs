//! Stateless, address-bound session-resumption tokens.
//!
//! Modeled on QUIC's NEW_TOKEN address-validation design (RFC 9000
//! §8.1.3): the server offloads session state to the client as an opaque,
//! integrity-protected blob, and on presentation needs *one* keyed-hash
//! verification to trust every field inside it — no database lookup, no
//! OTP drift-window scan. RFC 9000 §8.1.4 is explicit that such tokens
//! must be hard to guess, must be bound to the client address, and that
//! servers need replay protection on top; this codec supplies the first
//! two and the OTP server's WAL-backed nonce ledger supplies the third.
//!
//! # Wire form
//!
//! ```text
//! HPCRT1.<base64url(body || mac)>
//! body = user | realm | issuer | client /16 (2 bytes) | issued_step (u64 LE) | nonce (16 bytes)
//! mac  = HMAC-SHA256(key, body)            (32 bytes, midstate-cached key)
//! ```
//!
//! Strings are `u16 LE` length-prefixed; the blob is unpadded base64url
//! so a typical token (~111 chars) rides inside RFC 2865's 128-octet
//! `User-Password` ceiling with the full 32-byte MAC intact. The MAC is
//! computed with the workspace's midstate-cached [`HmacKey`], so issuing
//! or checking a token costs one inner + one outer SHA-256 compression
//! pass over ~64 bytes — the O(1) the resumption hot path is built
//! around.

use hpcmfa_crypto::ct::ct_eq;
use hpcmfa_crypto::hmac::HmacKey;
use hpcmfa_crypto::sha256::Sha256;
use rand::RngCore;
use std::net::Ipv4Addr;

/// Recognizable wire prefix; lets the RADIUS handler tell a resumption
/// token from a six-digit OTP code without ambiguity (codes are numeric).
pub const TOKEN_PREFIX: &str = "HPCRT1.";

/// `Reply-Message` prefix the OTP server's RADIUS handler uses to hand a
/// freshly issued resumption token back to the login node on a full-MFA
/// Accept. The PAM token module strips this prefix and stashes the token
/// for the client to present on its next login.
pub const RESUME_REPLY_PREFIX: &str = "resume=";

/// MAC length appended to the body (full HMAC-SHA256).
const MAC_LEN: usize = 32;

/// Nonce length: 128 bits, RFC 9000 §8.1.4's "hard to guess" floor.
pub const NONCE_LEN: usize = 16;

/// Everything a token binds. All fields are integrity-protected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenClaims {
    /// Bare account name at the home realm.
    pub user: String,
    /// The user's home realm.
    pub realm: String,
    /// Site that issued the token (the realm that ran the full MFA).
    pub issuer: String,
    /// First two octets of the client IPv4 address (/16 binding).
    pub client_net: [u8; 2],
    /// OTP step at issue time; lifetime is measured in steps.
    pub issued_step: u64,
    /// Single-use nonce, random from the seeded RNG.
    pub nonce: [u8; NONCE_LEN],
}

impl TokenClaims {
    /// The /16 prefix of `addr`.
    pub fn net_of(addr: Ipv4Addr) -> [u8; 2] {
        let o = addr.octets();
        [o[0], o[1]]
    }
}

/// Why a presented token was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenError {
    /// Not base64url, truncated, bad prefix, or a body that does not
    /// parse.
    Malformed,
    /// The MAC did not verify (bit-flip, truncation inside the encoded
    /// body, or a token minted under a different key).
    BadMac,
    /// The token names a different account than the login presenting it.
    WrongUser,
    /// The presenting client is outside the issued /16.
    WrongAddress,
    /// The issue step is outside the validity window (too old, or from a
    /// future step — a clock the issuer cannot have seen).
    Expired,
}

impl TokenError {
    /// Stable label for telemetry detail strings.
    pub fn label(self) -> &'static str {
        match self {
            TokenError::Malformed => "malformed",
            TokenError::BadMac => "bad_mac",
            TokenError::WrongUser => "wrong_user",
            TokenError::WrongAddress => "wrong_address",
            TokenError::Expired => "expired",
        }
    }
}

impl std::fmt::Display for TokenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::error::Error for TokenError {}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Unpadded base64url (RFC 4648 §5). Hand-rolled: the wire form has to
/// fit RADIUS's 128-octet password field, and hex would not.
fn to_b64(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let v = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(B64_ALPHABET[(v >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(v >> 12) as usize & 63] as char);
        if chunk.len() > 1 {
            out.push(B64_ALPHABET[(v >> 6) as usize & 63] as char);
        }
        if chunk.len() > 2 {
            out.push(B64_ALPHABET[v as usize & 63] as char);
        }
    }
    out
}

fn from_b64(s: &str) -> Option<Vec<u8>> {
    fn val(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some(u32::from(c - b'A')),
            b'a'..=b'z' => Some(u32::from(c - b'a') + 26),
            b'0'..=b'9' => Some(u32::from(c - b'0') + 52),
            b'-' => Some(62),
            b'_' => Some(63),
            _ => None,
        }
    }
    let bytes = s.as_bytes();
    if bytes.len() % 4 == 1 {
        return None; // no 4k+1 length is producible by the encoder
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3 + 2);
    for chunk in bytes.chunks(4) {
        let mut v = 0u32;
        for &c in chunk {
            v = (v << 6) | val(c)?;
        }
        v <<= 6 * (4 - chunk.len()) as u32;
        // Canonical form only: bits below the emitted bytes must be zero,
        // so every encoded blob has exactly one accepted spelling.
        if v & ((1u32 << (24 - 8 * (chunk.len() - 1))) - 1) != 0 {
            return None;
        }
        out.push((v >> 16) as u8);
        if chunk.len() > 2 {
            out.push((v >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(v as u8);
        }
    }
    Some(out)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    out.extend_from_slice(&(b.len().min(u16::MAX as usize) as u16).to_le_bytes());
    out.extend_from_slice(&b[..b.len().min(u16::MAX as usize)]);
}

fn take_str<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a str> {
    let len_end = pos.checked_add(2)?;
    if len_end > bytes.len() {
        return None;
    }
    let len = u16::from_le_bytes([bytes[*pos], bytes[*pos + 1]]) as usize;
    let end = len_end.checked_add(len)?;
    if end > bytes.len() {
        return None;
    }
    let s = std::str::from_utf8(&bytes[len_end..end]).ok()?;
    *pos = end;
    Some(s)
}

fn take_fixed<const N: usize>(bytes: &[u8], pos: &mut usize) -> Option<[u8; N]> {
    let end = pos.checked_add(N)?;
    if end > bytes.len() {
        return None;
    }
    let arr: [u8; N] = bytes[*pos..end].try_into().ok()?;
    *pos = end;
    Some(arr)
}

fn encode_body(claims: &TokenClaims) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    put_str(&mut body, &claims.user);
    put_str(&mut body, &claims.realm);
    put_str(&mut body, &claims.issuer);
    body.extend_from_slice(&claims.client_net);
    body.extend_from_slice(&claims.issued_step.to_le_bytes());
    body.extend_from_slice(&claims.nonce);
    body
}

fn decode_body(body: &[u8]) -> Option<TokenClaims> {
    let mut pos = 0usize;
    let user = take_str(body, &mut pos)?.to_string();
    let realm = take_str(body, &mut pos)?.to_string();
    let issuer = take_str(body, &mut pos)?.to_string();
    let client_net = take_fixed::<2>(body, &mut pos)?;
    let issued_step = u64::from_le_bytes(take_fixed::<8>(body, &mut pos)?);
    let nonce = take_fixed::<NONCE_LEN>(body, &mut pos)?;
    if pos != body.len() {
        return None; // trailing garbage under a valid MAC is still refused
    }
    Some(TokenClaims {
        user,
        realm,
        issuer,
        client_net,
        issued_step,
        nonce,
    })
}

/// The site-local token authority: one HMAC key (midstate cached), the
/// issuing site's identity, and the validity window.
pub struct ResumeAuthority {
    key: HmacKey<Sha256>,
    /// Issuing site name, embedded in every token.
    pub site: String,
    /// Home realm the tokens vouch for.
    pub realm: String,
    /// Validity window in OTP steps after the issue step.
    pub lifetime_steps: u64,
    /// Step width in seconds (shared with the OTP config).
    pub step_secs: u64,
}

impl ResumeAuthority {
    /// Build an authority for `site`/`realm` keyed with `key`.
    pub fn new(key: &[u8], site: &str, realm: &str, lifetime_steps: u64, step_secs: u64) -> Self {
        ResumeAuthority {
            key: HmacKey::new(key),
            site: site.to_string(),
            realm: realm.to_string(),
            lifetime_steps,
            step_secs: step_secs.max(1),
        }
    }

    /// Does `candidate` look like a resumption token (vs an OTP code)?
    pub fn is_token(candidate: &str) -> bool {
        candidate.starts_with(TOKEN_PREFIX)
    }

    /// The OTP step containing wall-second `now`.
    pub fn step_of(&self, now: u64) -> u64 {
        now / self.step_secs
    }

    /// When a token issued at `issued_step` stops validating — the ledger
    /// may forget its nonce after this instant because the stateless
    /// expiry check takes over.
    pub fn expires_at(&self, issued_step: u64) -> u64 {
        issued_step
            .saturating_add(self.lifetime_steps)
            .saturating_add(1)
            .saturating_mul(self.step_secs)
    }

    /// Seal `claims` into wire form under this authority's key.
    pub fn seal(&self, claims: &TokenClaims) -> String {
        let mut body = encode_body(claims);
        let mut mac = [0u8; MAC_LEN];
        self.key.mac_into(&body, &mut mac);
        body.extend_from_slice(&mac);
        format!("{TOKEN_PREFIX}{}", to_b64(&body))
    }

    /// Issue a fresh token for `user` at `client`, stamped with the
    /// current step and a random nonce from `rng`.
    pub fn issue<R: RngCore + ?Sized>(
        &self,
        rng: &mut R,
        user: &str,
        client: Ipv4Addr,
        now: u64,
    ) -> String {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        self.seal(&TokenClaims {
            user: user.to_string(),
            realm: self.realm.clone(),
            issuer: self.site.clone(),
            client_net: TokenClaims::net_of(client),
            issued_step: self.step_of(now),
            nonce,
        })
    }

    /// Decode and MAC-verify `token`, without binding checks. The MAC is
    /// checked *before* the body parse so a forged payload never steers
    /// the parser.
    pub fn open(&self, token: &str) -> Result<TokenClaims, TokenError> {
        let encoded = token
            .strip_prefix(TOKEN_PREFIX)
            .ok_or(TokenError::Malformed)?;
        let raw = from_b64(encoded).ok_or(TokenError::Malformed)?;
        if raw.len() < MAC_LEN + 1 {
            return Err(TokenError::Malformed);
        }
        let (body, mac) = raw.split_at(raw.len() - MAC_LEN);
        let mut expect = [0u8; MAC_LEN];
        self.key.mac_into(body, &mut expect);
        if !ct_eq(mac, &expect) {
            return Err(TokenError::BadMac);
        }
        decode_body(body).ok_or(TokenError::Malformed)
    }

    /// Full stateless validation: MAC, account binding, /16 binding, and
    /// the step window. Single-use (nonce ledger) is the caller's job.
    pub fn validate(
        &self,
        token: &str,
        user: &str,
        client: Ipv4Addr,
        now: u64,
    ) -> Result<TokenClaims, TokenError> {
        let claims = self.open(token)?;
        if claims.user != user {
            return Err(TokenError::WrongUser);
        }
        if claims.client_net != TokenClaims::net_of(client) {
            return Err(TokenError::WrongAddress);
        }
        let step = self.step_of(now);
        if claims.issued_step > step || step > claims.issued_step + self.lifetime_steps {
            return Err(TokenError::Expired);
        }
        Ok(claims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn authority() -> ResumeAuthority {
        ResumeAuthority::new(b"resume-key", "tacc", "tacc", 20, 30)
    }

    const CLIENT: Ipv4Addr = Ipv4Addr::new(70, 10, 50, 3);

    #[test]
    fn issue_validate_round_trip() {
        let auth = authority();
        let mut rng = StdRng::seed_from_u64(1);
        let token = auth.issue(&mut rng, "alice", CLIENT, 1_700_000_000);
        assert!(ResumeAuthority::is_token(&token));
        let claims = auth
            .validate(&token, "alice", CLIENT, 1_700_000_000 + 60)
            .unwrap();
        assert_eq!(claims.user, "alice");
        assert_eq!(claims.realm, "tacc");
        assert_eq!(claims.issuer, "tacc");
        assert_eq!(claims.client_net, [70, 10]);
    }

    #[test]
    fn same_16_different_host_still_validates() {
        let auth = authority();
        let mut rng = StdRng::seed_from_u64(2);
        let token = auth.issue(&mut rng, "alice", CLIENT, 1_700_000_000);
        let sibling = Ipv4Addr::new(70, 10, 99, 200);
        assert!(auth
            .validate(&token, "alice", sibling, 1_700_000_000)
            .is_ok());
    }

    #[test]
    fn bindings_are_enforced() {
        let auth = authority();
        let mut rng = StdRng::seed_from_u64(3);
        let t0 = 1_700_000_000u64;
        let token = auth.issue(&mut rng, "alice", CLIENT, t0);
        assert_eq!(
            auth.validate(&token, "mallory", CLIENT, t0).unwrap_err(),
            TokenError::WrongUser
        );
        assert_eq!(
            auth.validate(&token, "alice", Ipv4Addr::new(203, 0, 113, 9), t0)
                .unwrap_err(),
            TokenError::WrongAddress
        );
        let past_window = t0 + (auth.lifetime_steps + 1) * auth.step_secs;
        assert_eq!(
            auth.validate(&token, "alice", CLIENT, past_window)
                .unwrap_err(),
            TokenError::Expired
        );
        // A token stamped in the issuer's future is refused too.
        assert_eq!(
            auth.validate(&token, "alice", CLIENT, t0 - 30).unwrap_err(),
            TokenError::Expired
        );
    }

    #[test]
    fn wrong_key_and_tampering_rejected() {
        let auth = authority();
        let other = ResumeAuthority::new(b"other-key", "tacc", "tacc", 20, 30);
        let mut rng = StdRng::seed_from_u64(4);
        let token = auth.issue(&mut rng, "alice", CLIENT, 1_700_000_000);
        assert_eq!(
            other.open(&token).unwrap_err(),
            TokenError::BadMac,
            "wrong key must fail the MAC"
        );
        // Flip one character in the body region.
        let mut chars: Vec<char> = token.chars().collect();
        let i = TOKEN_PREFIX.len() + 4;
        chars[i] = if chars[i] == 'A' { 'B' } else { 'A' };
        let tampered: String = chars.into_iter().collect();
        assert_eq!(auth.open(&tampered).unwrap_err(), TokenError::BadMac);
        // Truncation.
        assert!(matches!(
            auth.open(&token[..token.len() - 8]).unwrap_err(),
            TokenError::BadMac | TokenError::Malformed
        ));
        // Prefixless garbage.
        assert_eq!(auth.open("123456").unwrap_err(), TokenError::Malformed);
    }

    #[test]
    fn nonces_differ_per_issue() {
        let auth = authority();
        let mut rng = StdRng::seed_from_u64(5);
        let a = auth.issue(&mut rng, "alice", CLIENT, 1_700_000_000);
        let b = auth.issue(&mut rng, "alice", CLIENT, 1_700_000_000);
        assert_ne!(a, b);
        assert_ne!(auth.open(&a).unwrap().nonce, auth.open(&b).unwrap().nonce);
    }
}
