//! Tracing overhead on the OTP validation hot path, writing
//! `BENCH_trace.json`.
//!
//! # What is being compared
//!
//! Two [`LinotpServer`]s run the *identical* instrumented code — the
//! timed-span `validate_traced` path that opens the `otp/validate`
//! guard and its `otp/window_scan` child on every login — against the
//! same seeded user population. The only difference is the registry's
//! tracer: **instrumented** records every span into the ring;
//! **noop** is [`Tracer::disable`]d, so the same guards are inert (no
//! lock, no allocation, no ring insert). The headline is the relative
//! wall-clock overhead of *recording* spans versus carrying disabled
//! instrumentation, which the paper-budget requires to stay ≤ 10%.
//!
//! # Method
//!
//! Each phase replays the same `users × logins` TOTP validations (fresh
//! step per round, so every code is new and every validation walks the
//! drift window — the worst, most span-dense path). The loop runs
//! `reps` times per phase and the **minimum** wall time is compared:
//! min-of-reps is the standard way to damp scheduler noise out of a
//! relative claim. Virtual span durations play no part here — this
//! bench is about the *wall* cost of the instrumentation itself.
//!
//! `--check` additionally enforces the semantic floor: every validation
//! succeeds in both phases, the noop tracer recorded nothing, the
//! instrumented tracer recorded two spans per validation (validate +
//! window_scan) with zero ring drops, and the overhead is ≤ 10%.

use hpcmfa_otp::totp::Totp;
use hpcmfa_otpserver::server::{LinotpServer, ServerConfig};
use hpcmfa_otpserver::sms::TwilioSim;
use hpcmfa_telemetry::{MetricsRegistry, TraceId};
use std::sync::Arc;

/// TOTP step width.
const STEP_SECS: u64 = 30;

struct PhaseResult {
    validations: u64,
    successes: u64,
    best_wall_us: u64,
    spans_recorded: u64,
    spans_dropped: u64,
}

fn json(r: &PhaseResult) -> String {
    format!(
        "{{\"validations\":{},\"successes\":{},\"best_wall_us\":{},\
\"spans_recorded\":{},\"spans_dropped\":{}}}",
        r.validations, r.successes, r.best_wall_us, r.spans_recorded, r.spans_dropped
    )
}

/// Replay `users × logins` fresh-code validations `reps` times against
/// one server; every validation carries a trace id, so the instrumented
/// phase records spans and the noop phase exercises the inert guards.
fn run_phase(
    registry: Arc<MetricsRegistry>,
    users: usize,
    logins: u64,
    reps: u64,
    seed: u64,
) -> PhaseResult {
    let server = LinotpServer::with_config(
        TwilioSim::new(seed),
        seed,
        ServerConfig {
            metrics: Arc::clone(&registry),
            ..ServerConfig::default()
        },
    );
    let t0 = 1_700_000_000u64;
    let enrolled: Vec<(String, Totp)> = (0..users)
        .map(|i| {
            let name = format!("user{i:04}");
            let secret = server.enroll_soft(&name, t0);
            (name, Totp::new(secret))
        })
        .collect();

    let per_rep = users as u64 * logins;
    let mut successes = 0u64;
    let mut best_wall_us = u64::MAX;
    for rep in 0..reps {
        // Each rep advances past the previous one's steps so no code is
        // ever a replay.
        let rep_t0 = t0 + rep * (logins + 1) * STEP_SECS;
        // Codes are precomputed outside the timed loop in both phases;
        // the timed region is the validation hot path itself.
        let work: Vec<(usize, String, u64, TraceId)> = (0..logins)
            .flat_map(|round| {
                let now = rep_t0 + (round + 1) * STEP_SECS;
                enrolled.iter().enumerate().map(move |(i, (_, totp))| {
                    let trace =
                        TraceId::from_u64(seed ^ (rep << 40) ^ (round << 20) ^ (i as u64 + 1));
                    (i, totp.code_at(now), now, trace)
                })
            })
            .collect();
        let wall_start = std::time::Instant::now();
        let mut ok = 0u64;
        for (i, code, now, trace) in &work {
            if server
                .validate_traced(&enrolled[*i].0, code, *now, Some(*trace))
                .is_success()
            {
                ok += 1;
            }
        }
        let wall = wall_start.elapsed().as_micros() as u64;
        best_wall_us = best_wall_us.min(wall);
        successes = ok;
    }
    PhaseResult {
        validations: per_rep,
        successes,
        best_wall_us,
        spans_recorded: registry.tracer().len() as u64,
        spans_dropped: registry.tracer().dropped(),
    }
}

fn main() {
    let mut users = 128usize;
    let mut logins = 20u64;
    let mut reps = 5u64;
    let mut seed = 42u64;
    let mut out = "BENCH_trace.json".to_string();
    let mut check = false;

    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--users" => {
                users = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--users needs an integer");
                i += 2;
            }
            "--logins" => {
                logins = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--logins needs an integer");
                i += 2;
            }
            "--reps" => {
                reps = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--reps needs an integer");
                i += 2;
            }
            "--seed" => {
                seed = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
                i += 2;
            }
            "--out" => {
                out = argv.get(i + 1).expect("--out needs a path").clone();
                i += 2;
            }
            "--check" => {
                check = true;
                i += 1;
            }
            other => panic!(
                "unknown argument {other:?} (expected --users/--logins/--reps/--seed/--out/--check)"
            ),
        }
    }
    assert!(reps >= 1, "--reps must be at least 1");

    eprintln!(
        "driving {users} users x {logins} logins x {reps} reps, \
recording tracer vs disabled tracer (seed {seed}) ..."
    );
    // Warm both code paths once before timing anything.
    {
        let warm = Arc::new(MetricsRegistry::new());
        run_phase(Arc::clone(&warm), users.min(16), 2, 1, seed ^ 0xdead);
        warm.tracer().disable();
        run_phase(warm, users.min(16), 2, 1, seed ^ 0xbeef);
    }

    let noop_registry = Arc::new(MetricsRegistry::new());
    noop_registry.tracer().disable();
    let noop = run_phase(Arc::clone(&noop_registry), users, logins, reps, seed);
    eprintln!(
        "  noop:         best wall {:>8}us for {} validations ({} spans)",
        noop.best_wall_us, noop.validations, noop.spans_recorded
    );
    let instrumented = run_phase(Arc::new(MetricsRegistry::new()), users, logins, reps, seed);
    eprintln!(
        "  instrumented: best wall {:>8}us for {} validations ({} spans)",
        instrumented.best_wall_us, instrumented.validations, instrumented.spans_recorded
    );
    let overhead_pct = if noop.best_wall_us == 0 {
        0.0
    } else {
        100.0 * (instrumented.best_wall_us as f64 - noop.best_wall_us as f64)
            / noop.best_wall_us as f64
    };
    eprintln!("  overhead: {overhead_pct:.2}%");

    let line = format!(
        "{{\"bench\":\"trace_overhead\",\"seed\":{seed},\"users\":{users},\
\"logins_per_user\":{logins},\"reps\":{reps},\
\"noop\":{},\"instrumented\":{},\"overhead_pct\":{overhead_pct:.2}}}",
        json(&noop),
        json(&instrumented)
    );
    println!("{line}");
    if let Err(e) = std::fs::write(&out, format!("{line}\n")) {
        eprintln!("warning: could not write {out}: {e}");
    }

    if check {
        for (name, phase) in [("noop", &noop), ("instrumented", &instrumented)] {
            assert_eq!(
                phase.successes,
                phase.validations,
                "{name} phase: {} of {} validations failed",
                phase.validations - phase.successes,
                phase.validations
            );
        }
        assert_eq!(
            noop.spans_recorded, 0,
            "the disabled tracer must record nothing"
        );
        assert_eq!(
            instrumented.spans_recorded,
            reps * instrumented.validations * 2,
            "two spans (validate + window_scan) per instrumented validation"
        );
        assert_eq!(
            instrumented.spans_dropped, 0,
            "the default ring must not evict during the bench"
        );
        assert!(
            overhead_pct <= 10.0,
            "instrumented hot path exceeds the 10% overhead budget: {overhead_pct:.2}%"
        );
        eprintln!("check passed: span recording costs <= 10% on the validation hot path");
    }
}
