//! In-house module #4: the Solaris combination module (§3.4).
//!
//! "A module specific for use on Oracle Solaris operating systems that
//! combine the public key and MFA exemption checks to accommodate
//! differences in PAM stack processing logic."
//!
//! Solaris PAM lacks the Linux-PAM `[success=N default=ignore]` jump
//! control, so the two checks cannot be composed from separate modules the
//! way Figure 1 does on Linux. This module performs both checks in one
//! call: it succeeds — deployed `sufficient` — only when public key
//! authentication already succeeded *and* an MFA exemption is granted,
//! which is exactly the condition that lets trusted gateway and community
//! accounts continue "automated, non-interactive transactions" without any
//! prompt.

use crate::access::{AccessDecision, WatchedAccessConfig};
use crate::context::PamContext;
use crate::modules::pubkey::{AuthLogSource, DEFAULT_FRESHNESS_SECS};
use crate::stack::{PamModule, PamResult};
use std::sync::Arc;

/// The combined pubkey + exemption module.
pub struct SolarisComboModule {
    log: Arc<dyn AuthLogSource>,
    config: WatchedAccessConfig,
    freshness_secs: u64,
}

impl SolarisComboModule {
    /// Combine `log` (pubkey evidence) and `config` (exemptions).
    pub fn new(log: Arc<dyn AuthLogSource>, config: WatchedAccessConfig) -> Arc<Self> {
        Arc::new(SolarisComboModule {
            log,
            config,
            freshness_secs: DEFAULT_FRESHNESS_SECS,
        })
    }
}

impl PamModule for SolarisComboModule {
    fn name(&self) -> &'static str {
        "pam_tacc_solaris_combo"
    }

    fn authenticate(&self, ctx: &mut PamContext<'_>) -> PamResult {
        let pubkey_ok =
            self.log
                .pubkey_success(&ctx.username, ctx.rhost, ctx.now(), self.freshness_secs);
        if pubkey_ok {
            ctx.pubkey_succeeded = true;
        }
        let exempt =
            self.config.decide(&ctx.username, ctx.rhost, ctx.now()) == AccessDecision::Exempt;
        if pubkey_ok && exempt {
            PamResult::Success
        } else {
            PamResult::Ignore
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AccessConfig;
    use crate::conv::ScriptedConversation;
    use hpcmfa_otp::clock::SimClock;
    use parking_lot::Mutex;
    use std::net::Ipv4Addr;

    #[derive(Default)]
    struct ToyLog(Mutex<Vec<(String, Ipv4Addr, u64)>>);
    impl AuthLogSource for ToyLog {
        fn pubkey_success(&self, user: &str, rhost: Ipv4Addr, now: u64, within: u64) -> bool {
            self.0
                .lock()
                .iter()
                .any(|(u, r, at)| u == user && *r == rhost && *at <= now && now - at <= within)
        }
    }

    fn run(module: &SolarisComboModule, user: &str, ip: Ipv4Addr, now: u64) -> PamResult {
        let mut conv = ScriptedConversation::with_answers(Vec::<String>::new());
        let mut ctx = PamContext::new(user, ip, Arc::new(SimClock::at(now)), &mut conv);
        module.authenticate(&mut ctx)
    }

    fn setup(pubkey_for: Option<(&str, Ipv4Addr)>, rules: &str) -> Arc<SolarisComboModule> {
        let log = Arc::new(ToyLog::default());
        if let Some((u, ip)) = pubkey_for {
            log.0.lock().push((u.to_string(), ip, 995));
        }
        let cfg = WatchedAccessConfig::new(AccessConfig::parse(rules).unwrap());
        SolarisComboModule::new(log as Arc<dyn AuthLogSource>, cfg)
    }

    const GW_IP: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 7);

    #[test]
    fn both_conditions_met_succeeds() {
        let m = setup(Some(("gateway1", GW_IP)), "+ : gateway1 : ALL : ALL\n");
        assert_eq!(run(&m, "gateway1", GW_IP, 1000), PamResult::Success);
    }

    #[test]
    fn pubkey_without_exemption_continues() {
        let m = setup(Some(("alice", GW_IP)), "+ : gateway1 : ALL : ALL\n");
        assert_eq!(run(&m, "alice", GW_IP, 1000), PamResult::Ignore);
    }

    #[test]
    fn exemption_without_pubkey_continues() {
        // Password users still need the password module even if exempt from
        // the second factor — the combo alone must not grant.
        let m = setup(None, "+ : gateway1 : ALL : ALL\n");
        assert_eq!(run(&m, "gateway1", GW_IP, 1000), PamResult::Ignore);
    }

    #[test]
    fn sets_pubkey_flag_even_without_exemption() {
        let log = Arc::new(ToyLog::default());
        log.0.lock().push(("alice".into(), GW_IP, 995));
        let cfg = WatchedAccessConfig::new(AccessConfig::empty());
        let m = SolarisComboModule::new(log as Arc<dyn AuthLogSource>, cfg);
        let mut conv = ScriptedConversation::with_answers(Vec::<String>::new());
        let mut ctx = PamContext::new("alice", GW_IP, Arc::new(SimClock::at(1000)), &mut conv);
        assert_eq!(m.authenticate(&mut ctx), PamResult::Ignore);
        assert!(ctx.pubkey_succeeded);
    }
}
