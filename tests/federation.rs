//! Federation acceptance: multi-realm routing plus stateless
//! session-resumption tokens, driven end to end through sshd → PAM →
//! RADIUS realm router → (proxy) → home-realm OTP server.
//!
//! Five claims are on trial:
//!
//! 1. Routing — in the seeded three-site scenario, `bob@psc` logging in
//!    at `tacc` is proxied to his home realm and granted, and a realm
//!    outside the trust ACL is rejected at the router.
//! 2. O(1) resumption — the repeat login presents the minted token and
//!    is granted with *zero* OTP window scans at the home realm, pinned
//!    by the `hpcmfa_otp_window_scans_total` delta.
//! 3. Theft containment — replaying the token from a foreign /16 is
//!    denied and emits the typed `resume_replay` security event; the
//!    in-/16 replay of a burned nonce is denied by the single-use ledger.
//! 4. Determinism — the scenario report replays byte-identically across
//!    5 seeded runs.
//! 5. Durability — single-use survives both a crash-and-recover of the
//!    OTP server and a warm-standby promotion: a nonce burned before the
//!    fault is still burned after it.

use securing_hpc::core::center::{Center, CenterConfig, FederationParams, OtpReplicationParams};
use securing_hpc::federation::TrustConfig;
use securing_hpc::otp::clock::Clock;
use securing_hpc::otpserver::{MemoryBackend, ReplicationMode, StorageBackend};
use securing_hpc::pam::modules::token::EnforcementMode;
use securing_hpc::ssh::client::{ClientProfile, TokenSource};
use securing_hpc::workload::federation::FederationSim;
use std::net::Ipv4Addr;
use std::sync::Arc;

const EXTERNAL_IP: Ipv4Addr = Ipv4Addr::new(70, 112, 50, 3);

#[test]
fn roaming_login_routes_to_home_realm_and_succeeds() {
    let report = FederationSim::new(0xfed).run();
    assert_eq!(report.roamed_granted, 1, "{report}");
    assert_eq!(report.transit_granted, 1, "{report}");
    // The visited site's proxy counters show the psc leg: the roaming
    // full-MFA login, the resumption login, and the transit hop relayed
    // from sdsc were all forwarded and accepted; the two replays were
    // forwarded and rejected; the unknown realm never left the router.
    let has = |needle: &str| report.counters.iter().any(|c| c == needle);
    assert!(
        has("tacc hpcmfa_radius_proxy_forwards_total{outcome=\"accept\",realm=\"psc\"} = 3"),
        "{report}"
    );
    assert!(
        has("sdsc hpcmfa_radius_proxy_forwards_total{outcome=\"accept\",realm=\"psc\"} = 1"),
        "{report}"
    );
    assert!(
        has("tacc hpcmfa_radius_proxy_forwards_total{outcome=\"reject\",realm=\"psc\"} = 2"),
        "{report}"
    );
    // The unknown realm never left the router; 3 = PAM's per-session
    // token-prompt retries, each refused at the ACL.
    assert!(
        has("tacc hpcmfa_radius_proxy_forwards_total{outcome=\"denied_acl\",realm=\"ncsa\"} = 3"),
        "{report}"
    );
}

#[test]
fn resumption_validates_in_constant_time_with_zero_window_scans() {
    let report = FederationSim::new(0xfed).run();
    assert_eq!(report.resumed_granted, 1, "{report}");
    assert_eq!(
        report.resume_window_scans, 0,
        "resumption must never walk the TOTP drift window: {report}"
    );
    assert!(
        report
            .counters
            .iter()
            .any(|c| c == "psc hpcmfa_otp_resume_validations_total{outcome=\"ok\"} = 1"),
        "{report}"
    );
}

#[test]
fn replay_from_changed_address_is_denied_with_typed_event() {
    let report = FederationSim::new(0xfed).run();
    assert_eq!(report.replays_denied, 2, "{report}");
    assert!(
        report
            .counters
            .iter()
            .any(|c| c == "psc hpcmfa_otp_resume_validations_total{outcome=\"wrong_address\"} = 1"),
        "{report}"
    );
    assert!(
        report
            .counters
            .iter()
            .any(|c| c == "psc hpcmfa_otp_resume_validations_total{outcome=\"replayed\"} = 1"),
        "{report}"
    );
    // The home realm names the theft in its typed event feed.
    assert!(
        report.security_events.iter().any(|e| e.starts_with("psc:")
            && e.contains("resume_replay")
            && e.contains("foreign /16")),
        "{report}"
    );
}

#[test]
fn scenario_report_is_byte_identical_across_5_replays() {
    let first = FederationSim::new(0xfed).run().to_string();
    for _ in 0..4 {
        assert_eq!(first, FederationSim::new(0xfed).run().to_string());
    }
}

/// A single-site federated center (local-only trust still mints
/// resumption tokens) with one fully-paired user and a completed
/// full-MFA login whose Accept carried a token.
fn federated_login(config: CenterConfig) -> (Arc<Center>, String) {
    let center = Center::new(config);
    center.create_user("alice", "alice@utexas.edu", "alice-pw");
    center.set_enforcement(EnforcementMode::Full);
    let device = center.pair_soft("alice");
    let code = device.displayed_code(center.clock.now());
    let profile = ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
        .with_token(TokenSource::Fixed(code));
    let session = center.ssh(0, &profile);
    assert!(session.granted, "full MFA login");
    let token = session
        .issued_resume_token
        .expect("full-MFA success mints a resumption token");
    (center, token)
}

fn resume_profile(token: &str) -> ClientProfile {
    ClientProfile::interactive_user("alice", EXTERNAL_IP, "alice-pw")
        .with_token(TokenSource::Fixed(token.to_string()))
}

#[test]
fn single_use_survives_crash_recovery() {
    let backend = MemoryBackend::healthy();
    let (center, token) = federated_login(CenterConfig {
        otp_storage: Some(backend as Arc<dyn StorageBackend>),
        federation: Some(FederationParams::new(
            TrustConfig::local_only("tacc"),
            b"crash-resume-key",
            20,
        )),
        ..CenterConfig::default()
    });

    // First presentation spends the nonce (WAL'd before the ack).
    center.clock.advance(30);
    assert!(center.ssh(0, &resume_profile(&token)).granted);

    // Kill and recover: the consume record replays from durable state.
    let report = center.crash_otp_server().expect("recovers");
    assert!(report.wal_records > 0, "the consume was logged");

    // The burned nonce stays burned on the recovered server.
    center.clock.advance(30);
    assert!(
        !center.ssh(1, &resume_profile(&token)).granted,
        "a resumption nonce must stay single-use across crash recovery"
    );
    let replayed = center
        .metrics_snapshot()
        .counter("hpcmfa_otp_resume_validations_total{outcome=\"replayed\"}");
    assert_eq!(replayed, 1);
}

#[test]
fn single_use_survives_standby_promotion() {
    let primary = MemoryBackend::healthy();
    let standby = MemoryBackend::healthy();
    let (center, token) = federated_login(CenterConfig {
        otp_replication: Some(OtpReplicationParams::new(
            ReplicationMode::Sync,
            Arc::clone(&primary) as Arc<dyn StorageBackend>,
            Arc::clone(&standby) as Arc<dyn StorageBackend>,
        )),
        federation: Some(FederationParams::new(
            TrustConfig::local_only("tacc"),
            b"failover-resume-key",
            20,
        )),
        ..CenterConfig::default()
    });

    // Spend the nonce while the primary is healthy: the consume frame
    // replicates to the standby synchronously.
    center.clock.advance(30);
    assert!(center.ssh(0, &resume_profile(&token)).granted);

    // Kill the primary's storage and drive logins until the breaker
    // opens and a handler promotes the standby.
    primary.set_down(true);
    let cluster = center.otp_cluster.as_ref().expect("replicated center");
    for _ in 0..6 {
        center.clock.advance(30);
        let _ = center.ssh(0, &resume_profile(&token));
        if cluster.epoch() > 1 {
            break;
        }
    }
    assert!(cluster.epoch() > 1, "standby promoted");

    // The promoted standby still refuses the burned nonce.
    center.clock.advance(30);
    assert!(
        !center.ssh(1, &resume_profile(&token)).granted,
        "a resumption nonce must stay single-use across standby promotion"
    );
}
