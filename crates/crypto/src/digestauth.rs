//! HTTP Digest access authentication (RFC 7616, MD5 profile with
//! `qop="auth"`).
//!
//! The paper's user portal authenticates to the LinOTP administrative REST
//! interface "using HTTP Digest Authentication over a TLS-secured
//! connection" (§3.5). This module provides both halves of that exchange:
//! server-side challenge issuing/verification with nonce-count replay
//! protection, and the client-side response computation.

use crate::hex::to_hex;
use crate::md5::md5;

/// A server-issued challenge (`WWW-Authenticate: Digest ...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestChallenge {
    /// Protection realm, e.g. `LinOTP admin area`.
    pub realm: String,
    /// Server nonce, unique per challenge.
    pub nonce: String,
    /// Opaque blob echoed back by clients.
    pub opaque: String,
}

impl DigestChallenge {
    /// Render the `WWW-Authenticate` header value.
    pub fn header_value(&self) -> String {
        format!(
            "Digest realm=\"{}\", qop=\"auth\", nonce=\"{}\", opaque=\"{}\", algorithm=MD5",
            self.realm, self.nonce, self.opaque
        )
    }
}

/// A client authorization (`Authorization: Digest ...`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestAuthorization {
    /// Username presented by the client.
    pub username: String,
    /// Realm copied from the challenge.
    pub realm: String,
    /// Server nonce copied from the challenge.
    pub nonce: String,
    /// Request URI the digest covers.
    pub uri: String,
    /// Hex response digest.
    pub response: String,
    /// Client nonce.
    pub cnonce: String,
    /// Nonce count, rendered as 8 hex digits (`00000001`).
    pub nc: u32,
    /// Opaque copied from the challenge.
    pub opaque: String,
}

fn h(parts: &[&str]) -> String {
    to_hex(&md5(parts.join(":").as_bytes()))
}

/// `HA1 = MD5(username:realm:password)` — what a server may store instead of
/// the cleartext password.
pub fn ha1(username: &str, realm: &str, password: &str) -> String {
    h(&[username, realm, password])
}

/// Compute the digest response for a request (RFC 7616 §3.4.1, qop=auth).
pub fn compute_response(
    ha1_hex: &str,
    method: &str,
    uri: &str,
    nonce: &str,
    nc: u32,
    cnonce: &str,
) -> String {
    let ha2 = h(&[method, uri]);
    let nc_str = format!("{nc:08x}");
    h(&[ha1_hex, nonce, &nc_str, cnonce, "auth", &ha2])
}

/// Client helper: answer `challenge` for `method uri` with credentials.
pub fn answer_challenge(
    challenge: &DigestChallenge,
    username: &str,
    password: &str,
    method: &str,
    uri: &str,
    cnonce: &str,
    nc: u32,
) -> DigestAuthorization {
    let ha1_hex = ha1(username, &challenge.realm, password);
    let response = compute_response(&ha1_hex, method, uri, &challenge.nonce, nc, cnonce);
    DigestAuthorization {
        username: username.to_string(),
        realm: challenge.realm.clone(),
        nonce: challenge.nonce.clone(),
        uri: uri.to_string(),
        response,
        cnonce: cnonce.to_string(),
        nc,
        opaque: challenge.opaque.clone(),
    }
}

/// Why a server rejected a [`DigestAuthorization`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DigestError {
    /// Nonce unknown or already expired server-side (client must re-challenge).
    StaleNonce,
    /// Nonce count not strictly increasing — a replayed request.
    ReplayedNonceCount,
    /// Unknown user.
    UnknownUser,
    /// Digest mismatch (wrong password or tampered request).
    BadResponse,
    /// Realm or opaque do not match the issued challenge.
    ChallengeMismatch,
}

impl std::fmt::Display for DigestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DigestError::StaleNonce => "stale nonce",
            DigestError::ReplayedNonceCount => "replayed nonce count",
            DigestError::UnknownUser => "unknown user",
            DigestError::BadResponse => "bad digest response",
            DigestError::ChallengeMismatch => "challenge mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for DigestError {}

/// Server-side digest verifier: issues challenges, stores per-nonce state,
/// and verifies authorizations with nonce-count monotonicity.
pub struct DigestVerifier {
    realm: String,
    /// username -> HA1 hex.
    credentials: std::collections::HashMap<String, String>,
    /// nonce -> (opaque, highest nc seen).
    nonces: std::collections::HashMap<String, (String, u32)>,
    counter: u64,
    /// Seed mixed into nonce generation so two verifiers differ.
    seed: u64,
}

impl DigestVerifier {
    /// Create a verifier for `realm`. `seed` perturbs nonce generation.
    pub fn new(realm: &str, seed: u64) -> Self {
        DigestVerifier {
            realm: realm.to_string(),
            credentials: std::collections::HashMap::new(),
            nonces: std::collections::HashMap::new(),
            counter: 0,
            seed,
        }
    }

    /// Register a user by cleartext password (stored as HA1 only).
    pub fn add_user(&mut self, username: &str, password: &str) {
        self.credentials
            .insert(username.to_string(), ha1(username, &self.realm, password));
    }

    /// Issue a fresh challenge.
    pub fn challenge(&mut self) -> DigestChallenge {
        self.counter += 1;
        let nonce_src = format!("nonce-{}-{}", self.seed, self.counter);
        let opaque_src = format!("opaque-{}-{}", self.seed, self.counter);
        let nonce = to_hex(&md5(nonce_src.as_bytes()));
        let opaque = to_hex(&md5(opaque_src.as_bytes()));
        self.nonces.insert(nonce.clone(), (opaque.clone(), 0));
        DigestChallenge {
            realm: self.realm.clone(),
            nonce,
            opaque,
        }
    }

    /// Verify an authorization for `method uri`.
    pub fn verify(
        &mut self,
        auth: &DigestAuthorization,
        method: &str,
        uri: &str,
    ) -> Result<(), DigestError> {
        if auth.realm != self.realm {
            return Err(DigestError::ChallengeMismatch);
        }
        let (opaque, last_nc) = self
            .nonces
            .get_mut(&auth.nonce)
            .ok_or(DigestError::StaleNonce)?;
        if *opaque != auth.opaque {
            return Err(DigestError::ChallengeMismatch);
        }
        if auth.nc <= *last_nc {
            return Err(DigestError::ReplayedNonceCount);
        }
        let ha1_hex = self
            .credentials
            .get(&auth.username)
            .ok_or(DigestError::UnknownUser)?;
        let expected = compute_response(ha1_hex, method, uri, &auth.nonce, auth.nc, &auth.cnonce);
        if !crate::ct::ct_eq_str(&expected, &auth.response) {
            return Err(DigestError::BadResponse);
        }
        *last_nc = auth.nc;
        Ok(())
    }

    /// Drop all outstanding nonces (e.g. periodic rotation).
    pub fn expire_all_nonces(&mut self) {
        self.nonces.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (DigestVerifier, DigestChallenge) {
        let mut v = DigestVerifier::new("LinOTP admin area", 42);
        v.add_user("portal", "s3cret");
        let c = v.challenge();
        (v, c)
    }

    #[test]
    fn rfc7616_worked_example() {
        // RFC 7616 §3.9.1 (MD5 profile) reference computation.
        let ha1_hex = ha1("Mufasa", "http-auth@example.org", "Circle of Life");
        let response = compute_response(
            &ha1_hex,
            "GET",
            "/dir/index.html",
            "7ypf/xlj9XXwfDPEoM4URrv/xwf94BcCAzFZH4GiTo0v",
            1,
            "f2/wE4q74E6zIJEtWaHKaf5wv/H5QzzpXusqGemxURZJ",
        );
        assert_eq!(response, "8ca523f5e9506fed4657c9700eebdbec");
    }

    #[test]
    fn round_trip_success() {
        let (mut v, c) = setup();
        let auth = answer_challenge(&c, "portal", "s3cret", "POST", "/admin/init", "cn1", 1);
        assert_eq!(v.verify(&auth, "POST", "/admin/init"), Ok(()));
    }

    #[test]
    fn wrong_password_rejected() {
        let (mut v, c) = setup();
        let auth = answer_challenge(&c, "portal", "wrong", "POST", "/admin/init", "cn1", 1);
        assert_eq!(
            v.verify(&auth, "POST", "/admin/init"),
            Err(DigestError::BadResponse)
        );
    }

    #[test]
    fn unknown_user_rejected() {
        let (mut v, c) = setup();
        let auth = answer_challenge(&c, "intruder", "s3cret", "GET", "/", "cn1", 1);
        assert_eq!(v.verify(&auth, "GET", "/"), Err(DigestError::UnknownUser));
    }

    #[test]
    fn nonce_count_must_increase() {
        let (mut v, c) = setup();
        let a1 = answer_challenge(&c, "portal", "s3cret", "GET", "/a", "cn1", 1);
        assert_eq!(v.verify(&a1, "GET", "/a"), Ok(()));
        // Exact replay.
        assert_eq!(
            v.verify(&a1, "GET", "/a"),
            Err(DigestError::ReplayedNonceCount)
        );
        // Same nonce, higher nc: allowed (pipelined requests).
        let a2 = answer_challenge(&c, "portal", "s3cret", "GET", "/b", "cn2", 2);
        assert_eq!(v.verify(&a2, "GET", "/b"), Ok(()));
    }

    #[test]
    fn stale_nonce_rejected() {
        let (mut v, c) = setup();
        v.expire_all_nonces();
        let auth = answer_challenge(&c, "portal", "s3cret", "GET", "/", "cn1", 1);
        assert_eq!(v.verify(&auth, "GET", "/"), Err(DigestError::StaleNonce));
    }

    #[test]
    fn method_or_uri_tamper_rejected() {
        let (mut v, c) = setup();
        let auth = answer_challenge(&c, "portal", "s3cret", "GET", "/a", "cn1", 1);
        assert_eq!(v.verify(&auth, "POST", "/a"), Err(DigestError::BadResponse));
        let auth2 = answer_challenge(&c, "portal", "s3cret", "GET", "/a", "cn1", 2);
        assert_eq!(v.verify(&auth2, "GET", "/b"), Err(DigestError::BadResponse));
    }

    #[test]
    fn opaque_mismatch_rejected() {
        let (mut v, c) = setup();
        let mut auth = answer_challenge(&c, "portal", "s3cret", "GET", "/", "cn1", 1);
        auth.opaque = "tampered".into();
        assert_eq!(
            v.verify(&auth, "GET", "/"),
            Err(DigestError::ChallengeMismatch)
        );
    }

    #[test]
    fn challenges_are_unique() {
        let mut v = DigestVerifier::new("r", 1);
        let c1 = v.challenge();
        let c2 = v.challenge();
        assert_ne!(c1.nonce, c2.nonce);
        assert_ne!(c1.opaque, c2.opaque);
    }

    #[test]
    fn header_value_contains_fields() {
        let (_, c) = setup();
        let h = c.header_value();
        assert!(h.starts_with("Digest realm=\"LinOTP admin area\""));
        assert!(h.contains("qop=\"auth\""));
        assert!(h.contains(&c.nonce));
    }
}
